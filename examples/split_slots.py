#!/usr/bin/env python3
"""Future work, implemented: serving one mode with several quanta per cycle.

Section 5 of the paper proposes "the same fault-tolerance service during
more than one time quantum per period". This example runs that extension on
the paper's own task set: the FS class contains tau9 with T = 4, whose short
deadline caps the single-slot design at P = 2.966. Splitting the FS slot
into two interleaved quanta halves FS's supply delay, relaxing precisely the
binding constraint — the major period grows ~30% (fewer mode switches per
unit time), at the cost of paying O_FS twice per cycle.

Run:  python examples/split_slots.py
"""

from repro.core import Overheads, design_split_platform
from repro.experiments import PAPER_OTOT, paper_partition
from repro.model import MODE_ORDER, Mode
from repro.sim import MulticoreSim
from repro.viz import format_table

partition = paper_partition()
overheads = Overheads.uniform(PAPER_OTOT)

rows = []
designs = {}
for k_fs in (1, 2):
    design = design_split_platform(partition, "EDF", overheads, {Mode.FS: k_fs})
    sim = MulticoreSim(partition, design.schedule, "EDF").run(
        horizon=design.period * 40
    )
    designs[k_fs] = design
    rows.append(
        [
            k_fs,
            design.period,
            design.schedule.usable(Mode.FS),
            design.schedule.delta(Mode.FS),
            sim.miss_count,
        ]
    )

print("FS mode served by k quanta per major cycle (EDF, O_tot = 0.05):\n")
print(format_table(["k_FS", "max period P", "Q~_FS", "FS supply delay", "sim misses"], rows))

base, split = designs[1], designs[2]
print()
print(f"period gain from splitting: "
      f"{100 * (split.period / base.period - 1):.1f}%")
print()
print("one major cycle of the split design:")
hdr = f"{'window':>20} {'kind':>10} {'mode':>6}"
print(hdr)
for a, b, kind, mode in split.schedule.cycle_template():
    print(f"[{a:8.3f}, {b:8.3f}) {kind:>10} {str(mode or '-'):>6}")
print()
print("note the two FS windows per cycle, one per half-frame — each cycle")
print("pays the FS switch-out overhead twice, but tau9 (T=4) now sees")
print(f"service every {split.schedule.delta(Mode.FS):.2f} time units instead "
      f"of every {base.schedule.delta(Mode.FS):.2f}.")
