#!/usr/bin/env python3
"""The paper's full Section 4 worked example, regenerated end to end.

Reproduces, in order:

* Table 1 — the 13-task set and the manual partition;
* Figure 4 — the feasible-period region for EDF and RM with points 1–5;
* Table 2 — the min-overhead-bandwidth (b) and max-slack (c) designs;
* the in-text sanity check (allocated vs required NF bandwidth);
* a simulation of design (b) confirming zero deadline misses.

Run:  python examples/paper_example.py
"""

from repro.core import FeasibleRegion
from repro.experiments import (
    PAPER_OTOT,
    compute_figure4_points,
    compute_table2,
    figure4_series,
    paper_partition,
    paper_taskset,
)
from repro.model import MODE_ORDER, Mode
from repro.sim import MulticoreSim
from repro.viz import format_table, render_region

taskset = paper_taskset()
partition = paper_partition()

# ---------------------------------------------------------------- Table 1
print("=" * 72)
print("TABLE 1 — the task set")
print("=" * 72)
rows = [
    [str(t.mode), t.name, int(t.wcet), int(t.period)] for t in taskset
]
print(format_table(["mode", "task", "C_i", "T_i"], rows))
print()
for mode in MODE_ORDER:
    bins = [
        f"{{{', '.join(b.names)}}}"
        for b in partition.bins(mode)
        if len(b)
    ]
    print(f"  {mode} partition: {' '.join(bins)}")

# ---------------------------------------------------------------- Figure 4
print()
print("=" * 72)
print("FIGURE 4 — determining the feasible periods")
print("=" * 72)
series = figure4_series(p_max=3.5, n=401)
print(render_region(series["P"], {"EDF": series["EDF"], "RM": series["RM"]},
                    otot=PAPER_OTOT, width=72, height=20))
pts = compute_figure4_points()
print()
print(f"  1. max P (EDF, Otot=0)     = {pts.point1_max_period_edf:.3f}   paper: 3.176")
print(f"  2. max P (RM,  Otot=0)     = {pts.point2_max_period_rm:.3f}   paper: 2.381")
print(f"  3. max Otot (EDF)          = {pts.point3_max_overhead_edf:.3f}   paper: 0.201")
print(f"  4. max Otot (RM)           = {pts.point4_max_overhead_rm:.3f}   paper: 0.129")
print(f"  5. max P (EDF, Otot=0.05)  = {pts.point5_max_period_edf_otot:.3f}   paper: 2.966")

# ---------------------------------------------------------------- Table 2
print()
print("=" * 72)
print("TABLE 2 — possible design solutions")
print("=" * 72)
table2 = compute_table2()
print(table2.render())

# The paper's in-text verification for NF mode.
alloc_nf = table2.row_b.alloc_nf
req_nf = partition.max_bin_utilization(Mode.NF)
print()
print(f"sanity check (paper, Section 4): Q~NF/P = {alloc_nf:.3f} "
      f">= max_i U(T_NF^i) = {req_nf:.3f}  -> {'OK' if alloc_nf >= req_nf else 'FAIL'}")

# ---------------------------------------------------------------- simulate
print()
print("=" * 72)
print("SIMULATION — design (b) on the modelled 4-core platform")
print("=" * 72)
from repro.core import MinOverheadBandwidthGoal, Overheads, design_platform

config = design_platform(
    partition, "EDF", Overheads.uniform(PAPER_OTOT), MinOverheadBandwidthGoal()
)
sim = MulticoreSim(partition, config)
result = sim.run(horizon=config.period * 81)
print(f"simulated {result.horizon:.1f} time units "
      f"({81} major cycles, {sum(len(r.jobs) for r in result.processors.values())} jobs)")
print(f"deadline misses: {result.miss_count}")
print()
print("first two major cycles on every logical processor:")
print(result.trace.gantt(start=0.0, end=2 * config.period, width=72))
