#!/usr/bin/env python3
"""The paper's motivating scenario: engine control with a dashboard.

Section 2.2: *"Consider an application which controls a car engine and shows
its activity on a screen. While we could accept the visualization to be
degraded, the control algorithm must produce the correct result despite the
presence of faults."*

This example builds that application:

* engine control loop + injection timing      -> FT (must be masked)
* knock detection + CAN gateway               -> FS (fail silent)
* dashboard rendering + trip statistics       -> NF (best effort)

designs the platform, then bombards it with soft errors and shows the
per-class consequences: control output always correct, fail-silent channels
shut down cleanly, only the dashboard ever shows corrupted frames.

Run:  python examples/engine_control.py
"""

import numpy as np

from repro import Mode, Overheads, Task, TaskSet, design_platform
from repro.faults import FaultCampaign, FaultOutcome
from repro.partition import partition_by_modes
from repro.viz import format_table

engine_app = TaskSet(
    [
        # fault-tolerant: the control laws
        Task("ctrl_loop", wcet=0.8, period=5.0, mode=Mode.FT),
        Task("inj_timing", wcet=0.4, period=10.0, mode=Mode.FT),
        # fail-silent: produce-or-stay-quiet components
        Task("knock_det", wcet=0.6, period=10.0, mode=Mode.FS),
        Task("can_gw", wcet=0.8, period=20.0, mode=Mode.FS),
        Task("obd_mon", wcet=0.5, period=25.0, mode=Mode.FS),
        # best effort: visualization
        Task("dash_render", wcet=4.0, period=20.0, mode=Mode.NF),
        Task("trip_stats", wcet=1.0, period=50.0, mode=Mode.NF),
        Task("media_ui", wcet=2.0, period=25.0, mode=Mode.NF),
    ]
)

print(engine_app.summary())
print()

partition = partition_by_modes(engine_app)
config = design_platform(partition, "EDF", Overheads.uniform(0.1))
print("platform design:")
print(config.summary())
print()

# A harsh environment: soft errors every ~15 time units on average.
campaign = FaultCampaign(partition, config, rate=1 / 15.0)
result = campaign.run(horizon=config.period * 120, seed=2026)

print(f"injected {result.injected} soft errors over "
      f"{result.simulation.horizon:.0f} time units")
print()
rows = []
for outcome in FaultOutcome:
    share = result.rate(outcome)
    rows.append([str(outcome), result.outcomes[outcome],
                 f"{100 * share:.1f}%" if share is not None else "n/a"])
print(format_table(["outcome", "count", "share"], rows))
print()

corrupted_tasks = {name.split("#")[0] for name in result.corrupted_jobs}
aborted_tasks = {name.split("#")[0] for name in result.aborted_jobs}
ft_names = {t.name for t in engine_app if t.mode is Mode.FT}

print(f"corrupted outputs : {sorted(corrupted_tasks) or 'none'}")
print(f"silenced jobs     : {sorted(aborted_tasks) or 'none'}")
print(f"deadline misses   : {result.total_misses} "
      f"(fault-tolerant tasks: {result.ft_misses})")
print()

assert not (corrupted_tasks & ft_names), "a control task produced a wrong result!"
assert result.ft_misses == 0, "a control deadline was missed!"
print("=> engine control was never wrong and never late;")
print("   only best-effort visualization ever showed corrupted frames.")
