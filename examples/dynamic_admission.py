#!/usr/bin/env python3
"""Run-time flexibility: the max-slack design admitting dynamic arrivals.

Section 4's second design goal reserves redistributable bandwidth so the
time quanta can grow and shrink at run time. This example deploys the
Table 2(c) design of the paper's own task set and walks through an arrival/
departure scenario:

* a new NF telemetry task arrives        -> admitted from slack;
* a new FS health monitor arrives        -> admitted from slack;
* an oversized FT task arrives           -> rejected (slack exhausted);
* the telemetry task leaves              -> bandwidth returns to the pool.

Run:  python examples/dynamic_admission.py
"""

from repro import AdmissionController, MaxSlackGoal, Mode, Overheads, Task, design_platform
from repro.experiments import PAPER_OTOT, paper_partition
from repro.sim import MulticoreSim

partition = paper_partition()
config = design_platform(
    partition, "EDF", Overheads.uniform(PAPER_OTOT), MaxSlackGoal()
)
print("deployed design (Table 2(c)):")
print(config.summary())
print()

ctl = AdmissionController(config, partition)


def attempt(task: Task) -> None:
    d = ctl.try_admit(task)
    verdict = "ADMITTED" if d.admitted else "REJECTED"
    where = f" on {d.mode}[{d.processor}]" if d.admitted else ""
    print(f"{verdict:<9} {task.name:<12} (C={task.wcet:g}, T={task.period:g}, "
          f"{task.mode}){where}")
    if d.admitted:
        print(f"          quantum growth {d.quantum_growth:.4f}, "
              f"slack left {d.slack_left:.4f}")
    else:
        print(f"          reason: {d.reason}")


print(f"initial slack: {ctl.slack:.4f} per cycle of P = {ctl.period:.4f}\n")

attempt(Task("telemetry", wcet=0.4, period=20.0, mode=Mode.NF))
attempt(Task("health_mon", wcet=0.2, period=10.0, mode=Mode.FS))
attempt(Task("big_ctrl", wcet=3.0, period=10.0, mode=Mode.FT))

print(f"\nremoving 'telemetry' -> freed {ctl.remove('telemetry'):.4f}")
print(f"slack now: {ctl.slack:.4f}")

# The evolved configuration still passes the analysis and the simulator.
evolved_cfg = ctl.config()
evolved_part = ctl.partition()
result = MulticoreSim(evolved_part, evolved_cfg).run(
    horizon=evolved_cfg.period * 120
)
print(f"\nsimulated evolved system for {result.horizon:.1f} time units: "
      f"{result.miss_count} deadline misses")
assert result.miss_count == 0
