#!/usr/bin/env python3
"""Quickstart: design a flexible fault-tolerant platform in ~20 lines.

Builds a small mixed-criticality task set, partitions it onto the 4-core
platform's logical processors, derives the slot schedule (period + FT/FS/NF
quanta) with the paper's design method, and double-checks the design by
simulation.

Run:  python examples/quickstart.py
"""

from repro import Mode, Overheads, Task, TaskSet, design_platform
from repro.partition import partition_by_modes
from repro.sim import MulticoreSim

# 1. A mixed application: one critical control loop (FT), a pair of
#    monitoring tasks (FS), and best-effort workload (NF).
taskset = TaskSet(
    [
        Task("control", wcet=1.0, period=10.0, mode=Mode.FT),
        Task("watchdog", wcet=0.5, period=8.0, mode=Mode.FS),
        Task("logger", wcet=1.0, period=20.0, mode=Mode.FS),
        Task("ui", wcet=2.0, period=16.0, mode=Mode.NF),
        Task("stats", wcet=1.5, period=12.0, mode=Mode.NF),
    ]
)
print(taskset.summary(), "\n")

# 2. Partition each mode's tasks onto its logical processors
#    (FT: 1, FS: 2, NF: 4) — worst-fit keeps the bins balanced.
partition = partition_by_modes(taskset)
print(partition.summary(), "\n")

# 3. Design the platform: choose the major period P and the three slot
#    lengths so every deadline is guaranteed (Eqs. 6/11 + 12-15 of the
#    paper), while minimising the bandwidth lost to mode switches.
config = design_platform(partition, "EDF", Overheads.uniform(0.1))
print(config.summary(), "\n")

# 4. Trust, but verify: simulate two hyperperiods on the modelled hardware.
result = MulticoreSim(partition, config).run()
print(f"simulated {result.horizon:.1f} time units "
      f"-> deadline misses: {result.miss_count}")
assert result.miss_count == 0
