#!/usr/bin/env python3
"""Anatomy of three soft errors: one per operating mode.

Injects exactly one fault into an FT slot, one into an FS slot and one into
an NF slot of the paper's designed platform, then prints what the checker
did in each case and a Gantt excerpt around the fail-silent shutdown.

Run:  python examples/fault_injection_demo.py
"""

from repro import Overheads, design_platform
from repro.experiments import PAPER_OTOT, paper_partition
from repro.faults import Fault
from repro.model import Mode
from repro.sim import MulticoreSim

partition = paper_partition()
config = design_platform(partition, "EDF", Overheads.uniform(PAPER_OTOT))
P = config.period

# One fault per mode, placed mid-slot in the third major cycle.
cycle = 2


def mid_slot(mode: Mode) -> float:
    a, b = config.schedule.usable_window(mode)
    return cycle * P + (a + b) / 2


faults = [
    Fault(mid_slot(Mode.FT), core=1),   # hits the redundant lock-step channel
    Fault(mid_slot(Mode.FS), core=2),   # hits the second fail-silent couple
    Fault(mid_slot(Mode.NF), core=3),   # hits an unprotected core
]

sim = MulticoreSim(partition, config)
result = sim.run(horizon=P * 40, faults=faults)

print(f"platform period P = {P:.3f}; simulated {result.horizon:.1f} time units\n")
for rec in result.fault_records:
    print(f"fault @ t={rec.fault.time:8.3f} on core {rec.fault.core} "
          f"during {rec.mode} slot:")
    print(f"   outcome : {rec.outcome}")
    if rec.victim:
        print(f"   victim  : {rec.victim}")
    print(f"   detail  : {rec.detail}\n")

print(f"deadline misses overall: {result.miss_count}")
print(f"fault summary: "
      f"{ {str(k): v for k, v in result.fault_summary().items() if v} }")
print()
print("Gantt around the faulted cycle (cycle 3 of the schedule):")
print(result.trace.gantt(start=cycle * P, end=(cycle + 2) * P, width=78))
print()
print("legend: rows are logical processors; digits/letters = running task;")
print("'.' = unavailable (other mode's slot, overhead, or silenced channel)")
