"""Run-time admission of dynamically arriving tasks via slack redistribution.

Section 4 motivates the max-slack design with a dynamic scenario: tasks
arrive and leave at run time, and the platform should be able to *shrink or
enlarge the time quanta* without re-deriving the whole design. This module
implements that controller:

* the design slack (``P − sum Q_k``) is a bandwidth reserve;
* admitting a task into mode ``k`` recomputes ``minQ_k`` for the candidate
  processor bin at the fixed period ``P`` and grows ``Q_k`` by the required
  amount, provided the reserve covers it;
* removing a task shrinks its mode's quantum back to the new binding value
  and returns the bandwidth to the reserve.

The controller never changes ``P`` — changing the major period would require
a platform-level resynchronisation, exactly what the paper's design avoids.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.config import PlatformConfig, SlotSchedule
from repro.core.minq import QuantumCurve
from repro.model import Mode, PartitionedTaskSet, Task, TaskSet
from repro.util import EPS


@dataclass(frozen=True)
class AdmissionDecision:
    """Outcome of an admission attempt.

    Attributes
    ----------
    admitted:
        Whether the task was accepted.
    mode:
        The task's mode.
    processor:
        Chosen processor bin index within the mode (None when rejected).
    quantum_growth:
        Extra usable-slot time the mode needed (0 when it fit in the current
        quantum).
    slack_left:
        Reserve remaining after the decision.
    reason:
        Human-readable explanation for rejections.
    """

    admitted: bool
    mode: Mode
    processor: int | None
    quantum_growth: float
    slack_left: float
    reason: str = ""


class AdmissionController:
    """Online task admission against a deployed :class:`PlatformConfig`.

    Parameters
    ----------
    config:
        The deployed design (typically from the max-slack goal).
    partition:
        The current task partition; the controller keeps its own evolving
        copy.
    algorithm:
        Local scheduler, matching the design.
    """

    def __init__(
        self,
        config: PlatformConfig,
        partition: PartitionedTaskSet,
        algorithm: str | None = None,
    ):
        self._alg = (algorithm or config.algorithm).upper()
        self._period = config.period
        self._overheads = config.schedule.overheads
        self._bins: dict[Mode, list[TaskSet]] = {
            mode: list(partition.bins(mode)) for mode in Mode
        }
        self._usable: dict[Mode, float] = {
            mode: config.schedule.usable(mode) for mode in Mode
        }
        self._slack = config.slack
        self._dead: set[tuple[Mode, int]] = set()

    # -- state views -------------------------------------------------------------

    @property
    def slack(self) -> float:
        """Current bandwidth reserve per cycle."""
        return self._slack

    @property
    def period(self) -> float:
        """The (fixed) major period."""
        return self._period

    def usable_quantum(self, mode: Mode) -> float:
        """Current usable slot length of a mode."""
        return self._usable[mode]

    @property
    def dead_processors(self) -> frozenset[tuple[Mode, int]]:
        """Processor bins lost to permanent core failures."""
        return frozenset(self._dead)

    def partition(self) -> PartitionedTaskSet:
        """Snapshot of the current partition."""
        return PartitionedTaskSet({m: tuple(b) for m, b in self._bins.items()})

    def config(self) -> PlatformConfig:
        """Snapshot of the current configuration as a :class:`PlatformConfig`."""
        quanta = {}
        for mode in Mode:
            usable = self._usable[mode]
            quanta[mode] = usable + (self._overheads.of(mode) if usable > EPS else 0.0)
        schedule = SlotSchedule(self._period, quanta, self._overheads)
        return PlatformConfig(
            schedule=schedule,
            algorithm=self._alg,
            slack=self._slack,
            goal="online",
            min_quanta={m: self._mode_minq(m) for m in Mode},
        )

    # -- internals ----------------------------------------------------------------

    def _bin_minq(self, taskset: TaskSet) -> float:
        if len(taskset) == 0:
            return 0.0
        return float(QuantumCurve(taskset, self._alg).evaluate(self._period))

    def _mode_minq(self, mode: Mode, bins: list[TaskSet] | None = None) -> float:
        bins = self._bins[mode] if bins is None else bins
        return max((self._bin_minq(ts) for ts in bins), default=0.0)

    # -- operations -----------------------------------------------------------------

    def try_admit(self, task: Task, processor: int | None = None) -> AdmissionDecision:
        """Attempt to admit ``task`` into its required mode.

        When ``processor`` is None every bin of the mode is tried and the one
        needing the least quantum growth is selected (ties: lowest index).
        The internal partition, quantum and slack are updated only on
        acceptance.
        """
        mode = task.mode
        bins = self._bins[mode]
        for ts in bins:
            if task.name in ts:
                return AdmissionDecision(
                    False, mode, None, 0.0, self._slack,
                    reason=f"task {task.name!r} already present",
                )
        candidates = range(len(bins)) if processor is None else [processor]
        best: tuple[float, int, float] | None = None  # (growth, idx, new_mode_minq)
        for idx in candidates:
            if not 0 <= idx < len(bins):
                return AdmissionDecision(
                    False, mode, None, 0.0, self._slack,
                    reason=f"processor index {idx} out of range for {mode}",
                )
            if (mode, idx) in self._dead:
                if processor is not None:
                    return AdmissionDecision(
                        False, mode, None, 0.0, self._slack,
                        reason=f"processor {mode}[{idx}] has failed permanently",
                    )
                continue
            trial = [ts if i != idx else ts.add(task) for i, ts in enumerate(bins)]
            new_minq = self._mode_minq(mode, trial)
            growth = max(new_minq - self._usable[mode], 0.0)
            # Admitting into an empty mode starts paying the switch overhead.
            extra_overhead = (
                self._overheads.of(mode)
                if self._usable[mode] <= EPS and new_minq > EPS
                else 0.0
            )
            cost = growth + extra_overhead
            if best is None or cost < best[0] - EPS:
                best = (cost, idx, new_minq)
        if best is None:
            return AdmissionDecision(
                False, mode, None, 0.0, self._slack,
                reason=f"every processor of mode {mode} has failed",
            )
        cost, idx, new_minq = best
        if cost > self._slack + 1e-9:
            return AdmissionDecision(
                False, mode, None, cost, self._slack,
                reason=(
                    f"needs {cost:.6f} extra bandwidth but only "
                    f"{self._slack:.6f} slack is reserved"
                ),
            )
        # Commit.
        self._bins[mode][idx] = self._bins[mode][idx].add(task)
        grown = max(new_minq - self._usable[mode], 0.0)
        self._usable[mode] = max(self._usable[mode], new_minq)
        self._slack -= cost
        return AdmissionDecision(True, mode, idx, grown, self._slack)

    def kill_processor(self, mode: Mode, processor: int) -> tuple[Task, ...]:
        """Mark a processor bin as permanently failed; return its orphans.

        The bin's admitted tasks are evicted (they are the caller's to
        re-assign, see :class:`repro.sim.online.OnlineSim`), the bin is
        excluded from every future :meth:`try_admit`, and the quantum the
        evicted tasks no longer need is reclaimed into the reserve —
        shrinking the dead bin never hurts the survivors because ``minQ``
        of a mode is the max over its (remaining) bins. Killing an
        already-dead bin is a no-op returning no orphans.
        """
        bins = self._bins[mode]
        if not 0 <= processor < len(bins):
            raise ValueError(
                f"processor index {processor} out of range for {mode}"
            )
        if (mode, processor) in self._dead:
            return ()
        self._dead.add((mode, processor))
        orphans = tuple(bins[processor])
        bins[processor] = TaskSet()
        new_minq = self._mode_minq(mode)
        old_usable = self._usable[mode]
        new_usable = min(old_usable, max(new_minq, 0.0))
        freed = old_usable - new_usable
        if new_minq <= EPS and old_usable > EPS:
            freed += self._overheads.of(mode)
            new_usable = 0.0
        self._usable[mode] = new_usable
        self._slack += freed
        return orphans

    def remove(self, task_name: str) -> float:
        """Remove a task and reclaim quantum into the reserve.

        Returns the amount of bandwidth returned to the slack pool. Raises
        :class:`KeyError` when the task is unknown.
        """
        for mode in Mode:
            for idx, ts in enumerate(self._bins[mode]):
                if task_name in ts:
                    self._bins[mode][idx] = ts.without([task_name])
                    new_minq = self._mode_minq(mode)
                    old_usable = self._usable[mode]
                    new_usable = new_minq
                    freed = max(old_usable - new_usable, 0.0)
                    # Dropping the last task of a mode also stops paying its
                    # switch overhead.
                    if new_minq <= EPS and old_usable > EPS:
                        freed += self._overheads.of(mode)
                        new_usable = 0.0
                    self._usable[mode] = new_usable
                    self._slack += freed
                    return freed
        raise KeyError(f"task {task_name!r} not found in any mode")
