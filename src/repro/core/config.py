"""Platform configuration objects: overheads, slot schedule, final design.

These encode the notation of Figure 2: a major cycle of period ``P`` divided
into three mode slots ``Q_FT, Q_FS, Q_NF`` (in that order), each ending with
the mode-switch overhead ``O_k``, leaving ``Q̃_k = Q_k − O_k`` usable; any
remainder of the cycle is explicit idle reserve (the design slack of
Table 2(c)).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, Mapping

from repro.model import MODE_ORDER, Mode
from repro.supply import LinearSupply, PeriodicSlotSupply
from repro.util import EPS, check_core_count, check_nonneg, check_positive

# re-export for convenience
__all__ = ["Overheads", "SlotSchedule", "PlatformConfig"]


@dataclass(frozen=True)
class Overheads:
    """Mode-switch overheads ``O_FT, O_FS, O_NF`` (Section 2.4).

    ``O_k`` is charged when switching *out of* mode ``k`` and is accounted
    inside slot ``Q_k``.
    """

    ft: float = 0.0
    fs: float = 0.0
    nf: float = 0.0

    def __post_init__(self) -> None:
        check_nonneg("ft overhead", self.ft)
        check_nonneg("fs overhead", self.fs)
        check_nonneg("nf overhead", self.nf)

    @classmethod
    def uniform(cls, total: float) -> "Overheads":
        """Split a total overhead budget equally across the three switches."""
        check_nonneg("total", total)
        each = total / 3.0
        return cls(each, each, each)

    @classmethod
    def zero(cls) -> "Overheads":
        """No switching overheads."""
        return cls(0.0, 0.0, 0.0)

    def of(self, mode: Mode) -> float:
        """Overhead charged at the end of the given mode's slot."""
        return {Mode.FT: self.ft, Mode.FS: self.fs, Mode.NF: self.nf}[mode]

    @property
    def total(self) -> float:
        """``O_tot = O_FT + O_FS + O_NF``."""
        return self.ft + self.fs + self.nf


class SlotSchedule:
    """The slot layout of one major cycle (Figure 2).

    Parameters
    ----------
    period:
        Major cycle length ``P``.
    quanta:
        Mapping mode → slot length ``Q_k`` (including its overhead). The
        slots are laid out in the canonical order FT, FS, NF starting at
        time 0; ``sum Q_k <= P`` and the remainder (if any) is idle reserve.
    overheads:
        Per-mode switch overheads; each must satisfy ``O_k <= Q_k`` whenever
        ``Q_k > 0`` (an empty slot pays no switch).
    """

    __slots__ = ("_P", "_Q", "_O")

    def __init__(
        self,
        period: float,
        quanta: Mapping[Mode, float],
        overheads: Overheads | None = None,
    ):
        check_positive("period", period)
        overheads = overheads or Overheads.zero()
        q = {mode: float(quanta.get(mode, 0.0)) for mode in Mode}
        for mode, qk in q.items():
            check_nonneg(f"quantum {mode}", qk)
            ok = overheads.of(mode) if qk > EPS else 0.0
            if qk > EPS and ok > qk + EPS:
                raise ValueError(
                    f"overhead O_{mode}={ok} exceeds its slot Q_{mode}={qk}"
                )
        total = sum(q.values())
        if total > period + EPS:
            raise ValueError(
                f"slots sum to {total} which exceeds the period {period}"
            )
        self._P = float(period)
        self._Q = q
        self._O = overheads

    # -- scalar accessors ------------------------------------------------------

    @property
    def period(self) -> float:
        """Major cycle length ``P``."""
        return self._P

    @property
    def overheads(self) -> Overheads:
        """The switch overheads."""
        return self._O

    def quantum(self, mode: Mode) -> float:
        """Slot length ``Q_k`` (including overhead)."""
        return self._Q[mode]

    def usable(self, mode: Mode) -> float:
        """Usable slot time ``Q̃_k = Q_k − O_k`` (0 for an empty slot)."""
        qk = self._Q[mode]
        if qk <= EPS:
            return 0.0
        return qk - self._O.of(mode)

    def alpha(self, mode: Mode) -> float:
        """Supply rate ``α_k = Q̃_k / P`` (Eq. 2)."""
        return self.usable(mode) / self._P

    def delta(self, mode: Mode) -> float:
        """Supply delay ``Δ_k = P − Q̃_k`` (Eq. 2)."""
        return self._P - self.usable(mode)

    @property
    def idle_reserve(self) -> float:
        """Unallocated time per cycle: ``P − sum_k Q_k`` (design slack)."""
        return max(self._P - sum(self._Q.values()), 0.0)

    @property
    def overhead_bandwidth(self) -> float:
        """Fraction of the cycle spent switching: ``O_tot / P`` (paid only
        for non-empty slots)."""
        paid = sum(self._O.of(m) for m in Mode if self._Q[m] > EPS)
        return paid / self._P

    # -- windows ---------------------------------------------------------------

    def slot_window(self, mode: Mode) -> tuple[float, float]:
        """``[start, end)`` of the mode's slot within the cycle (FT,FS,NF order)."""
        start = 0.0
        for m in MODE_ORDER:
            if m is mode:
                return (start, start + self._Q[m])
            start += self._Q[m]
        raise KeyError(mode)  # pragma: no cover - Mode is exhaustive

    def usable_window(self, mode: Mode) -> tuple[float, float]:
        """``[start, start + Q̃_k)`` — the slot minus its trailing overhead."""
        a, _b = self.slot_window(mode)
        return (a, a + self.usable(mode))

    def overhead_window(self, mode: Mode) -> tuple[float, float]:
        """``[start + Q̃_k, end)`` — the switch-out overhead at the slot tail."""
        a, b = self.slot_window(mode)
        return (a + self.usable(mode), b)

    def cycles(self, horizon: float) -> Iterator[float]:
        """Start times of the cycles overlapping ``[0, horizon)``."""
        check_positive("horizon", horizon)
        t = 0.0
        while t < horizon - EPS:
            yield t
            t += self._P

    def cycle_template(self) -> list[tuple[float, float, str, Mode | None]]:
        """One cycle's segments: ``(rel_start, rel_end, kind, mode)``.

        ``kind`` is ``"usable"``, ``"overhead"`` or ``"idle"`` — the generic
        timeline interface consumed by
        :class:`repro.platform.switcher.ModeSwitchController` (shared with
        :class:`repro.core.multislot.SplitSchedule`).
        """
        template: list[tuple[float, float, str, Mode | None]] = []
        cursor = 0.0
        for mode in MODE_ORDER:
            usable = self.usable(mode)
            overhead = self.quantum(mode) - usable
            if usable > EPS:
                template.append((cursor, cursor + usable, "usable", mode))
                cursor += usable
            if overhead > EPS:
                template.append((cursor, cursor + overhead, "overhead", mode))
                cursor += overhead
        if self._P - cursor > EPS:
            template.append((cursor, self._P, "idle", None))
        return template

    # -- supply views ------------------------------------------------------------

    def supply(self, mode: Mode) -> PeriodicSlotSupply:
        """Exact Lemma-1 supply of the mode's usable slot."""
        return PeriodicSlotSupply(self._P, self.usable(mode))

    def linear_supply(self, mode: Mode) -> LinearSupply:
        """Linear Eq.-3 supply of the mode's usable slot."""
        return LinearSupply.from_slot(self._P, self.usable(mode))

    # -- misc ---------------------------------------------------------------------

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, SlotSchedule):
            return NotImplemented
        return (
            self._P == other._P and self._Q == other._Q and self._O == other._O
        )

    def __repr__(self) -> str:
        qs = ", ".join(f"Q_{m}={self._Q[m]:.4g}" for m in MODE_ORDER)
        return f"SlotSchedule(P={self._P:.4g}, {qs}, idle={self.idle_reserve:.4g})"

    def table(self) -> str:
        """Paper-style textual table of the schedule."""
        rows = [f"{'mode':<6}{'Q_k':>10}{'O_k':>10}{'Q̃_k':>10}{'α_k':>10}{'Δ_k':>10}"]
        for m in MODE_ORDER:
            rows.append(
                f"{str(m):<6}{self._Q[m]:>10.4f}{self._O.of(m):>10.4f}"
                f"{self.usable(m):>10.4f}{self.alpha(m):>10.4f}{self.delta(m):>10.4f}"
            )
        rows.append(f"P = {self._P:.4f}, idle reserve = {self.idle_reserve:.4f}")
        return "\n".join(rows)


@dataclass(frozen=True)
class PlatformConfig:
    """A complete platform design produced by :func:`repro.core.design.design_platform`.

    Attributes
    ----------
    schedule:
        The slot layout (P, Q_k, overheads).
    algorithm:
        Local scheduling algorithm used in the analysis ("RM", "DM" or "EDF").
    slack:
        Bandwidth-redistributable time per cycle *not* allocated to any slot
        (Table 2's ``slack`` column is ``slack / P``).
    goal:
        Name of the design goal that produced this configuration.
    min_quanta:
        The binding lower bounds ``minQ_k(P)`` at the chosen period, per mode.
    core_count:
        Physical cores of the platform (the paper's chip has 4). Fault
        scenarios draw strike targets from ``0..core_count-1`` instead of a
        hardcoded range, and the simulator's channel layouts
        (:mod:`repro.platform.modes`) generalize to any core count — FT is
        one all-core channel (voting with >= 3 members), FS consecutive
        lock-step couples, NF independent singletons — so dependability
        campaigns scale with the platform end-to-end.
    """

    schedule: SlotSchedule
    algorithm: str
    slack: float = 0.0
    goal: str = "manual"
    min_quanta: Mapping[Mode, float] = field(default_factory=dict)
    core_count: int = 4

    def __post_init__(self) -> None:
        check_core_count(self.core_count)

    @property
    def period(self) -> float:
        """Major cycle length ``P``."""
        return self.schedule.period

    @property
    def slack_ratio(self) -> float:
        """Redistributable bandwidth ``slack / P`` (Table 2, last column)."""
        return self.slack / self.period

    def allocated_utilization(self, mode: Mode) -> float:
        """``Q̃_k / P`` — the paper's "alloc. util." row of Table 2."""
        return self.schedule.alpha(mode)

    def summary(self) -> str:
        """Paper-style summary mirroring Table 2 rows."""
        s = self.schedule
        parts = [
            f"design goal       : {self.goal} ({self.algorithm})",
            f"P                 : {s.period:.4f}",
            f"O_tot             : {s.overheads.total:.4f} "
            f"(bandwidth {s.overheads.total / s.period:.4f})",
        ]
        for m in MODE_ORDER:
            parts.append(
                f"Q̃_{m:<3}            : {s.usable(m):.4f} "
                f"(alloc. util. {self.allocated_utilization(m):.4f})"
            )
        parts.append(f"slack             : {self.slack:.4f} (ratio {self.slack_ratio:.4f})")
        return "\n".join(parts)
