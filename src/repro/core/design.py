"""Design goals: turning the feasible region into a concrete platform config.

Section 4 of the paper demonstrates two designs for the same task set and
overhead budget:

* **minimise overhead bandwidth** ``O_tot / P`` (Table 2 row (b)) — pick the
  *largest* feasible period. On the region boundary ``G(P*) = O_tot`` the
  three mode inequalities hold with equality, so the quanta are forced to
  their (maximal) binding values and no slack remains;
* **maximise run-time flexibility** (row (c)) — pick the period maximising
  the slack ratio ``(G(P) − O_tot)/P``, allocate each quantum at its
  *minimum*, and keep the remaining bandwidth as a redistributable reserve.

:func:`design_platform` executes a goal and returns a fully validated
:class:`~repro.core.config.PlatformConfig`.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass

from repro.core.config import Overheads, PlatformConfig, SlotSchedule
from repro.core.integration import SystemCurve, quanta_feasible
from repro.core.region import FeasibleRegion
from repro.model import MODE_ORDER, Mode, PartitionedTaskSet
from repro.util import EPS, check_positive


class DesignError(ValueError):
    """Raised when a design goal cannot be satisfied (no feasible period)."""


class DesignGoal(abc.ABC):
    """Strategy object choosing the period ``P`` for a partition/overheads."""

    #: human-readable identifier recorded on the resulting config
    name: str = "abstract"

    @abc.abstractmethod
    def choose_period(self, region: FeasibleRegion, otot: float) -> float:
        """Return the design period ``P*`` (raise :class:`DesignError` if none)."""


class MinOverheadBandwidthGoal(DesignGoal):
    """Table 2(b): minimise ``O_tot / P`` by taking the largest feasible period."""

    name = "min-overhead-bandwidth"

    def choose_period(self, region: FeasibleRegion, otot: float) -> float:
        try:
            return region.max_feasible_period(otot)
        except ValueError as exc:
            raise DesignError(str(exc)) from exc


class MaxSlackGoal(DesignGoal):
    """Table 2(c): maximise the redistributable bandwidth ``(G(P)−O_tot)/P``."""

    name = "max-slack"

    def choose_period(self, region: FeasibleRegion, otot: float) -> float:
        try:
            _ratio, point = region.max_slack_ratio(otot)
        except ValueError as exc:
            raise DesignError(str(exc)) from exc
        return point.period


@dataclass(frozen=True)
class FixedPeriodGoal(DesignGoal):
    """Design at a user-chosen period (must be feasible)."""

    period: float
    name: str = "fixed-period"

    def choose_period(self, region: FeasibleRegion, otot: float) -> float:
        check_positive("period", self.period)
        if not region.is_feasible(self.period, otot):
            raise DesignError(
                f"period {self.period} infeasible for O_tot={otot} "
                f"(G(P)={float(region.lhs(self.period)):.6f})"
            )
        return self.period


def design_platform(
    partition: PartitionedTaskSet,
    algorithm: str,
    overheads: Overheads,
    goal: DesignGoal | str = "min-overhead-bandwidth",
    *,
    region: FeasibleRegion | None = None,
    distribute_slack: str = "reserve",
) -> PlatformConfig:
    """Run a design goal end-to-end and return a validated platform config.

    Parameters
    ----------
    partition:
        Per-mode, per-processor task partition (Section 3).
    algorithm:
        Local scheduler: "RM", "DM" or "EDF".
    overheads:
        Mode-switch overheads (their sum is the ``O_tot`` of Eq. 15).
    goal:
        A :class:`DesignGoal` or one of the names
        ``"min-overhead-bandwidth"`` / ``"max-slack"``.
    region:
        Optional pre-built :class:`FeasibleRegion` (reuse across designs to
        avoid repeated sweeps).
    distribute_slack:
        What to do with bandwidth above the binding quanta:

        * ``"reserve"`` (default) — keep it unallocated (idle reserve), the
          Table 2(c) convention;
        * ``"proportional"`` — grow every non-empty slot proportionally to
          its binding quantum until the cycle is full (the Table 2(b)
          boundary design has zero slack, so both conventions coincide
          there).

    Returns
    -------
    :class:`PlatformConfig` whose schedule satisfies Eqs. 12–15 (verified
    before returning).
    """
    if isinstance(goal, str):
        goal = {
            "min-overhead-bandwidth": MinOverheadBandwidthGoal(),
            "max-slack": MaxSlackGoal(),
        }.get(goal.lower())
        if goal is None:
            raise ValueError(
                "unknown goal name; use 'min-overhead-bandwidth' or 'max-slack'"
            )
    if distribute_slack not in ("reserve", "proportional"):
        raise ValueError("distribute_slack must be 'reserve' or 'proportional'")

    region = region or FeasibleRegion(partition, algorithm)
    otot = overheads.total
    period = goal.choose_period(region, otot)
    curve: SystemCurve = region.system_curve
    min_quanta = curve.min_quanta(period)

    # Assemble slots: empty modes get no slot (and pay no switch overhead).
    quanta: dict[Mode, float] = {}
    for mode in MODE_ORDER:
        q_usable = min_quanta[mode]
        if q_usable <= EPS and len(partition.mode_taskset(mode)) == 0:
            quanta[mode] = 0.0
        else:
            quanta[mode] = q_usable + overheads.of(mode)

    slack = period - sum(quanta.values())
    if slack < -1e-7:
        raise DesignError(
            f"goal produced an infeasible allocation: slots exceed the period "
            f"by {-slack:.3e} (P={period})"
        )
    slack = max(slack, 0.0)

    if distribute_slack == "proportional" and slack > EPS:
        total_q = sum(q for q in quanta.values() if q > EPS)
        if total_q > EPS:
            for mode in MODE_ORDER:
                if quanta[mode] > EPS:
                    quanta[mode] += slack * quanta[mode] / total_q
            slack = 0.0

    schedule = SlotSchedule(period, quanta, overheads)
    verdicts = quanta_feasible(partition, algorithm, schedule)
    if not all(verdicts.values()):
        bad = [str(m) for m, ok in verdicts.items() if not ok]
        raise DesignError(
            f"internal design validation failed for modes {bad} at P={period}"
        )
    return PlatformConfig(
        schedule=schedule,
        algorithm=algorithm.upper(),
        slack=slack,
        goal=goal.name,
        min_quanta=min_quanta,
    )
