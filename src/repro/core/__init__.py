"""The paper's primary contribution: flexible FT/FS/NF time-partition design.

Pipeline:

1. :mod:`repro.core.minq` — invert the schedulability conditions into the
   minimum usable quantum ``minQ(T, alg, P)`` (Eqs. 6 and 11), including the
   exact-supply variant the paper leaves as "tedious";
2. :mod:`repro.core.integration` — combine modes (Eqs. 12–14) into the
   feasible-period condition ``G(P) >= O_tot`` (Eq. 15);
3. :mod:`repro.core.region` — sweep/boundary analysis of ``G`` (Figure 4);
4. :mod:`repro.core.design` — design goals (min overhead bandwidth /
   max slack, Table 2) producing a :class:`repro.core.config.PlatformConfig`;
5. :mod:`repro.core.admission` — run-time slack redistribution for
   dynamically arriving tasks (the flexibility scenario of Section 4).
"""

from repro.core.admission import AdmissionController, AdmissionDecision
from repro.core.config import Overheads, PlatformConfig, SlotSchedule
from repro.core.design import (
    DesignError,
    FixedPeriodGoal,
    MaxSlackGoal,
    MinOverheadBandwidthGoal,
    design_platform,
)
from repro.core.integration import SystemCurve, mode_quantum_bounds, quanta_feasible
from repro.core.minq import (
    MinQResult,
    QuantumCurve,
    min_quantum,
    min_quantum_detailed,
    min_quantum_edf,
    min_quantum_exact,
    min_quantum_fp,
    min_quantum_jitter,
)
from repro.core.multislot import (
    SplitDesign,
    SplitSchedule,
    design_split_platform,
    min_quantum_split,
)
from repro.core.region import FeasibleRegion
from repro.core.sensitivity import (
    critical_scaling_factor,
    design_margins,
    quantum_margin,
    task_wcet_margin,
)

__all__ = [
    "min_quantum",
    "min_quantum_detailed",
    "min_quantum_fp",
    "min_quantum_edf",
    "min_quantum_exact",
    "min_quantum_jitter",
    "MinQResult",
    "QuantumCurve",
    "SystemCurve",
    "mode_quantum_bounds",
    "quanta_feasible",
    "FeasibleRegion",
    "Overheads",
    "SlotSchedule",
    "PlatformConfig",
    "design_platform",
    "DesignError",
    "MinOverheadBandwidthGoal",
    "MaxSlackGoal",
    "FixedPeriodGoal",
    "AdmissionController",
    "AdmissionDecision",
    "SplitSchedule",
    "SplitDesign",
    "design_split_platform",
    "min_quantum_split",
    "critical_scaling_factor",
    "quantum_margin",
    "task_wcet_margin",
    "design_margins",
]
