"""Feasible-period region analysis (the engine behind Figure 4).

The paper plots ``G(P)`` — the left-hand side of Eq. 15 — against ``P`` for
both EDF and RM and reads several designs off the curve:

* point 1 / 2: the maximum feasible period at zero overhead
  (largest root of ``G(P) = 0``);
* point 3 / 4: the maximum admissible total overhead
  (the global maximum of ``G``);
* point 5: the maximum feasible period at a given overhead
  (largest ``P`` with ``G(P) = O_tot``);
* Table 2(c): the period maximising the *slack ratio* ``(G(P) − O_tot)/P``
  (the steepest dashed line through the origin staying under the curve).

``G`` is continuous and piecewise-smooth with kinks where the binding
scheduling point/task switches, and is eventually strictly decreasing (for
large ``P`` each ``minQ_k`` grows like ``P − t_k*``, so the sum of three such
terms overtakes ``P``). The sweeps below therefore use a fine grid plus
bisection/local refinement, which is robust to the kinks.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.integration import SystemCurve
from repro.model import Mode, PartitionedTaskSet
from repro.util import check_nonneg, check_positive


@dataclass(frozen=True)
class RegionPoint:
    """A named point of the feasible region (see Figure 4)."""

    period: float
    lhs: float  # G(period)


class FeasibleRegion:
    """Sweeps and queries of the Eq.-15 region for one partition/algorithm.

    Parameters
    ----------
    partition:
        Per-mode, per-processor partition.
    algorithm:
        "RM", "DM" or "EDF".
    p_max:
        Upper end of the sweep range. Defaults to auto-expansion until the
        curve has fallen clearly below zero (all designs of interest lie at
        ``G >= 0``).
    grid:
        Number of grid points per sweep (the default resolves the paper's
        3-decimal values comfortably once combined with refinement).
    """

    def __init__(
        self,
        partition: PartitionedTaskSet,
        algorithm: str,
        *,
        p_max: float | None = None,
        grid: int = 4001,
    ):
        self._curve = SystemCurve(partition, algorithm)
        if grid < 100:
            raise ValueError(f"grid must be >= 100: got {grid}")
        self._grid = int(grid)
        self._p_max = float(p_max) if p_max is not None else self._auto_p_max()

    # -- basic evaluation --------------------------------------------------------

    @property
    def algorithm(self) -> str:
        """The local scheduling algorithm."""
        return self._curve.algorithm

    @property
    def p_max(self) -> float:
        """Upper end of the sweep range."""
        return self._p_max

    @property
    def system_curve(self) -> SystemCurve:
        """The underlying Eq.-15 curve object."""
        return self._curve

    def lhs(self, periods: np.ndarray | float) -> np.ndarray | float:
        """``G(P)`` for scalar or array input."""
        return self._curve.lhs(periods)

    def _auto_p_max(self) -> float:
        """Find a sweep end beyond the last zero crossing of ``G``."""
        hi = 1.0
        for _ in range(60):
            ps = np.linspace(hi / 2, hi, 64)
            if np.all(self._curve.lhs(ps) < 0.0) and hi > 4.0:
                return hi
            hi *= 2.0
        raise RuntimeError(
            "could not bracket the feasible region; is the partition feasible at all?"
        )

    def sweep(
        self, p_min: float | None = None, p_max: float | None = None, n: int | None = None
    ) -> tuple[np.ndarray, np.ndarray]:
        """Return ``(P grid, G(P))`` — the Figure 4 series."""
        lo = p_min if p_min is not None else self._p_max / self._grid
        hi = p_max if p_max is not None else self._p_max
        check_positive("p_min", lo)
        if hi <= lo:
            raise ValueError(f"empty sweep range [{lo}, {hi}]")
        ps = np.linspace(lo, hi, n or self._grid)
        return ps, np.asarray(self._curve.lhs(ps))

    # -- queries ------------------------------------------------------------------

    def max_feasible_period(self, otot: float = 0.0, *, tol: float = 1e-9) -> float:
        """Largest ``P`` with ``G(P) >= O_tot`` (points 1, 2 and 5 of Fig. 4).

        Raises :class:`ValueError` when no period is feasible for the given
        total overhead.
        """
        check_nonneg("otot", otot)
        ps, g = self.sweep()
        ok = g >= otot
        if not np.any(ok):
            # The grid may have missed a narrow feasible spike; refine around
            # the global maximum before giving up.
            peak = self.max_admissible_overhead()
            if peak.lhs < otot:
                raise ValueError(
                    f"no feasible period: max admissible overhead is "
                    f"{peak.lhs:.6f} < O_tot={otot:.6f}"
                )
            lo, hi = peak.period, self._p_max
        else:
            i = int(np.nonzero(ok)[0][-1])
            if i == len(ps) - 1:
                # G still >= otot at the sweep end — expand.
                wider = FeasibleRegion(
                    self._curve.partition,
                    self._curve.algorithm,
                    p_max=self._p_max * 2,
                    grid=self._grid,
                )
                return wider.max_feasible_period(otot, tol=tol)
            lo, hi = float(ps[i]), float(ps[i + 1])
        # Bisection: G(lo) >= otot > G(hi).
        for _ in range(200):
            mid = 0.5 * (lo + hi)
            if float(self._curve.lhs(mid)) >= otot:
                lo = mid
            else:
                hi = mid
            if hi - lo <= tol * max(1.0, hi):
                break
        return lo

    def max_admissible_overhead(self) -> RegionPoint:
        """Global maximum of ``G`` (points 3 and 4 of Fig. 4).

        Returns the :class:`RegionPoint` ``(P*, G(P*))``; any total overhead
        up to ``G(P*)`` admits at least one feasible period.
        """
        ps, g = self.sweep()
        i = int(np.argmax(g))
        lo = float(ps[max(i - 1, 0)])
        hi = float(ps[min(i + 1, len(ps) - 1)])
        # Local dense refinement (G is piecewise smooth; two rounds of dense
        # grids give ~1e-9 accuracy on the argmax segment).
        for _ in range(4):
            fine = np.linspace(lo, hi, 2001)
            gv = np.asarray(self._curve.lhs(fine))
            j = int(np.argmax(gv))
            lo = float(fine[max(j - 1, 0)])
            hi = float(fine[min(j + 1, len(fine) - 1)])
        p_star = 0.5 * (lo + hi)
        return RegionPoint(p_star, float(self._curve.lhs(p_star)))

    def max_slack_ratio(self, otot: float = 0.0) -> tuple[float, RegionPoint]:
        """Maximise the redistribution ratio ``(G(P) − O_tot) / P``.

        This is the Table 2(c) design criterion — the steepest line through
        ``(0, O_tot)`` staying below the curve. Returns
        ``(ratio, RegionPoint(P*, G(P*)))``.

        Raises :class:`ValueError` when no feasible period exists.
        """
        check_nonneg("otot", otot)
        ps, g = self.sweep()
        ratios = (g - otot) / ps
        i = int(np.argmax(ratios))
        if ratios[i] < 0:
            raise ValueError(
                f"no feasible period for O_tot={otot}: best ratio {ratios[i]:.6f} < 0"
            )
        lo = float(ps[max(i - 1, 0)])
        hi = float(ps[min(i + 1, len(ps) - 1)])
        for _ in range(4):
            fine = np.linspace(lo, hi, 2001)
            gv = np.asarray(self._curve.lhs(fine))
            rv = (gv - otot) / fine
            j = int(np.argmax(rv))
            lo = float(fine[max(j - 1, 0)])
            hi = float(fine[min(j + 1, len(fine) - 1)])
        p_star = 0.5 * (lo + hi)
        g_star = float(self._curve.lhs(p_star))
        return (g_star - otot) / p_star, RegionPoint(p_star, g_star)

    def is_feasible(self, period: float, otot: float = 0.0) -> bool:
        """Check Eq. 15 at one period: ``G(P) >= O_tot``."""
        check_positive("period", period)
        check_nonneg("otot", otot)
        return float(self._curve.lhs(period)) >= otot - 1e-12

    def min_quanta(self, period: float) -> dict[Mode, float]:
        """Per-mode binding quanta at a period (delegates to the curve)."""
        return self._curve.min_quanta(period)
