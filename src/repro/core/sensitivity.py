"""Sensitivity analysis of a deployed design.

Design tools need to answer "how much margin does this configuration have?".
This module quantifies three margins for a :class:`PlatformConfig`:

* :func:`critical_scaling_factor` — the largest uniform factor by which all
  WCETs of a partition bin can grow before its mode quantum stops being
  sufficient at the deployed period;
* :func:`quantum_margin` — per mode, the gap between the deployed usable
  quantum and the binding ``minQ`` (how much the slot could shrink);
* :func:`task_wcet_margin` — per task, the largest WCET increase (keeping
  everything else fixed) the design still tolerates.

All margins are computed against the same Theorem 1/2 feasibility used by
the design pipeline, so a margin of zero means "on the boundary", not "near
it".
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.config import PlatformConfig
from repro.core.minq import QuantumCurve
from repro.model import Mode, PartitionedTaskSet, Task, TaskSet
from repro.model.transformations import scale_wcets
from repro.util import EPS, check_positive


def _bin_minq(ts: TaskSet, alg: str, period: float) -> float:
    if len(ts) == 0:
        return 0.0
    return float(QuantumCurve(ts, alg).evaluate(period))


def quantum_margin(
    partition: PartitionedTaskSet, config: PlatformConfig
) -> dict[Mode, float]:
    """Per-mode slack between the deployed ``Q̃_k`` and the binding ``minQ_k``.

    Zero margins are expected on boundary designs (Table 2(b)); positive
    margins appear after slack distribution or task removals.
    """
    out: dict[Mode, float] = {}
    for mode in Mode:
        need = max(
            (_bin_minq(ts, config.algorithm, config.period)
             for ts in partition.bins(mode)),
            default=0.0,
        )
        out[mode] = config.schedule.usable(mode) - need
    return out


def critical_scaling_factor(
    taskset: TaskSet,
    algorithm: str,
    period: float,
    quantum: float,
    *,
    tol: float = 1e-6,
    upper: float = 16.0,
) -> float:
    """Largest uniform WCET scale the quantum still accommodates.

    Bisects the factor ``s`` such that ``minQ(s·C, alg, P) <= Q̃``; a value
    below 1 means the configuration is already infeasible for this bin.
    Scaling is capped when a task's WCET would exceed its deadline (the
    model's validity limit) — the returned factor never crosses that cap.
    """
    check_positive("period", period)
    check_positive("quantum", quantum)
    if len(taskset) == 0:
        return float("inf")
    cap = min(t.deadline / t.wcet for t in taskset)
    upper = min(upper, cap)

    def feasible(s: float) -> bool:
        scaled = scale_wcets(taskset, s)
        return _bin_minq(scaled, algorithm, period) <= quantum + EPS

    lo_probe = tol
    if not feasible(lo_probe):
        return 0.0
    if feasible(upper):
        return upper
    lo, hi = lo_probe, upper
    while hi - lo > tol * max(1.0, hi):
        mid = 0.5 * (lo + hi)
        if feasible(mid):
            lo = mid
        else:
            hi = mid
    return lo


@dataclass(frozen=True)
class TaskMargin:
    """WCET headroom of one task inside a deployed design."""

    task: str
    mode: Mode
    processor: int
    wcet: float
    max_wcet: float

    @property
    def headroom(self) -> float:
        """Absolute WCET increase tolerated."""
        return self.max_wcet - self.wcet

    @property
    def headroom_ratio(self) -> float:
        """Relative headroom (0 = boundary)."""
        return self.headroom / self.wcet


def task_wcet_margin(
    partition: PartitionedTaskSet,
    config: PlatformConfig,
    task_name: str,
    *,
    tol: float = 1e-6,
) -> TaskMargin:
    """Largest WCET the named task could have in the deployed design.

    Bisects the task's WCET (everything else fixed) against its bin's
    quantum at the deployed period; capped at the task's deadline.
    """
    mode, proc = partition.processor_of(task_name)
    ts = partition.bin(mode, proc)
    task = ts[task_name]
    quantum = config.schedule.usable(mode)

    def feasible(c: float) -> bool:
        trial = TaskSet(
            t if t.name != task_name else t.replace(wcet=c) for t in ts
        )
        return _bin_minq(trial, config.algorithm, config.period) <= quantum + EPS

    if not feasible(task.wcet):
        return TaskMargin(task_name, mode, proc, task.wcet, task.wcet)
    lo, hi = task.wcet, task.deadline
    if feasible(hi):
        return TaskMargin(task_name, mode, proc, task.wcet, hi)
    while hi - lo > tol * max(1.0, hi):
        mid = 0.5 * (lo + hi)
        if feasible(mid):
            lo = mid
        else:
            hi = mid
    return TaskMargin(task_name, mode, proc, task.wcet, lo)


def design_margins(
    partition: PartitionedTaskSet, config: PlatformConfig
) -> dict[str, TaskMargin]:
    """WCET margins for every task of the partition."""
    out = {}
    for task in partition.all_tasks():
        out[task.name] = task_wcet_margin(partition, config, task.name)
    return out
