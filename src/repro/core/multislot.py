"""Multi-quantum slots: the paper's future-work item, made designable.

Section 5: *"we will explore the possibility of providing different
fault-tolerance services during the same time quantum per period, as well as
the same fault-tolerance service during more than one time quantum per
period."* This module implements the second idea end to end:

* a mode ``k`` may be served by ``k_m`` evenly interleaved quanta per major
  cycle instead of one. Its worst-case supply delay shrinks from
  ``P − Q̃_k`` towards ``(P − Q̃_k)/k_m`` — but every extra quantum pays the
  mode's switch-out overhead ``O_k`` again;
* :func:`min_quantum_split` inverts the resulting linear supply bound in
  closed form — substituting ``α = Q̃/P`` and ``Δ = (P − Q̃)/k`` into
  Theorems 1/2 turns the feasibility condition into

  .. math::

     Q̃ \\ \\ge\\ \\frac{\\sqrt{(k t - P)^2 + 4 k P W} - (k t - P)}{2}

  (Eqs. 6/11 are the ``k = 1`` specialisation);
* :class:`SplitSchedule` realises the layout: the cycle is divided into
  ``max k_m`` frames; a mode with ``k_m`` pieces occupies a slice in
  ``k_m`` of them, evenly spread. The schedule plugs into the existing
  switcher/simulator through the ``cycle_template()`` interface;
* :func:`design_split_platform` runs the full design pipeline (region sweep,
  design goals) with per-mode piece counts.

The delay model ``Δ = (P − Q̃)/k`` is exact for the *idealised* even layout
(every inter-piece gap equal); the concrete :class:`SplitSchedule` layout
can have slightly unequal gaps once several modes interleave, so the design
validates the realised layout's exact :class:`~repro.supply.SlotLayoutSupply`
against the analysis and inflates quanta if needed (``_ensure_layout_feasible``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Sequence

import numpy as np

from repro.analysis import edf_schedulable_supply, fp_schedulable_supply
from repro.analysis.edf import demand_bound_array, edf_demand_points
from repro.analysis.priorities import priority_order
from repro.analysis.workload import fp_workload_array
from repro.analysis.points import scheduling_points
from repro.core.config import Overheads
from repro.core.design import DesignError
from repro.model import MODE_ORDER, Mode, PartitionedTaskSet, TaskSet
from repro.supply import LinearSupply, SlotLayoutSupply
from repro.util import EPS, check_positive


def _f_quantum_split(
    t: np.ndarray, w: np.ndarray, period: float, k: int
) -> np.ndarray:
    """Generalised quadratic root for ``k`` evenly spread quanta."""
    tm = k * t - period
    return 0.5 * (np.sqrt(tm * tm + 4.0 * k * period * w) - tm)


def min_quantum_split(
    taskset: TaskSet, algorithm: str, period: float, pieces: int
) -> float:
    """Minimum *total* usable quantum when served by ``pieces`` even slots.

    Reduces exactly to :func:`repro.core.minq.min_quantum` at ``pieces=1``;
    the required budget is non-increasing in ``pieces`` (shorter starvation
    for the same bandwidth).
    """
    check_positive("period", period)
    if pieces < 1:
        raise ValueError(f"pieces must be >= 1: got {pieces}")
    if len(taskset) == 0:
        return 0.0
    alg = algorithm.upper()
    if alg == "EDF":
        pts = edf_demand_points(taskset)
        w = demand_bound_array(taskset, pts)
        return float(_f_quantum_split(pts, w, period, pieces).max())
    if alg not in ("RM", "DM"):
        raise ValueError(f"unknown algorithm {algorithm!r} (EDF, RM or DM)")
    order = priority_order(taskset, alg)
    worst = 0.0
    for i, task in enumerate(order):
        hp = order[:i]
        pts = np.asarray(scheduling_points(task, hp), dtype=float)
        w = fp_workload_array(task, hp, pts)
        worst = max(worst, float(_f_quantum_split(pts, w, period, pieces).min()))
    return worst


class SplitSchedule:
    """A major cycle serving each mode with ``k_m`` interleaved quanta.

    Parameters
    ----------
    period:
        Major cycle length ``P``.
    usable:
        Mode → *total* usable time ``Q̃_m`` per cycle (split into ``k_m``
        equal pieces).
    pieces:
        Mode → number of quanta per cycle (defaults to 1 per mode).
    overheads:
        Per-switch overheads; a mode with ``k_m`` pieces pays ``k_m · O_m``
        per cycle.

    Layout: the cycle is divided into ``F = max k_m`` equal frames; mode
    ``m`` places one piece (usable + overhead) in frames
    ``0, F/k_m, 2F/k_m, …`` in the canonical FT→FS→NF order inside each
    frame; the remainder of each frame is idle reserve.
    """

    def __init__(
        self,
        period: float,
        usable: Mapping[Mode, float],
        pieces: Mapping[Mode, int] | None = None,
        overheads: Overheads | None = None,
    ):
        check_positive("period", period)
        self._P = float(period)
        self._O = overheads or Overheads.zero()
        self._k = {m: int((pieces or {}).get(m, 1)) for m in Mode}
        for m, k in self._k.items():
            if k < 1:
                raise ValueError(f"pieces[{m}] must be >= 1: got {k}")
        self._usable = {m: float(usable.get(m, 0.0)) for m in Mode}
        for m, q in self._usable.items():
            if q < 0:
                raise ValueError(f"usable[{m}] must be >= 0: got {q}")
        total = sum(
            q + self._k[m] * self._O.of(m)
            for m, q in self._usable.items()
            if q > EPS
        )
        if total > self._P + EPS:
            raise ValueError(
                f"slots + per-piece overheads ({total:.6f}) exceed the "
                f"period ({self._P})"
            )
        self._template = self._build_template()

    # -- layout ------------------------------------------------------------------

    def _build_template(self) -> list[tuple[float, float, str, Mode | None]]:
        frames = max(self._k.values())
        frame_len = self._P / frames
        piece_cost = {
            m: self._usable[m] / self._k[m] + self._O.of(m)
            for m in Mode
            if self._usable[m] > EPS
        }
        # Assign pieces to frames. A mode with k pieces uses every
        # (frames/k)-th frame; the free offset is chosen to balance frame
        # loads so no frame overflows while others idle.
        per_frame: list[list[Mode]] = [[] for _ in range(frames)]
        load = [0.0] * frames
        for mode in sorted(
            piece_cost, key=lambda m: (-self._k[m], MODE_ORDER.index(m))
        ):
            k = self._k[mode]
            stride = frames / k
            best_offset, best_peak = 0, float("inf")
            max_off = max(int(stride), 1)
            for off in range(max_off):
                idxs = [int(round(i * stride + off)) % frames for i in range(k)]
                if len(set(idxs)) < k:
                    continue
                peak = max(load[i] + piece_cost[mode] for i in idxs)
                if peak < best_peak - EPS:
                    best_peak, best_offset = peak, off
            idxs = [
                int(round(i * stride + best_offset)) % frames for i in range(k)
            ]
            for i in idxs:
                per_frame[i].append(mode)
                load[i] += piece_cost[mode]
        # Within a frame, modes with more pieces go first: their windows then
        # sit at identical frame-relative offsets, keeping inter-piece gaps
        # even (the idealised (P − Q̃)/k delay is then achieved exactly when
        # every frame hosting the mode has the same prefix).
        template: list[tuple[float, float, str, Mode | None]] = []
        for f, modes in enumerate(per_frame):
            cursor = f * frame_len
            end_of_frame = (f + 1) * frame_len
            ordered = sorted(
                modes, key=lambda m: (-self._k[m], MODE_ORDER.index(m))
            )
            for mode in ordered:
                piece = self._usable[mode] / self._k[mode]
                o = self._O.of(mode)
                if cursor + piece + o > end_of_frame + EPS:
                    raise ValueError(
                        f"frame {f} overflows: mode pieces do not fit — "
                        f"reduce quanta or pieces"
                    )
                template.append((cursor, cursor + piece, "usable", mode))
                cursor += piece
                if o > EPS:
                    template.append((cursor, cursor + o, "overhead", mode))
                    cursor += o
            if end_of_frame - cursor > EPS:
                template.append((cursor, end_of_frame, "idle", None))
        return template

    # -- SlotSchedule-compatible interface ----------------------------------------

    @property
    def period(self) -> float:
        """Major cycle length ``P``."""
        return self._P

    @property
    def overheads(self) -> Overheads:
        """Per-switch overheads."""
        return self._O

    def pieces(self, mode: Mode) -> int:
        """Quanta per cycle serving ``mode``."""
        return self._k[mode]

    def usable(self, mode: Mode) -> float:
        """Total usable time of the mode per cycle."""
        return self._usable[mode]

    def quantum(self, mode: Mode) -> float:
        """Total slot time of the mode per cycle (usable + all overheads)."""
        if self._usable[mode] <= EPS:
            return 0.0
        return self._usable[mode] + self._k[mode] * self._O.of(mode)

    def alpha(self, mode: Mode) -> float:
        """Supply rate ``Q̃_m / P``."""
        return self._usable[mode] / self._P

    def delta(self, mode: Mode) -> float:
        """Worst-case supply delay of the *realised* layout."""
        return self.supply(mode).delta

    def cycle_template(self) -> list[tuple[float, float, str, Mode | None]]:
        """The generic timeline interface (see SlotSchedule)."""
        return list(self._template)

    def usable_window(self, mode: Mode) -> tuple[float, float]:
        """First usable window of the mode (critical-phasing anchor)."""
        for a, b, kind, m in self._template:
            if kind == "usable" and m is mode:
                return (a, b)
        return (0.0, 0.0)

    @property
    def idle_reserve(self) -> float:
        """Unallocated time per cycle."""
        return sum(b - a for a, b, kind, _m in self._template if kind == "idle")

    def supply(self, mode: Mode) -> SlotLayoutSupply:
        """Exact supply of the mode's realised window layout."""
        windows = [
            (a, b) for a, b, kind, m in self._template
            if kind == "usable" and m is mode
        ]
        return SlotLayoutSupply(self._P, windows)

    def linear_supply(self, mode: Mode) -> LinearSupply:
        """Bounded-delay abstraction of the realised layout."""
        z = self.supply(mode)
        if z.alpha <= 0:
            return LinearSupply(0.0, 0.0)
        return LinearSupply(z.alpha, z.delta)

    def __repr__(self) -> str:
        ks = ", ".join(
            f"{m}:{self._usable[m]:.3g}x{self._k[m]}" for m in MODE_ORDER
        )
        return f"SplitSchedule(P={self._P:.4g}, {ks})"


@dataclass(frozen=True)
class SplitDesign:
    """Result of :func:`design_split_platform`."""

    schedule: SplitSchedule
    algorithm: str
    pieces: Mapping[Mode, int]
    min_quanta: Mapping[Mode, float]
    slack: float

    @property
    def period(self) -> float:
        """Major cycle length."""
        return self.schedule.period

    def summary(self) -> str:
        """Readable description of the split design."""
        lines = [
            f"split design ({self.algorithm}); P = {self.period:.4f}, "
            f"slack = {self.slack:.4f}"
        ]
        for m in MODE_ORDER:
            lines.append(
                f"  {m}: Q̃ = {self.schedule.usable(m):.4f} in "
                f"{self.pieces.get(m, 1)} pieces "
                f"(delay {self.schedule.delta(m):.4f})"
                if self.schedule.usable(m) > 0
                else f"  {m}: (empty)"
            )
        return "\n".join(lines)


def _bin_point_demands(
    taskset: TaskSet, algorithm: str
) -> list[tuple[np.ndarray, np.ndarray, bool]]:
    """Precomputed (points, demands, is_edf) groups for vectorised sweeps."""
    alg = algorithm.upper()
    groups: list[tuple[np.ndarray, np.ndarray, bool]] = []
    if len(taskset) == 0:
        return groups
    if alg == "EDF":
        pts = edf_demand_points(taskset)
        groups.append((pts, demand_bound_array(taskset, pts), True))
        return groups
    order = priority_order(taskset, alg)
    for i, task in enumerate(order):
        hp = order[:i]
        pts = np.asarray(scheduling_points(task, hp), dtype=float)
        groups.append((pts, fp_workload_array(task, hp, pts), False))
    return groups


def _split_region_lhs(
    partition: PartitionedTaskSet,
    algorithm: str,
    pieces: Mapping[Mode, int],
    ps: np.ndarray,
) -> np.ndarray:
    """Eq.-15 analogue with per-mode splitting; per-piece overheads are
    added by the caller (as the paper adds ``O_tot`` to the plain LHS)."""
    out = ps.copy()
    for mode in Mode:
        k = pieces.get(mode, 1)
        best = np.zeros_like(ps)
        for ts in partition.bins(mode):
            for pts, w, is_edf in _bin_point_demands(ts, algorithm):
                f = _f_quantum_split(pts[:, None], w[:, None], ps[None, :], k)
                best = np.maximum(best, f.max(axis=0) if is_edf else f.min(axis=0))
        out -= best
    return out


def _ensure_layout_feasible(
    partition: PartitionedTaskSet,
    algorithm: str,
    schedule: SplitSchedule,
) -> bool:
    """Check every bin against the *realised* layout's exact supply."""
    alg = algorithm.upper()
    for mode in Mode:
        supply = schedule.supply(mode)
        for ts in partition.bins(mode):
            if len(ts) == 0:
                continue
            if alg == "EDF":
                ok = edf_schedulable_supply(ts, supply).schedulable
            else:
                ok = fp_schedulable_supply(ts, supply, alg).schedulable
            if not ok:
                return False
    return True


def design_split_platform(
    partition: PartitionedTaskSet,
    algorithm: str,
    overheads: Overheads,
    pieces: Mapping[Mode, int],
    *,
    p_max: float = 64.0,
    grid: int = 2001,
    inflation_steps: int = 8,
) -> SplitDesign:
    """Max-period design with per-mode multi-quantum service.

    Finds the largest period ``P`` such that the split quanta plus all
    per-piece overheads fit the cycle (the Eq.-15 analogue), builds the
    interleaved :class:`SplitSchedule`, verifies the realised layout with
    exact supplies, and — if the idealised even-gap assumption was slightly
    optimistic — inflates the quanta into the remaining slack until the
    layout verifies (at most ``inflation_steps`` rounds of +2% each).

    Raises :class:`~repro.core.design.DesignError` when no feasible split
    design exists.
    """
    pieces = {m: int(pieces.get(m, 1)) for m in Mode}
    otot = sum(
        pieces[m] * overheads.of(m)
        for m in Mode
        if len(partition.mode_taskset(m)) > 0
    )
    ps = np.linspace(p_max / grid, p_max, grid)
    g = _split_region_lhs(partition, algorithm, pieces, ps)
    ok = np.nonzero(g >= otot)[0]
    if ok.size == 0:
        raise DesignError(
            f"no feasible period for split design (pieces={pieces}, "
            f"per-cycle overhead {otot:.4f})"
        )
    i = int(ok[-1])
    lo = float(ps[i])
    hi = float(ps[min(i + 1, grid - 1)])
    for _ in range(100):
        mid = 0.5 * (lo + hi)
        val = float(
            _split_region_lhs(partition, algorithm, pieces, np.array([mid]))[0]
        )
        if val >= otot:
            lo = mid
        else:
            hi = mid
        if hi - lo <= 1e-9 * max(1.0, hi):
            break
    boundary_period = lo

    def build(period: float, scale: float) -> SplitSchedule | None:
        quanta = {}
        for mode in Mode:
            need = max(
                (
                    min_quantum_split(ts, algorithm, period, pieces[mode])
                    for ts in partition.bins(mode)
                    if len(ts)
                ),
                default=0.0,
            )
            quanta[mode] = need * scale
        try:
            return SplitSchedule(period, quanta, pieces, overheads)
        except ValueError:
            return None

    # The idealised even-gap delay model can be slightly optimistic for the
    # realised interleaving, and the boundary period has no slack to absorb
    # the difference. Back off the period geometrically and, at each
    # period, try inflating the quanta into the frame slack.
    period = boundary_period
    for _backoff in range(24):
        scale = 1.0
        for _ in range(inflation_steps):
            schedule = build(period, scale)
            if schedule is not None and _ensure_layout_feasible(
                partition, algorithm, schedule
            ):
                min_quanta = {m: schedule.usable(m) / scale for m in Mode}
                return SplitDesign(
                    schedule=schedule,
                    algorithm=algorithm.upper(),
                    pieces=pieces,
                    min_quanta=min_quanta,
                    slack=schedule.idle_reserve,
                )
            scale *= 1.02
        period *= 0.96
    raise DesignError(
        f"split layout could not be made feasible near P={boundary_period:.4f} "
        f"(pieces={pieces}) — uneven inter-piece gaps exceed the idealised "
        f"delay model's margin"
    )
