"""Integration between modes: Eqs. 12–15 of the paper.

Each mode ``k`` needs its slot to satisfy ``Q_k − minQ_k(P) >= O_k`` where
``minQ_k(P) = max_i minQ(T_k^i, alg, P)`` over the mode's processor bins
(Eqs. 12, 13, 14). Summing the three inequalities gives the feasible-period
condition (Eq. 15):

.. math::

   G(P) \\;=\\; P - \\sum_{k} \\max_i minQ(T_k^i, alg, P) \\;\\ge\\; O_{tot}

:class:`SystemCurve` packages the whole left-hand side as a vectorised
function of ``P``; :func:`quanta_feasible` checks a concrete
:class:`~repro.core.config.SlotSchedule` against Eqs. 12–14.
"""

from __future__ import annotations

from typing import Mapping

import numpy as np

from repro.core.config import SlotSchedule
from repro.core.minq import QuantumCurve
from repro.model import MODE_ORDER, Mode, PartitionedTaskSet
from repro.util import EPS, check_positive


class SystemCurve:
    """Vectorised per-mode ``minQ_k(P)`` and Eq.-15 LHS ``G(P)``.

    Parameters
    ----------
    partition:
        The per-mode, per-processor task partition.
    algorithm:
        Local scheduler used on every logical processor ("RM", "DM", "EDF").
    """

    def __init__(self, partition: PartitionedTaskSet, algorithm: str):
        self._partition = partition
        self._alg = algorithm.upper()
        self._curves: dict[Mode, list[QuantumCurve]] = {
            mode: [
                QuantumCurve(ts, self._alg)
                for ts in partition.bins(mode)
                if len(ts) > 0
            ]
            for mode in Mode
        }

    @property
    def partition(self) -> PartitionedTaskSet:
        """The underlying partition."""
        return self._partition

    @property
    def algorithm(self) -> str:
        """The local scheduling algorithm."""
        return self._alg

    def mode_minq(self, mode: Mode, periods: np.ndarray | float) -> np.ndarray | float:
        """``minQ_k(P) = max_i minQ(T_k^i, alg, P)`` (0 for an empty mode)."""
        curves = self._curves[mode]
        scalar = np.isscalar(periods)
        ps = np.atleast_1d(np.asarray(periods, dtype=float))
        out = np.zeros_like(ps)
        for curve in curves:
            out = np.maximum(out, curve.evaluate(ps))
        return float(out[0]) if scalar else out

    def lhs(self, periods: np.ndarray | float) -> np.ndarray | float:
        """Eq. 15 left-hand side ``G(P) = P − sum_k minQ_k(P)``."""
        scalar = np.isscalar(periods)
        ps = np.atleast_1d(np.asarray(periods, dtype=float))
        total = ps.copy()
        for mode in Mode:
            total -= self.mode_minq(mode, ps)
        return float(total[0]) if scalar else total

    def min_quanta(self, period: float) -> dict[Mode, float]:
        """All three binding quanta ``minQ_k(P)`` at one period."""
        check_positive("period", period)
        return {mode: float(self.mode_minq(mode, period)) for mode in Mode}


def mode_quantum_bounds(
    partition: PartitionedTaskSet, algorithm: str, period: float
) -> dict[Mode, float]:
    """Convenience: the three ``minQ_k(P)`` values (Eqs. 12–14 lower bounds)."""
    return SystemCurve(partition, algorithm).min_quanta(period)


def quanta_feasible(
    partition: PartitionedTaskSet,
    algorithm: str,
    schedule: SlotSchedule,
    *,
    tol: float = 1e-9,
) -> dict[Mode, bool]:
    """Check Eqs. 12–14 for a concrete slot schedule.

    Mode ``k`` passes when ``Q_k − minQ_k(P) >= O_k`` (equivalently
    ``Q̃_k >= minQ_k(P)``). Empty modes pass trivially. The returned mapping
    has one verdict per mode; the schedule as a whole is feasible when all
    three hold (``SlotSchedule`` already guarantees ``sum Q_k <= P``).
    """
    bounds = mode_quantum_bounds(partition, algorithm, schedule.period)
    result: dict[Mode, bool] = {}
    for mode in MODE_ORDER:
        need = bounds[mode]
        have = schedule.usable(mode)
        result[mode] = have + max(tol, EPS * max(1.0, need)) >= need
    return result
