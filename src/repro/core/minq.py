"""``minQ(T, alg, P)`` — the paper's inverted schedulability conditions.

Substituting ``α = Q̃/P`` and ``Δ = P − Q̃`` (Eq. 2) into the feasibility
conditions of Theorems 1 and 2 and solving the resulting quadratic for ``Q̃``
yields, for a demand ``W`` that must be served by time ``t``:

.. math::

   Q̃ \\ \\ge\\ f_P(t, W) = \\frac{\\sqrt{(t-P)^2 + 4 P W} - (t - P)}{2}

* **FP** (Eq. 6): ``minQ = max_i min_{t in schedP_i} f_P(t, W_i(t))``
* **EDF** (Eq. 11): ``minQ = max_{t in dlSet} f_P(t, W(t))``

Because the point sets and demands do not depend on ``P``, a
:class:`QuantumCurve` precomputes them once and evaluates ``minQ`` for whole
arrays of candidate periods with a single vectorised pass — this is what
makes the Figure-4 region sweeps fast.

:func:`min_quantum_exact` additionally solves the same inverse problem
against the *exact* Lemma-1 supply (the analysis the paper calls "only
tedious to develop"): it bisects on ``Q̃`` using the supply-aware
feasibility tests. Its result is never larger than the linear-bound value.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Sequence

import numpy as np

from repro.analysis import kernels, scheduling_points
from repro.analysis.edf import edf_demand_points, demand_bound_array
from repro.analysis.fp import fp_schedulable_supply
from repro.analysis.edf import edf_schedulable_supply
from repro.analysis.priorities import priority_order
from repro.analysis.workload import fp_workload_array
from repro.model import Task, TaskSet
from repro.supply import PeriodicSlotSupply
from repro.util import EPS, check_positive


def _f_quantum(t: np.ndarray, w: np.ndarray, period: float) -> np.ndarray:
    """The quadratic root ``f_P(t, W)`` common to Eqs. 6 and 11."""
    tm = t - period
    return 0.5 * (np.sqrt(tm * tm + 4.0 * period * w) - tm)


@dataclass(frozen=True)
class MinQResult:
    """Detailed ``minQ`` outcome.

    Attributes
    ----------
    value:
        The minimum usable quantum ``Q̃`` (0 for an empty task set).
    period:
        The major period ``P`` the value was computed for.
    algorithm:
        "RM" / "DM" / "EDF".
    binding_task:
        For FP: the task whose constraint is binding (the arg-max of Eq. 6).
        None for EDF or empty sets.
    binding_point:
        The time point realising the binding value (arg-min over the binding
        task's scheduling points for FP; arg-max over dlSet for EDF).
    """

    value: float
    period: float
    algorithm: str
    binding_task: str | None = None
    binding_point: float | None = None


class QuantumCurve:
    """``minQ`` as a reusable function of the period ``P``.

    Precomputes the (point, demand) pairs of a task set once, then evaluates
    Eq. 6 / Eq. 11 for scalar or array ``P`` in vectorised form.

    Parameters
    ----------
    taskset:
        The tasks of one logical processor of one mode.
    algorithm:
        ``"EDF"`` or a fixed-priority policy (``"RM"`` / ``"DM"``); an
        explicit priority order (sequence of tasks, highest first) is also
        accepted.
    """

    def __init__(
        self, taskset: TaskSet, algorithm: str | Sequence[Task] = "EDF"
    ):
        self._taskset = taskset
        if isinstance(algorithm, str):
            alg = algorithm.upper()
            order: tuple[Task, ...] | None = None
            if alg not in ("EDF", "RM", "DM"):
                raise ValueError(f"unknown algorithm {algorithm!r} (EDF, RM or DM)")
            if alg in ("RM", "DM"):
                order = priority_order(taskset, alg)
        else:
            order = tuple(algorithm)
            alg = "FP"
            if set(t.name for t in order) != set(taskset.names):
                raise ValueError("priority order must be a permutation of the task set")
        self._alg = alg
        # Precompute (t, W) pairs; they are independent of P.
        self._groups: list[tuple[str, np.ndarray, np.ndarray]] = []
        if len(taskset) == 0:
            self._eval_groups = self._groups
            return
        if alg == "EDF":
            pts = edf_demand_points(taskset)  # dlSet up to the hyperperiod (Eq. 11)
            demand = demand_bound_array(taskset, pts)
            self._groups.append(("*", pts, demand))
        else:
            assert order is not None
            for i, task in enumerate(order):
                hp = order[:i]
                pts = np.asarray(scheduling_points(task, hp), dtype=float)
                w = fp_workload_array(task, hp, pts)
                self._groups.append((task.name, pts, w))
        # f_P's superlevel (EDF) / sublevel (FP) sets are half-planes, so
        # only the convex hull of the (t, W) pairs can bind Eq. 11 / Eq. 6:
        # evaluate() sweeps a handful of hull points instead of the whole
        # dlSet per candidate period, bit-identically (the conservative
        # hull never drops a potential arg-extremum). detailed() keeps the
        # full sets so binding points are reported from the same candidate
        # list as before.
        if kernels.fast_kernels_enabled():
            self._eval_groups = [
                (name, pts[idx], w[idx])
                for name, pts, w in self._groups
                for idx in (
                    kernels.binding_hull(pts, w, upper=self._alg == "EDF"),
                )
            ]
        else:
            self._eval_groups = self._groups

    @property
    def algorithm(self) -> str:
        """The algorithm label this curve was built for."""
        return self._alg

    @property
    def taskset(self) -> TaskSet:
        """The underlying task set."""
        return self._taskset

    def evaluate(self, periods: np.ndarray | float) -> np.ndarray | float:
        """``minQ`` for each period in ``periods`` (scalar in, scalar out)."""
        scalar = np.isscalar(periods)
        ps = np.atleast_1d(np.asarray(periods, dtype=float))
        if np.any(ps <= 0):
            raise ValueError("periods must be > 0")
        out = np.zeros_like(ps)
        for _name, pts, w in self._eval_groups:
            # f has shape (n_points, n_periods)
            f = _f_quantum(pts[:, None], w[:, None], ps[None, :])
            if self._alg == "EDF":
                out = np.maximum(out, f.max(axis=0))
            else:
                out = np.maximum(out, f.min(axis=0))
        return float(out[0]) if scalar else out

    def detailed(self, period: float) -> MinQResult:
        """Full :class:`MinQResult` at a single period."""
        check_positive("period", period)
        if not self._groups:
            return MinQResult(0.0, period, self._alg)
        best_val = -np.inf
        best_task: str | None = None
        best_point: float | None = None
        for name, pts, w in self._groups:
            f = _f_quantum(pts, w, period)
            if self._alg == "EDF":
                idx = int(np.argmax(f))
                val = float(f[idx])
                point = float(pts[idx])
                task = None
            else:
                idx = int(np.argmin(f))
                val = float(f[idx])
                point = float(pts[idx])
                task = name
            if val > best_val:
                best_val, best_task, best_point = val, task, point
        return MinQResult(best_val, period, self._alg, best_task, best_point)


# -- functional API -------------------------------------------------------------


def min_quantum_fp(
    taskset: TaskSet,
    period: float,
    priorities: Sequence[Task] | str = "RM",
) -> float:
    """Eq. 6: minimum usable quantum for fixed-priority scheduling."""
    check_positive("period", period)
    alg = priorities if not isinstance(priorities, str) else priorities.upper()
    return float(QuantumCurve(taskset, alg).evaluate(period))


def min_quantum_edf(taskset: TaskSet, period: float) -> float:
    """Eq. 11: minimum usable quantum for EDF scheduling."""
    check_positive("period", period)
    return float(QuantumCurve(taskset, "EDF").evaluate(period))


def min_quantum(
    taskset: TaskSet, algorithm: str, period: float
) -> float:
    """``minQ(T, alg, P)`` — dispatch on the algorithm name."""
    alg = algorithm.upper()
    if alg == "EDF":
        return min_quantum_edf(taskset, period)
    if alg in ("RM", "DM", "FP"):
        return min_quantum_fp(taskset, period, "RM" if alg == "FP" else alg)
    raise ValueError(f"unknown algorithm {algorithm!r} (EDF, RM or DM)")


def min_quantum_detailed(
    taskset: TaskSet, algorithm: str, period: float
) -> MinQResult:
    """Like :func:`min_quantum` but returns the binding task/point."""
    return QuantumCurve(taskset, algorithm).detailed(period)


def min_quantum_exact(
    taskset: TaskSet,
    algorithm: str,
    period: float,
    *,
    tol: float = 1e-6,
    horizon_hyperperiods: float = 2.0,
) -> float:
    """Inverse schedulability against the *exact* Lemma-1 supply.

    Bisects the smallest ``Q̃ ∈ [0, P]`` for which the supply-aware
    feasibility test (Theorem 1 / Theorem 2 evaluated with the exact
    :class:`~repro.supply.PeriodicSlotSupply`) accepts the task set. Returns
    ``inf`` if even a fully dedicated slot (``Q̃ = P``, i.e. a dedicated
    processor) is insufficient.

    The linear-bound :func:`min_quantum` value is always an upper bound,
    which seeds the bisection bracket; the asymptotic rate condition
    ``Q̃ >= U(T) * P`` seeds the lower end (a slot supplying less bandwidth
    than the task set consumes can never be feasible).

    For EDF the deadline check is truncated at ``horizon_hyperperiods``
    task hyperperiods: constraints at later deadlines converge monotonically
    to the rate condition, which is enforced exactly through the bracket
    seed, so the truncation error is below the bisection tolerance for
    practical parameters (near the rate boundary the analytic cut-off
    ``t* = (B + αΔ)/(α − U)`` diverges; checking it literally would cost
    millions of points for a vanishing refinement of the answer).
    """
    check_positive("period", period)
    if len(taskset) == 0:
        return 0.0
    alg = algorithm.upper()
    edf_horizon = max(
        horizon_hyperperiods * taskset.hyperperiod(), 10.0 * period
    )

    def feasible(q: float) -> bool:
        supply = PeriodicSlotSupply(period, q)
        if alg == "EDF":
            return edf_schedulable_supply(
                taskset, supply, horizon=edf_horizon
            ).schedulable
        return fp_schedulable_supply(
            taskset, supply, "RM" if alg == "FP" else alg
        ).schedulable

    hi = min(min_quantum(taskset, alg, period), period)
    if not feasible(hi):
        # The linear bound capped at P may still be infeasible (the set does
        # not even fit a dedicated processor): report infinity.
        if not feasible(period):
            return float("inf")
        hi = period
    lo = min(taskset.utilization * period, hi)
    while hi - lo > tol * max(1.0, hi):
        mid = 0.5 * (lo + hi)
        if feasible(mid):
            hi = mid
        else:
            lo = mid
    return hi


def quantum_curves_for_bins(
    bins: Sequence[TaskSet], algorithm: str
) -> list[QuantumCurve]:
    """Build one :class:`QuantumCurve` per partition bin (convenience)."""
    return [QuantumCurve(ts, algorithm) for ts in bins]


def min_quantum_jitter(
    taskset: TaskSet, algorithm: str, period: float
) -> float:
    """Jitter-aware ``minQ`` — Eqs. 6/11 with the jittered demand.

    The quadratic inversion is identical; only the point sets and demand
    functions change (:mod:`repro.analysis.jitter`). With all jitters zero
    this returns exactly :func:`min_quantum`, which the tests assert.
    """
    from repro.analysis.jitter import (
        deadline_set_jitter,
        edf_demand_jitter_array,
        fp_workload_jitter_array,
        scheduling_points_jitter,
    )

    check_positive("period", period)
    if len(taskset) == 0:
        return 0.0
    alg = algorithm.upper()
    if alg == "EDF":
        pts = np.asarray(deadline_set_jitter(taskset), dtype=float)
        if pts.size == 0:
            return float("inf")  # some deadline is consumed entirely by jitter
        w = edf_demand_jitter_array(taskset, pts)
        return float(_f_quantum(pts, w, period).max())
    if alg not in ("RM", "DM"):
        raise ValueError(f"unknown algorithm {algorithm!r} (EDF, RM or DM)")
    order = priority_order(taskset, alg)
    worst = 0.0
    for i, task in enumerate(order):
        hp = order[:i]
        pts = np.asarray(scheduling_points_jitter(task, hp), dtype=float)
        if pts.size == 0:
            return float("inf")
        w = fp_workload_jitter_array(task, hp, pts)
        worst = max(worst, float(_f_quantum(pts, w, period).min()))
    return worst
