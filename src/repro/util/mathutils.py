"""Numeric helpers: tolerant float comparisons and exact rational LCM.

Real-time schedulability math mixes closed-form irrational values (the minQ
formula contains a square root) with exact integer task parameters. Analysis
code works in floats with the tolerances defined here; hyperperiods of
integer/rational task sets are computed exactly over :class:`fractions.Fraction`
to avoid float LCM pitfalls.
"""

from __future__ import annotations

import math
from fractions import Fraction
from typing import Iterable, Sequence

import numpy as np

#: Absolute tolerance used for event ordering and feasibility comparisons.
EPS: float = 1e-9

#: Relative tolerance for comparisons between quantities of arbitrary scale.
REL_TOL: float = 1e-9


def feq(a: float, b: float, eps: float = EPS) -> bool:
    """Return True if ``a`` and ``b`` are equal within mixed abs/rel tolerance."""
    return abs(a - b) <= max(eps, REL_TOL * max(abs(a), abs(b)))


def flt(a: float, b: float, eps: float = EPS) -> bool:
    """Return True if ``a`` is strictly less than ``b`` beyond tolerance."""
    return a < b and not feq(a, b, eps)


def fgt(a: float, b: float, eps: float = EPS) -> bool:
    """Return True if ``a`` is strictly greater than ``b`` beyond tolerance."""
    return a > b and not feq(a, b, eps)


def approx_le(a: float, b: float, eps: float = EPS) -> bool:
    """Return True if ``a <= b`` allowing tolerance ``eps``."""
    return a <= b or feq(a, b, eps)


def approx_ge(a: float, b: float, eps: float = EPS) -> bool:
    """Return True if ``a >= b`` allowing tolerance ``eps``."""
    return a >= b or feq(a, b, eps)


def fuzzy_floor(x: float, eps: float = EPS) -> int:
    """``floor`` robust to float noise just below an integer.

    ``fuzzy_floor(2.9999999999) == 3`` — needed when computing interference
    counts ``floor(t/T)`` at points ``t`` that are exact multiples of ``T``
    but were produced by float arithmetic. Snaps only to the *nearest*
    integer, so a large relative tolerance can never jump several integers.
    """
    tol = max(eps, REL_TOL * abs(x))
    nearest = round(x)
    if abs(x - nearest) <= tol:
        return int(nearest)
    return math.floor(x)


def fuzzy_ceil(x: float, eps: float = EPS) -> int:
    """``ceil`` robust to float noise just above an integer (see fuzzy_floor)."""
    tol = max(eps, REL_TOL * abs(x))
    nearest = round(x)
    if abs(x - nearest) <= tol:
        return int(nearest)
    return math.ceil(x)


def fuzzy_floor_array(x: "np.ndarray", eps: float = EPS) -> "np.ndarray":
    """Vectorised :func:`fuzzy_floor` (float array out).

    The one tolerance rule for interference/job counts, shared by the scalar
    and array demand paths: snap to the *nearest* integer within mixed
    abs/rel tolerance, else plain floor. The former array rule
    (``floor(x + EPS)``) lacked the relative term, so scalar and vector
    demands diverged for large job counts — exactly at deadline boundaries.
    """
    x = np.asarray(x, dtype=float)
    nearest = np.rint(x)
    tol = np.maximum(eps, REL_TOL * np.abs(x))
    return np.where(np.abs(x - nearest) <= tol, nearest, np.floor(x))


def fuzzy_ceil_array(x: "np.ndarray", eps: float = EPS) -> "np.ndarray":
    """Vectorised :func:`fuzzy_ceil` (float array out) — see fuzzy_floor_array."""
    x = np.asarray(x, dtype=float)
    nearest = np.rint(x)
    tol = np.maximum(eps, REL_TOL * np.abs(x))
    return np.where(np.abs(x - nearest) <= tol, nearest, np.ceil(x))


def boundary_le(t: float, limit: float, eps: float = EPS) -> bool:
    """Inclusion rule ``t <= limit`` with an on-boundary band of ``±eps``.

    A point inside the band counts as *on* the boundary: included here,
    excluded by :func:`boundary_lt`. ``deadline_set`` (horizon inclusion)
    and QPA (strictly-below-limit filter) share exactly this rule, so a
    deadline near the limit is never counted by one and dropped by the
    other under two different conventions. The integer kernels implement
    the same rule with the band collapsed to zero.
    """
    return t <= limit + eps


def boundary_lt(t: float, limit: float, eps: float = EPS) -> bool:
    """Strictly below ``limit``, beyond the ``±eps`` boundary band."""
    return t < limit - eps


def to_fraction(value: float | int | Fraction, max_denominator: int = 10**9) -> Fraction:
    """Convert a number to an exact :class:`Fraction`.

    Integers and Fractions convert losslessly. Floats are rationalised via
    :meth:`Fraction.limit_denominator` with a large default denominator bound,
    which recovers exact values for task parameters that were originally
    rational (e.g. ``0.25``) while keeping irrational design outputs close.
    """
    if isinstance(value, Fraction):
        return value
    if isinstance(value, int):
        return Fraction(value)
    if not math.isfinite(value):
        raise ValueError(f"cannot convert non-finite value {value!r} to Fraction")
    return Fraction(value).limit_denominator(max_denominator)


def lcm_ints(values: Iterable[int]) -> int:
    """Least common multiple of positive integers (empty iterable -> 1)."""
    out = 1
    for v in values:
        if v <= 0:
            raise ValueError(f"lcm_ints requires positive integers, got {v}")
        out = out * v // math.gcd(out, v)
    return out


def lcm_fractions(values: Sequence[Fraction]) -> Fraction:
    """Exact least common multiple of positive rationals.

    For fractions ``a_i/b_i`` in lowest terms,
    ``lcm = lcm(a_1..a_n) / gcd(b_1..b_n)``; this is the smallest positive
    rational that is an integer multiple of every input.
    """
    if not values:
        return Fraction(1)
    num = 1
    den = 0
    for v in values:
        if v <= 0:
            raise ValueError(f"lcm_fractions requires positive values, got {v}")
        num = num * v.numerator // math.gcd(num, v.numerator)
        den = math.gcd(den, v.denominator)
    return Fraction(num, den if den else 1)
