"""Shared numeric and validation utilities.

This package holds the small helpers used across the library: floating-point
tolerances, exact LCM/hyperperiod arithmetic over rationals, and argument
validation with consistent error messages.
"""

from repro.util.mathutils import (
    EPS,
    REL_TOL,
    approx_ge,
    approx_le,
    boundary_le,
    boundary_lt,
    feq,
    fgt,
    flt,
    fuzzy_ceil,
    fuzzy_ceil_array,
    fuzzy_floor,
    fuzzy_floor_array,
    lcm_fractions,
    lcm_ints,
    to_fraction,
)
from repro.util.validation import (
    check_core_count,
    check_finite,
    check_in_range,
    check_nonneg,
    check_positive,
    check_type,
)

__all__ = [
    "EPS",
    "REL_TOL",
    "approx_ge",
    "approx_le",
    "boundary_le",
    "boundary_lt",
    "feq",
    "fgt",
    "flt",
    "fuzzy_ceil",
    "fuzzy_ceil_array",
    "fuzzy_floor",
    "fuzzy_floor_array",
    "lcm_fractions",
    "lcm_ints",
    "to_fraction",
    "check_core_count",
    "check_finite",
    "check_in_range",
    "check_nonneg",
    "check_positive",
    "check_type",
]
