"""Argument validation helpers with consistent error messages.

All public constructors in the library validate their inputs through these
helpers so failure messages have a uniform ``<name> must ...: got <value>``
shape that is easy to assert on in tests.
"""

from __future__ import annotations

import math
from typing import Any


def check_type(name: str, value: Any, types: type | tuple[type, ...]) -> None:
    """Raise :class:`TypeError` unless ``value`` is an instance of ``types``."""
    if not isinstance(value, types):
        if isinstance(types, tuple):
            expected = " or ".join(t.__name__ for t in types)
        else:
            expected = types.__name__
        raise TypeError(f"{name} must be {expected}: got {type(value).__name__} ({value!r})")


def check_finite(name: str, value: float) -> None:
    """Raise :class:`ValueError` unless ``value`` is a finite real number."""
    check_type(name, value, (int, float))
    if isinstance(value, bool) or not math.isfinite(float(value)):
        raise ValueError(f"{name} must be finite: got {value!r}")


def check_positive(name: str, value: float) -> None:
    """Raise :class:`ValueError` unless ``value`` is finite and > 0."""
    check_finite(name, value)
    if value <= 0:
        raise ValueError(f"{name} must be > 0: got {value!r}")


def check_nonneg(name: str, value: float) -> None:
    """Raise :class:`ValueError` unless ``value`` is finite and >= 0."""
    check_finite(name, value)
    if value < 0:
        raise ValueError(f"{name} must be >= 0: got {value!r}")


def check_core_count(core_count: int) -> int:
    """Validate a platform core count (positive non-bool int); returns it."""
    if isinstance(core_count, bool) or not isinstance(core_count, int):
        raise ValueError(f"core_count must be an int: got {core_count!r}")
    if core_count < 1:
        raise ValueError(f"core_count must be >= 1: got {core_count}")
    return core_count


def check_in_range(
    name: str,
    value: float,
    lo: float,
    hi: float,
    *,
    lo_open: bool = False,
    hi_open: bool = False,
) -> None:
    """Raise :class:`ValueError` unless ``value`` lies in the given interval."""
    check_finite(name, value)
    lo_ok = value > lo if lo_open else value >= lo
    hi_ok = value < hi if hi_open else value <= hi
    if not (lo_ok and hi_ok):
        lb = "(" if lo_open else "["
        rb = ")" if hi_open else "]"
        raise ValueError(f"{name} must be in {lb}{lo}, {hi}{rb}: got {value!r}")
