"""Event-driven global scheduling simulation on ``m`` identical processors.

The standard theoretical model: at every instant the ``m`` highest-priority
active jobs execute, one per processor, with free migration and no
preemption/migration cost. Like the partitioned simulator, execution is
gated by availability windows (the mode's slots) — outside a window no
processor runs.

Implementation: time advances between *events* (releases, window edges,
earliest completion among running jobs). Between consecutive events the
running set is constant, so each running job simply consumes the elapsed
time. Deadline misses are recorded exactly as in
:mod:`repro.sim.uniproc`.
"""

from __future__ import annotations

from dataclasses import dataclass

from typing import Sequence

from repro.model import Job, JobState, TaskSet
from repro.sim.scheduler import SchedulingPolicy, make_policy
from repro.sim.trace import ExecutionSlice, SimEventKind, SimTrace
from repro.sim.uniproc import merge_windows
from repro.util import EPS, check_positive


@dataclass
class GlobalSimResult:
    """Outcome of a global-scheduling simulation."""

    m: int
    jobs: list[Job]
    trace: SimTrace

    @property
    def misses(self):
        """Deadline-miss events."""
        return self.trace.misses()

    @property
    def completed(self) -> list[Job]:
        """Jobs that ran to completion."""
        return [j for j in self.jobs if j.state is JobState.COMPLETED]

    def migrations(self) -> int:
        """Number of times a job resumed on a different processor."""
        last_proc: dict[str, str] = {}
        count = 0
        for s in sorted(self.trace.slices, key=lambda s: (s.start, s.processor)):
            prev = last_proc.get(s.job)
            if prev is not None and prev != s.processor:
                count += 1
            last_proc[s.job] = s.processor
        return count


def _rank_key(policy: SchedulingPolicy):
    """Job sort key under a policy (lower = higher priority)."""
    from repro.sim.scheduler import EDFPolicy, FixedPriorityPolicy

    if isinstance(policy, EDFPolicy):
        return lambda j: (j.absolute_deadline, j.release, j.task.name)
    if isinstance(policy, FixedPriorityPolicy):
        return lambda j: (policy.rank_of(j.task.name), j.release, j.task.name)
    raise TypeError(f"unsupported policy {type(policy).__name__}")


def simulate_global(
    taskset: TaskSet,
    algorithm: str,
    m: int,
    windows: Sequence[tuple[float, float]],
    horizon: float,
    *,
    release_offsets: dict[str, float] | None = None,
) -> GlobalSimResult:
    """Simulate global EDF/RM/DM of ``taskset`` on ``m`` processors.

    Parameters mirror :func:`repro.sim.uniproc.simulate_uniproc`; processors
    are labelled ``G[0] .. G[m-1]`` and jobs keep a stable processor while
    they remain in the running set (jobs are re-packed by rank at each
    event, so a preempted job may later resume on a different processor —
    counted by :meth:`GlobalSimResult.migrations`).
    """
    check_positive("horizon", horizon)
    if m < 1:
        raise ValueError(f"m must be >= 1: got {m}")
    policy = make_policy(taskset, algorithm)
    key = _rank_key(policy)
    offsets = release_offsets or {}
    trace = SimTrace(horizon)
    windows = merge_windows(windows, horizon)

    jobs: list[Job] = []
    releases: list[tuple[float, Job]] = []
    for task in taskset:
        off = float(offsets.get(task.name, 0.0))
        k = 0
        while True:
            r = off + k * task.period
            if r >= horizon - EPS:
                break
            job = Job(task, r, k)
            jobs.append(job)
            releases.append((r, job))
            k += 1
    releases.sort(key=lambda p: (p[0], p[1].task.name))
    release_times = [r for r, _ in releases]

    ready: list[Job] = []
    missed: set[str] = set()
    rel_idx = 0

    def admit(now: float) -> None:
        nonlocal rel_idx
        while rel_idx < len(releases) and release_times[rel_idx] <= now + EPS:
            r, job = releases[rel_idx]
            ready.append(job)
            trace.log(r, SimEventKind.RELEASE, job.name)
            rel_idx += 1

    def check_misses(now: float) -> None:
        for job in ready:
            if (
                job.is_active
                and job.absolute_deadline < now - EPS
                and job.name not in missed
            ):
                missed.add(job.name)
                trace.log(
                    job.absolute_deadline, SimEventKind.DEADLINE_MISS,
                    job.name, detail=f"remaining={job.remaining:g}",
                )

    for win_a, win_b in windows:
        now = win_a
        while now < win_b - EPS:
            admit(now)
            check_misses(now)
            active = sorted((j for j in ready if j.is_active), key=key)
            running = active[:m]
            next_release = (
                release_times[rel_idx] if rel_idx < len(releases) else float("inf")
            )
            boundary = min(win_b, next_release)
            if not running:
                if boundary >= win_b - EPS:
                    break
                now = boundary
                continue
            run_until = min(
                boundary, now + min(j.remaining for j in running)
            )
            if run_until <= now + EPS:
                now = boundary  # degenerate sliver; skip ahead
                continue
            for proc, job in enumerate(running):
                job.execute(run_until - now)
                trace.add_slice(
                    ExecutionSlice(
                        f"G[{proc}]", job.name, job.task.name, now, run_until
                    )
                )
                if not job.is_active and job.state is JobState.READY:
                    job.complete(run_until)
                    trace.log(run_until, SimEventKind.COMPLETION, job.name)
                    if (
                        run_until > job.absolute_deadline + EPS
                        and job.name not in missed
                    ):
                        missed.add(job.name)
                        trace.log(
                            job.absolute_deadline, SimEventKind.DEADLINE_MISS,
                            job.name, detail=f"completed late at {run_until:g}",
                        )
            ready[:] = [j for j in ready if j.is_active]
            now = run_until
    for job in jobs:
        if (
            job.state is JobState.READY
            and job.remaining > EPS
            and job.absolute_deadline <= horizon + EPS
            and job.name not in missed
        ):
            missed.add(job.name)
            trace.log(
                job.absolute_deadline, SimEventKind.DEADLINE_MISS, job.name,
                detail=f"unfinished at horizon (remaining={job.remaining:g})",
            )
    trace.events.sort(key=lambda e: (e.time, e.kind.value, e.who))
    return GlobalSimResult(m, jobs, trace)
