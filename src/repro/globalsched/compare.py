"""Partitioned vs global strategies on one mode's task class.

The paper's Section 3 chooses partitioning and defers global scheduling.
This module compares the two on the same footing: given a mode's tasks and
its processor count, does each strategy accept the class (analysis), and
does the accepted strategy survive simulation?

Global scheduling has the classic trade-off: no bin-packing loss (a class
whose tasks do not fit any partition can still be globally feasible), but
the known polynomial tests are merely sufficient and lose capacity to the
``(1 − u_max)`` factor — so each side accepts task sets the other rejects
(Dhall-style sets hurt global; fragmentation hurts partitioned).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.globalsched.analysis import global_edf_gfb_test
from repro.globalsched.sim import simulate_global
from repro.model import TaskSet
from repro.partition import PartitionError, partition_tasks
from repro.util import check_positive


@dataclass(frozen=True)
class GlobalVsPartitioned:
    """Acceptance verdicts for one task class on ``m`` processors."""

    taskset: TaskSet
    m: int
    partitioned_ok: bool
    global_ok: bool
    partition_detail: str = ""

    @property
    def disagreement(self) -> bool:
        """True when exactly one strategy accepts."""
        return self.partitioned_ok != self.global_ok


def compare_nf_strategies(
    taskset: TaskSet,
    m: int = 4,
    *,
    admission: str = "edf",
) -> GlobalVsPartitioned:
    """Partitioned-EDF (bin packing + uniprocessor EDF) vs global-EDF (GFB).

    Both sides see dedicated processors (the comparison is within one mode's
    slots, where all ``m`` logical processors are simultaneously available;
    slot gating affects both identically and cancels out of the comparison).
    """
    check_positive("m", m)
    try:
        partition_tasks(taskset, m, heuristic="worst-fit", admission=admission)
        part_ok, detail = True, ""
    except PartitionError as exc:
        part_ok, detail = False, str(exc)
    glob_ok = global_edf_gfb_test(taskset, m)
    return GlobalVsPartitioned(taskset, m, part_ok, glob_ok, detail)


def validate_global_by_simulation(
    taskset: TaskSet,
    m: int,
    horizon: float | None = None,
) -> bool:
    """Simulate global EDF on dedicated processors; True if no miss.

    Used to confirm GFB-accepted classes and to show (by example) that
    GFB-rejected classes are sometimes schedulable anyway — the test is only
    sufficient.
    """
    if len(taskset) == 0:
        return True
    horizon = horizon or 2 * taskset.hyperperiod()
    res = simulate_global(taskset, "EDF", m, [(0.0, horizon)], horizon)
    return not res.misses
