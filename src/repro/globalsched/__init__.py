"""Global multiprocessor scheduling (the paper's deferred alternative).

Section 3 of the paper restricts itself to *partitioned* scheduling and
postpones global strategies to future work. This package implements that
future work so the two families can be compared inside the same slots:

* :mod:`repro.globalsched.analysis` — sufficient schedulability tests for
  global EDF (Goossens–Funk–Baruah bound, density bound) and global RM
  (Bertogna-style utilization bound), plus their supply-aware forms for
  identical-speed processors that are only available inside a mode's slot
  windows;
* :mod:`repro.globalsched.sim` — an event-driven global scheduler: at every
  instant the ``m`` highest-priority active jobs run on the ``m`` available
  logical processors, with free migration (no migration cost, the standard
  theoretical model);
* :mod:`repro.globalsched.compare` — partitioned-vs-global acceptance
  comparisons on a mode's task class.
"""

from repro.globalsched.analysis import (
    global_edf_density_test,
    global_edf_gfb_test,
    global_rm_utilization_test,
)
from repro.globalsched.compare import GlobalVsPartitioned, compare_nf_strategies
from repro.globalsched.sim import GlobalSimResult, simulate_global

__all__ = [
    "global_edf_gfb_test",
    "global_edf_density_test",
    "global_rm_utilization_test",
    "simulate_global",
    "GlobalSimResult",
    "compare_nf_strategies",
    "GlobalVsPartitioned",
]
