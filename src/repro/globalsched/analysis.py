"""Sufficient schedulability tests for global EDF / RM on ``m`` processors.

These are the classic polynomial-time bounds:

* **GFB** (Goossens, Funk, Baruah 2003), global EDF, implicit deadlines:
  ``U <= m (1 - u_max) + u_max`` where ``u_max`` is the largest task
  utilization;
* **density bound**, global EDF, constrained deadlines:
  ``sum density <= m (1 - d_max) + d_max`` with densities ``C_i/D_i``
  (follows from GFB applied to the density abstraction);
* **RM utilization bound** (Bertogna/Andersson-style), global RM, implicit
  deadlines: ``U <= (m/2)(1 - u_max) + u_max``.

The supply-aware variants handle the flexible platform's slots: during a
mode's slot all of its ``m`` logical processors are simultaneously available,
so each processor individually provides the mode's supply ``Z(t)`` and the
fraction/delay pair scales the bounds: capacity ``m`` becomes effective
``m·α`` and every deadline shrinks by the slot delay ``Δ`` (a task with
``D_i <= Δ`` can never be guaranteed).

All tests are *sufficient* — a False verdict means "not proven", which the
comparison layer treats as a rejection, exactly as a design tool would.
"""

from __future__ import annotations

from repro.model import TaskSet
from repro.supply import SupplyFunction
from repro.util import EPS, approx_le


def _check_m(m: int) -> None:
    if m < 1:
        raise ValueError(f"m must be >= 1: got {m}")


def global_edf_gfb_test(taskset: TaskSet, m: int) -> bool:
    """GFB bound for global EDF on ``m`` dedicated processors.

    Requires implicit deadlines (use :func:`global_edf_density_test`
    otherwise).
    """
    _check_m(m)
    if len(taskset) == 0:
        return True
    if not taskset.all_implicit_deadline:
        raise ValueError("GFB requires implicit deadlines")
    u_max = taskset.max_utilization
    if u_max > 1.0 + EPS:
        return False
    return approx_le(taskset.utilization, m * (1.0 - u_max) + u_max)


def global_edf_density_test(taskset: TaskSet, m: int) -> bool:
    """Density-based sufficient test for global EDF, constrained deadlines."""
    _check_m(m)
    if len(taskset) == 0:
        return True
    d_max = max(t.density for t in taskset)
    if d_max > 1.0 + EPS:
        return False
    return approx_le(taskset.density, m * (1.0 - d_max) + d_max)


def global_rm_utilization_test(taskset: TaskSet, m: int) -> bool:
    """Utilization bound for global RM, implicit deadlines:
    ``U <= (m/2)(1 − u_max) + u_max``."""
    _check_m(m)
    if len(taskset) == 0:
        return True
    if not taskset.all_implicit_deadline:
        raise ValueError("the global RM bound requires implicit deadlines")
    u_max = taskset.max_utilization
    if u_max > 1.0 + EPS:
        return False
    return approx_le(taskset.utilization, (m / 2.0) * (1.0 - u_max) + u_max)


def global_edf_supply_test(
    taskset: TaskSet, m: int, supply: SupplyFunction
) -> bool:
    """Supply-aware GFB for ``m`` slot-gated processors.

    During a mode's slots all ``m`` logical processors are available
    simultaneously, each delivering at least ``Z(t) >= α(t − Δ)``. A safe
    reduction to the dedicated-processor bound: shrink every deadline/period
    by the delay ``Δ`` (service before ``Δ`` is never guaranteed) and scale
    capacity by ``α``. Tasks with ``D_i <= Δ`` are rejected outright.

    This inflation is conservative (sufficient), mirroring how Theorem 1/2
    specialise the uniprocessor tests — a safe analysis of the paper's
    "global strategies" future-work item rather than a tight one.
    """
    _check_m(m)
    if len(taskset) == 0:
        return True
    alpha, delta = supply.alpha, supply.delta
    if alpha <= 0:
        return False
    densities = []
    for t in taskset:
        usable = t.deadline - delta
        if usable <= EPS:
            return False
        densities.append(t.wcet / usable)
    d_max = max(densities)
    if d_max > alpha + EPS:
        return False
    total = sum(densities)
    return approx_le(total, (m * (1.0 - d_max / alpha) + d_max / alpha) * alpha)
