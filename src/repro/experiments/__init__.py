"""The paper's evaluation artifacts wired end-to-end.

* :mod:`repro.experiments.paper` — the Table 1 task set, the manual
  partition of Section 4, and the paper's reference numbers;
* :mod:`repro.experiments.figure4` — the Figure 4 series and points 1–5;
* :mod:`repro.experiments.table2` — the three Table 2 rows;
* :mod:`repro.experiments.ablations` — the extra studies indexed in
  DESIGN.md (exact supply vs linear bound, EDF vs RM, partitioning
  heuristics, overhead sensitivity);
* :mod:`repro.experiments.weighted` — the weighted-schedulability sweep
  over the generator parameter space, streamed through the aggregation
  layer (:mod:`repro.runner.aggregate`);
* :mod:`repro.experiments.faultspace` — the dependability sweep over
  utilization x fault rate x fault scenario
  (:mod:`repro.dependability`), streamed into exact outcome-taxonomy
  curves with Wilson confidence intervals.

Examples, tests and benchmarks all call into this package so the numbers
reported anywhere in the repository come from a single implementation.
"""

from repro.experiments.paper import (
    PAPER_OTOT,
    PaperReference,
    paper_partition,
    paper_reference,
    paper_taskset,
)
from repro.experiments.figure4 import (
    Figure4Points,
    compute_figure4_points,
    figure4_aggregator,
    figure4_points_from_aggregate,
    figure4_points_from_results,
    figure4_series,
    figure4_specs,
)
from repro.experiments.table2 import (
    Table2,
    Table2Row,
    compute_table2,
    table2_aggregator,
    table2_from_aggregate,
    table2_from_results,
    table2_specs,
)
from repro.experiments.faultspace import (
    FAULTSPACE_AXES,
    faultspace_adaptive_source,
    faultspace_aggregator,
    faultspace_specs,
    render_faultspace,
)
from repro.experiments.weighted import (
    compute_weighted,
    weighted_adaptive_source,
    weighted_aggregator,
    weighted_curve_rows,
    weighted_specs,
)

__all__ = [
    "paper_taskset",
    "paper_partition",
    "paper_reference",
    "PaperReference",
    "PAPER_OTOT",
    "figure4_series",
    "figure4_specs",
    "figure4_aggregator",
    "figure4_points_from_aggregate",
    "figure4_points_from_results",
    "compute_figure4_points",
    "Figure4Points",
    "compute_table2",
    "table2_aggregator",
    "table2_from_aggregate",
    "table2_specs",
    "table2_from_results",
    "Table2",
    "Table2Row",
    "compute_weighted",
    "weighted_adaptive_source",
    "weighted_aggregator",
    "weighted_curve_rows",
    "weighted_specs",
    "FAULTSPACE_AXES",
    "faultspace_adaptive_source",
    "faultspace_aggregator",
    "faultspace_specs",
    "render_faultspace",
]
