"""Table 1 task set and Section 4 manual partition, plus reference numbers.

Table 1 of the paper (deadlines equal periods):

====  ====  ====
mode  C_i   T_i
====  ====  ====
NF    1     6      (tau1)
NF    1     8      (tau2)
NF    1     12     (tau3)
NF    2     10     (tau4)
NF    6     24     (tau5)
FS    1     10     (tau6)
FS    1     15     (tau7)
FS    2     20     (tau8)
FS    1     4      (tau9)
FT    1     12     (tau10)
FT    1     15     (tau11)
FT    1     20     (tau12)
FT    2     30     (tau13)
====  ====  ====

Manual partition (Section 4): ``T_NF^1={tau1}``, ``T_NF^2={tau2,tau3}``,
``T_NF^3={tau4}``, ``T_NF^4={tau5}``; ``T_FS^1={tau6,tau7,tau8}``,
``T_FS^2={tau9}``; all FT tasks on the single fault-tolerant channel.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.model import Mode, PartitionedTaskSet, Task, TaskSet
from repro.model.partitioned import partition_from_names

#: The total mode-switch overhead used in the paper's worked example.
PAPER_OTOT: float = 0.05

_TABLE1 = [
    # (name, C, T, mode)
    ("tau1", 1, 6, Mode.NF),
    ("tau2", 1, 8, Mode.NF),
    ("tau3", 1, 12, Mode.NF),
    ("tau4", 2, 10, Mode.NF),
    ("tau5", 6, 24, Mode.NF),
    ("tau6", 1, 10, Mode.FS),
    ("tau7", 1, 15, Mode.FS),
    ("tau8", 2, 20, Mode.FS),
    ("tau9", 1, 4, Mode.FS),
    ("tau10", 1, 12, Mode.FT),
    ("tau11", 1, 15, Mode.FT),
    ("tau12", 1, 20, Mode.FT),
    ("tau13", 2, 30, Mode.FT),
]


def paper_taskset() -> TaskSet:
    """The 13-task set of Table 1 (implicit deadlines)."""
    return TaskSet(
        Task(name=n, wcet=c, period=t, mode=m) for n, c, t, m in _TABLE1
    )


def paper_partition() -> PartitionedTaskSet:
    """The manual partition of Section 4."""
    return partition_from_names(
        paper_taskset(),
        {
            Mode.NF: [["tau1"], ["tau2", "tau3"], ["tau4"], ["tau5"]],
            Mode.FS: [["tau6", "tau7", "tau8"], ["tau9"]],
            Mode.FT: [["tau10", "tau11", "tau12", "tau13"]],
        },
    )


@dataclass(frozen=True)
class PaperReference:
    """Every number the paper prints for this example (our reproduction targets).

    Attributes mirror Figure 4's points 1–5 and Table 2's rows. All values
    are quoted at the paper's printed precision (3 decimals).
    """

    # Figure 4 points (EDF: 1, 3, 5; RM: 2, 4)
    max_period_edf_zero_overhead: float = 3.176  # point 1
    max_period_rm_zero_overhead: float = 2.381   # point 2
    max_overhead_edf: float = 0.201              # point 3
    max_overhead_rm: float = 0.129               # point 4
    max_period_edf_otot: float = 2.966           # point 5 (O_tot = 0.05)

    # Table 2 (a): required utilizations max_i U(T_k^i)
    req_util_ft: float = 0.267
    req_util_fs: float = 0.267
    req_util_nf: float = 0.250

    # Table 2 (b): min-overhead-bandwidth design (EDF, O_tot = 0.05)
    b_period: float = 2.966
    b_q_ft: float = 0.820
    b_q_fs: float = 1.281
    b_q_nf: float = 0.815
    b_alloc_ft: float = 0.276
    b_alloc_fs: float = 0.432
    b_alloc_nf: float = 0.275
    b_slack_ratio: float = 0.000
    b_overhead_bandwidth: float = 0.017

    # Table 2 (c): max-slack design (EDF, O_tot = 0.05)
    c_period: float = 0.855
    c_q_ft: float = 0.230
    c_q_fs: float = 0.252
    c_q_nf: float = 0.220
    c_alloc_ft: float = 0.269
    c_alloc_fs: float = 0.294
    c_alloc_nf: float = 0.257
    c_slack: float = 0.103
    c_slack_ratio: float = 0.121
    c_overhead_bandwidth: float = 0.059


def paper_reference() -> PaperReference:
    """The paper's published numbers for the worked example."""
    return PaperReference()
