"""The ``faultspace`` campaign preset: dependability over a scenario space.

Where the ``faults`` preset answers "does the designed platform survive
Poisson transients?", this preset maps the platform's *dependability
surface*: a grid over total utilization x fault rate x fault scenario
(Poisson / bursty / correlated / intermittent / permanent — see
:mod:`repro.dependability.scenarios`), each point a full fault-injection
campaign on a freshly generated task set, streamed into

* exact categorical-count curves of the outcome taxonomy
  (masked/silenced/corrupted/harmless, flat and per platform mode),
* FT-miss probability curves vs fault rate, and
* mean silent-corruption exposure,

all keyed on ``(scenario, rate)`` so every scenario renders as its own
series. Counts (not rates) are what stream, so sharded, batched and
resumed campaigns merge the curves bit-identically under the runner's
exact-accumulator contract; rates and Wilson 95% intervals are derived at
render time.
"""

from __future__ import annotations

from typing import Any, Mapping, Sequence

from repro.dependability import (
    OUTCOME_CATEGORIES,
    format_interval,
    outcome_curve_metric,
    scenario_names,
    wilson_interval,
)
from repro.runner import (
    AdaptiveRefinementSource,
    Aggregator,
    MeanAccumulator,
    PointSpec,
    axis_values,
    curve_metric,
    grid_specs,
    mean_metric,
)

#: Default grid: utilization x fault rate x scenario x reps.
FAULTSPACE_AXES: dict[str, Any] = {
    "u_total": [0.8, 1.6],
    "rate": [0.01, 0.02, 0.05, 0.1],
    "scenario": ["poisson", "bursty", "correlated", "intermittent", "permanent"],
    "rep": list(range(5)),
}

#: Fixed parameters of every faultspace point.
_FAULTSPACE_BASE: dict[str, Any] = {"source": "generated", "n": 8, "cycles": 20}


def faultspace_specs(
    axes: Mapping[str, Any] | None = None,
    *,
    scenario: str | None = None,
) -> list[PointSpec]:
    """The faultspace grid (``axes`` override defaults; CLI ``--axis``).

    ``scenario`` narrows the scenario axis to one named scenario (the CLI's
    ``--scenario`` flag); unknown names are rejected against the registry.
    """
    merged = {**FAULTSPACE_AXES, **dict(axes or {})}
    if scenario is not None:
        if scenario not in scenario_names():
            raise ValueError(
                f"unknown fault scenario {scenario!r}; "
                f"known: {scenario_names()}"
            )
        merged["scenario"] = [scenario]
    # An axis may override a fixed base param (e.g. --axis n=6 on the CLI);
    # it then sweeps as a regular — possibly degenerate — axis instead.
    base = {k: v for k, v in _FAULTSPACE_BASE.items() if k not in merged}
    return grid_specs("dependability", merged, base_params=base)


def faultspace_adaptive_source(
    axes: Mapping[str, Any] | None = None,
    *,
    scenario: str | None = None,
    ci_width: float = 0.05,
    max_points: int | None = None,
) -> AdaptiveRefinementSource:
    """Adaptive point source for the ``faultspace`` preset.

    Refines the ``ft_miss`` curve: every ``(scenario, rate)`` bin is
    sampled until its Wilson 95% interval is no wider than ``ci_width``,
    bisecting the *rate* axis wherever a scenario's adjacent bins
    disagree by more than the target width (the faultspace curves are
    keyed on ``(scenario, rate)``, so rate — not utilization — is this
    preset's refinement axis). Non-key axes (``u_total``) sweep inside
    every bin sample. ``axes``/``scenario`` behave exactly like
    :func:`faultspace_specs`.
    """
    merged = {**FAULTSPACE_AXES, **dict(axes or {})}
    if scenario is not None:
        if scenario not in scenario_names():
            raise ValueError(
                f"unknown fault scenario {scenario!r}; "
                f"known: {scenario_names()}"
            )
        merged["scenario"] = [scenario]
    base = {k: v for k, v in _FAULTSPACE_BASE.items() if k not in merged}
    initial_reps = len(axis_values(merged.pop("rep"), name="rep"))
    # Key order must match the ft_miss curve's (scenario, rate) key order.
    key_axes = {name: merged.pop(name) for name in ("scenario", "rate")}
    return AdaptiveRefinementSource(
        "dependability",
        metric="ft_miss",
        key_axes=key_axes,
        refine_axis="rate",
        ci_width=ci_width,
        extra_axes=merged,
        base_params=base,
        initial_reps=initial_reps,
        max_points=max_points,
    )


def faultspace_aggregator() -> Aggregator:
    """The streaming aggregate behind the faultspace preset.

    Curves, all keyed on ``(scenario, rate)``:

    * ``outcomes`` — exact counts of the flat outcome taxonomy;
    * ``outcomes_by_mode`` — the same counts keyed ``mode/outcome`` (the
      Section 2.2 contract: FT masks, FS silences, NF corrupts);
    * ``ft_miss`` — share of campaigns with >= 1 FT deadline miss;
    * ``any_corruption`` — share of campaigns with >= 1 silent corruption;
    * ``corrupted_jobs`` — mean corrupted job outputs per campaign;

    plus the mean injected-fault count as a scalar cross-check.
    """
    key = ["scenario", "rate"]
    return Aggregator(
        [
            outcome_curve_metric(
                "outcomes", key, "outcomes", experiment="dependability"
            ),
            outcome_curve_metric(
                "outcomes_by_mode",
                key,
                "outcomes_by_mode",
                experiment="dependability",
            ),
            curve_metric("ft_miss", key, "ft_miss", experiment="dependability"),
            curve_metric(
                "any_corruption",
                key,
                "any_corruption",
                experiment="dependability",
            ),
            curve_metric(
                "corrupted_jobs",
                key,
                "corrupted_jobs",
                experiment="dependability",
            ),
            mean_metric("injected", "injected", experiment="dependability"),
        ]
    )


def _curve_bins(aggregator: Aggregator, metric: str) -> list[tuple[str, Any, Any]]:
    """``(scenario, rate, accumulator)`` rows, sorted by scenario then rate.

    The rate keeps its folded type (an int rate axis stays int): the value
    is reused to address sibling curves' bins, where ``0.1`` and a folded
    ``1`` canonicalize to different keys.
    """
    rows = []
    for bin_key, acc in aggregator[metric].items():  # type: ignore[attr-defined]
        scenario, rate = bin_key
        rows.append((scenario, rate, acc))
    rows.sort(key=lambda r: (r[0], float(r[1])))
    return rows


def outcome_rate_rows(
    aggregator: Aggregator,
) -> tuple[list[str], list[list[Any]]]:
    """Outcome shares + Wilson 95% CIs per ``(scenario, rate)`` bin.

    One row per bin: total faults, then for each outcome category its share
    and the Wilson interval of that share (the categorical counts are
    binomial per category against the bin total).
    """
    headers = ["scenario", "rate", "faults"]
    for cat in OUTCOME_CATEGORIES:
        headers += [cat, f"{cat}_ci95"]
    rows: list[list[Any]] = []
    for scenario, rate, acc in _curve_bins(aggregator, "outcomes"):
        total = acc.total
        row: list[Any] = [scenario, rate, total]
        for cat in OUTCOME_CATEGORIES:
            row.append(acc.rate(cat))
            row.append(
                format_interval(
                    wilson_interval(acc.counts.get(cat, 0), total)
                )
            )
        rows.append(row)
    return headers, rows


def ft_miss_rows(
    aggregator: Aggregator,
) -> tuple[list[str], list[list[Any]]]:
    """FT-miss and silent-corruption probabilities with Wilson 95% CIs."""
    # items() (not bin()) so rendering never creates empty bins in the
    # live aggregate that a later snapshot save would then persist.
    corruption = {
        tuple(key): acc
        for key, acc in aggregator["any_corruption"].items()  # type: ignore[attr-defined]
    }
    headers = [
        "scenario", "rate", "campaigns",
        "p_ft_miss", "ft_miss_ci95", "p_corruption", "corruption_ci95",
    ]
    rows: list[list[Any]] = []
    empty = MeanAccumulator()
    for scenario, rate, acc in _curve_bins(aggregator, "ft_miss"):
        corr = corruption.get((scenario, rate), empty)
        rows.append(
            [
                scenario,
                rate,
                acc.count,
                acc.mean,
                format_interval(wilson_interval(int(acc.total), acc.count)),
                corr.mean,
                format_interval(
                    wilson_interval(int(corr.total), corr.count)
                ),
            ]
        )
    return headers, rows


def render_faultspace_ascii(
    aggregator: Aggregator,
    *,
    width: int = 72,
    height: int = 14,
) -> str:
    """ASCII plot of the silent-corruption rate vs fault rate, per scenario.

    The corrupted share is the dependability headline — masked/silenced
    faults are the platform doing its job; corrupted ones are the exposure.
    Returns an empty string when no bins have folded yet.
    """
    from repro.viz import ascii_plot

    series: dict[str, tuple[list[float], list[float]]] = {}
    for scenario, rate, acc in _curve_bins(aggregator, "outcomes"):
        share = acc.rate("corrupted")
        if share is None:
            continue
        xs, ys = series.setdefault(scenario, ([], []))
        xs.append(float(rate))
        ys.append(share)
    if not series:
        return ""
    return ascii_plot(
        series,
        width=width,
        height=height,
        x_label="fault rate",
        y_label="corrupted share",
    )


def mode_taxonomy_rows(
    aggregator: Aggregator,
) -> tuple[list[str], list[list[Any]]]:
    """Per-mode outcome taxonomy pooled over fault rates, one table row per
    ``(scenario, mode/outcome)`` — the Section 2.2 contract at a glance."""
    pooled: dict[str, Any] = {}
    for scenario, _rate, acc in _curve_bins(aggregator, "outcomes_by_mode"):
        pooled[scenario] = acc if scenario not in pooled else pooled[scenario].merge(acc)
    rows = []
    for scenario in sorted(pooled):
        acc = pooled[scenario]
        for category in sorted(acc.counts):
            rows.append(
                [scenario, category, acc.counts[category], acc.rate(category)]
            )
    return ["scenario", "mode/outcome", "faults", "share"], rows


def render_faultspace(aggregator: Aggregator) -> str:
    """The faultspace preset's full rendering (tables + ASCII curves)."""
    from repro.viz import format_table

    blocks = []
    headers, rows = outcome_rate_rows(aggregator)
    if rows:
        blocks.append(
            "fault outcome shares (Wilson 95% CIs):\n"
            + format_table(headers, rows)
        )
    headers, rows = ft_miss_rows(aggregator)
    if rows:
        blocks.append(
            "FT-miss / silent-corruption probability per campaign:\n"
            + format_table(headers, rows)
        )
    plot = render_faultspace_ascii(aggregator)
    if plot:
        blocks.append("corrupted share vs fault rate:\n" + plot)
    headers, rows = mode_taxonomy_rows(aggregator)
    if rows:
        blocks.append(
            "per-mode outcome taxonomy (pooled over rates):\n"
            + format_table(headers, rows)
        )
    injected = aggregator["injected"].summary()
    blocks.append(
        f"summary: campaigns={injected['count']}  "
        f"faults_injected={injected['sum']:g}  "
        f"mean_injected={injected['mean'] if injected['mean'] is None else round(injected['mean'], 3)}"
    )
    return "\n\n".join(blocks)


__all__ = [
    "FAULTSPACE_AXES",
    "faultspace_adaptive_source",
    "faultspace_aggregator",
    "faultspace_specs",
    "ft_miss_rows",
    "mode_taxonomy_rows",
    "outcome_rate_rows",
    "render_faultspace",
    "render_faultspace_ascii",
]
