"""The ``online`` campaign preset: event-driven runtime admission.

Where the offline presets answer "does a *fixed* task set fit the designed
platform?", this preset exercises the Section-4 dynamic scenario end to
end: a max-slack design is deployed, tasks arrive and leave at run time
(:class:`repro.sim.online.OnlineSim` decides each arrival live through the
:class:`repro.core.admission.AdmissionController`), and fault scenarios
strike while the workload churns — a ``permanent`` scenario kills its core
outright, orphaning that processor's tasks and triggering re-assignment to
the surviving channels.

The grid sweeps arrival rate x total utilization x fault scenario, and the
streamed aggregate folds

* an **acceptance-ratio curve over time** — per major cycle, exact
  accepted/offered counts keyed ``(scenario, arrival_rate, cycle)``;
* **re-assignment latency** and **post-failure miss window** means per
  ``(scenario, arrival_rate)``;
* orphan / re-assigned / lost counts per campaign,

all through the runner's exact accumulators: counts (not rates) stream, so
sharded, batched and resumed online campaigns merge bit-identically, and
rates plus Wilson 95% intervals are derived at render time.
"""

from __future__ import annotations

from typing import Any, Mapping

from repro.dependability import format_interval, scenario_names, wilson_interval
from repro.runner import (
    Aggregator,
    CurveAccumulator,
    MeanAccumulator,
    Metric,
    PointSpec,
    curve_metric,
    grid_specs,
    mean_metric,
)

#: Default grid: arrival rate (expected dynamic arrivals per major cycle)
#: x initial total utilization x fault scenario x reps.
ONLINE_AXES: dict[str, Any] = {
    "arrival_rate": [0.5, 1.0, 2.0],
    "u_total": [0.5, 1.0],
    "scenario": ["poisson", "permanent"],
    "rep": list(range(4)),
}

#: Fixed parameters of every online point. ``rate`` is the *fault* rate
#: consumed by the scenario library (the arrival process has its own axis).
_ONLINE_BASE: dict[str, Any] = {
    "source": "generated",
    "n": 6,
    "cycles": 30,
    "otot": 0.05,
    "rate": 0.05,
}


def online_specs(
    axes: Mapping[str, Any] | None = None,
    *,
    scenario: str | None = None,
) -> list[PointSpec]:
    """The online grid (``axes`` override defaults; CLI ``--axis``).

    ``scenario`` narrows the scenario axis to one named scenario (the CLI's
    ``--scenario`` flag); unknown names are rejected against the registry.
    """
    merged = {**ONLINE_AXES, **dict(axes or {})}
    if scenario is not None:
        if scenario not in scenario_names():
            raise ValueError(
                f"unknown fault scenario {scenario!r}; "
                f"known: {scenario_names()}"
            )
        merged["scenario"] = [scenario]
    base = {k: v for k, v in _ONLINE_BASE.items() if k not in merged}
    return grid_specs("online", merged, base_params=base)


def _series_key(params: Mapping[str, Any]) -> list[Any]:
    return [params.get("scenario"), params.get("arrival_rate")]


def _skip(spec: PointSpec, result: Any) -> bool:
    if spec.experiment != "online":
        return True
    return isinstance(result, Mapping) and "error" in result


def _acceptance_metric() -> Metric:
    """Acceptance-ratio-over-time curve, keyed ``(scenario, rate, cycle)``.

    Each per-point acceptance bin carries exact ``(offered, accepted)``
    integer counts for one major cycle; they fold through the
    :class:`MeanAccumulator` multiplicity form (``accepted`` successes out
    of ``offered`` trials), so the bin mean *is* the acceptance ratio and
    the fold stays exact under any shard/batch split.
    """

    def fold(acc: CurveAccumulator, spec: PointSpec, result: Any) -> None:
        if _skip(spec, result):
            return
        series = _series_key(spec.params)
        for cycle, offered, accepted in result.get("acceptance_bins", ()):
            if offered:
                acc.fold([*series, cycle], accepted, count=offered)

    return Metric("acceptance", CurveAccumulator(MeanAccumulator()), fold)


def _list_curve_metric(name: str, result_key: str) -> Metric:
    """Mean over a per-point *list* of samples, keyed ``(scenario, rate)``."""

    def fold(acc: CurveAccumulator, spec: PointSpec, result: Any) -> None:
        if _skip(spec, result):
            return
        series = _series_key(spec.params)
        for value in result.get(result_key, ()):
            acc.fold(series, value)

    return Metric(name, CurveAccumulator(MeanAccumulator()), fold)


def online_aggregator() -> Aggregator:
    """The streaming aggregate behind the online preset.

    Curves:

    * ``acceptance`` — exact acceptance ratio per
      ``(scenario, arrival_rate, cycle)``;
    * ``reassign_latency`` — mean re-assignment latency (death →
      successful re-admission) per ``(scenario, arrival_rate)``;
    * ``miss_window`` — mean post-failure miss window per orphan;
    * ``orphaned`` / ``reassigned`` / ``lost`` — per-campaign counts;

    plus scalar cross-checks (offered/admitted totals, final slack, misses
    attributable to the failure).
    """
    key = ["scenario", "arrival_rate"]
    return Aggregator(
        [
            _acceptance_metric(),
            _list_curve_metric("reassign_latency", "reassign_latencies"),
            _list_curve_metric("miss_window", "miss_windows"),
            curve_metric("orphaned", key, "orphaned", experiment="online"),
            curve_metric("reassigned", key, "reassigned", experiment="online"),
            curve_metric("lost", key, "lost", experiment="online"),
            mean_metric("offered", "offered", experiment="online"),
            mean_metric("admitted", "admitted", experiment="online"),
            mean_metric("slack_final", "slack_final", experiment="online"),
            mean_metric(
                "post_failure_misses", "post_failure_misses", experiment="online"
            ),
        ]
    )


def _series_bins(
    aggregator: Aggregator, metric: str
) -> list[tuple[str, Any, Any]]:
    """``(scenario, arrival_rate, accumulator)`` rows, sorted."""
    rows = []
    for bin_key, acc in aggregator[metric].items():  # type: ignore[attr-defined]
        scenario, rate = bin_key
        rows.append((scenario, rate, acc))
    rows.sort(key=lambda r: (r[0], float(r[1])))
    return rows


def acceptance_rows(
    aggregator: Aggregator,
) -> tuple[list[str], list[list[Any]]]:
    """Acceptance ratios pooled over cycles, with Wilson 95% intervals.

    One row per ``(scenario, arrival_rate)`` series: offered arrivals,
    accepted admissions (the exact curve totals summed over cycles), the
    pooled ratio and its Wilson interval.
    """
    pooled: dict[tuple[str, Any], list[int]] = {}
    for bin_key, acc in aggregator["acceptance"].items():  # type: ignore[attr-defined]
        scenario, rate, _cycle = bin_key
        entry = pooled.setdefault((scenario, rate), [0, 0])
        entry[0] += acc.count
        entry[1] += int(acc.total)
    headers = ["scenario", "arrival_rate", "offered", "accepted", "ratio", "ci95"]
    rows: list[list[Any]] = []
    for (scenario, rate), (offered, accepted) in sorted(
        pooled.items(), key=lambda item: (item[0][0], float(item[0][1]))
    ):
        ratio = accepted / offered if offered else None
        rows.append(
            [
                scenario,
                rate,
                offered,
                accepted,
                ratio,
                format_interval(wilson_interval(accepted, offered)),
            ]
        )
    return headers, rows


def reassignment_rows(
    aggregator: Aggregator,
) -> tuple[list[str], list[list[Any]]]:
    """Per-series re-assignment outcomes after permanent core failures.

    ``campaigns`` is the folded point count; orphan/re-assigned/lost are
    per-campaign means; latency and miss window average over the individual
    orphans that were re-assigned (resp. all orphans).
    """
    latencies = {
        tuple(k): acc
        for k, acc in aggregator["reassign_latency"].items()  # type: ignore[attr-defined]
    }
    windows = {
        tuple(k): acc
        for k, acc in aggregator["miss_window"].items()  # type: ignore[attr-defined]
    }
    reassigned = {
        tuple(k): acc
        for k, acc in aggregator["reassigned"].items()  # type: ignore[attr-defined]
    }
    lost = {
        tuple(k): acc
        for k, acc in aggregator["lost"].items()  # type: ignore[attr-defined]
    }
    empty = MeanAccumulator()
    headers = [
        "scenario", "arrival_rate", "campaigns",
        "orphans/pt", "reassigned/pt", "lost/pt",
        "mean_latency", "mean_miss_window",
    ]
    rows: list[list[Any]] = []
    for scenario, rate, acc in _series_bins(aggregator, "orphaned"):
        k = (scenario, rate)
        rows.append(
            [
                scenario,
                rate,
                acc.count,
                acc.mean,
                reassigned.get(k, empty).mean,
                lost.get(k, empty).mean,
                latencies.get(k, empty).mean,
                windows.get(k, empty).mean,
            ]
        )
    return headers, rows


def render_online_ascii(
    aggregator: Aggregator,
    *,
    width: int = 72,
    height: int = 14,
) -> str:
    """ASCII plot of the acceptance ratio vs major cycle, one series per
    ``(scenario, arrival_rate)``. Empty string before any fold."""
    from repro.viz import ascii_plot

    series: dict[str, tuple[list[float], list[float]]] = {}
    for bin_key, acc in aggregator["acceptance"].items():  # type: ignore[attr-defined]
        scenario, rate, cycle = bin_key
        mean = acc.mean
        if mean is None:
            continue
        xs, ys = series.setdefault(f"{scenario}@{rate}", ([], []))
        xs.append(float(cycle))
        ys.append(mean)
    for xs, ys in series.values():
        order = sorted(range(len(xs)), key=xs.__getitem__)
        xs[:], ys[:] = [xs[i] for i in order], [ys[i] for i in order]
    if not series:
        return ""
    return ascii_plot(
        series,
        width=width,
        height=height,
        x_label="major cycle",
        y_label="acceptance",
    )


def render_online(aggregator: Aggregator) -> str:
    """The online preset's full rendering (tables + ASCII curve)."""
    from repro.viz import format_table

    blocks = []
    headers, rows = acceptance_rows(aggregator)
    if rows:
        blocks.append(
            "online acceptance (pooled over cycles, Wilson 95% CIs):\n"
            + format_table(headers, rows)
        )
    plot = render_online_ascii(aggregator)
    if plot:
        blocks.append("acceptance ratio vs major cycle:\n" + plot)
    headers, rows = reassignment_rows(aggregator)
    if rows:
        blocks.append(
            "re-assignment after permanent core failure:\n"
            + format_table(headers, rows)
        )
    offered = aggregator["offered"].summary()
    admitted = aggregator["admitted"].summary()
    misses = aggregator["post_failure_misses"].summary()
    blocks.append(
        f"summary: campaigns={offered['count']}  "
        f"arrivals_offered={offered['sum']:g}  "
        f"arrivals_admitted={admitted['sum']:g}  "
        f"post_failure_misses={misses['sum']:g}"
    )
    return "\n\n".join(blocks)


__all__ = [
    "ONLINE_AXES",
    "acceptance_rows",
    "online_aggregator",
    "online_specs",
    "reassignment_rows",
    "render_online",
    "render_online_ascii",
]
