"""Ablation studies indexed in DESIGN.md.

Each function returns plain data (dataclasses / dicts) consumed by the
benchmark harness and tests:

* :func:`exact_vs_linear_gap` — how much quantum the paper's linear supply
  bound gives away versus the exact Lemma-1 analysis it calls "tedious";
* :func:`edf_vs_rm_regions` — scheduler impact on the feasible region
  (max period, max admissible overhead);
* :func:`partitioning_comparison` — the manual Section 4 partition versus
  automatic bin-packing heuristics;
* :func:`overhead_sensitivity` — max feasible period as the switching
  overhead grows (degenerating to infeasible at the Fig. 4 apex);
* :func:`slot_splitting_gain` — the future-work idea of serving a mode with
  several smaller quanta per period (supply-delay improvement).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Sequence

import numpy as np

from repro.core import FeasibleRegion, min_quantum, min_quantum_exact
from repro.experiments.paper import paper_partition, paper_taskset
from repro.model import Mode, PartitionedTaskSet, TaskSet
from repro.partition import partition_by_modes
from repro.supply import PeriodicSlotSupply
from repro.supply.slots import evenly_split_slots


@dataclass(frozen=True)
class ExactVsLinearRow:
    """minQ under the linear bound vs the exact supply, for one subset."""

    label: str
    period: float
    minq_linear: float
    minq_exact: float

    @property
    def gap(self) -> float:
        """Absolute quantum over-allocation of the linear bound."""
        return self.minq_linear - self.minq_exact

    @property
    def gap_ratio(self) -> float:
        """Relative over-allocation (0 when the exact value is 0)."""
        if self.minq_exact <= 0:
            return 0.0
        return self.gap / self.minq_exact


def exact_vs_linear_gap(
    partition: PartitionedTaskSet | None = None,
    periods: Sequence[float] = (0.5, 1.0, 2.0, 2.966),
    algorithm: str = "EDF",
) -> list[ExactVsLinearRow]:
    """Per-mode minQ gap between linear-bound and exact supply analysis."""
    partition = partition or paper_partition()
    rows: list[ExactVsLinearRow] = []
    for period in periods:
        for mode in Mode:
            for idx, ts in enumerate(partition.bins(mode)):
                if len(ts) == 0:
                    continue
                lin = min_quantum(ts, algorithm, period)
                exact = min_quantum_exact(ts, algorithm, period)
                rows.append(
                    ExactVsLinearRow(
                        label=f"{mode}[{idx}]@P={period:g}",
                        period=period,
                        minq_linear=lin,
                        minq_exact=exact,
                    )
                )
    return rows


@dataclass(frozen=True)
class RegionComparison:
    """Feasible-region key figures for one scheduling algorithm."""

    algorithm: str
    max_period_zero_overhead: float
    max_admissible_overhead: float


def edf_vs_rm_regions(
    partition: PartitionedTaskSet | None = None,
) -> list[RegionComparison]:
    """EDF vs RM on the same partition (EDF must dominate, cf. Fig. 4)."""
    partition = partition or paper_partition()
    out = []
    for alg in ("EDF", "RM"):
        region = FeasibleRegion(partition, alg)
        out.append(
            RegionComparison(
                algorithm=alg,
                max_period_zero_overhead=region.max_feasible_period(0.0),
                max_admissible_overhead=region.max_admissible_overhead().lhs,
            )
        )
    return out


@dataclass(frozen=True)
class PartitionComparison:
    """Region quality achieved by one partitioning strategy.

    ``max_period_zero_overhead`` is None when the strategy's partition is so
    imbalanced that Eq. 15 has no feasible period at all — a real outcome
    for greedy heuristics (first/best-fit) that concentrate load: the summed
    per-mode demand ratios can exceed 1 even as ``P → 0``.
    """

    strategy: str
    max_period_zero_overhead: float | None
    max_admissible_overhead: float
    max_bin_utilization: Mapping[str, float]

    @property
    def feasible(self) -> bool:
        """Whether the partition admits any feasible period."""
        return self.max_period_zero_overhead is not None


def partitioning_comparison(
    taskset: TaskSet | None = None,
    algorithm: str = "EDF",
    heuristics: Sequence[str] = ("worst-fit", "first-fit", "best-fit"),
) -> list[PartitionComparison]:
    """Manual Section-4 partition vs automatic bin-packing heuristics."""
    taskset = taskset or paper_taskset()
    candidates: list[tuple[str, PartitionedTaskSet]] = [
        ("manual (paper)", paper_partition())
    ]
    for h in heuristics:
        candidates.append(
            (h, partition_by_modes(taskset, heuristic=h, admission="utilization"))
        )
    out = []
    for label, part in candidates:
        region = FeasibleRegion(part, algorithm)
        peak = region.max_admissible_overhead()
        try:
            max_p = region.max_feasible_period(0.0)
        except ValueError:
            max_p = None  # the partition admits no feasible period
        out.append(
            PartitionComparison(
                strategy=label,
                max_period_zero_overhead=max_p,
                max_admissible_overhead=peak.lhs,
                max_bin_utilization={
                    str(m): part.max_bin_utilization(m) for m in Mode
                },
            )
        )
    return out


@dataclass(frozen=True)
class OverheadPoint:
    """Max feasible period (or None) at one total-overhead level."""

    otot: float
    max_period: float | None


def overhead_sensitivity(
    partition: PartitionedTaskSet | None = None,
    algorithm: str = "EDF",
    otots: Sequence[float] = (0.0, 0.025, 0.05, 0.1, 0.15, 0.2, 0.25),
) -> list[OverheadPoint]:
    """Max feasible period as switching overhead grows (None = infeasible)."""
    partition = partition or paper_partition()
    region = FeasibleRegion(partition, algorithm)
    out = []
    for otot in otots:
        try:
            out.append(OverheadPoint(otot, region.max_feasible_period(otot)))
        except ValueError:
            out.append(OverheadPoint(otot, None))
    return out


@dataclass(frozen=True)
class SlotSplitRow:
    """Supply improvement from splitting a mode's quantum into k pieces."""

    pieces: int
    delay: float
    supply_at_half_period: float


def slot_splitting_gain(
    period: float = 3.0,
    budget: float = 1.0,
    pieces_list: Sequence[int] = (1, 2, 3, 4),
) -> list[SlotSplitRow]:
    """The future-work multi-quantum extension: delay shrinks with splitting.

    With ``k`` evenly spread pieces the worst-case starvation drops from
    ``P − Q̃`` towards ``(P − Q̃)/k``, enlarging the feasible space for
    short-deadline tasks.
    """
    rows = []
    for k in pieces_list:
        supply = (
            PeriodicSlotSupply(period, budget)
            if k == 1
            else evenly_split_slots(period, budget, k)
        )
        rows.append(
            SlotSplitRow(
                pieces=k,
                delay=supply.delta,
                supply_at_half_period=supply.supply(period / 2),
            )
        )
    return rows
