"""Ablation studies indexed in DESIGN.md.

Each function returns plain data (dataclasses / dicts) consumed by the
benchmark harness and tests:

* :func:`exact_vs_linear_gap` — how much quantum the paper's linear supply
  bound gives away versus the exact Lemma-1 analysis it calls "tedious";
* :func:`edf_vs_rm_regions` — scheduler impact on the feasible region
  (max period, max admissible overhead);
* :func:`partitioning_comparison` — the manual Section 4 partition versus
  automatic bin-packing heuristics;
* :func:`overhead_sensitivity` — max feasible period as the switching
  overhead grows (degenerating to infeasible at the Fig. 4 apex);
* :func:`slot_splitting_gain` — the future-work idea of serving a mode with
  several smaller quanta per period (supply-delay improvement).

All five are campaign grids: the former ad-hoc serial loops expand into
``ablate-*`` point specs streamed through
:func:`repro.runner.stream_campaign`, so every study inherits the runner's
parallelism, caching and per-point determinism and folds into the shared
:func:`ablation_aggregator` summary. Pass ``workers``/``cache_dir`` to fan
a study out.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import Any, Mapping, Sequence

from repro.experiments.paper import paper_partition
from repro.model import Mode, PartitionedTaskSet, TaskSet
from repro.runner import (
    Aggregator,
    PointSpec,
    StreamResult,
    curve_metric,
    grid_specs,
    mean_metric,
    partition_params,
    slot_metric,
    stream_campaign,
    taskset_params,
)


def ablation_aggregator() -> Aggregator:
    """Streaming summary of the ablation studies.

    Every driver folds its points through these metrics (each filtered to
    its own experiment, so partial spec lists fold cleanly): the mean
    linear-vs-exact quantum over-allocation, the max-period-vs-overhead
    curve, the per-pieces slot-splitting delay curve, and named slots for
    the per-algorithm region figures and per-strategy partitioning quality.
    """

    def gap_ratio(params: dict, result: Any) -> float | None:
        exact = result["minq_exact"]
        if exact <= 0:
            return None
        return (result["minq_linear"] - exact) / exact

    return Aggregator(
        [
            mean_metric(
                "minq_gap_ratio", gap_ratio, experiment="ablate-minq-gap"
            ),
            curve_metric(
                "overhead_curve", "otot", "max_period",
                experiment="ablate-overhead",
            ),
            curve_metric(
                "slot_split_delay", "pieces", "delay",
                experiment="ablate-slot-split",
            ),
            slot_metric(
                "regions",
                lambda spec: spec.params["algorithm"],
                experiment="ablate-region",
            ),
            slot_metric(
                "partitioning",
                lambda spec: spec.params["strategy"],
                experiment="ablate-partitioning",
            ),
        ]
    )


def ablation_summary(
    *,
    workers: int | None = 1,
    cache_dir: str | os.PathLike | None = None,
    state_path: str | os.PathLike | None = None,
) -> Aggregator:
    """Stream every default ablation point into the summary aggregate.

    The O(accumulators) companion to the per-row drivers below: no point
    results are materialized, and with ``state_path`` the fold resumes
    incrementally (this is also what the CLI ``ablations`` preset folds).
    """
    return stream_campaign(
        ablation_specs(),
        ablation_aggregator(),
        workers=workers,
        cache_dir=cache_dir,
        state_path=state_path,
    ).aggregator


def _stream(
    specs: list[PointSpec],
    workers: int | None,
    cache_dir: str | os.PathLike | None,
) -> StreamResult:
    """Run one ablation campaign, materializing its rows.

    The drivers' public API is per-row dataclasses, so they collect; the
    aggregator is empty here — aggregate consumers go through
    :func:`ablation_summary` instead of paying for folds nobody reads.
    """
    return stream_campaign(
        specs,
        Aggregator([]),
        workers=workers,
        cache_dir=cache_dir,
        collect=True,
    )


@dataclass(frozen=True)
class ExactVsLinearRow:
    """minQ under the linear bound vs the exact supply, for one subset."""

    label: str
    period: float
    minq_linear: float
    minq_exact: float

    @property
    def gap(self) -> float:
        """Absolute quantum over-allocation of the linear bound."""
        return self.minq_linear - self.minq_exact

    @property
    def gap_ratio(self) -> float:
        """Relative over-allocation (0 when the exact value is 0)."""
        if self.minq_exact <= 0:
            return 0.0
        return self.gap / self.minq_exact


def exact_vs_linear_specs(
    partition: PartitionedTaskSet | None = None,
    periods: Sequence[float] = (0.5, 1.0, 2.0, 2.966),
    algorithm: str = "EDF",
) -> list[PointSpec]:
    """One ``ablate-minq-gap`` point per (period, non-empty mode bin)."""
    resolved = partition or paper_partition()
    base = {"algorithm": algorithm, **partition_params(partition)}
    return [
        PointSpec(
            "ablate-minq-gap",
            {**base, "period": period, "mode": str(mode), "bin": idx},
        )
        for period in periods
        for mode in Mode
        for idx, ts in enumerate(resolved.bins(mode))
        if len(ts) > 0
    ]


def exact_vs_linear_gap(
    partition: PartitionedTaskSet | None = None,
    periods: Sequence[float] = (0.5, 1.0, 2.0, 2.966),
    algorithm: str = "EDF",
    *,
    workers: int | None = 1,
    cache_dir: str | os.PathLike | None = None,
) -> list[ExactVsLinearRow]:
    """Per-mode minQ gap between linear-bound and exact supply analysis."""
    campaign = _stream(exact_vs_linear_specs(partition, periods, algorithm), workers, cache_dir)
    return [
        ExactVsLinearRow(
            label=(
                f"{spec.params['mode']}[{spec.params['bin']}]"
                f"@P={spec.params['period']:g}"
            ),
            period=spec.params["period"],
            minq_linear=result["minq_linear"],
            minq_exact=result["minq_exact"],
        )
        for spec, result in campaign.rows()
    ]


@dataclass(frozen=True)
class RegionComparison:
    """Feasible-region key figures for one scheduling algorithm."""

    algorithm: str
    max_period_zero_overhead: float
    max_admissible_overhead: float


def edf_vs_rm_specs(
    partition: PartitionedTaskSet | None = None,
) -> list[PointSpec]:
    """One ``ablate-region`` point per scheduling algorithm."""
    return grid_specs(
        "ablate-region",
        {"algorithm": ["EDF", "RM"]},
        base_params=partition_params(partition),
    )


def edf_vs_rm_regions(
    partition: PartitionedTaskSet | None = None,
    *,
    workers: int | None = 1,
    cache_dir: str | os.PathLike | None = None,
) -> list[RegionComparison]:
    """EDF vs RM on the same partition (EDF must dominate, cf. Fig. 4)."""
    campaign = _stream(edf_vs_rm_specs(partition), workers, cache_dir)
    return [
        RegionComparison(algorithm=spec.params["algorithm"], **result)
        for spec, result in campaign.rows()
    ]


@dataclass(frozen=True)
class PartitionComparison:
    """Region quality achieved by one partitioning strategy.

    ``max_period_zero_overhead`` is None when the strategy's partition is so
    imbalanced that Eq. 15 has no feasible period at all — a real outcome
    for greedy heuristics (first/best-fit) that concentrate load: the summed
    per-mode demand ratios can exceed 1 even as ``P → 0``.
    """

    strategy: str
    max_period_zero_overhead: float | None
    max_admissible_overhead: float
    max_bin_utilization: Mapping[str, float]

    @property
    def feasible(self) -> bool:
        """Whether the partition admits any feasible period."""
        return self.max_period_zero_overhead is not None


def partitioning_specs(
    taskset: TaskSet | None = None,
    algorithm: str = "EDF",
    heuristics: Sequence[str] = ("worst-fit", "first-fit", "best-fit"),
) -> list[PointSpec]:
    """One ``ablate-partitioning`` point per strategy (manual + heuristics)."""
    return grid_specs(
        "ablate-partitioning",
        {"strategy": ["manual (paper)", *heuristics]},
        base_params={"algorithm": algorithm, **taskset_params(taskset)},
    )


def partitioning_comparison(
    taskset: TaskSet | None = None,
    algorithm: str = "EDF",
    heuristics: Sequence[str] = ("worst-fit", "first-fit", "best-fit"),
    *,
    workers: int | None = 1,
    cache_dir: str | os.PathLike | None = None,
) -> list[PartitionComparison]:
    """Manual Section-4 partition vs automatic bin-packing heuristics."""
    campaign = _stream(partitioning_specs(taskset, algorithm, heuristics), workers, cache_dir)
    return [
        PartitionComparison(strategy=spec.params["strategy"], **result)
        for spec, result in campaign.rows()
    ]


@dataclass(frozen=True)
class OverheadPoint:
    """Max feasible period (or None) at one total-overhead level."""

    otot: float
    max_period: float | None


def overhead_specs(
    partition: PartitionedTaskSet | None = None,
    algorithm: str = "EDF",
    otots: Sequence[float] = (0.0, 0.025, 0.05, 0.1, 0.15, 0.2, 0.25),
) -> list[PointSpec]:
    """One ``ablate-overhead`` point per total-overhead level."""
    return grid_specs(
        "ablate-overhead",
        {"otot": list(otots)},
        base_params={"algorithm": algorithm, **partition_params(partition)},
    )


def overhead_sensitivity(
    partition: PartitionedTaskSet | None = None,
    algorithm: str = "EDF",
    otots: Sequence[float] = (0.0, 0.025, 0.05, 0.1, 0.15, 0.2, 0.25),
    *,
    workers: int | None = 1,
    cache_dir: str | os.PathLike | None = None,
) -> list[OverheadPoint]:
    """Max feasible period as switching overhead grows (None = infeasible)."""
    campaign = _stream(overhead_specs(partition, algorithm, otots), workers, cache_dir)
    return [
        OverheadPoint(spec.params["otot"], result["max_period"])
        for spec, result in campaign.rows()
    ]


@dataclass(frozen=True)
class SlotSplitRow:
    """Supply improvement from splitting a mode's quantum into k pieces."""

    pieces: int
    delay: float
    supply_at_half_period: float


def slot_splitting_gain(
    period: float = 3.0,
    budget: float = 1.0,
    pieces_list: Sequence[int] = (1, 2, 3, 4),
    *,
    workers: int | None = 1,
    cache_dir: str | os.PathLike | None = None,
) -> list[SlotSplitRow]:
    """The future-work multi-quantum extension: delay shrinks with splitting.

    With ``k`` evenly spread pieces the worst-case starvation drops from
    ``P − Q̃`` towards ``(P − Q̃)/k``, enlarging the feasible space for
    short-deadline tasks.
    """
    campaign = _stream(slot_split_specs(period, budget, pieces_list), workers, cache_dir)
    return [
        SlotSplitRow(pieces=spec.params["pieces"], **result)
        for spec, result in campaign.rows()
    ]


def slot_split_specs(
    period: float = 3.0,
    budget: float = 1.0,
    pieces_list: Sequence[int] = (1, 2, 3, 4),
) -> list[PointSpec]:
    """One ``ablate-slot-split`` point per piece count."""
    return grid_specs(
        "ablate-slot-split",
        {"pieces": list(pieces_list)},
        base_params={"period": period, "budget": budget},
    )


def ablation_specs() -> list[PointSpec]:
    """Every default ablation point — the ``repro campaign ablations`` preset."""
    return [
        *exact_vs_linear_specs(),
        *edf_vs_rm_specs(),
        *partitioning_specs(),
        *overhead_specs(),
        *slot_split_specs(),
    ]
