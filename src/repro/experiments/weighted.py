"""The weighted-schedulability sweep over the generator parameter space.

The paper's evaluation (and the weighted acceptance-ratio methodology of
the follow-up literature, e.g. Bastoni et al.'s weighted schedulability)
scores an analysis not by a plain acceptance count but by the
utilization-weighted ratio

    W(p) = sum_i U_i * sched_i / sum_i U_i

over large random task-set populations, so hard (high-utilization) sets
count proportionally more. This module defines the ``weighted`` campaign
preset: a grid over the full generator parameter space —

* total utilization (``u_total``),
* task count (``n``),
* the period generator (hyperperiod-limited at two different hyperperiods;
  free log-uniform periods make the exact EDF ``dlSet`` analysis explode,
  see docs/campaigns.md),
* and, through a companion ``fault-injection`` grid over generated task
  sets, the Poisson fault rate —

streamed into :class:`~repro.runner.aggregate.CurveAccumulator` bins of
:class:`~repro.runner.aggregate.WeightedMeanAccumulator`, which is exactly
the W(p) construction. The aggregate is O(bins) regardless of how many
replications the grid sweeps.
"""

from __future__ import annotations

import os
from typing import Any, Mapping, Sequence

from repro.runner import (
    AdaptiveRefinementSource,
    Aggregator,
    PointSpec,
    ShardManifest,
    axis_values,
    curve_metric,
    extrema_metric,
    grid_specs,
    histogram_metric,
    mean_metric,
    shard_specs,
    stream_campaign,
)

#: Default schedulability grid: utilization x n x period generator x reps.
WEIGHTED_SCHED_AXES: dict[str, Any] = {
    "u_total": [0.4, 0.8, 1.2, 1.6, 2.0, 2.4],
    "n": [8, 16],
    "period_hyperperiod": [720.0, 3600.0],
    "rep": list(range(10)),
}

#: Default fault grid: Poisson rate x utilization x reps on generated sets.
WEIGHTED_FAULT_AXES: dict[str, Any] = {
    "rate": [0.01, 0.02, 0.05, 0.1],
    "u_total": [0.8, 1.2],
    "rep": list(range(5)),
}

#: Fixed parameters of the fault-injection half of the preset.
_FAULT_BASE: dict[str, Any] = {"source": "generated", "n": 8, "cycles": 20}


def weighted_specs(
    sched_axes: Mapping[str, Any] | None = None,
    fault_axes: Mapping[str, Any] | None = None,
) -> list[PointSpec]:
    """The full ``weighted`` preset: schedulability grid + fault grid.

    ``sched_axes``/``fault_axes`` override individual default axes (the CLI
    routes ``--axis`` here); pass an empty list to drop a whole sub-grid —
    e.g. ``fault_axes={"rate": []}`` is rejected by the grid expander, so
    instead shrink with single-value axes.
    """
    sched = {**WEIGHTED_SCHED_AXES, **dict(sched_axes or {})}
    fault = {**WEIGHTED_FAULT_AXES, **dict(fault_axes or {})}
    return [
        *grid_specs("schedulability", sched),
        *grid_specs("fault-injection", fault, base_params=_FAULT_BASE),
    ]


def weighted_adaptive_source(
    axes: Mapping[str, Any] | None = None,
    *,
    ci_width: float = 0.05,
    max_points: int | None = None,
) -> AdaptiveRefinementSource:
    """Adaptive point source for the ``weighted`` preset.

    Refines the ``weighted_feasible`` curve: every
    ``(u_total, n, period_hyperperiod)`` bin is sampled until its Wilson
    95% interval is no wider than ``ci_width``, and the ``u_total`` axis
    is bisected wherever adjacent bins of a curve disagree by more than
    the target width. The default ``rep`` axis length becomes the
    per-bin seed replication count; the companion fault-injection grid
    rides along unrefined as the source's static prefix (its
    ``fault_coverage`` curve keeps the exhaustive default).

    ``axes`` overrides individual default axes exactly like
    :func:`weighted_specs` (the CLI routes ``--axis`` here): overrides
    named in :data:`WEIGHTED_FAULT_AXES` apply to the fault grid, all
    non-``rate`` overrides apply to the schedulability sweep.
    """
    overrides = dict(axes or {})
    sched = {
        **WEIGHTED_SCHED_AXES,
        **{k: v for k, v in overrides.items() if k != "rate"},
    }
    fault = {
        **WEIGHTED_FAULT_AXES,
        **{k: v for k, v in overrides.items() if k in WEIGHTED_FAULT_AXES},
    }
    initial_reps = len(axis_values(sched.pop("rep"), name="rep"))
    # Key order must match the weighted_feasible curve's key parameter
    # order — the source addresses aggregate bins by it.
    key_axes = {
        name: sched.pop(name)
        for name in ("u_total", "n", "period_hyperperiod")
    }
    return AdaptiveRefinementSource(
        "schedulability",
        metric="weighted_feasible",
        key_axes=key_axes,
        refine_axis="u_total",
        ci_width=ci_width,
        extra_axes=sched,
        initial_reps=initial_reps,
        max_points=max_points,
        static_specs=grid_specs(
            "fault-injection", fault, base_params=_FAULT_BASE
        ),
    )


def weighted_aggregator() -> Aggregator:
    """The streaming aggregate behind the weighted preset.

    Curves (all keyed on the swept parameters, weighted by each generated
    set's actual utilization):

    * ``weighted_feasible`` — W(u_total, n, H) for end-to-end feasibility;
    * ``weighted_partitioned`` — same but for the partitioning stage only,
      so the curves separate "no partition" from "no slot design";
    * ``fault_coverage`` — W(rate, u_total) of zero-FT-miss campaigns;
    * plain ratios, a slack-ratio percentile sketch and period extrema as
      scalar cross-checks.
    """
    return Aggregator(
        [
            curve_metric(
                "weighted_feasible",
                ["u_total", "n", "period_hyperperiod"],
                "feasible",
                weight="utilization",
                experiment="schedulability",
            ),
            curve_metric(
                "weighted_partitioned",
                ["u_total", "n", "period_hyperperiod"],
                "partitioned",
                weight="utilization",
                experiment="schedulability",
            ),
            curve_metric(
                "fault_coverage",
                ["rate", "u_total"],
                lambda params, result: result["ft_misses"] == 0,
                weight=lambda params, result: params.get("u_total"),
                experiment="fault-injection",
            ),
            mean_metric(
                "feasible_ratio", "feasible", experiment="schedulability"
            ),
            mean_metric(
                "partitioned_ratio", "partitioned", experiment="schedulability"
            ),
            histogram_metric(
                "slack_ratio",
                "slack_ratio",
                lo=0.0,
                hi=1.0,
                bins=50,
                experiment="schedulability",
            ),
            extrema_metric("period", "period", experiment="schedulability"),
        ]
    )


def compute_weighted(
    sched_axes: Mapping[str, Any] | None = None,
    fault_axes: Mapping[str, Any] | None = None,
    *,
    workers: int | None = 1,
    master_seed: int = 0,
    cache_dir: str | os.PathLike | None = None,
    state_path: str | os.PathLike | None = None,
    shard: tuple[int, int] | None = None,
) -> Aggregator:
    """Run the weighted sweep and return the folded aggregate.

    Generated task sets that cannot even be designed (``fault-injection``
    at infeasible utilizations) are recorded as errors and excluded from
    the aggregate rather than aborting the sweep.

    ``shard=(i, N)`` runs only shard ``i`` of ``N`` of the grid (see
    :mod:`repro.runner.shard`): the returned aggregate then covers that
    shard's points only, and the ``state_path`` snapshot is tagged with the
    shard manifest so ``repro merge`` can later fold the N shard snapshots
    into the full-campaign aggregate.
    """
    specs = weighted_specs(sched_axes, fault_axes)
    manifest = None
    if shard is not None:
        index, count = shard
        manifest = ShardManifest.for_shard(specs, index, count)
        specs = shard_specs(specs, index, count)
    result = stream_campaign(
        specs,
        weighted_aggregator(),
        workers=workers,
        master_seed=master_seed,
        cache_dir=cache_dir,
        state_path=state_path,
        on_error="store",
        shard=manifest,
    )
    return result.aggregator


def weighted_curve_rows(
    aggregator: Aggregator, metric: str, axes: Sequence[str]
) -> tuple[list[str], list[list[Any]]]:
    """Flatten one curve metric into ``(headers, rows)`` for tabulation.

    ``axes`` names the key components (the curve was keyed on a parameter
    list in that order); rows come out sorted by key, one per bin, with the
    bin's total weight, fold count and weighted ratio.
    """
    from repro.viz import axis_sort_token

    curve = aggregator[metric]
    rows = []
    for key, acc in curve.items():  # type: ignore[attr-defined]
        parts = list(key) if isinstance(key, list) else [key]
        s = acc.summary()
        rows.append([*parts, s["count"], s.get("weight"), s["mean"]])
    rows.sort(key=lambda r: [axis_sort_token(x) for x in r[: len(axes)]])
    return [*axes, "points", "weight", "ratio"], rows


def render_weighted_ascii(
    aggregator: Aggregator,
    metric: str = "weighted_feasible",
    axes: Sequence[str] = ("u_total", "n", "period_hyperperiod"),
    *,
    width: int = 72,
    height: int = 16,
) -> str:
    """ASCII plot of one weighted curve metric: ratio vs. the first axis.

    Each combination of the remaining axes becomes its own series (markers
    cycle, so any number of series renders), which is how the merged
    full-campaign curves are eyeballed without matplotlib. Returns an empty
    string when the metric has no bins (e.g. a shard that drew no
    schedulability points).
    """
    from repro.viz import ascii_plot

    curve = aggregator[metric]
    series: dict[str, tuple[list[float], list[float]]] = {}
    for key, acc in curve.items():  # type: ignore[attr-defined]
        parts = list(key) if isinstance(key, list) else [key]
        mean = acc.summary().get("mean")
        if mean is None:
            continue
        name = (
            ", ".join(f"{a}={p:g}" if isinstance(p, float) else f"{a}={p}"
                      for a, p in zip(axes[1:], parts[1:]))
            or metric
        )
        xs, ys = series.setdefault(name, ([], []))
        xs.append(float(parts[0]))
        ys.append(float(mean))
    if not series:
        return ""
    return ascii_plot(
        series,
        width=width,
        height=height,
        x_label=axes[0],
        y_label="weighted ratio",
    )


__all__ = [
    "WEIGHTED_FAULT_AXES",
    "WEIGHTED_SCHED_AXES",
    "compute_weighted",
    "render_weighted_ascii",
    "weighted_adaptive_source",
    "weighted_aggregator",
    "weighted_curve_rows",
    "weighted_specs",
]
