"""Figure 4: the feasible-period region for EDF and RM.

Regenerates the two curves (Eq. 15 LHS vs. ``P``) and the five annotated
points of the figure. The five points are evaluated as ``figure4-point``
campaign specs through :func:`repro.runner.run_campaign` (deterministic, so
results match the former serial computation exactly); the plotted series
stays a single vectorised region sweep — there is no per-point loop to fan
out.
"""

from __future__ import annotations

import os
from dataclasses import dataclass

import numpy as np

from repro.core import FeasibleRegion
from repro.experiments.paper import PAPER_OTOT, paper_partition
from repro.model import PartitionedTaskSet
from repro.runner import (
    Aggregator,
    PointSpec,
    partition_params,
    slot_metric,
    stream_campaign,
)

#: Sweep parameters used by the paper's figure (and the annotated points).
_P_MAX = 3.5
_GRID = 4001


@dataclass(frozen=True)
class Figure4Points:
    """The five annotated points of Figure 4 (computed, not quoted).

    Points 1/2: max feasible period with zero overhead (EDF / RM).
    Points 3/4: max admissible total overhead (EDF / RM).
    Point 5: max feasible period at ``O_tot = 0.05`` under EDF.
    """

    point1_max_period_edf: float
    point2_max_period_rm: float
    point3_max_overhead_edf: float
    point4_max_overhead_rm: float
    point5_max_period_edf_otot: float
    otot: float = PAPER_OTOT


def figure4_series(
    partition: PartitionedTaskSet | None = None,
    *,
    p_max: float = _P_MAX,
    n: int = 1401,
) -> dict[str, np.ndarray]:
    """The plotted series: ``P`` grid plus ``G(P)`` for EDF and RM."""
    partition = partition or paper_partition()
    edf = FeasibleRegion(partition, "EDF", p_max=p_max, grid=_GRID)
    rm = FeasibleRegion(partition, "RM", p_max=p_max, grid=_GRID)
    ps, g_edf = edf.sweep(p_min=p_max / n, p_max=p_max, n=n)
    _, g_rm = rm.sweep(p_min=p_max / n, p_max=p_max, n=n)
    return {"P": ps, "EDF": g_edf, "RM": g_rm}


def figure4_specs(
    partition: PartitionedTaskSet | None = None,
    otot: float = PAPER_OTOT,
) -> list[PointSpec]:
    """The five campaign points behind :func:`compute_figure4_points`."""
    base = {"p_max": _P_MAX, "grid": _GRID, **partition_params(partition)}
    return [
        PointSpec(
            "figure4-point",
            {**base, "query": "max-period", "algorithm": "EDF", "otot": 0.0},
        ),
        PointSpec(
            "figure4-point",
            {**base, "query": "max-period", "algorithm": "RM", "otot": 0.0},
        ),
        PointSpec(
            "figure4-point", {**base, "query": "max-overhead", "algorithm": "EDF"}
        ),
        PointSpec(
            "figure4-point", {**base, "query": "max-overhead", "algorithm": "RM"}
        ),
        PointSpec(
            "figure4-point",
            {**base, "query": "max-period", "algorithm": "EDF", "otot": otot},
        ),
    ]


def figure4_points_from_results(
    results: list[dict], otot: float = PAPER_OTOT
) -> Figure4Points:
    """Rebuild the points from the :func:`figure4_specs` campaign results."""
    return Figure4Points(*(r["value"] for r in results), otot=otot)


def _slot_key(spec: PointSpec) -> str:
    p = spec.params
    return f"{p['query']}/{p['algorithm']}/otot={p.get('otot', 'peak')}"


def figure4_aggregator() -> Aggregator:
    """Streaming aggregate of the figure: one named slot per point."""
    return Aggregator([slot_metric("points", _slot_key)])


def figure4_points_from_aggregate(
    aggregator: Aggregator, otot: float = PAPER_OTOT
) -> Figure4Points:
    """Rebuild the five points from a folded :func:`figure4_aggregator`."""
    points = aggregator["points"]
    order = [
        "max-period/EDF/otot=0.0",
        "max-period/RM/otot=0.0",
        "max-overhead/EDF/otot=peak",
        "max-overhead/RM/otot=peak",
        f"max-period/EDF/otot={otot}",
    ]
    return Figure4Points(*(points[k]["value"] for k in order), otot=otot)


def compute_figure4_points(
    partition: PartitionedTaskSet | None = None,
    otot: float = PAPER_OTOT,
    *,
    workers: int | None = 1,
    cache_dir: str | os.PathLike | None = None,
) -> Figure4Points:
    """Compute the five annotated points of Figure 4.

    Streams through the aggregation layer (named point slots), identical
    results to the former materialized campaign.
    """
    streamed = stream_campaign(
        figure4_specs(partition, otot),
        figure4_aggregator(),
        workers=workers,
        cache_dir=cache_dir,
    )
    return figure4_points_from_aggregate(streamed.aggregator, otot=otot)
