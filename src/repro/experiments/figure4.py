"""Figure 4: the feasible-period region for EDF and RM.

Regenerates the two curves (Eq. 15 LHS vs. ``P``) and the five annotated
points of the figure.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core import FeasibleRegion
from repro.experiments.paper import PAPER_OTOT, paper_partition
from repro.model import PartitionedTaskSet


@dataclass(frozen=True)
class Figure4Points:
    """The five annotated points of Figure 4 (computed, not quoted).

    Points 1/2: max feasible period with zero overhead (EDF / RM).
    Points 3/4: max admissible total overhead (EDF / RM).
    Point 5: max feasible period at ``O_tot = 0.05`` under EDF.
    """

    point1_max_period_edf: float
    point2_max_period_rm: float
    point3_max_overhead_edf: float
    point4_max_overhead_rm: float
    point5_max_period_edf_otot: float
    otot: float = PAPER_OTOT


def _regions(
    partition: PartitionedTaskSet | None = None,
    *,
    p_max: float = 3.5,
    grid: int = 4001,
) -> tuple[FeasibleRegion, FeasibleRegion]:
    partition = partition or paper_partition()
    edf = FeasibleRegion(partition, "EDF", p_max=p_max, grid=grid)
    rm = FeasibleRegion(partition, "RM", p_max=p_max, grid=grid)
    return edf, rm


def figure4_series(
    partition: PartitionedTaskSet | None = None,
    *,
    p_max: float = 3.5,
    n: int = 1401,
) -> dict[str, np.ndarray]:
    """The plotted series: ``P`` grid plus ``G(P)`` for EDF and RM."""
    edf, rm = _regions(partition, p_max=p_max)
    ps, g_edf = edf.sweep(p_min=p_max / n, p_max=p_max, n=n)
    _, g_rm = rm.sweep(p_min=p_max / n, p_max=p_max, n=n)
    return {"P": ps, "EDF": g_edf, "RM": g_rm}


def compute_figure4_points(
    partition: PartitionedTaskSet | None = None,
    otot: float = PAPER_OTOT,
) -> Figure4Points:
    """Compute the five annotated points of Figure 4."""
    edf, rm = _regions(partition)
    return Figure4Points(
        point1_max_period_edf=edf.max_feasible_period(0.0),
        point2_max_period_rm=rm.max_feasible_period(0.0),
        point3_max_overhead_edf=edf.max_admissible_overhead().lhs,
        point4_max_overhead_rm=rm.max_admissible_overhead().lhs,
        point5_max_period_edf_otot=edf.max_feasible_period(otot),
        otot=otot,
    )
