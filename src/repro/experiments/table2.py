"""Table 2: the paper's three design rows for the Table 1 task set.

Row (a) lists the *required* per-mode utilizations
``max_i U(T_k^i)``; rows (b) and (c) are the two EDF designs at
``O_tot = 0.05`` produced by the min-overhead-bandwidth and max-slack goals.

The rows are evaluated as campaign points (``table2-required`` /
``table2-row``) through :func:`repro.runner.run_campaign`, so the table
shares the runner's caching and parallelism; results are identical to the
former in-process computation.
"""

from __future__ import annotations

import os
from dataclasses import dataclass

from repro.experiments.paper import PAPER_OTOT
from repro.model import PartitionedTaskSet
from repro.runner import (
    Aggregator,
    PointSpec,
    partition_params,
    slot_metric,
    stream_campaign,
)


@dataclass(frozen=True)
class Table2Row:
    """One row group of Table 2 (lengths + allocated utilizations)."""

    label: str
    period: float
    otot: float
    q_ft: float
    q_fs: float
    q_nf: float
    alloc_ft: float
    alloc_fs: float
    alloc_nf: float
    slack: float
    slack_ratio: float
    overhead_bandwidth: float


@dataclass(frozen=True)
class Table2:
    """The full reproduced table: required utilizations + both designs."""

    req_util_ft: float
    req_util_fs: float
    req_util_nf: float
    row_b: Table2Row
    row_c: Table2Row

    def render(self) -> str:
        """Paper-style text rendering of the table."""
        hdr = (
            f"{'':<16}{'P':>8}{'Otot':>8}{'Q~FT':>8}{'Q~FS':>8}{'Q~NF':>8}"
            f"{'slack':>8}"
        )
        lines = [hdr]
        lines.append(
            f"{'(a) req. util.':<16}{'':>8}{'':>8}"
            f"{self.req_util_ft:>8.3f}{self.req_util_fs:>8.3f}{self.req_util_nf:>8.3f}{'':>8}"
        )
        for row in (self.row_b, self.row_c):
            lines.append(
                f"{row.label + ' length':<16}{row.period:>8.3f}{row.otot:>8.3f}"
                f"{row.q_ft:>8.3f}{row.q_fs:>8.3f}{row.q_nf:>8.3f}{row.slack:>8.3f}"
            )
            lines.append(
                f"{row.label + ' alloc.':<16}{1.0:>8.3f}{row.overhead_bandwidth:>8.3f}"
                f"{row.alloc_ft:>8.3f}{row.alloc_fs:>8.3f}{row.alloc_nf:>8.3f}"
                f"{row.slack_ratio:>8.3f}"
            )
        return "\n".join(lines)


def table2_specs(
    partition: PartitionedTaskSet | None = None,
    otot: float = PAPER_OTOT,
    algorithm: str = "EDF",
) -> list[PointSpec]:
    """The three campaign points behind :func:`compute_table2`."""
    base = {"algorithm": algorithm, "otot": otot, **partition_params(partition)}
    return [
        PointSpec("table2-required", {k: v for k, v in base.items() if k != "otot"}),
        PointSpec("table2-row", {**base, "goal": "min-overhead-bandwidth"}),
        PointSpec("table2-row", {**base, "goal": "max-slack"}),
    ]


def table2_from_results(results: list[dict]) -> Table2:
    """Rebuild the table from the :func:`table2_specs` campaign results."""
    req, row_b, row_c = results
    return Table2(
        req_util_ft=req["FT"],
        req_util_fs=req["FS"],
        req_util_nf=req["NF"],
        row_b=Table2Row(label="(b)", **row_b),
        row_c=Table2Row(label="(c)", **row_c),
    )


def _slot_key(spec: PointSpec) -> str:
    if spec.experiment == "table2-required":
        return "required"
    return spec.params["goal"]


def table2_aggregator() -> Aggregator:
    """Streaming aggregate of the table: one named slot per row group."""
    return Aggregator([slot_metric("rows", _slot_key)])


def table2_from_aggregate(aggregator: Aggregator) -> Table2:
    """Rebuild the table from a folded :func:`table2_aggregator`."""
    rows = aggregator["rows"]
    return table2_from_results(
        [rows["required"], rows["min-overhead-bandwidth"], rows["max-slack"]]
    )


def compute_table2(
    partition: PartitionedTaskSet | None = None,
    otot: float = PAPER_OTOT,
    algorithm: str = "EDF",
    *,
    workers: int | None = 1,
    cache_dir: str | os.PathLike | None = None,
) -> Table2:
    """Reproduce Table 2 for the given partition (default: the paper's).

    Streams through the aggregation layer: the campaign folds into the
    three named row slots as points complete, exactly as a million-point
    sweep would — results are identical to the former materialized path.
    """
    streamed = stream_campaign(
        table2_specs(partition, otot, algorithm),
        table2_aggregator(),
        workers=workers,
        cache_dir=cache_dir,
    )
    return table2_from_aggregate(streamed.aggregator)
