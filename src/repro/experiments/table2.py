"""Table 2: the paper's three design rows for the Table 1 task set.

Row (a) lists the *required* per-mode utilizations
``max_i U(T_k^i)``; rows (b) and (c) are the two EDF designs at
``O_tot = 0.05`` produced by the min-overhead-bandwidth and max-slack goals.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core import (
    FeasibleRegion,
    MaxSlackGoal,
    MinOverheadBandwidthGoal,
    Overheads,
    PlatformConfig,
    design_platform,
)
from repro.experiments.paper import PAPER_OTOT, paper_partition
from repro.model import Mode, PartitionedTaskSet


@dataclass(frozen=True)
class Table2Row:
    """One row group of Table 2 (lengths + allocated utilizations)."""

    label: str
    period: float
    otot: float
    q_ft: float
    q_fs: float
    q_nf: float
    alloc_ft: float
    alloc_fs: float
    alloc_nf: float
    slack: float
    slack_ratio: float
    overhead_bandwidth: float

    @classmethod
    def from_config(cls, label: str, config: PlatformConfig) -> "Table2Row":
        s = config.schedule
        return cls(
            label=label,
            period=s.period,
            otot=s.overheads.total,
            q_ft=s.usable(Mode.FT),
            q_fs=s.usable(Mode.FS),
            q_nf=s.usable(Mode.NF),
            alloc_ft=s.alpha(Mode.FT),
            alloc_fs=s.alpha(Mode.FS),
            alloc_nf=s.alpha(Mode.NF),
            slack=config.slack,
            slack_ratio=config.slack_ratio,
            overhead_bandwidth=s.overheads.total / s.period,
        )


@dataclass(frozen=True)
class Table2:
    """The full reproduced table: required utilizations + both designs."""

    req_util_ft: float
    req_util_fs: float
    req_util_nf: float
    row_b: Table2Row
    row_c: Table2Row

    def render(self) -> str:
        """Paper-style text rendering of the table."""
        hdr = (
            f"{'':<16}{'P':>8}{'Otot':>8}{'Q~FT':>8}{'Q~FS':>8}{'Q~NF':>8}"
            f"{'slack':>8}"
        )
        lines = [hdr]
        lines.append(
            f"{'(a) req. util.':<16}{'':>8}{'':>8}"
            f"{self.req_util_ft:>8.3f}{self.req_util_fs:>8.3f}{self.req_util_nf:>8.3f}{'':>8}"
        )
        for row in (self.row_b, self.row_c):
            lines.append(
                f"{row.label + ' length':<16}{row.period:>8.3f}{row.otot:>8.3f}"
                f"{row.q_ft:>8.3f}{row.q_fs:>8.3f}{row.q_nf:>8.3f}{row.slack:>8.3f}"
            )
            lines.append(
                f"{row.label + ' alloc.':<16}{1.0:>8.3f}{row.overhead_bandwidth:>8.3f}"
                f"{row.alloc_ft:>8.3f}{row.alloc_fs:>8.3f}{row.alloc_nf:>8.3f}"
                f"{row.slack_ratio:>8.3f}"
            )
        return "\n".join(lines)


def compute_table2(
    partition: PartitionedTaskSet | None = None,
    otot: float = PAPER_OTOT,
    algorithm: str = "EDF",
) -> Table2:
    """Reproduce Table 2 for the given partition (default: the paper's)."""
    partition = partition or paper_partition()
    overheads = Overheads.uniform(otot)
    region = FeasibleRegion(partition, algorithm)
    cfg_b = design_platform(
        partition, algorithm, overheads, MinOverheadBandwidthGoal(), region=region
    )
    cfg_c = design_platform(
        partition, algorithm, overheads, MaxSlackGoal(), region=region
    )
    return Table2(
        req_util_ft=partition.max_bin_utilization(Mode.FT),
        req_util_fs=partition.max_bin_utilization(Mode.FS),
        req_util_nf=partition.max_bin_utilization(Mode.NF),
        row_b=Table2Row.from_config("(b)", cfg_b),
        row_c=Table2Row.from_config("(c)", cfg_c),
    )
