"""Synthetic workload generation for sweeps and ablations.

The paper evaluates one hand-built task set (Table 1); the benchmark
ablations additionally sweep over synthetic task sets produced here:

* utilization vectors: :func:`uunifast`, :func:`uunifast_discard`,
  :func:`randfixedsum` (Stafford's algorithm, the standard unbiased
  generator of Emberson et al.);
* periods: :func:`uniform_periods`, :func:`loguniform_periods`,
  :func:`harmonic_periods`, :func:`hyperperiod_limited_periods`;
* mode mixes: :func:`assign_modes_by_share`;
* one-call task-set factories: :func:`generate_taskset`,
  :func:`generate_mixed_taskset`.
"""

from repro.generators.modes import assign_modes_by_share
from repro.generators.periods import (
    harmonic_periods,
    hyperperiod_limited_periods,
    loguniform_periods,
    uniform_periods,
)
from repro.generators.randfixedsum import randfixedsum
from repro.generators.taskset_gen import generate_mixed_taskset, generate_taskset
from repro.generators.uunifast import uunifast, uunifast_discard

__all__ = [
    "uunifast",
    "uunifast_discard",
    "randfixedsum",
    "uniform_periods",
    "loguniform_periods",
    "harmonic_periods",
    "hyperperiod_limited_periods",
    "assign_modes_by_share",
    "generate_taskset",
    "generate_mixed_taskset",
]
