"""Period generators.

Real-time experiments conventionally draw periods log-uniformly (Emberson et
al.) so every order of magnitude is equally represented; uniform and
harmonic generators are provided for sensitivity studies. All generators can
round periods to a granularity ``g`` (keeping hyperperiods manageable for
the EDF ``dlSet`` computations).
"""

from __future__ import annotations

import numpy as np

from repro.util import check_positive


def _round_to(values: np.ndarray, granularity: float | None) -> np.ndarray:
    if granularity is None:
        return values
    check_positive("granularity", granularity)
    out = np.round(values / granularity) * granularity
    return np.maximum(out, granularity)


def uniform_periods(
    n: int,
    rng: np.random.Generator,
    *,
    low: float = 10.0,
    high: float = 100.0,
    granularity: float | None = None,
) -> np.ndarray:
    """``n`` periods uniform in ``[low, high]``."""
    if n < 1:
        raise ValueError(f"n must be >= 1: got {n}")
    check_positive("low", low)
    if high <= low:
        raise ValueError(f"empty range [{low}, {high}]")
    return _round_to(rng.uniform(low, high, n), granularity)


def loguniform_periods(
    n: int,
    rng: np.random.Generator,
    *,
    low: float = 10.0,
    high: float = 1000.0,
    granularity: float | None = None,
) -> np.ndarray:
    """``n`` periods log-uniform in ``[low, high]`` (Emberson et al.)."""
    if n < 1:
        raise ValueError(f"n must be >= 1: got {n}")
    check_positive("low", low)
    if high <= low:
        raise ValueError(f"empty range [{low}, {high}]")
    return _round_to(
        np.exp(rng.uniform(np.log(low), np.log(high), n)), granularity
    )


def hyperperiod_limited_periods(
    n: int,
    rng: np.random.Generator,
    *,
    low: float = 10.0,
    high: float = 1000.0,
    hyperperiod: float = 3600.0,
) -> np.ndarray:
    """``n`` periods drawn from the divisors of ``hyperperiod`` in ``[low, high]``.

    The Goossens-&-Macq-style limitation: every sampled period divides the
    given ``hyperperiod``, so any subset of tasks has a hyperperiod that
    divides it too. This keeps the EDF ``dlSet`` (and thus the vectorised
    ``minQ`` curves behind the campaign sweeps) small and *exact* even for
    wide period ranges, where free log-uniform integer periods make the LCM
    explode. Divisors are weighted ``1/d`` to approximate the conventional
    log-uniform spread across magnitudes.
    """
    if n < 1:
        raise ValueError(f"n must be >= 1: got {n}")
    check_positive("low", low)
    if high <= low:
        raise ValueError(f"empty range [{low}, {high}]")
    base = int(round(hyperperiod))
    if base < 1 or abs(hyperperiod - base) > 1e-9:
        raise ValueError(f"hyperperiod must be a positive integer: got {hyperperiod}")
    divs: set[int] = set()
    for d in range(1, int(base**0.5) + 1):
        if base % d == 0:
            divs.add(d)
            divs.add(base // d)
    divisors = np.array(
        sorted(d for d in divs if low <= d <= high), dtype=float
    )
    if len(divisors) < 2:
        raise ValueError(
            f"hyperperiod {base} has fewer than 2 divisors in [{low}, {high}]"
        )
    weights = 1.0 / divisors
    return rng.choice(divisors, size=n, p=weights / weights.sum())


def harmonic_periods(
    n: int,
    rng: np.random.Generator,
    *,
    base: float = 10.0,
    max_doublings: int = 5,
) -> np.ndarray:
    """``n`` periods of the form ``base * 2^k`` — pairwise harmonic.

    Harmonic sets have hyperperiod ``base * 2^max_k`` and RM utilization
    bound 1.0, making them a useful best-case ablation.
    """
    if n < 1:
        raise ValueError(f"n must be >= 1: got {n}")
    check_positive("base", base)
    if max_doublings < 0:
        raise ValueError("max_doublings must be >= 0")
    ks = rng.integers(0, max_doublings + 1, n)
    return base * (2.0 ** ks)
