"""Stafford's RandFixedSum (as popularised for real-time by Emberson et al.).

Generates vectors of ``n`` values in ``[a, b]`` with an exact fixed sum,
uniformly distributed over that constraint polytope. Unlike UUniFast-discard
it needs no rejection loop, so it stays efficient even for tight
``u_max`` constraints.

This is a NumPy port of Roger Stafford's MATLAB ``randfixedsum`` restricted
to what the workload generator needs (single vector draws with common
bounds).
"""

from __future__ import annotations

import numpy as np

from repro.util import check_positive


def randfixedsum(
    n: int,
    total: float,
    rng: np.random.Generator,
    *,
    low: float = 0.0,
    high: float = 1.0,
) -> np.ndarray:
    """``n`` values in ``[low, high]`` summing to ``total``, uniform.

    Raises :class:`ValueError` when the target sum is outside
    ``[n*low, n*high]``.
    """
    if n < 1:
        raise ValueError(f"n must be >= 1: got {n}")
    if high <= low:
        raise ValueError(f"empty range [{low}, {high}]")
    if not (n * low - 1e-12 <= total <= n * high + 1e-12):
        raise ValueError(
            f"infeasible: total={total} outside [{n * low}, {n * high}]"
        )
    if n == 1:
        return np.array([float(np.clip(total, low, high))])

    # Rescale to the unit problem: values in [0,1] summing to s.
    s = (total - n * low) / (high - low)
    s = float(np.clip(s, 0.0, float(n)))

    # Probability table (Stafford's t1/t2 recursion).
    k = int(np.clip(np.floor(s), 0, n - 1))
    s = max(min(s, float(k + 1)), float(k))
    s1 = s - np.arange(k, k - n, -1)
    s2 = np.arange(k + n, k, -1) - s
    tiny = np.finfo(float).tiny
    huge = np.finfo(float).max
    w = np.zeros((n, n + 1))
    w[0, 1] = huge
    t = np.zeros((n - 1, n))
    for i in range(2, n + 1):
        tmp1 = w[i - 2, 1 : i + 1] * s1[: i] / i
        tmp2 = w[i - 2, : i] * s2[n - i : n] / i
        w[i - 1, 1 : i + 1] = tmp1 + tmp2
        tmp3 = w[i - 1, 1 : i + 1] + tiny
        tmp4 = s2[n - i : n] > s1[: i]
        t[i - 2, : i] = (tmp2 / tmp3) * tmp4 + (1 - tmp1 / tmp3) * (~tmp4)

    # Walk the table backwards turning uniform draws into simplex samples.
    x = np.zeros(n + 1)
    rt = rng.random(n - 1)  # rand simplex type
    rs = rng.random(n - 1)  # rand position in simplex
    j = k + 1
    sm, pr = 0.0, 1.0
    for i in range(n - 1, 0, -1):
        e = float(rt[n - i - 1] <= t[i - 1, j - 1])
        sx = rs[n - i - 1] ** (1.0 / i)
        sm += (1.0 - sx) * pr * s / (i + 1)
        pr *= sx
        x[n - i - 1] = sm + pr * e
        s -= e
        j -= int(e)
    x[n - 1] = sm + pr * s

    # Random permutation (the recursion is order-biased).
    x_final = x[:n][rng.permutation(n)]
    return low + (high - low) * x_final
