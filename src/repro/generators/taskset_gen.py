"""One-call synthetic task-set factories used by the benchmark sweeps."""

from __future__ import annotations

from typing import Mapping

import numpy as np

from repro.generators.modes import assign_modes_by_share
from repro.generators.periods import (
    hyperperiod_limited_periods,
    loguniform_periods,
    uniform_periods,
)
from repro.generators.randfixedsum import randfixedsum
from repro.generators.uunifast import uunifast_discard
from repro.model import Mode, Task, TaskSet
from repro.util import check_positive


def generate_taskset(
    n: int,
    u_total: float,
    rng: np.random.Generator,
    *,
    mode: Mode = Mode.NF,
    period_low: float = 10.0,
    period_high: float = 1000.0,
    u_max: float = 1.0,
    deadline_factor: float = 1.0,
    utilization_method: str = "uunifast-discard",
    period_method: str = "loguniform",
    period_hyperperiod: float = 3600.0,
    period_granularity: float | None = 1.0,
    name_prefix: str = "t",
) -> TaskSet:
    """Generate ``n`` sporadic tasks of one mode with total utilization ``u_total``.

    Parameters
    ----------
    deadline_factor:
        ``D_i = max(C_i, deadline_factor * T_i)`` with
        ``0 < deadline_factor <= 1`` (1.0 = implicit deadlines).
    utilization_method:
        ``"uunifast-discard"`` or ``"randfixedsum"``.
    period_method:
        ``"loguniform"`` (Emberson et al., default), ``"uniform"``, or
        ``"hyperperiod-limited"`` — divisors of ``period_hyperperiod``, the
        choice that keeps exact EDF analysis tractable in large campaigns.
    period_hyperperiod:
        Common multiple all periods divide under ``"hyperperiod-limited"``.
    period_granularity:
        Round periods to multiples of this (keeps hyperperiods tractable);
        None disables rounding. Ignored by ``"hyperperiod-limited"`` (its
        samples are exact divisors already).
    """
    if n < 1:
        raise ValueError(f"n must be >= 1: got {n}")
    check_positive("u_total", u_total)
    if not 0 < deadline_factor <= 1.0:
        raise ValueError(f"deadline_factor must be in (0, 1]: got {deadline_factor}")
    if utilization_method == "uunifast-discard":
        utils = uunifast_discard(n, u_total, rng, u_max=u_max)
    elif utilization_method == "randfixedsum":
        utils = randfixedsum(n, u_total, rng, low=0.0, high=u_max)
    else:
        raise ValueError(f"unknown utilization_method {utilization_method!r}")
    if period_method == "loguniform":
        periods = loguniform_periods(
            n, rng, low=period_low, high=period_high, granularity=period_granularity
        )
    elif period_method == "uniform":
        periods = uniform_periods(
            n, rng, low=period_low, high=period_high, granularity=period_granularity
        )
    elif period_method == "hyperperiod-limited":
        periods = hyperperiod_limited_periods(
            n, rng, low=period_low, high=period_high,
            hyperperiod=period_hyperperiod,
        )
    else:
        raise ValueError(f"unknown period_method {period_method!r}")
    tasks = []
    for i, (u, p) in enumerate(zip(utils, periods), start=1):
        wcet = max(u * p, 1e-6)
        deadline = min(max(wcet, deadline_factor * p), p)
        tasks.append(
            Task(
                name=f"{name_prefix}{i}",
                wcet=wcet,
                period=float(p),
                deadline=deadline,
                mode=mode,
            )
        )
    return TaskSet(tasks)


def generate_mixed_taskset(
    n: int,
    u_total: float,
    rng: np.random.Generator,
    *,
    mode_shares: Mapping[Mode, float] | None = None,
    **kwargs,
) -> TaskSet:
    """Generate a task set with a random FT/FS/NF mode mix.

    ``mode_shares`` defaults to the paper-like 5:4:4 NF/FS/FT mix. Remaining
    keyword arguments are forwarded to :func:`generate_taskset`.
    """
    from repro.generators.modes import paper_like_shares

    base = generate_taskset(n, u_total, rng, **kwargs)
    modes = assign_modes_by_share(n, mode_shares or paper_like_shares(), rng)
    return TaskSet(t.replace(mode=m) for t, m in zip(base, modes))
