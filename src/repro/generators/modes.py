"""Assignment of fault-robustness modes to generated tasks."""

from __future__ import annotations

from typing import Mapping, Sequence

import numpy as np

from repro.model import Mode


def assign_modes_by_share(
    n: int,
    shares: Mapping[Mode, float],
    rng: np.random.Generator,
) -> list[Mode]:
    """Draw one mode per task according to the given probability shares.

    ``shares`` need not be normalised; missing modes get probability 0.
    Raises :class:`ValueError` when no positive share is given.
    """
    if n < 0:
        raise ValueError(f"n must be >= 0: got {n}")
    modes = list(Mode)
    weights = np.array([max(float(shares.get(m, 0.0)), 0.0) for m in modes])
    total = weights.sum()
    if total <= 0:
        raise ValueError("at least one mode share must be positive")
    probs = weights / total
    picks = rng.choice(len(modes), size=n, p=probs)
    return [modes[int(i)] for i in picks]


def paper_like_shares() -> dict[Mode, float]:
    """Mode mix mirroring the paper's example (5 NF : 4 FS : 4 FT)."""
    return {Mode.NF: 5.0, Mode.FS: 4.0, Mode.FT: 4.0}
