"""UUniFast utilization generation (Bini & Buttazzo 2005).

Draws ``n`` task utilizations summing exactly to ``u_total``, uniformly over
the simplex — the standard generator for uniprocessor experiments. The
``discard`` variant (Davis & Burns) resamples until every individual
utilization is at most ``u_max``, which keeps the distribution uniform over
the truncated simplex and is the standard multiprocessor adaptation.
"""

from __future__ import annotations

import numpy as np

from repro.util import check_positive


def uunifast(n: int, u_total: float, rng: np.random.Generator) -> np.ndarray:
    """``n`` utilizations summing to ``u_total``, uniform on the simplex."""
    if n < 1:
        raise ValueError(f"n must be >= 1: got {n}")
    check_positive("u_total", u_total)
    utils = np.empty(n)
    remaining = u_total
    for i in range(n - 1):
        next_remaining = remaining * rng.random() ** (1.0 / (n - 1 - i))
        utils[i] = remaining - next_remaining
        remaining = next_remaining
    utils[n - 1] = remaining
    return utils


def uunifast_discard(
    n: int,
    u_total: float,
    rng: np.random.Generator,
    *,
    u_max: float = 1.0,
    max_attempts: int = 10_000,
) -> np.ndarray:
    """UUniFast with rejection of vectors containing any ``U_i > u_max``.

    Raises :class:`RuntimeError` when the acceptance region is so small that
    ``max_attempts`` resamples all fail (e.g. ``u_total/n`` close to
    ``u_max``).
    """
    if u_total > n * u_max:
        raise ValueError(
            f"infeasible: u_total={u_total} > n*u_max={n * u_max}"
        )
    for _ in range(max_attempts):
        utils = uunifast(n, u_total, rng)
        if np.all(utils <= u_max):
            return utils
    raise RuntimeError(
        f"uunifast_discard failed after {max_attempts} attempts "
        f"(n={n}, u_total={u_total}, u_max={u_max})"
    )
