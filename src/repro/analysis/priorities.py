"""Priority assignment for fixed-priority scheduling.

Provides the two classic static orders (rate monotonic, deadline monotonic)
and Audsley's optimal priority assignment (OPA) for supply-aware feasibility.
A priority order is represented as a tuple of tasks, highest priority first;
ties are broken by task name so orders are deterministic.
"""

from __future__ import annotations

from typing import Callable, Sequence

from repro.model import Task, TaskSet


def rate_monotonic(taskset: TaskSet) -> tuple[Task, ...]:
    """Rate-monotonic order: shorter period = higher priority (RM).

    RM is optimal among fixed-priority orders for synchronous implicit-
    deadline task sets on a dedicated processor (Liu & Layland).
    """
    return tuple(sorted(taskset, key=lambda t: (t.period, t.name)))


def deadline_monotonic(taskset: TaskSet) -> tuple[Task, ...]:
    """Deadline-monotonic order: shorter relative deadline = higher priority.

    Optimal for constrained-deadline synchronous task sets on a dedicated
    processor (Leung & Whitehead); coincides with RM when ``D_i = T_i``.
    """
    return tuple(sorted(taskset, key=lambda t: (t.deadline, t.name)))


def priority_order(taskset: TaskSet, policy: str) -> tuple[Task, ...]:
    """Resolve a policy name (``"RM"``, ``"DM"``) to a priority order."""
    policy = policy.upper()
    if policy == "RM":
        return rate_monotonic(taskset)
    if policy == "DM":
        return deadline_monotonic(taskset)
    raise ValueError(f"unknown fixed-priority policy {policy!r} (use 'RM' or 'DM')")


def audsley_opa(
    taskset: TaskSet,
    feasible_at: Callable[[Task, Sequence[Task]], bool],
) -> tuple[Task, ...] | None:
    """Audsley's optimal priority assignment.

    Parameters
    ----------
    taskset:
        Tasks to order.
    feasible_at:
        Predicate ``feasible_at(task, higher_priority_tasks)`` telling whether
        ``task`` meets its deadline when exactly ``higher_priority_tasks``
        have higher priority. For OPA to be optimal the predicate must depend
        only on the *set* of higher-priority tasks, not their relative order —
        true for both Theorem 1 and the classic point test.

    Returns
    -------
    A priority order (highest first) under which every task passes
    ``feasible_at``, or ``None`` if no fixed-priority order exists.
    """
    remaining: list[Task] = list(taskset)
    order_low_to_high: list[Task] = []
    while remaining:
        placed = False
        # Deterministic choice: try candidates in name order.
        for cand in sorted(remaining, key=lambda t: t.name):
            others = [t for t in remaining if t is not cand]
            if feasible_at(cand, others):
                order_low_to_high.append(cand)
                remaining.remove(cand)
                placed = True
                break
        if not placed:
            return None
    return tuple(reversed(order_low_to_high))
