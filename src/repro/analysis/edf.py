"""EDF schedulability: demand bound function, ``dlSet`` and Theorem 2.

Implements Eq. 9 of the paper — the EDF demand

.. math:: W(t) = \\sum_i \\max\\Big(\\Big\\lfloor \\frac{t + T_i - D_i}{T_i}
          \\Big\\rfloor,\\ 0\\Big)\\, C_i

(the classic processor demand bound function ``dbf``), the deadline set
``dlSet`` over which Theorem 2 quantifies, the supply-aware EDF test, its
dedicated-processor specialisation, and Zhang & Burns' Quick Processor-demand
Analysis (QPA) as a faster dedicated test.

Every entry point routes through the integer fast kernels of
:mod:`repro.analysis.kernels` when the task set rescales onto an exact
integer time base (no ``EPS`` anywhere on that path), and falls back to the
float implementation otherwise. The float paths share one tolerance
discipline: job counts snap via :func:`~repro.util.fuzzy_floor` /
:func:`~repro.util.fuzzy_floor_array` (the same rule scalar and vector),
and horizon boundaries use the :func:`~repro.util.boundary_le` /
:func:`~repro.util.boundary_lt` band rule.
"""

from __future__ import annotations

from typing import Iterable

import numpy as np

from repro.analysis import kernels
from repro.analysis.results import EDFAnalysis
from repro.model import TaskSet
from repro.supply import DedicatedSupply, SupplyFunction
from repro.util import (
    EPS,
    approx_le,
    boundary_le,
    boundary_lt,
    check_positive,
    fuzzy_floor,
    fuzzy_floor_array,
)


def demand_bound_function(taskset: TaskSet, t: float) -> float:
    """EDF demand ``W(t)`` of Eq. 9 at a single point ``t >= 0``."""
    if t < 0:
        raise ValueError(f"t must be >= 0: got {t}")
    if kernels.fast_kernels_enabled() and len(taskset):
        sts = kernels.rescale(taskset.tasks)
        t_scaled = kernels.scale_scalar(sts, t) if sts is not None else None
        kernels.note_selection(t_scaled is not None)
        if sts is not None and t_scaled is not None:
            total = 0.0
            for i, task in enumerate(taskset):
                p = int(sts.periods[i])
                jobs = (t_scaled + (p - int(sts.deadlines[i]))) // p
                if jobs > 0:
                    total += jobs * task.wcet
            return total
    total = 0.0
    for task in taskset:
        jobs = fuzzy_floor((t + task.period - task.deadline) / task.period)
        if jobs > 0:
            total += jobs * task.wcet
    return total


def demand_bound_array(taskset: TaskSet, ts: Iterable[float]) -> np.ndarray:
    """Vectorised ``W(t)`` over an array of points."""
    t = np.asarray(list(ts), dtype=float)
    if kernels.fast_kernels_enabled() and len(taskset):
        sts = kernels.rescale(taskset.tasks)
        t_scaled = kernels.scale_points(sts, t) if sts is not None else None
        kernels.note_selection(t_scaled is not None)
        if sts is not None and t_scaled is not None:
            return kernels.demand_array(sts, t_scaled)
    total = np.zeros_like(t)
    for task in taskset:
        jobs = fuzzy_floor_array(
            (t + task.period - task.deadline) / task.period
        )
        total += np.maximum(jobs, 0.0) * task.wcet
    return total


def deadline_set(taskset: TaskSet, horizon: float | None = None) -> tuple[float, ...]:
    """``dlSet(T)``: every absolute deadline in ``(0, horizon]``.

    ``horizon`` defaults to the hyperperiod, matching Theorem 2. Deadlines
    are generated from the synchronous pattern (``k T_i + D_i``), de-duplicated
    and sorted. A deadline on the horizon boundary is *included* — the
    shared :func:`~repro.util.boundary_le` rule (exact on the integer fast
    path, ``±EPS`` band on the float path).
    """
    if len(taskset) == 0:
        return ()
    if horizon is not None:
        check_positive("horizon", horizon)
    if kernels.fast_kernels_enabled():
        sts = kernels.rescale(taskset.tasks)
        horizon_scaled: int | None = None
        if sts is not None:
            horizon_scaled = (
                sts.hyperperiod
                if horizon is None
                else kernels.scale_horizon(sts, horizon)
            )
        kernels.note_selection(horizon_scaled is not None)
        if sts is not None and horizon_scaled is not None:
            pts = kernels.deadline_points(sts, horizon_scaled)
            return tuple(kernels.to_time(sts, pts).tolist())
    if horizon is None:
        horizon = taskset.hyperperiod()
        check_positive("horizon", horizon)
    points: set[float] = set()
    for task in taskset:
        d = task.deadline
        k = 0
        while True:
            t = k * task.period + d
            if not boundary_le(t, horizon):
                break
            points.add(t)
            k += 1
    return tuple(sorted(points))


def edf_demand_points(taskset: TaskSet, horizon: float | None = None) -> np.ndarray:
    """``dlSet`` as a numpy array (convenience for vectorised sweeps)."""
    return np.asarray(deadline_set(taskset, horizon), dtype=float)


def edf_utilization_test(taskset: TaskSet, capacity: float = 1.0) -> bool:
    """Necessary-and-sufficient EDF test for implicit deadlines: ``U <= cap``."""
    if not taskset.all_implicit_deadline:
        raise ValueError(
            "the EDF utilization test is exact only for implicit deadlines; "
            "use edf_schedulable_dedicated for constrained deadlines"
        )
    return approx_le(taskset.utilization, capacity)


def _check_horizon(taskset: TaskSet, supply: SupplyFunction) -> float:
    """Safe upper limit for demand points in the supply-aware EDF test.

    Demand grows as ``W(t) <= U t + B`` with
    ``B = sum_i C_i (T_i - D_i)/T_i >= 0``, while the linear supply bound
    guarantees ``Z(t) >= α(t − Δ)``. For ``α > U`` every point beyond
    ``t* = (B + αΔ)/(α − U)`` passes automatically, so checking deadlines up
    to ``t*`` is exact. When ``α <= U`` (no analytic cut-off) we fall back to
    the paper's hyperperiod bound.
    """
    alpha, delta = supply.alpha, supply.delta
    u = taskset.utilization
    if alpha > u + 1e-12 and np.isfinite(delta):
        b = sum(t.wcet * (t.period - t.deadline) / t.period for t in taskset)
        t_star = (b + alpha * delta) / (alpha - u)
        return max(t_star, max(t.deadline for t in taskset))
    return taskset.hyperperiod()


def edf_schedulable_supply(
    taskset: TaskSet,
    supply: SupplyFunction,
    *,
    horizon: float | None = None,
) -> EDFAnalysis:
    """Theorem 2: EDF feasibility of ``taskset`` under a supply function.

    Checks ``Z(t) >= W(t)`` at every absolute deadline up to ``horizon``
    (default: the exact analytic cut-off when the supply rate exceeds the
    utilization, else the hyperperiod — see :func:`_check_horizon`), after
    the necessary rate condition ``U(T) <= α``. The deadline points and the
    demand vector come from the integer fast kernels whenever the task set
    rescales (see :mod:`repro.analysis.kernels`).
    """
    if len(taskset) == 0:
        return EDFAnalysis(True, points_checked=0)
    if taskset.utilization > supply.alpha + 1e-9:
        return EDFAnalysis(
            False,
            violation=float("inf"),
            demand_at_violation=taskset.utilization,
            supply_at_violation=supply.alpha,
            points_checked=0,
        )
    if horizon is None:
        horizon = _check_horizon(taskset, supply)
    pts = edf_demand_points(taskset, horizon)
    if pts.size == 0:
        return EDFAnalysis(True, points_checked=0)
    demand = demand_bound_array(taskset, pts)
    z = supply.supply_array(pts)
    bad = np.nonzero(z < demand - EPS)[0]
    if bad.size:
        i = int(bad[0])
        return EDFAnalysis(
            False,
            violation=float(pts[i]),
            demand_at_violation=float(demand[i]),
            supply_at_violation=float(z[i]),
            points_checked=int(pts.size),
        )
    return EDFAnalysis(True, points_checked=int(pts.size))


def edf_schedulable_dedicated(
    taskset: TaskSet, *, horizon: float | None = None
) -> EDFAnalysis:
    """Processor-demand criterion on a dedicated processor (``Z(t) = t``)."""
    if len(taskset) and taskset.utilization > 1.0 + 1e-9:
        return EDFAnalysis(
            False,
            violation=float("inf"),
            demand_at_violation=taskset.utilization,
            supply_at_violation=1.0,
        )
    return edf_schedulable_supply(taskset, DedicatedSupply(), horizon=horizon)


# -- QPA ------------------------------------------------------------------------


def synchronous_busy_period(taskset: TaskSet, *, max_iterations: int = 100_000) -> float:
    """Length of the synchronous processor busy period.

    Fixed point of ``w = sum_i ceil(w/T_i) C_i``; requires ``U <= 1``
    (diverges otherwise, which raises). Both paths iterate to the *exact*
    fixed point: the integer kernel in rational arithmetic, the float
    fallback until ``w_next == w`` bitwise — the former tolerance check
    ``|w_next - w| <= EPS*max(1, w)`` could declare convergence an
    iteration early for large ``w``, under-reporting the QPA start point.
    """
    if len(taskset) == 0:
        return 0.0
    if kernels.fast_kernels_enabled():
        sts = kernels.rescale(taskset.tasks)
        # Exact U > 1 means the rational iteration truly diverges, yet the
        # float fallback may still see U <= 1 + EPS and converge (rounding).
        # Keep verdict parity by routing that sliver to the fallback.
        fast = sts is not None and kernels.utilization_cmp(sts) <= 0
        kernels.note_selection(fast)
        if fast:
            return float(
                kernels.busy_period_exact(sts, max_iterations=max_iterations)
            )
    if taskset.utilization > 1.0 + 1e-9:
        raise ValueError("busy period diverges for U > 1")
    w = float(sum(t.wcet for t in taskset))
    for _ in range(max_iterations):
        w_next = float(
            sum(np.ceil(w / t.period - EPS) * t.wcet for t in taskset)
        )
        if w_next == w:
            return w
        w = w_next
    raise RuntimeError("busy period iteration did not converge")


def qpa_schedulable(taskset: TaskSet) -> bool:
    """Zhang & Burns Quick Processor-demand Analysis (dedicated EDF test).

    Equivalent to the full processor-demand criterion but typically examines
    only a handful of points: starting just below the busy-period bound it
    walks ``t ← h(t)`` (or the next lower deadline) until the demand drops
    below the smallest deadline (schedulable) or exceeds ``t``
    (unschedulable). Runs entirely in exact integer arithmetic when the
    task set rescales (:func:`repro.analysis.kernels.qpa_exact`).
    """
    if len(taskset) == 0:
        return True
    if kernels.fast_kernels_enabled():
        sts = kernels.rescale(taskset.tasks)
        kernels.note_selection(sts is not None)
        if sts is not None:
            # The overload / at-capacity gates stay on float utilization with
            # the same tolerances as the fallback below: generated sets meet
            # U == 1 only up to float rounding, and deciding the gate exactly
            # would flip verdicts on sets the fallback accepts.
            u = taskset.utilization
            if u > 1.0 + 1e-9:
                return False
            return kernels.qpa_exact(sts, at_capacity=u >= 1.0 - 1e-12)
    if taskset.utilization > 1.0 + 1e-9:
        return False
    if taskset.utilization >= 1.0 - 1e-12:
        limit = taskset.hyperperiod()
    else:
        limit = synchronous_busy_period(taskset)
    d_min = min(t.deadline for t in taskset)
    deadlines = [d for d in deadline_set(taskset, limit) if boundary_lt(d, limit)]
    if not deadlines:
        return True

    def h(t: float) -> float:
        return demand_bound_function(taskset, t)

    t = deadlines[-1]
    while True:
        ht = h(t)
        if ht > t + EPS:
            return False
        if ht <= d_min + EPS:
            return h(d_min) <= d_min + EPS
        if ht < t - EPS:
            t = ht
        else:
            lower = [d for d in deadlines if boundary_lt(d, t)]
            if not lower:
                return True
            t = lower[-1]
