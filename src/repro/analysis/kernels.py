"""Integer-exact fast kernels for the schedulability hot path.

The float analyses in :mod:`repro.analysis.edf`, :mod:`~repro.analysis.workload`
and :mod:`repro.core.minq` carry an ``EPS`` tolerance through every floor,
ceil and comparison — a correctness liability exactly at the deadline
boundaries Theorem 2 quantifies over, and a throughput bottleneck once the
campaign engine amortized everything else away. This module removes both at
once:

**Rescale pass** — :func:`rescale` maps a task set onto a common integer
time base. Every float is an exact dyadic rational (``m / 2**k``), so
periods and deadlines rationalize *losslessly* via :class:`~fractions.Fraction`;
the common denominator (a power of two, because all denominators are) becomes
the scale ``Dt``. The pass succeeds only when

* every period/deadline denominator is ``<= 10**9`` — the bound
  :func:`repro.util.to_fraction` uses, so the scaled hyperperiod agrees
  exactly with :meth:`TaskSet.hyperperiod` and the fast and float paths
  quantify over the same horizon; and
* ``hyperperiod_scaled + max(period_scaled) <= 2**53`` — every scaled time
  value then fits ``int64`` with headroom *and* converts to float exactly,
  so deadline points produced by the integer kernels are bit-identical to
  the floats ``k*T + D`` the fallback path computes.

Otherwise :func:`rescale` returns ``None`` and callers keep the existing
float path — kernel selection is per task set, per call, with module-level
fast/fallback counters the campaign engine aggregates into its stats line.

**Vector kernels** — deadline sets (``np.arange`` per task + ``np.unique``),
Eq. 9 demand job counts and Eq. 5 interference counts in pure ``int64``
(no ``EPS`` anywhere). Demand totals accumulate in float, per task in the
same order as the float path, so whenever job counts agree (always, on
rescalable sets) the totals are bit-identical.

**Scalar kernels** — QPA and the synchronous busy period in arbitrary-
precision Python integers: WCETs are exact dyadic rationals too, so the
busy-period fixed point and the QPA walk are computed without any rounding
at all. (WCET denominators of generated task sets are large — up to
``2**52`` — which is why the *vector* demand path keeps float WCETs: the
scalar walks touch few points, the vector path touches the whole dlSet.)

**Hull pruning** — the ``minQ`` curves evaluate ``f_P(t, W)`` over every
(point, demand) pair for thousands of candidate periods. For fixed ``q``
and ``P`` the superlevel set ``{f_P >= q}`` is the half-plane above a line
of slope ``q/P > 0``, so the Eq. 11 max is attained on the *upper* convex
hull of the ``(t, W)`` pairs and the Eq. 6 min on the *lower* hull.
:func:`binding_hull` shrinks hundreds of pairs to a handful with a
conservatively-rounded monotone chain (near-degenerate turns are kept, so
the true binding point is never dropped and the pruned max/min is
bit-identical to the full evaluation).
"""

from __future__ import annotations

import math
import os
from bisect import bisect_right
from dataclasses import dataclass
from fractions import Fraction
from functools import lru_cache
from typing import Sequence

import numpy as np

from repro import telemetry
from repro.model import Task

#: Scaled times beyond this cannot be represented exactly as floats (and
#: would eventually threaten ``int64`` intermediates): the rescale pass
#: rejects task sets whose scaled hyperperiod plus one period exceeds it.
MAX_SCALED: int = 2**53

#: Rescale refuses period/deadline denominators beyond the
#: :func:`repro.util.to_fraction` bound so the integer hyperperiod always
#: equals the float path's ``TaskSet.hyperperiod()`` exactly.
MAX_DENOMINATOR: int = 10**9


def _env_enabled() -> bool:
    return os.environ.get("REPRO_FAST_KERNELS", "1").strip().lower() not in (
        "0",
        "false",
        "off",
        "no",
    )


_enabled: bool = _env_enabled()

#: Per-process kernel selection counters (fast path taken vs fallback).
#: Pool workers count locally; the engine ships per-batch deltas back and
#: the campaign stats line reports the aggregate share.
_counters = {"fast": 0, "fallback": 0}


def fast_kernels_enabled() -> bool:
    """Whether the integer fast path may be selected at all."""
    return _enabled


def set_fast_kernels(enabled: bool) -> bool:
    """Enable/disable the fast path; returns the previous setting.

    Also mirrors the choice into ``REPRO_FAST_KERNELS`` so freshly spawned
    pool workers (which read the environment at import) agree with the
    parent process.
    """
    global _enabled
    previous = _enabled
    _enabled = bool(enabled)
    os.environ["REPRO_FAST_KERNELS"] = "1" if _enabled else "0"
    return previous


class kernels_forced:
    """Context manager pinning the fast-kernel toggle (tests, benchmarks)."""

    def __init__(self, enabled: bool):
        self._enabled = enabled
        self._previous: bool | None = None

    def __enter__(self) -> "kernels_forced":
        self._previous = set_fast_kernels(self._enabled)
        return self

    def __exit__(self, *exc: object) -> None:
        assert self._previous is not None
        set_fast_kernels(self._previous)


def note_selection(fast: bool) -> None:
    """Record one kernel selection (entry points call this once per call)."""
    _counters["fast" if fast else "fallback"] += 1
    telemetry.count("kernels.fast" if fast else "kernels.fallback")


def kernel_counters() -> dict[str, int]:
    """Snapshot of this process's selection counters."""
    return dict(_counters)


def counters_delta(before: dict[str, int]) -> dict[str, int]:
    """Counters accumulated since a :func:`kernel_counters` snapshot."""
    return {key: _counters[key] - before.get(key, 0) for key in _counters}


def reset_kernel_counters() -> None:
    """Zero the selection counters (tests)."""
    for key in _counters:
        _counters[key] = 0


@dataclass(frozen=True)
class ScaledTaskSet:
    """A task set on an exact integer time base (see :func:`rescale`).

    ``periods``/``deadlines`` are ``int64`` arrays in task-set order;
    ``wcets`` keeps the original float WCETs (for order-preserving float
    demand accumulation) while ``wcet_nums``/``wcet_den`` hold them as exact
    integers over a common power-of-two denominator (for the scalar exact
    walks). All time values are ``value * scale``.
    """

    tasks: tuple[Task, ...]
    scale: int
    periods: np.ndarray
    deadlines: np.ndarray
    wcets: np.ndarray
    wcet_nums: tuple[int, ...]
    wcet_den: int
    hyperperiod: int

    @property
    def time_unit(self) -> float:
        """``1 / scale`` — exact (the scale is a power of two)."""
        return 1.0 / self.scale


@lru_cache(maxsize=512)
def _rescale_cached(tasks: tuple[Task, ...]) -> ScaledTaskSet | None:
    scale = 1
    for task in tasks:
        for value in (task.period, task.deadline):
            den = Fraction(value).denominator  # exact: floats are dyadic
            if den > MAX_DENOMINATOR:
                return None
            # All denominators are powers of two, so lcm == max — but the
            # general gcd form costs nothing and assumes nothing.
            scale = scale * den // math.gcd(scale, den)
    periods: list[int] = []
    deadlines: list[int] = []
    hyper = 1
    for task in tasks:
        p = int(Fraction(task.period) * scale)
        d = int(Fraction(task.deadline) * scale)
        periods.append(p)
        deadlines.append(d)
        hyper = hyper * p // math.gcd(hyper, p)
        if hyper > MAX_SCALED:
            return None
    if hyper + max(periods) > MAX_SCALED:
        return None
    wcet_den = 1
    wcet_fracs = [Fraction(task.wcet) for task in tasks]  # exact, dyadic
    for frac in wcet_fracs:
        wcet_den = wcet_den * frac.denominator // math.gcd(
            wcet_den, frac.denominator
        )
    wcet_nums = tuple(
        int(frac.numerator * (wcet_den // frac.denominator))
        for frac in wcet_fracs
    )
    return ScaledTaskSet(
        tasks=tasks,
        scale=scale,
        periods=np.asarray(periods, dtype=np.int64),
        deadlines=np.asarray(deadlines, dtype=np.int64),
        wcets=np.asarray([task.wcet for task in tasks], dtype=np.float64),
        wcet_nums=wcet_nums,
        wcet_den=wcet_den,
        hyperperiod=hyper,
    )


def rescale(tasks: Sequence[Task]) -> ScaledTaskSet | None:
    """Integer time base for ``tasks``, or ``None`` when out of bounds.

    Pure (no counters, no toggle check): entry points decide on fallback
    and call :func:`note_selection` themselves. Empty sequences return
    ``None`` — the analyses all short-circuit empty sets before demand math.
    """
    if not tasks:
        return None
    return _rescale_cached(tuple(tasks))


# -- time conversion -----------------------------------------------------------


def to_time(sts: ScaledTaskSet, scaled: np.ndarray) -> np.ndarray:
    """Scaled ``int64`` times back to floats — exact (power-of-two scale)."""
    return scaled.astype(np.float64) / sts.scale


def scale_horizon(sts: ScaledTaskSet, horizon: float) -> int | None:
    """Largest scaled integer time ``<= horizon``, or ``None`` if unsafe.

    ``horizon * scale`` is exact (power-of-two multiply) unless it leaves
    the exact-integer float range, in which case the caller must fall back.
    """
    h = horizon * sts.scale
    if not math.isfinite(h) or h > MAX_SCALED:
        return None
    return math.floor(h)


def scale_points(sts: ScaledTaskSet, ts: np.ndarray) -> np.ndarray | None:
    """Points as scaled ``int64``, or ``None`` if any is not exactly on grid.

    The fast demand kernels only run when every query point is an exact
    multiple of the time unit (always true for points the integer deadline
    kernel produced) — anything else silently falls back, keeping EPS
    semantics for off-grid callers.
    """
    scaled = ts * float(sts.scale)
    rounded = np.rint(scaled)
    if not np.array_equal(scaled, rounded):
        return None
    if scaled.size and (scaled.min() < 0 or scaled.max() > MAX_SCALED):
        return None
    return rounded.astype(np.int64)


def scale_scalar(sts: ScaledTaskSet, t: float) -> int | None:
    """Scalar version of :func:`scale_points`."""
    scaled = t * sts.scale
    if not (scaled.is_integer() and 0 <= scaled <= MAX_SCALED):
        return None
    return int(scaled)


# -- vector kernels ------------------------------------------------------------


def deadline_points(sts: ScaledTaskSet, horizon_scaled: int) -> np.ndarray:
    """``dlSet`` on the integer grid: every ``k*T_i + D_i`` in ``(0, horizon]``.

    Sorted unique ``int64``; no tolerance anywhere — a deadline exactly at
    the horizon is included, one past it is not.
    """
    arrays: list[np.ndarray] = []
    for p, d in zip(sts.periods.tolist(), sts.deadlines.tolist()):
        if d > horizon_scaled:
            continue
        count = (horizon_scaled - d) // p + 1
        arrays.append(np.arange(count, dtype=np.int64) * p + d)
    if not arrays:
        return np.empty(0, dtype=np.int64)
    return np.unique(np.concatenate(arrays))


def demand_array(sts: ScaledTaskSet, t_scaled: np.ndarray) -> np.ndarray:
    """Eq. 9 demand ``W(t)`` with exact integer job counts.

    Job counts are exact ``int64`` floors; the WCET-weighted total
    accumulates in float in the same per-task order as the float path, so
    the result is bit-identical whenever the float path counts jobs
    correctly.
    """
    total = np.zeros(t_scaled.shape, dtype=np.float64)
    for i in range(len(sts.tasks)):
        p = sts.periods[i]
        jobs = (t_scaled + (p - sts.deadlines[i])) // p
        total += jobs.astype(np.float64) * sts.wcets[i]
    return total


def workload_array(sts: ScaledTaskSet, t_scaled: np.ndarray) -> np.ndarray:
    """Eq. 5 FP workload ``W_i(t)``, task 0 under interference from the rest.

    ``sts`` must be built from ``(task, *higher_priority)`` in priority
    order; all points must be ``> 0`` (scaled integers ``>= 1``).
    """
    total = np.full(t_scaled.shape, sts.wcets[0], dtype=np.float64)
    for j in range(1, len(sts.tasks)):
        p = sts.periods[j]
        jobs = (t_scaled + (p - 1)) // p  # ceil(t / T_j) for t >= 1
        total += jobs.astype(np.float64) * sts.wcets[j]
    return total


def scheduling_points_scaled(sts: ScaledTaskSet) -> list[int]:
    """Bini–Buttazzo ``schedP`` on the integer grid, for ``tasks[0]``.

    Same recursion as :func:`repro.analysis.points.scheduling_points` with
    exact floors; returns sorted positive scaled times.
    """
    periods = sts.periods.tolist()
    points: set[int] = set()

    def recurse(t: int, j: int) -> None:
        if j == 0:
            if t > 0:
                points.add(t)
            return
        p = periods[j]
        floored = (t // p) * p
        recurse(t, j - 1)
        if floored < t:
            recurse(floored, j - 1)

    recurse(int(sts.deadlines[0]), len(periods) - 1)
    return sorted(points)


# -- scalar exact kernels ------------------------------------------------------


def _scaled_wcet_nums(sts: ScaledTaskSet) -> list[int]:
    """WCET numerators in *scaled* time over ``wcet_den``.

    The scalar kernels mix execution amounts into the scaled time axis
    (``w``, periods and deadlines all carry the ``scale`` factor), so the
    WCETs must carry it too — comparing unscaled demand against scaled time
    would be off by exactly ``scale``.
    """
    return [num * sts.scale for num in sts.wcet_nums]


def utilization_cmp(sts: ScaledTaskSet) -> int:
    """Exact sign of ``U - 1``: negative, zero or positive."""
    h = sts.hyperperiod
    lhs = sum(
        num * (h // p)
        for num, p in zip(_scaled_wcet_nums(sts), sts.periods.tolist())
    )
    rhs = h * sts.wcet_den
    return (lhs > rhs) - (lhs < rhs)


def _busy_period_num(sts: ScaledTaskSet, max_iterations: int) -> int:
    """Busy-period numerator over ``wcet_den``, in *scaled* time units."""
    dc = sts.wcet_den
    # w is w_num / dc in scaled time; ceil(w / T_i) = ceil(w_num / (T_i*dc)).
    period_dens = [p * dc for p in sts.periods.tolist()]
    nums = _scaled_wcet_nums(sts)
    w_num = sum(nums)
    for _ in range(max_iterations):
        w_next = sum(
            -(-w_num // pden) * num
            for num, pden in zip(nums, period_dens)
        )
        if w_next == w_num:
            return w_num
        w_num = w_next
    raise RuntimeError("busy period iteration did not converge")


def busy_period_exact(
    sts: ScaledTaskSet, *, max_iterations: int = 100_000
) -> Fraction:
    """Synchronous busy period as an exact rational (unscaled time units).

    Iterates ``w = sum_i ceil(w / T_i) C_i`` to its *exact* fixed point —
    integer arithmetic over the common WCET denominator, so there is no
    tolerance band that could accept a not-yet-converged iterate. Requires
    ``U <= 1`` (checked by callers via :func:`utilization_cmp`).
    """
    return Fraction(
        _busy_period_num(sts, max_iterations), sts.wcet_den * sts.scale
    )


def qpa_exact(sts: ScaledTaskSet, *, at_capacity: bool) -> bool:
    """Zhang & Burns QPA in exact integer arithmetic (dedicated EDF test).

    Mirrors the float walk of :func:`repro.analysis.edf.qpa_schedulable`
    with all tolerances at exactly zero: demand values are rationals over
    the common WCET denominator, deadlines are scaled integers, and every
    comparison is an integer comparison.

    ``at_capacity`` selects the walk's upper limit — the hyperperiod when
    the caller's utilization test says ``U == 1``, the busy period below
    that. The *caller* decides with the same float-tolerance rule as the
    fallback path: whether a set counts as at-capacity is deliberately a
    tolerance question (generated sets hit ``U = 1`` only up to float
    rounding), so answering it exactly here would flip verdicts on sets
    the float path accepts.
    """
    dc = sts.wcet_den
    if at_capacity:
        limit_num = sts.hyperperiod * dc  # limit = hyperperiod
    else:
        limit_num = _busy_period_num(sts, 100_000)
    periods = sts.periods.tolist()
    deadlines_rel = sts.deadlines.tolist()
    d_min = min(deadlines_rel)
    nums = _scaled_wcet_nums(sts)

    def demand_num(t_num: int) -> int:
        # W(t) over denominator dc, at rational t = t_num / dc (scaled time).
        total = 0
        for num, p, d in zip(nums, periods, deadlines_rel):
            jobs = (t_num + (p - d) * dc) // (p * dc)
            if jobs > 0:
                total += jobs * num
        return total

    # Deadlines strictly below the limit: d*dc < limit_num.
    t_max = -(-limit_num // dc) - 1  # largest integer strictly below limit
    dl = deadline_points(sts, min(t_max, sts.hyperperiod)).tolist()
    if not dl:
        return True
    d_min_num = d_min * dc
    t_num = dl[-1] * dc
    while True:
        ht = demand_num(t_num)
        if ht > t_num:
            return False
        if ht <= d_min_num:
            return demand_num(d_min_num) <= d_min_num
        if ht < t_num:
            t_num = ht
        else:
            # Largest deadline strictly below t = t_num / dc.
            threshold = -(-t_num // dc) - 1
            idx = bisect_right(dl, threshold) - 1
            if idx < 0:
                return True
            t_num = dl[idx] * dc


# -- minQ hull pruning ---------------------------------------------------------

_EPS64 = float(np.finfo(np.float64).eps)


def binding_hull(pts: np.ndarray, w: np.ndarray, *, upper: bool) -> np.ndarray:
    """Indices of the convex hull that can bind ``f_P`` (see module docs).

    ``pts`` must be sorted ascending and unique (dlSet / schedP contract).
    ``upper=True`` keeps the upper hull (EDF max, Eq. 11), ``False`` the
    lower hull (FP min, Eq. 6). The monotone-chain turn test is rounded
    *conservatively*: a middle point is only dropped when its cross product
    clears a float-error bound, so points the exact test would keep are
    never lost and the pruned extremum is bit-identical to the full one.
    """
    n = int(pts.size)
    if n <= 2:
        return np.arange(n)
    x = np.asarray(pts, dtype=np.float64).tolist()
    y = np.asarray(w, dtype=np.float64)
    if not upper:
        y = -y
    y = y.tolist()
    hull: list[int] = []
    for i in range(n):
        xi, yi = x[i], y[i]
        while len(hull) >= 2:
            i1, i2 = hull[-2], hull[-1]
            x1, y1 = x[i1], y[i1]
            a = (x[i2] - x1) * (yi - y1)
            b = (xi - x1) * (y[i2] - y1)
            # cross = a - b > 0 means i2 lies strictly below chord i1->i
            # (for the upper hull) and can never bind. Only pop when the
            # sign is certain: 4 rounded float ops, each within eps of
            # exact, bound the error by 8*eps*max(|a|,|b|).
            if a - b > 8.0 * _EPS64 * max(abs(a), abs(b)):
                hull.pop()
            else:
                break
        hull.append(i)
    return np.asarray(hull, dtype=np.intp)


__all__ = [
    "MAX_DENOMINATOR",
    "MAX_SCALED",
    "ScaledTaskSet",
    "binding_hull",
    "busy_period_exact",
    "counters_delta",
    "deadline_points",
    "demand_array",
    "fast_kernels_enabled",
    "kernel_counters",
    "kernels_forced",
    "note_selection",
    "qpa_exact",
    "rescale",
    "reset_kernel_counters",
    "scale_horizon",
    "scale_points",
    "scale_scalar",
    "scheduling_points_scaled",
    "set_fast_kernels",
    "to_time",
    "utilization_cmp",
    "workload_array",
]
