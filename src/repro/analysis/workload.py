"""Fixed-priority workload ``W_i(t)`` (Eq. 5 of the paper).

``W_i(t) = C_i + sum_{j in hp(i)} ceil(t / T_j) * C_j`` is the worst-case
cumulative processor demand of task ``i`` and its higher-priority
interference in ``[0, t]`` under the synchronous (critical-instant) release
pattern.
"""

from __future__ import annotations

from typing import Iterable, Sequence

import numpy as np

from repro.model import Task
from repro.util import EPS, check_positive


def fp_workload(task: Task, higher_priority: Sequence[Task], t: float) -> float:
    """``W_i(t)`` at a single point ``t > 0`` (Eq. 5)."""
    check_positive("t", t)
    total = task.wcet
    for tj in higher_priority:
        total += float(np.ceil(t / tj.period - EPS)) * tj.wcet
    return total


def fp_workload_array(
    task: Task, higher_priority: Sequence[Task], ts: Iterable[float]
) -> np.ndarray:
    """Vectorised ``W_i(t)`` over an array of points.

    The ``ceil`` uses a small downward nudge so that points that are exact
    multiples of a period (the usual case for scheduling points) are not
    bumped to the next job by float noise.
    """
    t = np.asarray(list(ts), dtype=float)
    if np.any(t <= 0):
        raise ValueError("workload points must be > 0")
    total = np.full_like(t, task.wcet)
    for tj in higher_priority:
        total += np.ceil(t / tj.period - EPS) * tj.wcet
    return total
