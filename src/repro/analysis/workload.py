"""Fixed-priority workload ``W_i(t)`` (Eq. 5 of the paper).

``W_i(t) = C_i + sum_{j in hp(i)} ceil(t / T_j) * C_j`` is the worst-case
cumulative processor demand of task ``i`` and its higher-priority
interference in ``[0, t]`` under the synchronous (critical-instant) release
pattern.

Both entry points route through the integer kernels of
:mod:`repro.analysis.kernels` when ``(task, *higher_priority)`` rescales
onto an exact integer time base; the float fallback snaps interference
counts with the same :func:`~repro.util.fuzzy_ceil` rule scalar and vector.
"""

from __future__ import annotations

from typing import Iterable, Sequence

import numpy as np

from repro.analysis import kernels
from repro.model import Task
from repro.util import check_positive, fuzzy_ceil, fuzzy_ceil_array


def fp_workload(task: Task, higher_priority: Sequence[Task], t: float) -> float:
    """``W_i(t)`` at a single point ``t > 0`` (Eq. 5)."""
    check_positive("t", t)
    if kernels.fast_kernels_enabled():
        sts = kernels.rescale((task, *higher_priority))
        t_scaled = kernels.scale_scalar(sts, t) if sts is not None else None
        kernels.note_selection(t_scaled is not None)
        if sts is not None and t_scaled is not None:
            total = task.wcet
            for j, tj in enumerate(higher_priority, start=1):
                p = int(sts.periods[j])
                total += ((t_scaled + (p - 1)) // p) * tj.wcet
            return total
    total = task.wcet
    for tj in higher_priority:
        total += float(fuzzy_ceil(t / tj.period)) * tj.wcet
    return total


def fp_workload_array(
    task: Task, higher_priority: Sequence[Task], ts: Iterable[float]
) -> np.ndarray:
    """Vectorised ``W_i(t)`` over an array of points.

    The ``ceil`` snaps to the nearest integer within tolerance so that
    points that are exact multiples of a period (the usual case for
    scheduling points) are not bumped to the next job by float noise.
    """
    t = np.asarray(list(ts), dtype=float)
    if np.any(t <= 0):
        raise ValueError("workload points must be > 0")
    if kernels.fast_kernels_enabled():
        sts = kernels.rescale((task, *higher_priority))
        t_scaled = kernels.scale_points(sts, t) if sts is not None else None
        kernels.note_selection(t_scaled is not None)
        if sts is not None and t_scaled is not None:
            return kernels.workload_array(sts, t_scaled)
    total = np.full_like(t, task.wcet)
    for tj in higher_priority:
        total += fuzzy_ceil_array(t / tj.period) * tj.wcet
    return total
