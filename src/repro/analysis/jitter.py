"""Jitter-aware schedulability analysis (the paper's noted generalisation).

Theorems 1 and 2 "also apply to task sets with static offset and jitter";
the paper develops only the jitter-free case because "the math is heavier".
This module carries the heavier math:

* **FP with jitter** (Audsley/Tindell): higher-priority interference in a
  level-i busy window of length ``t`` is ``ceil((t + J_j) / T_j) C_j``;
  task ``i`` is schedulable iff some ``t <= D_i − J_i`` satisfies
  ``Z(t) >= W_i^J(t)`` (the response time is ``J_i + w`` for the busy-window
  fixed point ``w``);
* **EDF with jitter**: a job of ``τ_i`` released at ``kT_i`` may appear as
  late as ``kT_i + J_i`` yet keeps its absolute deadline ``kT_i + D_i`` —
  equivalent to shrinking the relative deadline to ``D_i − J_i`` in the
  demand bound: ``W^J(t) = Σ max(0, floor((t + T_i − D_i + J_i)/T_i)) C_i``
  checked at the jittered deadline set;
* the **minQ inversion** of both conditions, mirroring Eqs. 6 and 11
  (:func:`min_quantum_jitter` lives in :mod:`repro.core.minq` and calls the
  point/demand builders here).

Everything degenerates to the jitter-free analysis when all ``J_i = 0``,
which the test suite asserts.
"""

from __future__ import annotations

from typing import Iterable, Sequence

import numpy as np

from repro.analysis.priorities import priority_order
from repro.analysis.results import EDFAnalysis, FPAnalysis, TaskVerdict
from repro.model import Task, TaskSet
from repro.supply import DedicatedSupply, SupplyFunction
from repro.util import EPS, check_positive, fuzzy_floor


# -- FP side --------------------------------------------------------------------


def fp_workload_jitter(
    task: Task, higher_priority: Sequence[Task], t: float
) -> float:
    """Level-i workload with release jitter: ``C_i + Σ ceil((t+J_j)/T_j) C_j``."""
    check_positive("t", t)
    total = task.wcet
    for tj in higher_priority:
        total += float(np.ceil((t + tj.jitter) / tj.period - EPS)) * tj.wcet
    return total


def fp_workload_jitter_array(
    task: Task, higher_priority: Sequence[Task], ts: Iterable[float]
) -> np.ndarray:
    """Vectorised :func:`fp_workload_jitter`."""
    t = np.asarray(list(ts), dtype=float)
    if np.any(t <= 0):
        raise ValueError("workload points must be > 0")
    total = np.full_like(t, task.wcet)
    for tj in higher_priority:
        total += np.ceil((t + tj.jitter) / tj.period - EPS) * tj.wcet
    return total


def scheduling_points_jitter(
    task: Task, higher_priority: Sequence[Task]
) -> tuple[float, ...]:
    """Jitter-aware scheduling points over ``(0, D_i − J_i]``.

    The workload steps of ``τ_j`` sit at ``t = k T_j − J_j``; the
    Bini–Buttazzo recursion generalises by flooring ``t`` onto that lattice:
    ``floored_j(t) = floor((t + J_j)/T_j) T_j − J_j``. At ``J = 0`` this is
    exactly :func:`repro.analysis.points.scheduling_points`.
    """
    limit = task.deadline - task.jitter
    if limit <= EPS:
        return ()
    points: set[float] = set()

    def recurse(t: float, j: int) -> None:
        if j == 0:
            if t > EPS:
                points.add(t)
            return
        tj = higher_priority[j - 1]
        floored = fuzzy_floor((t + tj.jitter) / tj.period) * tj.period - tj.jitter
        recurse(t, j - 1)
        if EPS < floored < t - EPS:
            recurse(floored, j - 1)

    recurse(float(limit), len(higher_priority))
    return tuple(sorted(points))


def fp_schedulable_jitter(
    taskset: TaskSet,
    supply: SupplyFunction | None = None,
    priorities: Sequence[Task] | str | None = None,
) -> FPAnalysis:
    """Jitter-aware Theorem 1: FP feasibility under a supply function.

    Task ``i`` passes when some point ``t <= D_i − J_i`` satisfies
    ``Z(t) >= W_i^J(t)``. ``supply`` defaults to a dedicated processor.
    """
    supply = supply or DedicatedSupply()
    if priorities is None:
        priorities = "DM"
    if isinstance(priorities, str):
        order = priority_order(taskset, priorities)
    else:
        order = tuple(priorities)
        if set(t.name for t in order) != set(taskset.names):
            raise ValueError("priority order must be a permutation of the task set")
    verdicts: list[TaskVerdict] = []
    ok = True
    for i, task in enumerate(order):
        hp = order[:i]
        pts = scheduling_points_jitter(task, hp)
        witness = None
        if pts:
            w = fp_workload_jitter_array(task, hp, pts)
            z = supply.supply_array(pts)
            good = np.nonzero(z >= w - EPS)[0]
            if good.size:
                witness = float(pts[int(good[0])])
        verdicts.append(TaskVerdict(task, witness is not None, witness=witness))
        ok = ok and witness is not None
    return FPAnalysis(ok, tuple(verdicts), order)


def fp_response_time_jitter(
    task: Task,
    higher_priority: Sequence[Task],
    supply: SupplyFunction | None = None,
    *,
    max_iterations: int = 10_000,
) -> float | None:
    """Jitter-aware supply-aware RTA: ``R = J_i + w``, ``w = Z^{-1}(W^J(w))``.

    Returns None when the response exceeds the deadline.
    """
    supply = supply or DedicatedSupply()
    if not supply.is_feasible_budget():
        return None
    w = supply.inverse(task.wcet)
    for _ in range(max_iterations):
        if task.jitter + w > task.deadline + EPS:
            return None
        demand = fp_workload_jitter(task, higher_priority, max(w, EPS))
        w_next = supply.inverse(demand, hint=w)
        if abs(w_next - w) <= EPS * max(1.0, w_next):
            return task.jitter + w_next
        w = w_next
    raise RuntimeError(
        f"jitter RTA did not converge for {task.name} after {max_iterations} iterations"
    )


# -- EDF side -------------------------------------------------------------------


def edf_demand_jitter(taskset: TaskSet, t: float) -> float:
    """Jittered demand bound: jobs with release lag ``J_i`` keep their
    absolute deadlines, so the effective relative deadline is ``D_i − J_i``."""
    if t < 0:
        raise ValueError(f"t must be >= 0: got {t}")
    total = 0.0
    for task in taskset:
        jobs = fuzzy_floor(
            (t + task.period - task.deadline + task.jitter) / task.period
        )
        if jobs > 0:
            total += jobs * task.wcet
    return total


def edf_demand_jitter_array(taskset: TaskSet, ts: Iterable[float]) -> np.ndarray:
    """Vectorised :func:`edf_demand_jitter`."""
    t = np.asarray(list(ts), dtype=float)
    total = np.zeros_like(t)
    for task in taskset:
        jobs = np.floor(
            (t + task.period - task.deadline + task.jitter) / task.period + EPS
        )
        total += np.maximum(jobs, 0.0) * task.wcet
    return total


def deadline_set_jitter(
    taskset: TaskSet, horizon: float | None = None
) -> tuple[float, ...]:
    """Jittered deadline lattice ``k T_i + D_i − J_i`` up to the horizon."""
    if len(taskset) == 0:
        return ()
    if horizon is None:
        horizon = taskset.hyperperiod()
    check_positive("horizon", horizon)
    points: set[float] = set()
    for task in taskset:
        d = task.deadline - task.jitter
        if d <= EPS:
            continue
        k = 0
        while True:
            t = k * task.period + d
            if t > horizon + EPS:
                break
            points.add(t)
            k += 1
    return tuple(sorted(points))


def edf_schedulable_jitter(
    taskset: TaskSet,
    supply: SupplyFunction | None = None,
    *,
    horizon: float | None = None,
) -> EDFAnalysis:
    """Jitter-aware Theorem 2: ``Z(t) >= W^J(t)`` at every jittered deadline.

    A task with ``J_i >= D_i`` is rejected outright (its demand can land at
    or past its deadline).
    """
    supply = supply or DedicatedSupply()
    if len(taskset) == 0:
        return EDFAnalysis(True, points_checked=0)
    for task in taskset:
        if task.jitter >= task.deadline - EPS:
            return EDFAnalysis(
                False, violation=task.deadline,
                demand_at_violation=task.wcet, supply_at_violation=0.0,
            )
    if taskset.utilization > supply.alpha + 1e-9:
        return EDFAnalysis(
            False, violation=float("inf"),
            demand_at_violation=taskset.utilization,
            supply_at_violation=supply.alpha,
        )
    if horizon is None:
        # Jitter adds at most sum(C_i) to the linear demand offset; reuse the
        # jitter-free cut-off logic with the enlarged constant.
        alpha, delta = supply.alpha, supply.delta
        u = taskset.utilization
        if alpha > u + 1e-12 and np.isfinite(delta):
            b = sum(
                t.wcet * (t.period - t.deadline + t.jitter) / t.period
                for t in taskset
            )
            horizon = max(
                (b + alpha * delta) / (alpha - u),
                max(t.deadline for t in taskset),
            )
        else:
            horizon = taskset.hyperperiod()
    pts = np.asarray(deadline_set_jitter(taskset, horizon), dtype=float)
    if pts.size == 0:
        return EDFAnalysis(True, points_checked=0)
    demand = edf_demand_jitter_array(taskset, pts)
    z = supply.supply_array(pts)
    bad = np.nonzero(z < demand - EPS)[0]
    if bad.size:
        i = int(bad[0])
        return EDFAnalysis(
            False, violation=float(pts[i]),
            demand_at_violation=float(demand[i]),
            supply_at_violation=float(z[i]),
            points_checked=int(pts.size),
        )
    return EDFAnalysis(True, points_checked=int(pts.size))
