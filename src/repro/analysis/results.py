"""Result objects returned by the schedulability analyses."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

from repro.model import Task


@dataclass(frozen=True)
class TaskVerdict:
    """Outcome of a per-task fixed-priority feasibility check.

    Attributes
    ----------
    task:
        The task analysed.
    schedulable:
        Whether a feasibility witness was found.
    witness:
        A scheduling point ``t`` at which ``Z(t) >= W_i(t)`` held (None when
        unschedulable).
    response_time:
        Worst-case response time when computed by RTA (None for point tests).
    """

    task: Task
    schedulable: bool
    witness: float | None = None
    response_time: float | None = None


@dataclass(frozen=True)
class FPAnalysis:
    """Outcome of a fixed-priority task-set analysis.

    ``schedulable`` is the conjunction of the per-task verdicts; ``order``
    records the priority order used (highest first).
    """

    schedulable: bool
    verdicts: tuple[TaskVerdict, ...]
    order: tuple[Task, ...]

    def verdict_for(self, name: str) -> TaskVerdict:
        """Verdict of the named task."""
        for v in self.verdicts:
            if v.task.name == name:
                return v
        raise KeyError(f"no verdict for task {name!r}")

    @property
    def first_failure(self) -> TaskVerdict | None:
        """The highest-priority unschedulable task, if any."""
        for v in self.verdicts:
            if not v.schedulable:
                return v
        return None


@dataclass(frozen=True)
class EDFAnalysis:
    """Outcome of an EDF task-set analysis.

    Attributes
    ----------
    schedulable:
        Overall verdict.
    violation:
        First absolute deadline ``t`` where demand exceeded supply (None when
        schedulable).
    demand_at_violation / supply_at_violation:
        The two sides of the failed comparison, for diagnostics.
    points_checked:
        Number of demand points examined.
    """

    schedulable: bool
    violation: float | None = None
    demand_at_violation: float | None = None
    supply_at_violation: float | None = None
    points_checked: int = 0
