"""Fixed-priority schedulability tests, dedicated and supply-aware.

The central result is Theorem 1 of the paper: task set ``T`` is FP-schedulable
inside a partition with supply ``Z`` if for every task some scheduling point
``t`` satisfies ``Z(t) >= W_i(t)``. With ``Z(t) = t`` (a dedicated processor)
this is exactly the Bini–Buttazzo point test; with the linear supply of Eq. 3
it is the condition the paper inverts into ``minQ``; with the exact Lemma-1
supply it is the "tedious" exact analysis the paper skips (and which we use
as an ablation).
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.analysis.points import scheduling_points
from repro.analysis.priorities import priority_order
from repro.analysis.results import FPAnalysis, TaskVerdict
from repro.analysis.workload import fp_workload, fp_workload_array
from repro.model import Task, TaskSet
from repro.supply import DedicatedSupply, SupplyFunction
from repro.util import EPS, approx_le, feq


def _resolve_order(
    taskset: TaskSet, priorities: Sequence[Task] | str | None
) -> tuple[Task, ...]:
    """Normalise a priority specification to an explicit order."""
    if priorities is None:
        priorities = "DM"
    if isinstance(priorities, str):
        return priority_order(taskset, priorities)
    order = tuple(priorities)
    if set(t.name for t in order) != set(taskset.names) or len(order) != len(taskset):
        raise ValueError("priority order must be a permutation of the task set")
    return order


def fp_schedulable_supply(
    taskset: TaskSet,
    supply: SupplyFunction,
    priorities: Sequence[Task] | str | None = None,
) -> FPAnalysis:
    """Theorem 1: FP feasibility of ``taskset`` under a supply function.

    Parameters
    ----------
    taskset:
        Tasks sharing one logical processor of a partition.
    supply:
        The partition's supply function ``Z`` (linear for Theorem 1 proper).
    priorities:
        ``"RM"``, ``"DM"`` (default) or an explicit order, highest first.

    Returns
    -------
    :class:`FPAnalysis` with a per-task verdict and feasibility witness.
    """
    order = _resolve_order(taskset, priorities)
    verdicts: list[TaskVerdict] = []
    ok = True
    for i, task in enumerate(order):
        hp = order[:i]
        pts = scheduling_points(task, hp)
        witness = None
        if pts:
            w = fp_workload_array(task, hp, pts)
            z = supply.supply_array(pts)
            good = np.nonzero(z >= w - EPS)[0]
            if good.size:
                witness = float(pts[int(good[0])])
        verdicts.append(TaskVerdict(task, witness is not None, witness=witness))
        ok = ok and witness is not None
    return FPAnalysis(ok, tuple(verdicts), order)


def fp_schedulable_dedicated(
    taskset: TaskSet, priorities: Sequence[Task] | str | None = None
) -> FPAnalysis:
    """Classic Bini–Buttazzo point test on a dedicated processor."""
    return fp_schedulable_supply(taskset, DedicatedSupply(), priorities)


# -- response-time analysis ----------------------------------------------------


def fp_response_time(
    task: Task,
    higher_priority: Sequence[Task],
    *,
    max_iterations: int = 10_000,
) -> float | None:
    """Worst-case response time of ``task`` on a dedicated processor.

    Standard fixed-point iteration ``R = C_i + sum ceil(R/T_j) C_j``.
    Returns ``None`` when the iteration exceeds the deadline (unschedulable)
    or fails to converge (higher-priority utilization >= 1).
    """
    return fp_response_time_supply(
        task, higher_priority, DedicatedSupply(), max_iterations=max_iterations
    )


def fp_response_time_supply(
    task: Task,
    higher_priority: Sequence[Task],
    supply: SupplyFunction,
    *,
    max_iterations: int = 10_000,
) -> float | None:
    """Supply-aware RTA: fixed point of ``R = Z^{-1}(W_i(R))``.

    The iteration is monotonically non-decreasing, so it either converges to
    the worst-case response time or crosses the deadline, at which point
    ``None`` is returned. (With a linear supply the update is
    ``R = Δ + W_i(R)/α`` — the response-time bound of Almeida & Pedreiras.)
    """
    if not supply.is_feasible_budget():
        return None
    r = supply.inverse(task.wcet)
    for _ in range(max_iterations):
        if r > task.deadline + EPS:
            return None
        w = fp_workload(task, higher_priority, max(r, EPS))
        r_next = supply.inverse(w, hint=r)
        if feq(r_next, r):
            return min(r_next, max(r_next, r))
        if r_next < r - EPS:  # pragma: no cover - monotonicity guard
            raise RuntimeError("supply-aware RTA iteration decreased")
        r = r_next
    raise RuntimeError(
        f"RTA did not converge for {task.name} after {max_iterations} iterations"
    )


# -- utilization bounds ---------------------------------------------------------


def liu_layland_bound(n: int) -> float:
    """Liu & Layland RM utilization bound ``n (2^{1/n} − 1)``."""
    if n < 1:
        raise ValueError(f"n must be >= 1: got {n}")
    return n * (2.0 ** (1.0 / n) - 1.0)


def liu_layland_test(taskset: TaskSet) -> bool:
    """Sufficient RM test: ``U <= n(2^{1/n}−1)`` (implicit deadlines only)."""
    if len(taskset) == 0:
        return True
    if not taskset.all_implicit_deadline:
        raise ValueError("Liu-Layland bound requires implicit deadlines")
    return approx_le(taskset.utilization, liu_layland_bound(len(taskset)))


def hyperbolic_bound_test(taskset: TaskSet) -> bool:
    """Sufficient RM test of Bini et al.: ``prod (U_i + 1) <= 2``.

    Strictly dominates Liu–Layland (accepts every set Liu–Layland accepts).
    Implicit deadlines only.
    """
    if len(taskset) == 0:
        return True
    if not taskset.all_implicit_deadline:
        raise ValueError("hyperbolic bound requires implicit deadlines")
    prod = 1.0
    for t in taskset:
        prod *= t.utilization + 1.0
    return approx_le(prod, 2.0)
