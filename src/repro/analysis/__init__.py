"""Uniprocessor schedulability analysis (dedicated and supply-aware).

Implements the analytic machinery the paper builds on:

* fixed-priority workload ``W_i(t)`` (Eq. 5) and the Bini–Buttazzo
  scheduling-point set ``schedP_i`` — :mod:`repro.analysis.points`;
* FP feasibility under a supply function (Theorem 1), classic FP point
  tests, response-time analysis and utilization bounds —
  :mod:`repro.analysis.fp`;
* EDF demand ``W(t)`` (Eq. 9), ``dlSet``, the supply-aware EDF test
  (Theorem 2), the dedicated processor-demand criterion and QPA —
  :mod:`repro.analysis.edf`;
* priority assignment (RM, DM, Audsley's OPA) —
  :mod:`repro.analysis.priorities`.
"""

from repro.analysis.edf import (
    deadline_set,
    demand_bound_function,
    edf_demand_points,
    edf_schedulable_dedicated,
    edf_schedulable_supply,
    edf_utilization_test,
    qpa_schedulable,
)
from repro.analysis.fp import (
    fp_response_time,
    fp_response_time_supply,
    fp_schedulable_dedicated,
    fp_schedulable_supply,
    hyperbolic_bound_test,
    liu_layland_bound,
    liu_layland_test,
)
from repro.analysis.jitter import (
    deadline_set_jitter,
    edf_demand_jitter,
    edf_schedulable_jitter,
    fp_response_time_jitter,
    fp_schedulable_jitter,
    fp_workload_jitter,
    scheduling_points_jitter,
)
from repro.analysis.points import scheduling_points
from repro.analysis.priorities import (
    audsley_opa,
    deadline_monotonic,
    priority_order,
    rate_monotonic,
)
from repro.analysis.results import EDFAnalysis, FPAnalysis, TaskVerdict
from repro.analysis.workload import fp_workload, fp_workload_array

__all__ = [
    "scheduling_points",
    "scheduling_points_jitter",
    "fp_workload_jitter",
    "fp_schedulable_jitter",
    "fp_response_time_jitter",
    "edf_demand_jitter",
    "edf_schedulable_jitter",
    "deadline_set_jitter",
    "fp_workload",
    "fp_workload_array",
    "fp_schedulable_supply",
    "fp_schedulable_dedicated",
    "fp_response_time",
    "fp_response_time_supply",
    "liu_layland_bound",
    "liu_layland_test",
    "hyperbolic_bound_test",
    "deadline_set",
    "demand_bound_function",
    "edf_demand_points",
    "edf_schedulable_supply",
    "edf_schedulable_dedicated",
    "edf_utilization_test",
    "qpa_schedulable",
    "rate_monotonic",
    "deadline_monotonic",
    "priority_order",
    "audsley_opa",
    "FPAnalysis",
    "EDFAnalysis",
    "TaskVerdict",
]
