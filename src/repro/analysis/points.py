"""Bini–Buttazzo scheduling points ``schedP_i``.

The fixed-priority feasibility of task ``τ_i`` only needs to be checked at a
small set of points — the scheduling points of Bini & Buttazzo (2004),
defined recursively over the higher-priority tasks ``τ_1 … τ_{i-1}``:

.. math::

   \\mathcal{P}_0(t) = \\{t\\}, \\qquad
   \\mathcal{P}_j(t) = \\mathcal{P}_{j-1}\\!\\big(\\lfloor t/T_j\\rfloor T_j\\big)
                      \\cup \\mathcal{P}_{j-1}(t)

with ``schedP_i = P_{i-1}(D_i)``. Theorem 1 of the paper quantifies
feasibility over exactly this set.
"""

from __future__ import annotations

from typing import Sequence

from repro.analysis import kernels
from repro.model import Task
from repro.util import EPS, check_positive, fuzzy_floor


def scheduling_points(task: Task, higher_priority: Sequence[Task]) -> tuple[float, ...]:
    """The scheduling-point set ``schedP_i`` for ``task``.

    Parameters
    ----------
    task:
        The task under analysis (``τ_i``).
    higher_priority:
        The tasks with priority higher than ``τ_i`` (any order — the
        generated set does not depend on the recursion order).

    Returns
    -------
    Sorted tuple of strictly positive points ``t <= D_i``. Non-positive
    points that the recursion can generate when ``D_i < T_j`` are discarded:
    no positive workload can be accommodated by time 0, so they can never be
    feasibility witnesses.

    The recursion runs on the exact integer grid when ``(task, *hp)``
    rescales (:mod:`repro.analysis.kernels`); the float fallback keeps the
    ``fuzzy_floor`` tolerance.
    """
    check_positive("task deadline", task.deadline)
    if kernels.fast_kernels_enabled():
        sts = kernels.rescale((task, *higher_priority))
        kernels.note_selection(sts is not None)
        if sts is not None:
            scaled = kernels.scheduling_points_scaled(sts)
            scale = sts.scale
            return tuple(s / scale for s in scaled)
    points: set[float] = set()

    def recurse(t: float, j: int) -> None:
        if j == 0:
            if t > EPS:
                points.add(t)
            return
        tj = higher_priority[j - 1]
        floored = fuzzy_floor(t / tj.period) * tj.period
        recurse(t, j - 1)
        if floored < t - EPS:
            recurse(floored, j - 1)
        # floored == t (t is a multiple of T_j): both branches coincide.

    recurse(float(task.deadline), len(higher_priority))
    return tuple(sorted(points))
