"""Static (inflexible) platform configurations.

A static platform fixes one channel layout forever:

* ``ALL_FT`` — one 4-way redundant channel: every task is masked against
  faults, but the whole application must fit a single logical processor;
* ``ALL_FS`` — two fail-silent channels: capacity 2, but FT tasks only get
  detection, not masking;
* ``ALL_NF`` — four parallel cores: capacity 4, no protection at all.

:func:`evaluate_static` reports, per configuration, whether the task set is
schedulable and whether every task receives at least its required protection
level; :func:`compare_with_flexible` puts the paper's scheme side by side.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.core import DesignError, Overheads, design_platform
from repro.model import Mode, PartitionedTaskSet, TaskSet
from repro.model.transformations import with_mode
from repro.partition import PartitionError, partition_by_modes, partition_tasks

#: Protection strength order: FT masks, FS detects, NF nothing.
_STRENGTH = {Mode.FT: 2, Mode.FS: 1, Mode.NF: 0}


class StaticKind(enum.Enum):
    """The three frozen configurations."""

    ALL_FT = "all-ft"
    ALL_FS = "all-fs"
    ALL_NF = "all-nf"

    @property
    def provided_mode(self) -> Mode:
        """Protection level every task receives under this configuration."""
        return {
            StaticKind.ALL_FT: Mode.FT,
            StaticKind.ALL_FS: Mode.FS,
            StaticKind.ALL_NF: Mode.NF,
        }[self]

    @property
    def processors(self) -> int:
        """Logical processors the configuration offers."""
        return self.provided_mode.parallelism

    def __str__(self) -> str:  # pragma: no cover - trivial
        return self.value


@dataclass(frozen=True)
class StaticReport:
    """Evaluation of one static configuration for a task set."""

    kind: StaticKind
    schedulable: bool
    protection_ok: bool
    under_protected: tuple[str, ...]
    capacity: int
    utilization: float
    detail: str = ""

    @property
    def acceptable(self) -> bool:
        """A configuration is acceptable only if it schedules *and* protects."""
        return self.schedulable and self.protection_ok


def evaluate_static(
    taskset: TaskSet,
    kind: StaticKind,
    algorithm: str = "EDF",
    *,
    admission: str | None = None,
) -> StaticReport:
    """Evaluate a static configuration for a mixed FT/FS/NF task set.

    Schedulability ignores the tasks' required modes (the static platform
    runs everything at its single protection level); the protection check
    then reports which tasks would be under-protected.
    """
    provided = kind.provided_mode
    under = tuple(
        t.name for t in taskset if _STRENGTH[t.mode] > _STRENGTH[provided]
    )
    admission = admission or ("edf" if algorithm.upper() == "EDF" else "rm")
    # Re-mode the tasks so the bin-packer sees one uniform class.
    uniform = with_mode(taskset, provided)
    try:
        partition_tasks(
            uniform,
            kind.processors,
            heuristic="worst-fit",
            admission=admission,
            decreasing=True,
        )
        schedulable = True
        detail = ""
    except PartitionError as exc:
        schedulable = False
        detail = str(exc)
    return StaticReport(
        kind=kind,
        schedulable=schedulable,
        protection_ok=not under,
        under_protected=under,
        capacity=kind.processors,
        utilization=taskset.utilization,
        detail=detail,
    )


@dataclass(frozen=True)
class FlexibleReport:
    """The flexible scheme's result on the same task set."""

    schedulable: bool
    protection_ok: bool  # by construction True when schedulable
    period: float | None
    detail: str = ""


def compare_with_flexible(
    taskset: TaskSet,
    algorithm: str = "EDF",
    overheads: Overheads | None = None,
    *,
    partition: PartitionedTaskSet | None = None,
) -> dict[str, StaticReport | FlexibleReport]:
    """Side-by-side: three static baselines vs the paper's flexible scheme.

    The flexible scheme is *acceptable* exactly when a design exists — by
    construction it always provides every task its required mode.
    """
    out: dict[str, StaticReport | FlexibleReport] = {}
    for kind in StaticKind:
        out[str(kind)] = evaluate_static(taskset, kind, algorithm)
    try:
        part = partition or partition_by_modes(taskset, admission="utilization")
        config = design_platform(
            part, algorithm, overheads or Overheads.zero()
        )
        out["flexible"] = FlexibleReport(
            schedulable=True, protection_ok=True, period=config.period
        )
    except (DesignError, PartitionError, ValueError) as exc:
        out["flexible"] = FlexibleReport(
            schedulable=False, protection_ok=True, period=None, detail=str(exc)
        )
    return out
