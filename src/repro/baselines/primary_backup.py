"""Primary/backup software fault tolerance (related-work baseline [11, 17]).

The classic alternative to hardware replication: every fault-critical task
gets a *backup copy* placed on a different processor of an always-parallel
(ALL-NF) platform. If a fault impairs the primary, the backup produces the
result — late but before the deadline if the backup is schedulable.

This module implements the admission side (replication, disjoint placement,
schedulability) and a worst-case simulation (backups always execute — the
load the admission test must guarantee). The qualitative comparison with the
paper's scheme, exercised by ``benchmarks/bench_baseline_primary_backup.py``:

* bandwidth: PB charges 2× the utilization of each protected task; the
  lock-step scheme charges 2× (FS) or 4× (FT) of the *slot*;
* semantics: PB provides detection+recovery (the primary's wrong output must
  still be contained — which pure software cannot fully do for NF-level
  corruption); lock-step FT masks faults with zero latency, which is why the
  paper targets hardware replication for the highest-criticality tasks.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.model import Mode, Task, TaskSet
from repro.partition.binpack import (
    AdmissionTest,
    PartitionError,
    make_admission_test,
)
from repro.sim.scheduler import make_policy
from repro.sim.uniproc import UniprocResult, simulate_uniproc
from repro.util import check_positive

#: Suffixes marking replica roles.
PRIMARY_SUFFIX = ".pri"
BACKUP_SUFFIX = ".bak"


def replicate_for_pb(taskset: TaskSet) -> TaskSet:
    """Duplicate every fault-critical (FT or FS) task into primary + backup.

    Replicas keep the original timing parameters and are re-moded to NF —
    the PB platform offers no hardware protection; criticality is handled
    purely by the software copies. NF tasks stay single-copy.
    """
    tasks: list[Task] = []
    for t in taskset:
        if t.mode is Mode.NF:
            tasks.append(t)
        else:
            tasks.append(t.replace(name=t.name + PRIMARY_SUFFIX, mode=Mode.NF))
            tasks.append(t.replace(name=t.name + BACKUP_SUFFIX, mode=Mode.NF))
    return TaskSet(tasks)


def _partner(name: str) -> str | None:
    """The replica partner of a task name (None for unreplicated tasks)."""
    if name.endswith(PRIMARY_SUFFIX):
        return name[: -len(PRIMARY_SUFFIX)] + BACKUP_SUFFIX
    if name.endswith(BACKUP_SUFFIX):
        return name[: -len(BACKUP_SUFFIX)] + PRIMARY_SUFFIX
    return None


def pb_partition(
    replicated: TaskSet,
    m: int = 4,
    *,
    admission: AdmissionTest | str = "edf",
) -> list[TaskSet]:
    """Place replicas on ``m`` processors with primary/backup disjointness.

    Worst-fit decreasing with the extra constraint that a task never lands on
    the processor hosting its replica partner. Raises
    :class:`~repro.partition.binpack.PartitionError` when no admissible,
    disjoint placement is found.
    """
    if m < 2:
        raise ValueError("primary/backup placement needs at least 2 processors")
    if isinstance(admission, str):
        admission = make_admission_test(admission)
    bins: list[TaskSet] = [TaskSet() for _ in range(m)]
    where: dict[str, int] = {}
    tasks = sorted(replicated, key=lambda t: (-t.utilization, t.name))
    for task in tasks:
        partner = _partner(task.name)
        forbidden = {where[partner]} if partner in where else set()
        order = sorted(range(m), key=lambda i: (bins[i].utilization, i))
        placed = False
        for idx in order:
            if idx in forbidden:
                continue
            candidate = bins[idx].add(task)
            if admission(candidate):
                bins[idx] = candidate
                where[task.name] = idx
                placed = True
                break
        if not placed:
            raise PartitionError(
                f"replica {task.name} (U={task.utilization:.3f}) has no "
                f"admissible processor disjoint from its partner"
            )
    return bins


@dataclass(frozen=True)
class PBAnalysis:
    """Outcome of primary/backup admission for a mixed task set."""

    schedulable: bool
    replicated_utilization: float
    original_utilization: float
    partition: tuple[TaskSet, ...] | None
    detail: str = ""

    @property
    def replication_overhead(self) -> float:
        """Extra utilization paid for the software copies."""
        return self.replicated_utilization - self.original_utilization


def pb_schedulable(
    taskset: TaskSet,
    m: int = 4,
    *,
    admission: AdmissionTest | str = "edf",
) -> PBAnalysis:
    """Admission of the primary/backup scheme (backups counted in full).

    Counting every backup as always executing is the safe worst case: a
    design admitted here meets all deadlines even when every primary fails.
    """
    replicated = replicate_for_pb(taskset)
    try:
        bins = pb_partition(replicated, m, admission=admission)
        return PBAnalysis(
            schedulable=True,
            replicated_utilization=replicated.utilization,
            original_utilization=taskset.utilization,
            partition=tuple(bins),
        )
    except PartitionError as exc:
        return PBAnalysis(
            schedulable=False,
            replicated_utilization=replicated.utilization,
            original_utilization=taskset.utilization,
            partition=None,
            detail=str(exc),
        )


def simulate_pb_worst_case(
    analysis: PBAnalysis,
    horizon: float,
    *,
    algorithm: str = "EDF",
) -> list[UniprocResult]:
    """Simulate the admitted PB placement with every backup executing.

    Validates the admission test: an admitted design must show zero deadline
    misses even under the all-backups-run load. Raises ``ValueError`` when
    called on an unschedulable analysis.
    """
    check_positive("horizon", horizon)
    if not analysis.schedulable or analysis.partition is None:
        raise ValueError("cannot simulate an unschedulable PB analysis")
    results = []
    for idx, ts in enumerate(analysis.partition):
        if len(ts) == 0:
            continue
        results.append(
            simulate_uniproc(
                ts,
                make_policy(ts, algorithm),
                [(0.0, horizon)],
                horizon,
                processor=f"PB[{idx}]",
            )
        )
    return results
