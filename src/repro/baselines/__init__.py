"""Baselines the paper's flexible scheme is compared against.

* :mod:`repro.baselines.static_platform` — the classical *inflexible*
  configurations of Sections 1–2: the platform is permanently wired as one
  redundant lock-step channel (ALL-FT), two fail-silent channels (ALL-FS) or
  four parallel cores (ALL-NF). Each either wastes capacity or fails to
  protect some tasks — quantifying the motivation for the flexible scheme;
* :mod:`repro.baselines.primary_backup` — the software fault-tolerance
  alternative from the related work [11, 17]: duplicate critical tasks into
  primary + backup copies on disjoint processors of an always-parallel
  platform. Cheaper in bandwidth than hardware replication but provides
  *recovery* (late, detected) rather than *masking*.
"""

from repro.baselines.primary_backup import (
    PBAnalysis,
    pb_partition,
    pb_schedulable,
    replicate_for_pb,
    simulate_pb_worst_case,
)
from repro.baselines.static_platform import (
    StaticKind,
    StaticReport,
    compare_with_flexible,
    evaluate_static,
)

__all__ = [
    "StaticKind",
    "StaticReport",
    "evaluate_static",
    "compare_with_flexible",
    "replicate_for_pb",
    "pb_partition",
    "pb_schedulable",
    "PBAnalysis",
    "simulate_pb_worst_case",
]
