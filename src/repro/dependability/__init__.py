"""Dependability analysis: fault-scenario spaces + outcome-taxonomy curves.

The subsystem behind the ``faultspace`` campaign preset. It turns the
one-off :class:`~repro.faults.injection.FaultCampaign` into campaign-scale
dependability analysis:

* :mod:`repro.dependability.scenarios` — a library of seedable,
  serializable fault-arrival scenarios beyond the paper's Poisson model
  (bursty MMPP showers, spatially correlated multi-core strikes,
  intermittent faults pinned to a marginal core, permanent core failure),
  all drawn over the platform's actual ``core_count``;
* :mod:`repro.dependability.taxonomy` — the bridge folding per-point
  outcome taxonomies (MASKED/SILENCED/CORRUPTED/HARMLESS, per mode) into
  the exact categorical-count accumulators of
  :mod:`repro.runner.aggregate`, plus Wilson confidence intervals for the
  rendered rates.

The campaign-facing pieces live with their peers: the ``dependability``
experiment point in :mod:`repro.runner.points` and the ``faultspace``
preset (grid, aggregator, renderer) in
:mod:`repro.experiments.faultspace`. See docs/campaigns.md
("Dependability analysis").
"""

from repro.dependability.scenarios import (
    BurstyScenario,
    CorrelatedScenario,
    FaultScenario,
    IntermittentScenario,
    PermanentScenario,
    PoissonScenario,
    scenario_from_params,
    scenario_names,
)
from repro.dependability.taxonomy import (
    OUTCOME_CATEGORIES,
    dependability_record,
    format_interval,
    mode_key,
    outcome_curve_metric,
    wilson_interval,
)

__all__ = [
    "BurstyScenario",
    "CorrelatedScenario",
    "FaultScenario",
    "IntermittentScenario",
    "OUTCOME_CATEGORIES",
    "PermanentScenario",
    "PoissonScenario",
    "dependability_record",
    "format_interval",
    "mode_key",
    "outcome_curve_metric",
    "scenario_from_params",
    "scenario_names",
    "wilson_interval",
]
