"""Outcome-taxonomy bridge: per-point dependability records + aggregation.

One fault campaign classifies every injected fault as MASKED / SILENCED /
CORRUPTED / HARMLESS per platform mode (Section 2.2). Campaign-scale
dependability analysis needs those taxonomies *reduced across millions of
points* under the runner's exact-merge contract, so this module provides
the bridge between :class:`~repro.faults.injection.FaultCampaignResult`
and the streaming aggregates:

* :func:`dependability_record` — the JSON record a dependability campaign
  point returns: outcome counts (flat and by ``mode/outcome``), FT-miss
  flags, corrupted/aborted-job counts. Counts, not rates — exact integer
  counts fold through
  :class:`~repro.runner.aggregate.CategoricalCountAccumulator` bins
  bit-identically under sharding/batching/resume, where pre-divided rates
  could not.
* :func:`outcome_curve_metric` — a curve of categorical counts over swept
  parameters (the ``faultspace`` preset's outcome-rate curves).
* :func:`wilson_interval` — Wilson score confidence intervals for the
  rendered outcome shares and FT-miss probabilities (a plain normal
  approximation is useless at the near-0/near-1 rates the paper's
  guarantees produce).
"""

from __future__ import annotations

import math
from typing import TYPE_CHECKING, Any, Callable, Sequence

from repro.faults.model import FaultOutcome
from repro.runner.aggregate import (
    CategoricalCountAccumulator,
    Metric,
    curve_metric,
)

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.faults.injection import FaultCampaignResult

#: Canonical order of the outcome categories in records and tables.
OUTCOME_CATEGORIES: tuple[str, ...] = tuple(str(o) for o in FaultOutcome)

#: 97.5% normal quantile — the z of a 95% two-sided interval.
_Z95 = 1.959963984540054


def mode_key(mode: Any) -> str:
    """Category prefix for a fault's mode (None — idle/overhead — is "idle")."""
    return str(mode) if mode is not None else "idle"


def dependability_record(result: "FaultCampaignResult") -> dict[str, Any]:
    """The per-point dependability record of one finished fault campaign.

    Everything is a plain JSON scalar or a ``{category: int}`` mapping, so
    the record folds directly into categorical-count accumulators and
    caches/serializes canonically.
    """
    return {
        "injected": result.injected,
        "outcomes": {
            str(o): result.outcomes.get(o, 0) for o in FaultOutcome
        },
        "outcomes_by_mode": {
            f"{mode_key(mode)}/{outcome}": count
            for mode, per_outcome in result.outcomes_by_mode.items()
            for outcome, count in per_outcome.items()
        },
        "ft_miss": result.ft_misses > 0,
        "ft_misses": result.ft_misses,
        "total_misses": result.total_misses,
        "any_corruption": result.outcomes.get(FaultOutcome.CORRUPTED, 0) > 0,
        "corrupted_jobs": len(result.corrupted_jobs),
        "aborted_jobs": len(result.aborted_jobs),
    }


def outcome_curve_metric(
    name: str,
    key: str | Sequence[str] | Callable[..., Any],
    value: str | Callable[..., Any],
    *,
    experiment: str | None = None,
) -> Metric:
    """A curve of exact categorical counts over the ``key`` parameter(s).

    Each bin is a :class:`CategoricalCountAccumulator`; ``value`` extracts
    a ``{category: count}`` mapping (or single category) per point — e.g.
    a dependability record's ``outcomes`` field.
    """
    return curve_metric(
        name,
        key,
        value,
        experiment=experiment,
        sub=CategoricalCountAccumulator(),
    )


def wilson_interval(
    successes: int, total: int, *, z: float = _Z95
) -> tuple[float, float] | None:
    """Wilson score interval for a binomial proportion (None when empty).

    Unlike the Wald/normal approximation, the interval stays inside
    ``[0, 1]`` and behaves at ``p`` near 0 or 1 — which is where the
    paper's fault-tolerance claims live (masked rates near 1, FT-miss
    probabilities near 0).
    """
    if total < 0:
        raise ValueError(f"total must be >= 0: got {total}")
    if not 0 <= successes <= max(total, 0):
        raise ValueError(
            f"successes must be in 0..{total}: got {successes}"
        )
    if total == 0:
        return None
    p = successes / total
    z2 = z * z
    denom = 1.0 + z2 / total
    center = (p + z2 / (2.0 * total)) / denom
    half = (
        z
        * math.sqrt(p * (1.0 - p) / total + z2 / (4.0 * total * total))
        / denom
    )
    # At the boundary proportions the exact Wilson bound touches 0/1;
    # rounding must not leave a stray 1e-17 above p = 0 (or below p = 1).
    lo = 0.0 if successes == 0 else max(0.0, center - half)
    hi = 1.0 if successes == total else min(1.0, center + half)
    return (lo, hi)


def format_interval(ci: tuple[float, float] | None) -> str:
    """Compact ``[lo,hi]`` rendering of a confidence interval."""
    if ci is None:
        return "n/a"
    return f"[{ci[0]:.3f},{ci[1]:.3f}]"


__all__ = [
    "OUTCOME_CATEGORIES",
    "dependability_record",
    "format_interval",
    "mode_key",
    "outcome_curve_metric",
    "wilson_interval",
]
