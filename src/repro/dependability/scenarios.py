"""The fault-scenario library: seedable, serializable fault-space generators.

The paper's evaluation injects homogeneous Poisson transients (Section 2.1's
"rare, widely separated particle strikes"). Real dependability analysis
needs a *space* of arrival processes — the related literature (adaptive
fault-tolerant feedback scheduling; the transient/intermittent/permanent
taxonomy for RT multiprocessors) motivates at least:

* :class:`PoissonScenario` — the paper's baseline, homogeneous transients;
* :class:`BurstyScenario` — Markov-modulated Poisson arrivals (quiet/burst
  states with exponential dwell times): radiation events and EMI come in
  showers, not as independent singletons;
* :class:`CorrelatedScenario` — spatially correlated multi-core strikes:
  one particle event upsets several physically adjacent cores in the same
  instant, with a hit probability decaying geometrically in core distance;
* :class:`IntermittentScenario` — a marginal core producing clustered
  episodes of faults pinned to itself (the classic intermittent fault);
* :class:`PermanentScenario` — a core fails for good partway through the
  run and every subsequent use of it faults at a fixed cadence.

Every scenario follows one contract:

* **Seedable** — :meth:`FaultScenario.generate` consumes a
  :class:`numpy.random.Generator`; equal scenario parameters + equal RNG
  state + equal ``(horizon, core_count)`` produce the identical fault list,
  which is what makes dependability campaign points deterministic under
  the runner's content-keyed seeding.
* **Platform-sized** — strikes are drawn over ``0..core_count-1`` (the
  platform's actual core count, from
  :attr:`repro.core.config.PlatformConfig.core_count`), never a hardcoded
  range.
* **Serializable** — :meth:`FaultScenario.to_dict` emits plain JSON params
  (including the ``scenario`` kind) and :func:`scenario_from_params`
  rebuilds the scenario, so specs carry scenarios through the campaign
  cache/shard machinery untouched.
"""

from __future__ import annotations

from typing import Any, Mapping

import numpy as np

from repro.faults.model import Fault, PoissonFaultGenerator
from repro.util import check_core_count, check_nonneg, check_positive

#: Registry of scenario kinds (filled by ``_register``).
_SCENARIOS: dict[str, type["FaultScenario"]] = {}


def _register(cls: type["FaultScenario"]) -> type["FaultScenario"]:
    if cls.kind in _SCENARIOS:
        raise ValueError(f"scenario kind {cls.kind!r} registered twice")
    _SCENARIOS[cls.kind] = cls
    return cls


def scenario_names() -> list[str]:
    """Names of all registered fault scenarios."""
    return sorted(_SCENARIOS)


def scenario_from_params(params: Mapping[str, Any]) -> "FaultScenario":
    """Build a scenario from spec params (``scenario`` kind + its knobs).

    Unknown keys are ignored — campaign point params carry the whole sweep
    axis set (``u_total``, ``rep``, ...), of which each scenario reads only
    its own. Missing ``scenario`` defaults to the paper's Poisson model.
    """
    kind = params.get("scenario", "poisson")
    try:
        cls = _SCENARIOS[kind]
    except KeyError:
        raise ValueError(
            f"unknown fault scenario {kind!r}; known: {scenario_names()}"
        ) from None
    return cls.from_params(params)


class FaultScenario:
    """Base class: a seedable, serializable fault-stream generator."""

    kind: str = ""

    def generate(
        self,
        horizon: float,
        rng: np.random.Generator,
        *,
        core_count: int = 4,
    ) -> list[Fault]:
        """Draw the fault stream over ``[0, horizon)`` on ``core_count`` cores."""
        raise NotImplementedError

    def params_dict(self) -> dict[str, Any]:
        """The scenario's own JSON parameters (without the ``scenario`` kind)."""
        raise NotImplementedError

    def to_dict(self) -> dict[str, Any]:
        """Full JSON form; ``scenario_from_params(s.to_dict()) == s``."""
        return {"scenario": self.kind, **self.params_dict()}

    @classmethod
    def from_params(cls, params: Mapping[str, Any]) -> "FaultScenario":
        raise NotImplementedError

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, FaultScenario):
            return NotImplemented
        return self.to_dict() == other.to_dict()

    def __hash__(self) -> int:
        return hash(tuple(sorted(self.to_dict().items())))

    def __repr__(self) -> str:
        params = ", ".join(f"{k}={v!r}" for k, v in self.params_dict().items())
        return f"{type(self).__name__}({params})"


def _pinned_core(
    core: int | None, rng: np.random.Generator, core_count: int
) -> int:
    """Resolve an optional pinned core: validate it, or draw one uniformly."""
    if core is None:
        return int(rng.integers(0, core_count))
    if not 0 <= core < core_count:
        raise ValueError(
            f"pinned core {core} outside the platform's 0..{core_count - 1}"
        )
    return int(core)


@_register
class PoissonScenario(FaultScenario):
    """The paper's baseline: homogeneous Poisson transients, uniform cores.

    ``min_separation`` enforces the single-fault assumption. The raw
    scenario defaults it to 0 (no platform period is known here); the
    ``dependability`` campaign point substitutes one platform period when
    the spec does not set it explicitly, matching the ``fault-injection``
    baseline.
    """

    kind = "poisson"

    def __init__(self, rate: float, *, min_separation: float = 0.0):
        check_positive("rate", rate)
        check_nonneg("min_separation", min_separation)
        self.rate = float(rate)
        self.min_separation = float(min_separation)

    def generate(
        self,
        horizon: float,
        rng: np.random.Generator,
        *,
        core_count: int = 4,
    ) -> list[Fault]:
        gen = PoissonFaultGenerator(
            self.rate,
            min_separation=self.min_separation,
            core_count=core_count,
        )
        return gen.generate(horizon, rng)

    def params_dict(self) -> dict[str, Any]:
        return {"rate": self.rate, "min_separation": self.min_separation}

    @classmethod
    def from_params(cls, params: Mapping[str, Any]) -> "PoissonScenario":
        return cls(
            params["rate"],
            min_separation=params.get("min_separation", 0.0),
        )


@_register
class BurstyScenario(FaultScenario):
    """Markov-modulated Poisson arrivals: quiet/burst states, uniform cores.

    The process alternates between a *quiet* state (arrival rate ``rate``)
    and a *burst* state (``rate * burst_factor``); dwell times in each state
    are exponential with means ``mean_quiet`` / ``mean_burst``. Bursts
    deliberately violate the paper's wide-separation assumption — that is
    exactly the stress this scenario applies.
    """

    kind = "bursty"

    def __init__(
        self,
        rate: float,
        *,
        burst_factor: float = 20.0,
        mean_quiet: float = 60.0,
        mean_burst: float = 3.0,
    ):
        check_positive("rate", rate)
        check_positive("mean_quiet", mean_quiet)
        check_positive("mean_burst", mean_burst)
        if burst_factor < 1.0:
            raise ValueError(
                f"burst_factor must be >= 1: got {burst_factor}"
            )
        self.rate = float(rate)
        self.burst_factor = float(burst_factor)
        self.mean_quiet = float(mean_quiet)
        self.mean_burst = float(mean_burst)

    def generate(
        self,
        horizon: float,
        rng: np.random.Generator,
        *,
        core_count: int = 4,
    ) -> list[Fault]:
        check_positive("horizon", horizon)
        check_core_count(core_count)
        faults: list[Fault] = []
        t = 0.0
        burst = False
        while t < horizon:
            dwell = rng.exponential(self.mean_burst if burst else self.mean_quiet)
            end = min(t + dwell, horizon)
            state_rate = self.rate * (self.burst_factor if burst else 1.0)
            at = t
            while True:
                at += rng.exponential(1.0 / state_rate)
                if at >= end:
                    break
                faults.append(
                    Fault(at, int(rng.integers(0, core_count)), core_count)
                )
            t = end
            burst = not burst
        return faults

    def params_dict(self) -> dict[str, Any]:
        return {
            "rate": self.rate,
            "burst_factor": self.burst_factor,
            "mean_quiet": self.mean_quiet,
            "mean_burst": self.mean_burst,
        }

    @classmethod
    def from_params(cls, params: Mapping[str, Any]) -> "BurstyScenario":
        return cls(
            params["rate"],
            burst_factor=params.get("burst_factor", 20.0),
            mean_quiet=params.get("mean_quiet", 60.0),
            mean_burst=params.get("mean_burst", 3.0),
        )


@_register
class CorrelatedScenario(FaultScenario):
    """Spatially correlated strikes: one event may upset several cores.

    Strike *events* arrive Poisson at ``rate``; each picks a uniform anchor
    core and additionally hits the core at distance ``d`` (cyclic index
    distance) with probability ``spread ** d`` — a geometric decay in
    physical adjacency, so one event can put simultaneous faults on
    neighbouring cores (which a per-channel voter cannot always mask).
    """

    kind = "correlated"

    def __init__(self, rate: float, *, spread: float = 0.5):
        check_positive("rate", rate)
        if not 0.0 <= spread < 1.0:
            raise ValueError(f"spread must be in [0, 1): got {spread}")
        self.rate = float(rate)
        self.spread = float(spread)

    def generate(
        self,
        horizon: float,
        rng: np.random.Generator,
        *,
        core_count: int = 4,
    ) -> list[Fault]:
        check_positive("horizon", horizon)
        check_core_count(core_count)
        faults: list[Fault] = []
        t = 0.0
        while True:
            t += rng.exponential(1.0 / self.rate)
            if t >= horizon:
                break
            anchor = int(rng.integers(0, core_count))
            faults.append(Fault(t, anchor, core_count))
            for distance in range(1, core_count):
                if rng.random() < self.spread**distance:
                    faults.append(
                        Fault(t, (anchor + distance) % core_count, core_count)
                    )
        return faults

    def params_dict(self) -> dict[str, Any]:
        return {"rate": self.rate, "spread": self.spread}

    @classmethod
    def from_params(cls, params: Mapping[str, Any]) -> "CorrelatedScenario":
        return cls(params["rate"], spread=params.get("spread", 0.5))


@_register
class IntermittentScenario(FaultScenario):
    """A marginal core: clustered fault episodes pinned to one core.

    Episodes arrive Poisson at ``rate``; each delivers a geometric number
    of hits (mean ``mean_hits``) spaced ``gap`` apart, all on ``core``
    (drawn uniformly once per stream when None). This is the classic
    intermittent fault of the RT-multiprocessor taxonomy: neither a
    one-shot transient nor a clean permanent failure.
    """

    kind = "intermittent"

    def __init__(
        self,
        rate: float,
        *,
        core: int | None = None,
        mean_hits: float = 3.0,
        gap: float = 0.25,
    ):
        check_positive("rate", rate)
        check_positive("mean_hits", mean_hits)
        check_positive("gap", gap)
        if mean_hits < 1.0:
            raise ValueError(f"mean_hits must be >= 1: got {mean_hits}")
        self.rate = float(rate)
        self.core = core if core is None else int(core)
        self.mean_hits = float(mean_hits)
        self.gap = float(gap)

    def generate(
        self,
        horizon: float,
        rng: np.random.Generator,
        *,
        core_count: int = 4,
    ) -> list[Fault]:
        check_positive("horizon", horizon)
        check_core_count(core_count)
        core = _pinned_core(self.core, rng, core_count)
        faults: list[Fault] = []
        t = 0.0
        while True:
            t += rng.exponential(1.0 / self.rate)
            if t >= horizon:
                break
            hits = int(rng.geometric(1.0 / self.mean_hits))
            for i in range(hits):
                at = t + i * self.gap
                if at >= horizon:
                    break
                faults.append(Fault(at, core, core_count))
        return faults

    def params_dict(self) -> dict[str, Any]:
        return {
            "rate": self.rate,
            "core": self.core,
            "mean_hits": self.mean_hits,
            "gap": self.gap,
        }

    @classmethod
    def from_params(cls, params: Mapping[str, Any]) -> "IntermittentScenario":
        return cls(
            params["rate"],
            core=params.get("core"),
            mean_hits=params.get("mean_hits", 3.0),
            gap=params.get("gap", 0.25),
        )


@_register
class PermanentScenario(FaultScenario):
    """Permanent core failure: one core dies and faults on every use.

    The failing core (drawn uniformly when None) works until
    ``onset_fraction * horizon``, then produces a fault every ``1 / rate``
    time units until the horizon — the transient-fault sim's view of "this
    core is dead from here on": each strike silences or corrupts whatever
    the platform scheduled onto it.

    The onset boundaries are exact: ``onset_fraction=0.0`` kills the core
    at t=0 (the first strike lands exactly at 0) and ``onset_fraction=1.0``
    means the core never dies within the horizon (an empty fault stream) —
    neither is off by one cadence step at the horizon boundary.
    """

    kind = "permanent"

    def __init__(
        self,
        rate: float,
        *,
        onset_fraction: float = 0.5,
        core: int | None = None,
    ):
        check_positive("rate", rate)
        if not 0.0 <= onset_fraction <= 1.0:
            raise ValueError(
                f"onset_fraction must be in [0, 1]: got {onset_fraction}"
            )
        self.rate = float(rate)
        self.onset_fraction = float(onset_fraction)
        self.core = core if core is None else int(core)

    def generate(
        self,
        horizon: float,
        rng: np.random.Generator,
        *,
        core_count: int = 4,
    ) -> list[Fault]:
        check_positive("horizon", horizon)
        check_core_count(core_count)
        core = _pinned_core(self.core, rng, core_count)
        onset = self.onset_fraction * horizon
        step = 1.0 / self.rate
        faults: list[Fault] = []
        t = onset
        while t < horizon:
            faults.append(Fault(t, core, core_count))
            t += step
        return faults

    def params_dict(self) -> dict[str, Any]:
        return {
            "rate": self.rate,
            "onset_fraction": self.onset_fraction,
            "core": self.core,
        }

    @classmethod
    def from_params(cls, params: Mapping[str, Any]) -> "PermanentScenario":
        return cls(
            params["rate"],
            onset_fraction=params.get("onset_fraction", 0.5),
            core=params.get("core"),
        )


__all__ = [
    "BurstyScenario",
    "CorrelatedScenario",
    "FaultScenario",
    "IntermittentScenario",
    "PermanentScenario",
    "PoissonScenario",
    "scenario_from_params",
    "scenario_names",
]
