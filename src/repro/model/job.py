"""Run-time job instances used by the discrete-event simulator.

A :class:`Job` is one activation of a sporadic task: released at
``release``, needing ``wcet`` units of service, due at ``release + deadline``.
The simulator mutates job state as it allocates processor time; the analysis
layer never uses jobs.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from repro.model.task import Task
from repro.util import EPS, approx_le


class JobState(enum.Enum):
    """Lifecycle of a job inside the simulator."""

    READY = "ready"          #: released, waiting for or receiving service
    COMPLETED = "completed"  #: received its full WCET
    ABORTED = "aborted"      #: killed (e.g. its fail-silent channel was silenced)

    def __str__(self) -> str:  # pragma: no cover - trivial
        return self.value


@dataclass
class Job:
    """One activation of a task.

    Attributes
    ----------
    task:
        The generating task.
    release:
        Absolute release time.
    index:
        Zero-based activation count of the task (job ``k`` releases at
        ``k * T_i`` in the synchronous periodic pattern).
    remaining:
        Execution time still owed to the job.
    state:
        Current :class:`JobState`.
    completion_time:
        Set when the job completes.
    corrupted:
        True when a fault hit the job in NF mode and its output is silently
        wrong (the paper's "unpredictable behaviour" in NF mode).
    """

    task: Task
    release: float
    index: int
    remaining: float = field(default=None)  # type: ignore[assignment]
    state: JobState = JobState.READY
    completion_time: float | None = None
    corrupted: bool = False

    def __post_init__(self) -> None:
        if self.remaining is None:
            self.remaining = self.task.wcet

    @property
    def name(self) -> str:
        """Readable identifier ``task#index``."""
        return f"{self.task.name}#{self.index}"

    @property
    def absolute_deadline(self) -> float:
        """``release + D_i``."""
        return self.release + self.task.deadline

    @property
    def is_active(self) -> bool:
        """True while the job still needs service."""
        return self.state is JobState.READY and self.remaining > EPS

    def execute(self, amount: float) -> float:
        """Consume up to ``amount`` of remaining work; return time consumed."""
        if amount < -EPS:
            raise ValueError(f"cannot execute negative time: {amount}")
        used = min(max(amount, 0.0), self.remaining)
        self.remaining -= used
        if self.remaining <= EPS:
            self.remaining = 0.0
        return used

    def complete(self, now: float) -> None:
        """Mark the job completed at time ``now``."""
        if self.state is not JobState.READY:
            raise RuntimeError(f"job {self.name} cannot complete from state {self.state}")
        self.state = JobState.COMPLETED
        self.completion_time = now

    def abort(self) -> None:
        """Abort the job (fail-silent channel shutdown)."""
        if self.state is JobState.READY:
            self.state = JobState.ABORTED

    def met_deadline(self) -> bool:
        """True if the job completed at or before its absolute deadline."""
        return (
            self.state is JobState.COMPLETED
            and self.completion_time is not None
            and approx_le(self.completion_time, self.absolute_deadline)
        )

    @property
    def response_time(self) -> float | None:
        """Completion minus release, or None if not completed."""
        if self.completion_time is None:
            return None
        return self.completion_time - self.release

    def __repr__(self) -> str:
        return (
            f"Job({self.name}: r={self.release:g}, d={self.absolute_deadline:g}, "
            f"rem={self.remaining:g}, {self.state})"
        )
