"""Task-set container with utilization, hyperperiod and mode queries.

A :class:`TaskSet` is an immutable, ordered collection of uniquely named
:class:`~repro.model.task.Task` objects. It provides the aggregate quantities
used throughout the paper's analysis: total utilization ``U(T)`` (Section
2.3), the hyperperiod (needed by ``dlSet`` in Theorem 2) and the partition of
tasks by operating mode.
"""

from __future__ import annotations

from fractions import Fraction
from typing import Callable, Iterable, Iterator, Mapping

from repro.model.task import Mode, Task
from repro.util import lcm_fractions, to_fraction


class TaskSet:
    """Immutable ordered set of uniquely named tasks.

    Supports iteration, indexing by position or task name, ``len``, ``in``
    (by task or name), equality, and set-style restriction helpers.
    """

    __slots__ = ("_tasks", "_by_name")

    def __init__(self, tasks: Iterable[Task] = ()):
        tasks = tuple(tasks)
        by_name: dict[str, Task] = {}
        for t in tasks:
            if not isinstance(t, Task):
                raise TypeError(f"TaskSet items must be Task: got {type(t).__name__}")
            if t.name in by_name:
                raise ValueError(f"duplicate task name {t.name!r} in TaskSet")
            by_name[t.name] = t
        self._tasks: tuple[Task, ...] = tasks
        self._by_name: dict[str, Task] = by_name

    # -- collection protocol -------------------------------------------------

    def __iter__(self) -> Iterator[Task]:
        return iter(self._tasks)

    def __len__(self) -> int:
        return len(self._tasks)

    def __getitem__(self, key: int | str) -> Task:
        if isinstance(key, str):
            try:
                return self._by_name[key]
            except KeyError:
                raise KeyError(f"no task named {key!r} in TaskSet") from None
        return self._tasks[key]

    def __contains__(self, item: object) -> bool:
        if isinstance(item, Task):
            return self._by_name.get(item.name) == item
        if isinstance(item, str):
            return item in self._by_name
        return False

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, TaskSet):
            return NotImplemented
        return self._tasks == other._tasks

    def __hash__(self) -> int:
        return hash(self._tasks)

    def __repr__(self) -> str:
        inner = ", ".join(t.name for t in self._tasks)
        return f"TaskSet([{inner}], U={self.utilization:.3f})"

    # -- aggregate quantities ------------------------------------------------

    @property
    def tasks(self) -> tuple[Task, ...]:
        """The tasks in insertion order."""
        return self._tasks

    @property
    def names(self) -> tuple[str, ...]:
        """Task names in insertion order."""
        return tuple(t.name for t in self._tasks)

    @property
    def utilization(self) -> float:
        """Total utilization ``U(T) = sum_i C_i/T_i``."""
        return sum(t.utilization for t in self._tasks)

    @property
    def density(self) -> float:
        """Total density ``sum_i C_i/D_i``."""
        return sum(t.density for t in self._tasks)

    @property
    def max_utilization(self) -> float:
        """Largest single-task utilization (0 for an empty set)."""
        return max((t.utilization for t in self._tasks), default=0.0)

    def hyperperiod(self) -> float:
        """Exact hyperperiod (LCM of periods), computed over rationals.

        Raises :class:`ValueError` for an empty task set (no hyperperiod).
        Float periods are rationalised exactly via
        :func:`repro.util.to_fraction`, so integer and simple decimal periods
        yield the textbook LCM.
        """
        return float(self.hyperperiod_fraction())

    def hyperperiod_fraction(self) -> Fraction:
        """Hyperperiod as an exact :class:`Fraction`."""
        if not self._tasks:
            raise ValueError("hyperperiod of an empty TaskSet is undefined")
        return lcm_fractions([to_fraction(t.period) for t in self._tasks])

    # -- restriction / partition helpers ------------------------------------

    def restrict(self, predicate: Callable[[Task], bool]) -> "TaskSet":
        """Return the sub-TaskSet of tasks matching ``predicate`` (order kept)."""
        return TaskSet(t for t in self._tasks if predicate(t))

    def by_mode(self, mode: Mode) -> "TaskSet":
        """Tasks requiring the given operating mode, e.g. ``T_FT``."""
        return self.restrict(lambda t: t.mode is mode)

    def mode_partition(self) -> Mapping[Mode, "TaskSet"]:
        """Partition into ``{FT: T_FT, FS: T_FS, NF: T_NF}`` (Section 2.3)."""
        return {m: self.by_mode(m) for m in Mode}

    def subset(self, names: Iterable[str]) -> "TaskSet":
        """Sub-TaskSet of the named tasks, in this set's order.

        Raises :class:`KeyError` if any name is missing.
        """
        wanted = set(names)
        missing = wanted - set(self._by_name)
        if missing:
            raise KeyError(f"tasks not in TaskSet: {sorted(missing)}")
        return TaskSet(t for t in self._tasks if t.name in wanted)

    def without(self, names: Iterable[str]) -> "TaskSet":
        """Sub-TaskSet excluding the named tasks (missing names ignored)."""
        drop = set(names)
        return TaskSet(t for t in self._tasks if t.name not in drop)

    def add(self, task: Task) -> "TaskSet":
        """Return a new TaskSet with ``task`` appended."""
        return TaskSet(self._tasks + (task,))

    def sorted_by(self, key: Callable[[Task], float], reverse: bool = False) -> "TaskSet":
        """Return a new TaskSet sorted by ``key`` (stable)."""
        return TaskSet(sorted(self._tasks, key=key, reverse=reverse))

    # -- convenience ---------------------------------------------------------

    @property
    def all_implicit_deadline(self) -> bool:
        """True if every task has ``D_i == T_i``."""
        return all(t.implicit_deadline for t in self._tasks)

    def summary(self) -> str:
        """A short human-readable multi-line description."""
        lines = [f"TaskSet: {len(self)} tasks, U={self.utilization:.4f}"]
        for mode in Mode:
            sub = self.by_mode(mode)
            if len(sub):
                lines.append(
                    f"  {mode}: {len(sub)} tasks, U={sub.utilization:.4f} "
                    f"({', '.join(sub.names)})"
                )
        return "\n".join(lines)
