"""Task-set transformations used by generators, ablations and tests."""

from __future__ import annotations

from typing import Iterable

from repro.model.task import Mode, Task
from repro.model.taskset import TaskSet
from repro.util import check_positive


def scale_periods(taskset: TaskSet, factor: float) -> TaskSet:
    """Multiply every period *and deadline* by ``factor`` (keeps D/T ratios).

    Utilizations scale by ``1/factor``.
    """
    check_positive("factor", factor)
    return TaskSet(
        t.replace(period=t.period * factor, deadline=t.deadline * factor)
        for t in taskset
    )


def scale_wcets(taskset: TaskSet, factor: float) -> TaskSet:
    """Multiply every WCET by ``factor``; utilizations scale by ``factor``.

    Raises ``ValueError`` (via Task validation) if scaling makes any
    ``C_i > D_i``.
    """
    check_positive("factor", factor)
    return TaskSet(t.replace(wcet=t.wcet * factor) for t in taskset)


def implicit_deadlines(taskset: TaskSet) -> TaskSet:
    """Return a copy with every deadline reset to the period."""
    return TaskSet(t.replace(deadline=t.period) for t in taskset)


def with_mode(taskset: TaskSet, mode: Mode) -> TaskSet:
    """Return a copy with every task's mode replaced by ``mode``."""
    return TaskSet(t.replace(mode=mode) for t in taskset)


def merge_tasksets(tasksets: Iterable[TaskSet], *, rename_collisions: bool = False) -> TaskSet:
    """Concatenate task sets into one.

    With ``rename_collisions`` duplicated names get a ``.2``, ``.3``, ...
    suffix instead of raising.
    """
    tasks: list[Task] = []
    counts: dict[str, int] = {}
    for ts in tasksets:
        for t in ts:
            n = counts.get(t.name, 0) + 1
            counts[t.name] = n
            if n > 1:
                if not rename_collisions:
                    raise ValueError(f"duplicate task name {t.name!r} while merging")
                t = t.replace(name=f"{t.name}.{n}")
            tasks.append(t)
    return TaskSet(tasks)
