"""The sporadic task and the three operating modes of the paper.

A task is the immutable tuple ``(C_i, T_i, D_i, mode_i)`` of Section 2.3:
worst-case execution time, minimum inter-arrival time, relative constrained
deadline (``D_i <= T_i``) and the fault-robustness mode the task requires
(Section 2.2). Tasks are value objects — hashable, comparable, safe to use as
dict keys and set members.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Any

from repro.util import check_positive


class Mode(enum.Enum):
    """Operating mode requested by a task (Section 2.2).

    * ``FT`` — fault-tolerant: executed while all four cores run in redundant
      lock-step; a single transient fault is masked by majority voting.
    * ``FS`` — fail-silent: executed on one of two dual lock-step channels;
      a fault is detected by output comparison and the channel is silenced.
    * ``NF`` — non-fault-tolerant: executed on one of four independent cores;
      no guarantee is given under faults.
    """

    FT = "FT"
    FS = "FS"
    NF = "NF"

    @property
    def parallelism(self) -> int:
        """Number of logical processors the platform offers in this mode."""
        return _PARALLELISM[self]

    @property
    def cores_per_channel(self) -> int:
        """Physical cores backing one logical processor in this mode."""
        return 4 // _PARALLELISM[self]

    def __str__(self) -> str:  # pragma: no cover - trivial
        return self.value


_PARALLELISM = {Mode.FT: 1, Mode.FS: 2, Mode.NF: 4}

#: Canonical slot ordering of the major cycle (Figure 2): FT, then FS, then NF.
MODE_ORDER: tuple[Mode, Mode, Mode] = (Mode.FT, Mode.FS, Mode.NF)


@dataclass(frozen=True, order=False)
class Task:
    """A sporadic real-time task ``(C, T, D, mode)``.

    Parameters
    ----------
    name:
        Unique identifier within a task set (e.g. ``"tau1"``).
    wcet:
        Worst-case execution time ``C_i`` (> 0).
    period:
        Minimum inter-arrival time ``T_i`` (> 0).
    deadline:
        Relative deadline ``D_i``; defaults to ``period`` (implicit deadline).
        Must satisfy ``0 < C_i <= D_i <= T_i`` (constrained deadlines, as
        assumed by the paper's analysis).
    mode:
        Required operating mode; defaults to :attr:`Mode.NF`.
    jitter:
        Release jitter ``J_i >= 0``: the actual release of a job may lag its
        nominal arrival by up to ``J_i``. The paper notes its formulation
        "also applies to task sets with static offset and jitter"; the
        jitter-aware analysis lives in :mod:`repro.analysis.jitter`. A task
        with ``J_i > D_i - C_i`` is constructible but can never be
        guaranteed (the analysis reports it as unschedulable).
    """

    name: str
    wcet: float
    period: float
    deadline: float = field(default=None)  # type: ignore[assignment]
    mode: Mode = Mode.NF
    jitter: float = 0.0

    def __post_init__(self) -> None:
        if not isinstance(self.name, str) or not self.name:
            raise ValueError(f"task name must be a non-empty string: got {self.name!r}")
        check_positive("wcet", self.wcet)
        check_positive("period", self.period)
        if self.deadline is None:
            object.__setattr__(self, "deadline", self.period)
        check_positive("deadline", self.deadline)
        if not isinstance(self.mode, Mode):
            raise TypeError(f"mode must be a Mode: got {self.mode!r}")
        if self.wcet > self.deadline:
            raise ValueError(
                f"task {self.name}: wcet ({self.wcet}) must not exceed "
                f"deadline ({self.deadline})"
            )
        if self.deadline > self.period:
            raise ValueError(
                f"task {self.name}: deadline ({self.deadline}) must not exceed "
                f"period ({self.period}) — the analysis assumes constrained deadlines"
            )
        if not isinstance(self.jitter, (int, float)) or isinstance(self.jitter, bool):
            raise TypeError(f"jitter must be a number: got {self.jitter!r}")
        if self.jitter < 0:
            raise ValueError(f"task {self.name}: jitter must be >= 0: got {self.jitter}")
        # Normalise numeric fields to float so hashing/equality are stable
        # regardless of whether ints or floats were passed in.
        object.__setattr__(self, "wcet", float(self.wcet))
        object.__setattr__(self, "period", float(self.period))
        object.__setattr__(self, "deadline", float(self.deadline))
        object.__setattr__(self, "jitter", float(self.jitter))

    @property
    def utilization(self) -> float:
        """Utilization ``U_i = C_i / T_i``."""
        return self.wcet / self.period

    @property
    def density(self) -> float:
        """Density ``C_i / D_i`` (equals utilization for implicit deadlines)."""
        return self.wcet / self.deadline

    @property
    def implicit_deadline(self) -> bool:
        """True when ``D_i == T_i``."""
        return self.deadline == self.period

    def replace(self, **changes: Any) -> "Task":
        """Return a copy of this task with the given fields replaced."""
        kwargs = {
            "name": self.name,
            "wcet": self.wcet,
            "period": self.period,
            "deadline": self.deadline,
            "mode": self.mode,
            "jitter": self.jitter,
        }
        kwargs.update(changes)
        return Task(**kwargs)

    def __repr__(self) -> str:
        dl = "" if self.implicit_deadline else f", D={self.deadline:g}"
        jt = "" if self.jitter == 0.0 else f", J={self.jitter:g}"
        return f"Task({self.name}: C={self.wcet:g}, T={self.period:g}{dl}{jt}, {self.mode})"
