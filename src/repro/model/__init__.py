"""Sporadic real-time task model with fault-robustness modes.

Implements Section 2 of the paper: sporadic tasks ``(C_i, T_i, D_i)`` with a
required operating mode (FT / FS / NF), task sets with utilization and
hyperperiod queries, and run-time job instances used by the simulator.
"""

from repro.model.job import Job, JobState
from repro.model.partitioned import PartitionedTaskSet
from repro.model.serialization import (
    task_from_dict,
    task_to_dict,
    taskset_from_dict,
    taskset_from_json,
    taskset_to_dict,
    taskset_to_json,
)
from repro.model.task import MODE_ORDER, Mode, Task
from repro.model.taskset import TaskSet
from repro.model.transformations import (
    implicit_deadlines,
    merge_tasksets,
    scale_periods,
    scale_wcets,
    with_mode,
)

__all__ = [
    "MODE_ORDER",
    "Mode",
    "Task",
    "TaskSet",
    "PartitionedTaskSet",
    "Job",
    "JobState",
    "task_to_dict",
    "task_from_dict",
    "taskset_to_dict",
    "taskset_from_dict",
    "taskset_to_json",
    "taskset_from_json",
    "scale_periods",
    "scale_wcets",
    "implicit_deadlines",
    "merge_tasksets",
    "with_mode",
]
