"""Partitioned task sets: the per-mode, per-processor assignment of Section 3.

During NF mode four logical processors are available, during FS two, during
FT one (Section 2.4). A :class:`PartitionedTaskSet` records, for each mode,
the list of per-processor :class:`~repro.model.taskset.TaskSet` partitions —
``T_NF^1..T_NF^4``, ``T_FS^1..T_FS^2``, ``T_FT`` — and validates that the
partition is consistent with the task modes and the platform parallelism.
"""

from __future__ import annotations

from typing import Iterable, Mapping, Sequence

from repro.model.task import MODE_ORDER, Mode, Task
from repro.model.taskset import TaskSet


class PartitionedTaskSet:
    """A per-mode partition of a task set onto logical processors.

    Parameters
    ----------
    partitions:
        Mapping from :class:`Mode` to a sequence of TaskSets, one per logical
        processor of that mode. Fewer entries than the mode's parallelism are
        padded with empty TaskSets; more entries raise ``ValueError``.

    Invariants enforced
    -------------------
    * every task appears in the partition of its own required mode;
    * no task appears twice;
    * at most ``mode.parallelism`` processor bins per mode.
    """

    __slots__ = ("_parts",)

    def __init__(self, partitions: Mapping[Mode, Sequence[TaskSet]]):
        parts: dict[Mode, tuple[TaskSet, ...]] = {}
        seen: dict[str, str] = {}
        for mode in Mode:
            bins = list(partitions.get(mode, ()))
            if len(bins) > mode.parallelism:
                raise ValueError(
                    f"mode {mode} offers {mode.parallelism} logical processors, "
                    f"got {len(bins)} partitions"
                )
            while len(bins) < mode.parallelism:
                bins.append(TaskSet())
            for proc_idx, ts in enumerate(bins):
                if not isinstance(ts, TaskSet):
                    raise TypeError(
                        f"partition bins must be TaskSet: got {type(ts).__name__}"
                    )
                for task in ts:
                    if task.mode is not mode:
                        raise ValueError(
                            f"task {task.name} requires mode {task.mode} but was "
                            f"assigned to a {mode} partition"
                        )
                    where = f"{mode}[{proc_idx}]"
                    if task.name in seen:
                        raise ValueError(
                            f"task {task.name} assigned twice "
                            f"({seen[task.name]} and {where})"
                        )
                    seen[task.name] = where
            parts[mode] = tuple(bins)
        self._parts = parts

    # -- accessors -----------------------------------------------------------

    def bins(self, mode: Mode) -> tuple[TaskSet, ...]:
        """Per-processor partitions of ``mode`` (length = mode.parallelism)."""
        return self._parts[mode]

    def bin(self, mode: Mode, index: int) -> TaskSet:
        """Partition of the ``index``-th logical processor of ``mode``."""
        return self._parts[mode][index]

    def mode_taskset(self, mode: Mode) -> TaskSet:
        """All tasks of a mode, merged back into one TaskSet."""
        tasks: list[Task] = []
        for ts in self._parts[mode]:
            tasks.extend(ts)
        return TaskSet(tasks)

    def all_tasks(self) -> TaskSet:
        """Every task across all modes, FT slots first (Figure 2 order)."""
        tasks: list[Task] = []
        for mode in MODE_ORDER:
            tasks.extend(self.mode_taskset(mode))
        return TaskSet(tasks)

    def processor_of(self, task_name: str) -> tuple[Mode, int]:
        """Return ``(mode, processor index)`` hosting the named task."""
        for mode in Mode:
            for idx, ts in enumerate(self._parts[mode]):
                if task_name in ts:
                    return mode, idx
        raise KeyError(f"task {task_name!r} not found in partition")

    def max_bin_utilization(self, mode: Mode) -> float:
        """``max_i U(T_mode^i)`` — the binding quantity in Eqs. (13)–(14)."""
        return max(ts.utilization for ts in self._parts[mode])

    # -- niceties ------------------------------------------------------------

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, PartitionedTaskSet):
            return NotImplemented
        return self._parts == other._parts

    def __repr__(self) -> str:
        chunks = []
        for mode in MODE_ORDER:
            bins = ", ".join("{" + ",".join(ts.names) + "}" for ts in self._parts[mode])
            chunks.append(f"{mode}: [{bins}]")
        return f"PartitionedTaskSet({'; '.join(chunks)})"

    def summary(self) -> str:
        """Readable multi-line description with per-bin utilizations."""
        lines = ["PartitionedTaskSet:"]
        for mode in MODE_ORDER:
            for idx, ts in enumerate(self._parts[mode]):
                names = ", ".join(ts.names) or "-"
                lines.append(
                    f"  {mode}[{idx}]: U={ts.utilization:.4f}  ({names})"
                )
        return "\n".join(lines)


def partition_from_names(
    taskset: TaskSet, assignment: Mapping[Mode, Sequence[Iterable[str]]]
) -> PartitionedTaskSet:
    """Build a :class:`PartitionedTaskSet` from task-name lists.

    ``assignment`` maps each mode to a list of name-iterables, one per logical
    processor, e.g. ``{Mode.NF: [["tau1"], ["tau2", "tau3"], ...], ...}``.
    Tasks of ``taskset`` not mentioned anywhere raise ``ValueError`` so that a
    partition silently dropping tasks cannot pass validation.
    """
    parts: dict[Mode, list[TaskSet]] = {}
    mentioned: set[str] = set()
    for mode, bins in assignment.items():
        out_bins = []
        for names in bins:
            names = list(names)
            mentioned.update(names)
            out_bins.append(taskset.subset(names))
        parts[mode] = out_bins
    missing = set(taskset.names) - mentioned
    if missing:
        raise ValueError(f"partition does not place tasks: {sorted(missing)}")
    return PartitionedTaskSet(parts)
