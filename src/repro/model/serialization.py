"""JSON-friendly serialization of tasks and task sets.

Round-trips :class:`~repro.model.task.Task` and
:class:`~repro.model.taskset.TaskSet` through plain dicts/JSON so workloads
can be stored next to experiment results.
"""

from __future__ import annotations

import json
from typing import Any, Mapping

from repro.model.task import Mode, Task
from repro.model.taskset import TaskSet

_SCHEMA_VERSION = 1


def task_to_dict(task: Task) -> dict[str, Any]:
    """Serialize a task to a plain dict (jitter included only when set)."""
    out = {
        "name": task.name,
        "wcet": task.wcet,
        "period": task.period,
        "deadline": task.deadline,
        "mode": task.mode.value,
    }
    if task.jitter:
        out["jitter"] = task.jitter
    return out


def task_from_dict(data: Mapping[str, Any]) -> Task:
    """Deserialize a task from :func:`task_to_dict` output."""
    try:
        mode = Mode(data.get("mode", "NF"))
    except ValueError as exc:
        raise ValueError(f"unknown mode {data.get('mode')!r}") from exc
    return Task(
        name=data["name"],
        wcet=data["wcet"],
        period=data["period"],
        deadline=data.get("deadline"),
        mode=mode,
        jitter=data.get("jitter", 0.0),
    )


def taskset_to_dict(taskset: TaskSet) -> dict[str, Any]:
    """Serialize a task set (with schema version for forward compatibility)."""
    return {
        "schema": _SCHEMA_VERSION,
        "tasks": [task_to_dict(t) for t in taskset],
    }


def taskset_from_dict(data: Mapping[str, Any]) -> TaskSet:
    """Deserialize a task set from :func:`taskset_to_dict` output."""
    schema = data.get("schema", _SCHEMA_VERSION)
    if schema != _SCHEMA_VERSION:
        raise ValueError(f"unsupported taskset schema version: {schema}")
    return TaskSet(task_from_dict(td) for td in data["tasks"])


def taskset_to_json(taskset: TaskSet, *, indent: int | None = 2) -> str:
    """Serialize a task set to a JSON string."""
    return json.dumps(taskset_to_dict(taskset), indent=indent)


def taskset_from_json(text: str) -> TaskSet:
    """Deserialize a task set from :func:`taskset_to_json` output."""
    return taskset_from_dict(json.loads(text))
