"""Bin-packing heuristics with schedulability-based admission.

Each heuristic assigns tasks one by one to ``m`` bins (logical processors).
A candidate assignment is *admissible* when the bin still passes the chosen
admission test; among admissible bins the heuristics differ in their
preference:

* first-fit — lowest index;
* best-fit — highest utilization (tightest remaining space);
* worst-fit — lowest utilization (balances load — the natural choice here,
  since the design quanta scale with the *maximum* bin demand, Eqs. 13–14);
* next-fit — the current bin, advancing on failure.

``decreasing=True`` pre-sorts tasks by utilization, the classic improvement.

Admission tests:

* ``"utilization"`` — ``U(bin) <= cap`` (exact for EDF with implicit
  deadlines);
* ``"edf"`` — processor-demand criterion (exact for EDF, any constrained
  deadlines);
* ``"rm"`` / ``"dm"`` — Bini–Buttazzo point test under the corresponding
  priority order (exact for FP).
"""

from __future__ import annotations

from typing import Callable, Sequence

from repro.analysis import edf_schedulable_dedicated, fp_schedulable_dedicated
from repro.model import Task, TaskSet
from repro.util import EPS


class PartitionError(ValueError):
    """Raised when a heuristic cannot place every task."""


AdmissionTest = Callable[[TaskSet], bool]


def make_admission_test(kind: str, *, cap: float = 1.0) -> AdmissionTest:
    """Build an admission predicate by name (see module docstring)."""
    kind = kind.lower()
    if kind == "utilization":
        return lambda ts: ts.utilization <= cap + EPS
    if kind == "edf":
        return lambda ts: edf_schedulable_dedicated(ts).schedulable
    if kind in ("rm", "dm"):
        policy = kind.upper()
        return lambda ts: fp_schedulable_dedicated(ts, policy).schedulable
    raise ValueError(
        f"unknown admission test {kind!r} (utilization, edf, rm or dm)"
    )


def _pack(
    tasks: Sequence[Task],
    m: int,
    admission: AdmissionTest,
    choose: Callable[[list[TaskSet], Task], list[int]],
) -> list[TaskSet]:
    """Common packing loop: try bins in the order given by ``choose``."""
    if m < 1:
        raise ValueError(f"m must be >= 1: got {m}")
    bins: list[TaskSet] = [TaskSet() for _ in range(m)]
    for task in tasks:
        placed = False
        for idx in choose(bins, task):
            candidate = bins[idx].add(task)
            if admission(candidate):
                bins[idx] = candidate
                placed = True
                break
        if not placed:
            raise PartitionError(
                f"task {task.name} (U={task.utilization:.3f}) does not fit in "
                f"any of the {m} bins"
            )
    return bins


def _maybe_sort(tasks: Sequence[Task], decreasing: bool) -> list[Task]:
    if decreasing:
        return sorted(tasks, key=lambda t: (-t.utilization, t.name))
    return list(tasks)


def first_fit(
    taskset: TaskSet | Sequence[Task],
    m: int,
    *,
    admission: AdmissionTest | str = "utilization",
    decreasing: bool = False,
) -> list[TaskSet]:
    """First-fit (optionally decreasing) into ``m`` bins."""
    if isinstance(admission, str):
        admission = make_admission_test(admission)
    tasks = _maybe_sort(list(taskset), decreasing)
    return _pack(tasks, m, admission, lambda bins, _t: list(range(len(bins))))


def best_fit(
    taskset: TaskSet | Sequence[Task],
    m: int,
    *,
    admission: AdmissionTest | str = "utilization",
    decreasing: bool = False,
) -> list[TaskSet]:
    """Best-fit: prefer the fullest admissible bin."""
    if isinstance(admission, str):
        admission = make_admission_test(admission)
    tasks = _maybe_sort(list(taskset), decreasing)

    def choose(bins: list[TaskSet], _t: Task) -> list[int]:
        return sorted(range(len(bins)), key=lambda i: (-bins[i].utilization, i))

    return _pack(tasks, m, admission, choose)


def worst_fit(
    taskset: TaskSet | Sequence[Task],
    m: int,
    *,
    admission: AdmissionTest | str = "utilization",
    decreasing: bool = False,
) -> list[TaskSet]:
    """Worst-fit: prefer the emptiest admissible bin (load balancing)."""
    if isinstance(admission, str):
        admission = make_admission_test(admission)
    tasks = _maybe_sort(list(taskset), decreasing)

    def choose(bins: list[TaskSet], _t: Task) -> list[int]:
        return sorted(range(len(bins)), key=lambda i: (bins[i].utilization, i))

    return _pack(tasks, m, admission, choose)


def next_fit(
    taskset: TaskSet | Sequence[Task],
    m: int,
    *,
    admission: AdmissionTest | str = "utilization",
    decreasing: bool = False,
) -> list[TaskSet]:
    """Next-fit: stay on the current bin, advance (without wrap) on failure."""
    if isinstance(admission, str):
        admission = make_admission_test(admission)
    tasks = _maybe_sort(list(taskset), decreasing)
    if m < 1:
        raise ValueError(f"m must be >= 1: got {m}")
    # next-fit keeps a cursor and never looks back, so it cannot reuse _pack.
    cursor = 0
    bins: list[TaskSet] = [TaskSet() for _ in range(m)]
    for task in tasks:
        placed = False
        while cursor < m:
            candidate = bins[cursor].add(task)
            if admission(candidate):
                bins[cursor] = candidate
                placed = True
                break
            cursor += 1
        if not placed:
            raise PartitionError(
                f"task {task.name} (U={task.utilization:.3f}) does not fit "
                f"(next-fit exhausted all {m} bins)"
            )
    return bins


_HEURISTICS = {
    "first-fit": first_fit,
    "best-fit": best_fit,
    "worst-fit": worst_fit,
    "next-fit": next_fit,
}


def partition_tasks(
    taskset: TaskSet | Sequence[Task],
    m: int,
    *,
    heuristic: str = "worst-fit",
    admission: AdmissionTest | str = "utilization",
    decreasing: bool = True,
) -> list[TaskSet]:
    """Partition by heuristic name (default: worst-fit decreasing).

    Worst-fit decreasing minimises the *maximum* bin utilization, which is
    the quantity the mode quanta scale with (Eqs. 13–14) — hence the default.
    """
    try:
        fn = _HEURISTICS[heuristic.lower()]
    except KeyError:
        raise ValueError(
            f"unknown heuristic {heuristic!r}; use one of {sorted(_HEURISTICS)}"
        ) from None
    return fn(taskset, m, admission=admission, decreasing=decreasing)
