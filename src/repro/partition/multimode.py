"""Per-mode partitioning onto the platform's logical processors.

During NF mode the platform offers 4 logical processors, during FS 2, during
FT 1 (Section 2.4). :func:`partition_by_modes` splits a mixed task set by
required mode and bin-packs each class onto its mode's processors, returning
a :class:`~repro.model.PartitionedTaskSet` ready for
:func:`repro.core.design.design_platform`.
"""

from __future__ import annotations

from repro.model import Mode, PartitionedTaskSet, TaskSet
from repro.partition.binpack import AdmissionTest, PartitionError, partition_tasks


def partition_by_modes(
    taskset: TaskSet,
    *,
    heuristic: str = "worst-fit",
    admission: AdmissionTest | str = "utilization",
    decreasing: bool = True,
) -> PartitionedTaskSet:
    """Partition a mixed FT/FS/NF task set onto the platform processors.

    Raises :class:`~repro.partition.binpack.PartitionError` when some mode's
    tasks cannot be packed onto its logical processors at all — in that case
    no slot schedule can make the system feasible either (the admission test
    is necessary with a full processor, let alone a slot of it).
    """
    parts: dict[Mode, list[TaskSet]] = {}
    for mode in Mode:
        sub = taskset.by_mode(mode)
        if len(sub) == 0:
            parts[mode] = [TaskSet() for _ in range(mode.parallelism)]
            continue
        try:
            parts[mode] = partition_tasks(
                sub,
                mode.parallelism,
                heuristic=heuristic,
                admission=admission,
                decreasing=decreasing,
            )
        except PartitionError as exc:
            raise PartitionError(f"mode {mode}: {exc}") from exc
    return PartitionedTaskSet(parts)
