"""Task-to-processor partitioning.

The paper assumes a *manual* partition (Section 3) and defers automatic
partitioning to the bin-packing literature it cites [6]. This package
implements that deferred piece:

* :mod:`repro.partition.binpack` — first/best/worst/next-fit (and their
  decreasing variants) with pluggable schedulability admission;
* :mod:`repro.partition.multimode` — drives the per-mode partitioning onto
  each mode's logical processors (4 for NF, 2 for FS, 1 for FT) and returns
  a :class:`~repro.model.PartitionedTaskSet` ready for the design pipeline.
"""

from repro.partition.binpack import (
    PartitionError,
    best_fit,
    first_fit,
    next_fit,
    partition_tasks,
    worst_fit,
)
from repro.partition.multimode import partition_by_modes

__all__ = [
    "PartitionError",
    "first_fit",
    "best_fit",
    "worst_fit",
    "next_fit",
    "partition_tasks",
    "partition_by_modes",
]
