"""Plain-text table formatting for benchmark and example output."""

from __future__ import annotations

from typing import Any, Sequence


def format_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[Any]],
    *,
    float_fmt: str = "{:.3f}",
    pad: int = 2,
) -> str:
    """Render rows under headers with right-aligned numeric columns.

    Floats are formatted with ``float_fmt``; everything else via ``str``.
    """
    def fmt(v: Any) -> str:
        if isinstance(v, bool) or v is None:
            return str(v)
        if isinstance(v, float):
            return float_fmt.format(v)
        return str(v)

    cells = [[fmt(v) for v in row] for row in rows]
    widths = [
        max(len(h), *(len(r[i]) for r in cells)) if cells else len(h)
        for i, h in enumerate(headers)
    ]
    sep = " " * pad
    out = [sep.join(h.rjust(w) for h, w in zip(headers, widths))]
    out.append(sep.join("-" * w for w in widths))
    for row in cells:
        out.append(sep.join(c.rjust(w) for c, w in zip(row, widths)))
    return "\n".join(out)


def axis_sort_token(value: Any) -> tuple:
    """Sort key for mixed-type axis values: numbers numerically, then text.

    Canonical-JSON key order is lexicographic (``"16" < "8"``); curve and
    acceptance tables sort their rows through this token instead so numeric
    axes come out in numeric order.
    """
    if isinstance(value, (int, float)) and not isinstance(value, bool):
        return (0, float(value), "")
    return (1, 0.0, str(value))


def format_curve_pivot(
    headers: Sequence[str],
    rows: Sequence[Sequence[Any]],
    *,
    x: str,
    value: str = "ratio",
    float_fmt: str = "{:.3f}",
) -> str:
    """Pivot flattened curve rows into the paper-style curve table.

    ``rows`` are flat records under ``headers`` (one per curve bin, as
    produced by ``weighted_curve_rows``): the ``x`` column becomes the
    table's first column, every *other* key column left of ``value``'s
    companion stats (``points``/``weight``/``value``) becomes one series
    column, and cells hold the ``value`` entry — i.e. one weighted
    acceptance-ratio curve per generator configuration, x running down.
    """
    if x not in headers or value not in headers:
        raise ValueError(f"unknown x/value column: {x!r}/{value!r}")
    xi = list(headers).index(x)
    vi = list(headers).index(value)
    stats = {"points", "weight", value}
    series_idx = [
        i
        for i, h in enumerate(headers)
        if i != xi and h not in stats
    ]

    def label(row: Sequence[Any]) -> str:
        if not series_idx:
            return value
        return ",".join(f"{headers[i]}={row[i]:g}" if isinstance(row[i], float)
                        else f"{headers[i]}={row[i]}" for i in series_idx)

    xs: list[Any] = []
    series: list[str] = []
    cells: dict[tuple[Any, str], Any] = {}
    for row in rows:
        xv, lab = row[xi], label(row)
        if xv not in xs:
            xs.append(xv)
        if lab not in series:
            series.append(lab)
        cells[(xv, lab)] = row[vi]
    table_rows = [
        [xv, *(cells.get((xv, lab), "") for lab in series)] for xv in xs
    ]
    return format_table([x, *series], table_rows, float_fmt=float_fmt)
