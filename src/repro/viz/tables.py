"""Plain-text table formatting for benchmark and example output."""

from __future__ import annotations

from typing import Any, Sequence


def format_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[Any]],
    *,
    float_fmt: str = "{:.3f}",
    pad: int = 2,
) -> str:
    """Render rows under headers with right-aligned numeric columns.

    Floats are formatted with ``float_fmt``; everything else via ``str``.
    """
    def fmt(v: Any) -> str:
        if isinstance(v, bool) or v is None:
            return str(v)
        if isinstance(v, float):
            return float_fmt.format(v)
        return str(v)

    cells = [[fmt(v) for v in row] for row in rows]
    widths = [
        max(len(h), *(len(r[i]) for r in cells)) if cells else len(h)
        for i, h in enumerate(headers)
    ]
    sep = " " * pad
    out = [sep.join(h.rjust(w) for h, w in zip(headers, widths))]
    out.append(sep.join("-" * w for w in widths))
    for row in cells:
        out.append(sep.join(c.rjust(w) for c, w in zip(row, widths)))
    return "\n".join(out)
