"""Text rendering: ASCII plots and paper-style tables.

matplotlib is intentionally not a dependency — every figure of the paper is
regenerated as a data series plus an ASCII rendering, so benchmarks and
examples work in any terminal.
"""

from repro.viz.ascii import ascii_plot, render_region, render_supply
from repro.viz.tables import axis_sort_token, format_curve_pivot, format_table

__all__ = [
    "ascii_plot",
    "render_region",
    "render_supply",
    "axis_sort_token",
    "format_curve_pivot",
    "format_table",
]
