"""ASCII line plots for region curves and supply functions."""

from __future__ import annotations

import itertools
from typing import Mapping, Sequence

import numpy as np

from repro.supply import SupplyFunction


def ascii_plot(
    series: Mapping[str, tuple[Sequence[float], Sequence[float]]],
    *,
    width: int = 90,
    height: int = 24,
    x_label: str = "x",
    y_label: str = "y",
    markers: str = "*o+x#@",
    hline: float | None = None,
) -> str:
    """Plot named ``(x, y)`` series on a shared character canvas.

    Each series gets the next marker character, cycling when there are more
    series than markers so none are dropped; overlapping cells keep the
    first series' marker. ``hline`` draws a horizontal reference (e.g.
    ``O_tot``) with ``-``.
    """
    if not series:
        raise ValueError("no series to plot")
    if not markers:
        raise ValueError("markers must be a non-empty string")
    xs_all = np.concatenate([np.asarray(x, dtype=float) for x, _ in series.values()])
    ys_all = np.concatenate([np.asarray(y, dtype=float) for _, y in series.values()])
    if hline is not None:
        ys_all = np.append(ys_all, hline)
    x_min, x_max = float(xs_all.min()), float(xs_all.max())
    y_min, y_max = float(ys_all.min()), float(ys_all.max())
    if x_max <= x_min:
        x_max = x_min + 1.0
    if y_max <= y_min:
        y_max = y_min + 1.0
    grid = [[" "] * width for _ in range(height)]

    def cell(x: float, y: float) -> tuple[int, int]:
        cx = int((x - x_min) / (x_max - x_min) * (width - 1))
        cy = int((y - y_min) / (y_max - y_min) * (height - 1))
        return height - 1 - cy, cx

    if hline is not None:
        r, _ = cell(x_min, hline)
        for c in range(width):
            grid[r][c] = "-"
    # Zero axis, if it is in range.
    if y_min < 0 < y_max:
        r, _ = cell(x_min, 0.0)
        for c in range(width):
            if grid[r][c] == " ":
                grid[r][c] = "."
    for (name, (xs, ys)), marker in zip(series.items(), itertools.cycle(markers)):
        for x, y in zip(xs, ys):
            r, c = cell(float(x), float(y))
            if grid[r][c] in (" ", ".", "-"):
                grid[r][c] = marker
    lines = [f"{y_label} in [{y_min:.3f}, {y_max:.3f}]"]
    lines.extend("|" + "".join(row) + "|" for row in grid)
    lines.append(f"{x_label} in [{x_min:.3f}, {x_max:.3f}]")
    legend = "  ".join(
        f"{marker}={name}"
        for (name, _), marker in zip(series.items(), itertools.cycle(markers))
    )
    if hline is not None:
        legend += f"  -=ref({hline:g})"
    lines.append(legend)
    return "\n".join(lines)


def render_region(
    ps: Sequence[float],
    curves: Mapping[str, Sequence[float]],
    *,
    otot: float | None = None,
    width: int = 90,
    height: int = 24,
) -> str:
    """Figure-4-style rendering: Eq. 15 LHS vs period for several algorithms."""
    series = {name: (ps, ys) for name, ys in curves.items()}
    return ascii_plot(
        series,
        width=width,
        height=height,
        x_label="P (period)",
        y_label="lhs of Eq. (15)",
        hline=otot,
    )


def render_supply(
    supplies: Mapping[str, SupplyFunction],
    horizon: float,
    *,
    n: int = 200,
    width: int = 90,
    height: int = 20,
) -> str:
    """Figure-3-style rendering of one or more supply functions."""
    ts = np.linspace(0.0, horizon, n)
    series = {
        name: (ts, np.asarray(z.supply_array(ts)))
        for name, z in supplies.items()
    }
    return ascii_plot(
        series, width=width, height=height, x_label="t", y_label="Z(t)"
    )
