"""``repro serve``: campaigns as an HTTP service (stdlib asyncio only).

POST a campaign job (preset + axes + seed) and the server runs it through
the unchanged deterministic engine; GET endpoints stream sequenced
aggregate deltas while points fold in, serve the exact snapshot bytes,
and answer typed curve/taxonomy/summary queries through a
content-addressed cache. See :mod:`repro.server.app` for the endpoint
table and ``docs/campaigns.md`` for the user guide.
"""

from repro.server.app import ReproServer
from repro.server.jobs import Job, JobConfig, JobError, JobManager

__all__ = ["Job", "JobConfig", "JobError", "JobManager", "ReproServer"]
