"""A deliberately small HTTP/1.1 layer over ``asyncio`` streams.

``repro serve`` must not pull in new dependencies, and the stdlib's
``http.server`` is thread-per-connection and cannot interleave a
long-lived chunked delta stream with other requests on one event loop.
This module implements exactly what the server needs and nothing more:
request parsing (``Content-Length`` bodies only), canonical-JSON and
plain-text responses, and a chunked-transfer writer for NDJSON event
streams. It is not a general HTTP implementation — no keep-alive
pipelining, no multipart, no TLS.
"""

from __future__ import annotations

import asyncio
import json
from dataclasses import dataclass, field
from typing import Any, Mapping
from urllib.parse import parse_qsl, urlsplit

from repro.runner.spec import canonical_json

#: Hard request-size ceilings: a campaign-control plane has no business
#: accepting unbounded uploads (snapshots are the largest legit payload).
MAX_HEADER_BYTES = 64 * 1024
MAX_BODY_BYTES = 64 * 1024 * 1024

_REASONS = {
    200: "OK",
    202: "Accepted",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    409: "Conflict",
    413: "Payload Too Large",
    500: "Internal Server Error",
}


class HttpError(Exception):
    """A request the server refuses, carrying the status to send back."""

    def __init__(self, status: int, message: str):
        super().__init__(message)
        self.status = status


@dataclass
class Request:
    """One parsed request."""

    method: str
    path: str
    query: dict[str, str]
    headers: dict[str, str]
    body: bytes = b""
    #: Job digest this request resolved to, if any — filled in by the
    #: router so the access log can attribute the request to a campaign.
    job: "str | None" = field(default=None, compare=False)

    def json(self) -> Any:
        """The body parsed as JSON (400 on malformed input)."""
        if not self.body:
            raise HttpError(400, "request body must be JSON")
        try:
            return json.loads(self.body.decode("utf-8"))
        except (UnicodeDecodeError, ValueError) as exc:
            raise HttpError(400, f"request body is not valid JSON: {exc}")

    @property
    def parts(self) -> list[str]:
        """Non-empty path segments (``/jobs/ab/deltas`` → 3 parts)."""
        return [p for p in self.path.split("/") if p]


async def read_request(reader: asyncio.StreamReader) -> "Request | None":
    """Parse one request off the stream; None on a cleanly closed socket."""
    try:
        head = await reader.readuntil(b"\r\n\r\n")
    except asyncio.IncompleteReadError as exc:
        if not exc.partial:
            return None
        raise HttpError(400, "truncated request head")
    except asyncio.LimitOverrunError:
        raise HttpError(413, "request head too large")
    if len(head) > MAX_HEADER_BYTES:
        raise HttpError(413, "request head too large")
    lines = head.decode("latin-1").split("\r\n")
    try:
        method, target, _version = lines[0].split(" ", 2)
    except ValueError:
        raise HttpError(400, f"malformed request line: {lines[0]!r}")
    headers: dict[str, str] = {}
    for line in lines[1:]:
        if not line:
            continue
        name, sep, value = line.partition(":")
        if not sep:
            raise HttpError(400, f"malformed header line: {line!r}")
        headers[name.strip().lower()] = value.strip()
    split = urlsplit(target)
    query = dict(parse_qsl(split.query, keep_blank_values=True))
    body = b""
    length = headers.get("content-length")
    if length is not None:
        try:
            n = int(length)
        except ValueError:
            raise HttpError(400, f"bad Content-Length: {length!r}")
        if n < 0 or n > MAX_BODY_BYTES:
            raise HttpError(413, f"body of {n} bytes exceeds the limit")
        body = await reader.readexactly(n)
    return Request(
        method=method.upper(),
        path=split.path,
        query=query,
        headers=headers,
        body=body,
    )


def response(
    status: int,
    body: bytes,
    content_type: str = "application/json",
    extra_headers: "Mapping[str, str] | None" = None,
) -> bytes:
    """One complete non-streaming response, connection closed after."""
    reason = _REASONS.get(status, "Unknown")
    lines = [
        f"HTTP/1.1 {status} {reason}",
        f"Content-Type: {content_type}",
        f"Content-Length: {len(body)}",
        "Connection: close",
    ]
    for name, value in (extra_headers or {}).items():
        lines.append(f"{name}: {value}")
    head = ("\r\n".join(lines) + "\r\n\r\n").encode("latin-1")
    return head + body


def json_response(
    status: int,
    payload: Any,
    extra_headers: "Mapping[str, str] | None" = None,
) -> bytes:
    """A canonical-JSON response (stable bytes for equal payloads)."""
    body = (canonical_json(payload) + "\n").encode("utf-8")
    return response(status, body, "application/json", extra_headers)


def text_response(
    status: int,
    text: str,
    extra_headers: "Mapping[str, str] | None" = None,
) -> bytes:
    return response(
        status, text.encode("utf-8"), "text/plain; charset=utf-8", extra_headers
    )


def error_response(status: int, message: str) -> bytes:
    return json_response(status, {"error": message})


@dataclass
class ChunkedWriter:
    """Chunked transfer encoding for the NDJSON delta stream.

    Each event is one JSON line, flushed as its own chunk, so a client
    reading line-by-line sees events as they happen without waiting for
    the response to end.
    """

    writer: asyncio.StreamWriter
    started: bool = field(default=False, init=False)

    async def start(
        self, content_type: str = "application/x-ndjson"
    ) -> None:
        head = (
            "HTTP/1.1 200 OK\r\n"
            f"Content-Type: {content_type}\r\n"
            "Transfer-Encoding: chunked\r\n"
            "Connection: close\r\n\r\n"
        ).encode("latin-1")
        self.writer.write(head)
        await self.writer.drain()
        self.started = True

    async def send(self, payload: Any) -> None:
        line = (canonical_json(payload) + "\n").encode("utf-8")
        chunk = f"{len(line):x}\r\n".encode("latin-1") + line + b"\r\n"
        self.writer.write(chunk)
        await self.writer.drain()

    async def finish(self) -> None:
        self.writer.write(b"0\r\n\r\n")
        await self.writer.drain()


__all__ = [
    "MAX_BODY_BYTES",
    "MAX_HEADER_BYTES",
    "ChunkedWriter",
    "HttpError",
    "Request",
    "error_response",
    "json_response",
    "read_request",
    "response",
    "text_response",
]
