"""Campaign jobs for ``repro serve``: submit, dedupe, run, observe.

A job is one campaign request — preset, axes, scenario, seed, strategy,
worker count — normalized into a :class:`JobConfig` whose canonical-JSON
digest *is* the job id. Submitting an identical request therefore never
runs twice: the manager hands back the existing job (finished or still
folding), which is the server-side twin of the CLI's result cache and
snapshot resume.

The campaign itself runs through the unchanged deterministic engine
(:func:`repro.runner.stream.stream_campaign`) on a worker thread; the
``on_delta`` hook publishes monotonically sequenced progress events and a
consistent copy of the aggregate state, so any number of HTTP clients can
replay the event log from any sequence number and query the in-flight
aggregate without racing the folding thread.
"""

from __future__ import annotations

import hashlib
import threading
from pathlib import Path
from typing import Any, Mapping

from repro import telemetry
from repro.reporting import SnapshotQuery
from repro.runner.presets import PresetError, PresetSpec, get_preset
from repro.runner.spec import canonical_json
from repro.runner.stream import stream_campaign
from repro.telemetry import Telemetry, build_manifest


class JobError(ValueError):
    """A job request the server refuses (unknown preset, bad parameters)."""


_STRATEGIES = ("grid", "adaptive")


class JobConfig:
    """One normalized campaign request; its digest is the job identity."""

    def __init__(
        self,
        preset: str,
        *,
        seed: int = 0,
        axes: "Mapping[str, Any] | None" = None,
        scenario: "str | None" = None,
        strategy: str = "grid",
        ci_width: "float | None" = None,
        max_points: "int | None" = None,
        workers: "int | None" = None,
        batch: "int | None" = None,
    ):
        self.preset = preset
        self.seed = int(seed)
        self.axes = dict(axes) if axes else {}
        self.scenario = scenario
        self.strategy = strategy
        self.ci_width = ci_width
        self.max_points = max_points
        self.workers = workers
        self.batch = batch

    @classmethod
    def from_request(cls, payload: Any) -> "JobConfig":
        """Validate a POST /jobs body into a config (400-able errors)."""
        if not isinstance(payload, Mapping):
            raise JobError("job request must be a JSON object")
        known = {
            "preset",
            "seed",
            "axes",
            "scenario",
            "strategy",
            "ci_width",
            "max_points",
            "workers",
            "batch",
        }
        unknown = sorted(set(payload) - known)
        if unknown:
            raise JobError(
                f"unknown job field(s) {', '.join(map(repr, unknown))}; "
                f"known: {'/'.join(sorted(known))}"
            )
        preset = payload.get("preset")
        if not isinstance(preset, str):
            raise JobError("job request needs a 'preset' name")
        axes = payload.get("axes")
        if axes is not None and not isinstance(axes, Mapping):
            raise JobError("'axes' must be a {name: [values...]} object")
        strategy = payload.get("strategy", "grid")
        if strategy not in _STRATEGIES:
            raise JobError(
                f"unknown strategy {strategy!r}; known: {'/'.join(_STRATEGIES)}"
            )
        try:
            return cls(
                preset,
                seed=payload.get("seed", 0),
                axes=axes,
                scenario=payload.get("scenario"),
                strategy=strategy,
                ci_width=payload.get("ci_width"),
                max_points=payload.get("max_points"),
                workers=payload.get("workers"),
                batch=payload.get("batch"),
            )
        except (TypeError, ValueError) as exc:
            raise JobError(f"malformed job request: {exc}") from None

    def to_dict(self) -> dict[str, Any]:
        """Canonical payload: defaults omitted, so logically equal requests
        digest identically however sparsely they were spelled."""
        out: dict[str, Any] = {"preset": self.preset, "seed": self.seed}
        if self.axes:
            out["axes"] = self.axes
        if self.scenario is not None:
            out["scenario"] = self.scenario
        if self.strategy != "grid":
            out["strategy"] = self.strategy
        if self.ci_width is not None:
            out["ci_width"] = self.ci_width
        if self.max_points is not None:
            out["max_points"] = self.max_points
        if self.batch is not None:
            out["batch"] = self.batch
        # workers is deliberately NOT part of the identity: the engine
        # contract makes results bit-identical for any worker count, so two
        # requests differing only in workers are the same campaign.
        return out

    @property
    def digest(self) -> str:
        return hashlib.sha256(
            canonical_json(self.to_dict()).encode("utf-8")
        ).hexdigest()

    def resolve(self) -> PresetSpec:
        """The preset record, with capability validation (raises JobError)."""
        try:
            preset = get_preset(self.preset)
            preset.check_axes(bool(self.axes))
            preset.check_scenario(self.scenario is not None)
            if self.strategy == "adaptive":
                preset.check_adaptive()
            elif self.ci_width is not None or self.max_points is not None:
                raise JobError(
                    "ci_width/max_points require the adaptive strategy"
                )
        except PresetError as exc:
            raise JobError(str(exc)) from None
        return preset


class Job:
    """One submitted campaign and its observable event log."""

    def __init__(self, config: JobConfig, state_path: "Path | None" = None):
        self.config = config
        self.id = config.digest
        self.state_path = state_path
        self._preset = config.resolve()
        self._aggregator = self._preset.aggregator()
        self._lock = threading.Lock()
        self._events: list[dict[str, Any]] = []
        self.state = "queued"
        self.error: "str | None" = None
        self.stats: "dict[str, Any] | None" = None
        self._latest_state: "dict[str, Any] | None" = None
        #: Per-job telemetry recorder, created when the worker thread
        #: starts so wall-clock measures the run, not the queue wait.
        self.recorder: "Telemetry | None" = None
        self._emit({"type": "state", "state": "queued"})

    # -- event log ---------------------------------------------------------

    def _emit(self, event: dict[str, Any]) -> None:
        with self._lock:
            event = {"seq": len(self._events), **event}
            self._events.append(event)

    def events_since(self, since: int = 0) -> list[dict[str, Any]]:
        """Events with ``seq >= since`` (replayable from 0 forever)."""
        with self._lock:
            return list(self._events[max(0, since):])

    @property
    def finished(self) -> bool:
        return self.state in ("done", "failed")

    # -- execution (worker thread) ----------------------------------------

    def run(self, default_workers: "int | None" = None) -> None:
        """Execute the campaign; every outcome lands in the event log.

        The *whole* body runs inside the try/except: an exception after
        the campaign itself (stats serialization, aggregate publication)
        must still mark the job ``failed`` in the record instead of
        leaving it stuck "running" with the traceback only in the
        process log.
        """
        config = self.config
        recorder = Telemetry()
        self.recorder = recorder
        previous = telemetry.activate(recorder)
        try:
            source = self._preset.source(
                config.strategy,
                config.axes or None,
                config.scenario,
                ci_width=config.ci_width,
                max_points=config.max_points,
            )
            self.state = "running"
            self._emit({"type": "state", "state": "running"})
            if self.state_path is not None:
                self.state_path.parent.mkdir(parents=True, exist_ok=True)
            streamed = stream_campaign(
                source,
                self._aggregator,
                workers=(
                    config.workers
                    if config.workers is not None
                    else default_workers
                ),
                master_seed=config.seed,
                state_path=self.state_path,
                collect=False,
                on_error=self._preset.on_error,
                batch_size=config.batch,
                on_delta=self._on_delta,
            )
            self.stats = streamed.stats.to_dict()
            with self._lock:
                self._latest_state = self._aggregator.state_dict()
            self.state = "done"
            self._emit({"type": "complete", "stats": self.stats})
        except Exception as exc:  # noqa: BLE001 - the log IS the error channel
            self.error = f"{type(exc).__name__}: {exc}"
            self.state = "failed"
            self._emit({"type": "failed", "error": self.error})
        finally:
            telemetry.activate(previous)

    def _on_delta(self, delta: Mapping[str, Any]) -> None:
        # Runs on the folding thread, between folds, so reading the
        # aggregate here is race-free; queries served from other threads
        # only ever see these published copies.
        state = self._aggregator.state_dict()
        with self._lock:
            self._latest_state = state
        self._emit({"type": "delta", **delta})

    # -- queries (any thread) ---------------------------------------------

    def query(self) -> SnapshotQuery:
        """A query view of the newest consistent aggregate state."""
        if self.state == "done":
            return SnapshotQuery.from_aggregator(self._preset, self._aggregator)
        with self._lock:
            latest = self._latest_state
        aggregator = self._preset.aggregator()
        if latest is not None:
            aggregator.load_state(latest)
        return SnapshotQuery.from_aggregator(self._preset, aggregator)

    def telemetry_counters(self) -> "dict[str, int] | None":
        """This job's raw telemetry counters (None before the run starts).

        Safe from any thread: the recorder's export takes retried copies
        of its dicts, so a concurrent fold at worst delays the read.
        """
        recorder = self.recorder
        if recorder is None:
            return None
        return recorder.export()["counters"]

    def telemetry_manifest(self) -> "dict[str, Any] | None":
        """A run-manifest view of this job (None before the run starts)."""
        recorder = self.recorder
        if recorder is None:
            return None
        manifest = build_manifest(
            recorder,
            stats=self.stats,
            config={"job": self.id, **self.config.to_dict()},
            error=self.error,
        )
        manifest["state"] = self.state
        return manifest

    def describe(self) -> dict[str, Any]:
        with self._lock:
            events = len(self._events)
        out: dict[str, Any] = {
            "job": self.id,
            "preset": self.config.preset,
            "config": self.config.to_dict(),
            "state": self.state,
            "events": events,
        }
        if self.stats is not None:
            out["stats"] = self.stats
        if self.error is not None:
            out["error"] = self.error
        return out


class JobManager:
    """Submit-or-reuse job registry running campaigns on worker threads."""

    def __init__(
        self,
        *,
        spool_dir: "str | Path | None" = None,
        default_workers: "int | None" = None,
    ):
        self.spool_dir = Path(spool_dir) if spool_dir is not None else None
        self.default_workers = default_workers
        self._lock = threading.Lock()
        self._jobs: dict[str, Job] = {}

    def submit(self, payload: Any) -> tuple[Job, bool]:
        """Create (or reuse) the job for a request; returns (job, reused)."""
        config = JobConfig.from_request(payload)
        config.resolve()  # validate before taking the registry lock
        with self._lock:
            existing = self._jobs.get(config.digest)
            if existing is not None:
                return existing, True
            state_path = None
            if self.spool_dir is not None:
                state_path = (
                    self.spool_dir / "jobs" / f"{config.digest[:16]}.json"
                )
            job = Job(config, state_path)
            self._jobs[job.id] = job
        thread = threading.Thread(
            target=job.run,
            args=(self.default_workers,),
            name=f"repro-job-{job.id[:8]}",
            daemon=True,
        )
        thread.start()
        return job, False

    def get(self, job_id: str) -> "Job | None":
        with self._lock:
            job = self._jobs.get(job_id)
            if job is not None:
                return job
            # Accept unambiguous id prefixes (the spool files use 16 chars).
            matches = [
                j for d, j in self._jobs.items() if d.startswith(job_id)
            ]
            return matches[0] if len(matches) == 1 else None

    def all(self) -> list[Job]:
        """Every registered job object, newest submission last."""
        with self._lock:
            return list(self._jobs.values())

    def list(self) -> list[dict[str, Any]]:
        return [job.describe() for job in self.all()]


__all__ = ["Job", "JobConfig", "JobError", "JobManager"]
