"""The ``repro serve`` application: routes, cache, delta streaming.

Endpoints (all responses canonical JSON unless noted):

====== ================================ =======================================
Method Path                             Answer
====== ================================ =======================================
GET    ``/``                            service banner + endpoint index
GET    ``/presets``                     every registered preset + capabilities
POST   ``/jobs``                        submit (or reuse) a campaign job
GET    ``/jobs``                        all jobs with state + stats
GET    ``/jobs/{id}``                   one job's state + stats
GET    ``/jobs/{id}/deltas[?since=N]``  chunked NDJSON event stream
GET    ``/jobs/{id}/snapshot``          the job's snapshot file, exact bytes
GET    ``/jobs/{id}/report``            rendered report (text/plain)
GET    ``/jobs/{id}/query/{kind}``      typed query (curve/summary/...)
POST   ``/snapshots?preset=P``          upload a snapshot for querying
GET    ``/snapshots/{digest}/report``   rendered report of an upload
GET    ``/snapshots/{digest}/query/..`` typed query over an upload
GET    ``/stats``                       job counts + query-cache hit rates
GET    ``/metrics``                     uptime, request/status counters, and
                                        telemetry counters summed over jobs
GET    ``/jobs/{id}/telemetry``         the job's run manifest (phases,
                                        counters, cache/kernel ratios)
====== ================================ =======================================

Query and report responses are memoized in a
:class:`~repro.reporting.query.QueryCache` keyed by the aggregate's
*content digest* — the ``X-Cache: hit|miss`` response header is the
observable contract (and what the benchmark measures). A job still
folding changes its digest at every delta, so the cache can never serve a
stale in-flight answer.
"""

from __future__ import annotations

import asyncio
import json
import threading
import time
from typing import Any, TextIO

from repro.reporting import QueryCache, QueryError, SnapshotQuery
from repro.runner.presets import get_preset, preset_names
from repro.server.http import (
    ChunkedWriter,
    HttpError,
    Request,
    error_response,
    json_response,
    read_request,
    response,
    text_response,
)
from repro.server.jobs import Job, JobError, JobManager

#: How often a delta stream re-checks the event log for news. Cadence is a
#: liveness knob only — events are sequenced, so no polling rate can drop
#: or reorder one.
_POLL_SECONDS = 0.05

_QUERY_KINDS = ("summary", "metrics", "report", "curve", "categorical")


class _StatusSniffer:
    """A pass-through writer that remembers the response status line.

    The router writes complete response byte-strings; the first write of a
    response always begins ``HTTP/1.1 NNN``, so observing writes is enough
    to attribute a status to the request without restructuring every
    handler to return one.
    """

    __slots__ = ("_writer", "status")

    def __init__(self, writer: asyncio.StreamWriter):
        self._writer = writer
        self.status: "int | None" = None

    def write(self, data: bytes) -> None:
        if self.status is None and data[:9] == b"HTTP/1.1 ":
            try:
                self.status = int(data[9:12])
            except ValueError:
                pass
        self._writer.write(data)

    def __getattr__(self, name: str) -> Any:
        return getattr(self._writer, name)


class ReproServer:
    """One server instance: job manager + uploaded snapshots + query cache."""

    def __init__(
        self,
        *,
        workers: "int | None" = None,
        spool_dir: "str | None" = None,
        cache_entries: int = 1024,
        access_log: "TextIO | None" = None,
    ):
        self.jobs = JobManager(spool_dir=spool_dir, default_workers=workers)
        self.cache = QueryCache(max_entries=cache_entries)
        self._snapshots: dict[str, SnapshotQuery] = {}
        self._snapshots_lock = threading.Lock()
        self._access_log = access_log
        self._http_lock = threading.Lock()
        self._started = time.monotonic()
        self._request_total = 0
        self._route_counts: dict[str, int] = {}
        self._status_counts: dict[str, int] = {}

    # -- connection handling ----------------------------------------------

    async def handle(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        began = time.perf_counter()
        sniffer = _StatusSniffer(writer)
        request: "Request | None" = None
        try:
            try:
                request = await read_request(reader)
                if request is None:
                    return
                await self._dispatch(request, sniffer)
            except asyncio.CancelledError:
                return  # server shutting down mid-request; just close
            except HttpError as exc:
                sniffer.write(error_response(exc.status, str(exc)))
                await writer.drain()
            except (ConnectionError, asyncio.IncompleteReadError):
                pass  # client went away mid-stream; nothing to answer
            except Exception as exc:  # noqa: BLE001 - last-resort 500
                try:
                    sniffer.write(
                        error_response(500, f"{type(exc).__name__}: {exc}")
                    )
                    await writer.drain()
                except (ConnectionError, RuntimeError):
                    pass
        finally:
            try:
                writer.close()
                await writer.wait_closed()
            except (ConnectionError, RuntimeError, asyncio.CancelledError):
                pass
            if request is not None or sniffer.status is not None:
                self._account(
                    request, sniffer.status, time.perf_counter() - began
                )

    def _account(
        self,
        request: "Request | None",
        status: "int | None",
        duration: float,
    ) -> None:
        """Count the request and append one NDJSON access-log record."""
        if request is not None:
            route = "/" + (request.parts[0] if request.parts else "")
        else:
            route = "-"  # the request head never parsed
        with self._http_lock:
            self._request_total += 1
            self._route_counts[route] = self._route_counts.get(route, 0) + 1
            status_key = str(status) if status is not None else "aborted"
            self._status_counts[status_key] = (
                self._status_counts.get(status_key, 0) + 1
            )
        if self._access_log is None:
            return
        record: dict[str, Any] = {
            "type": "access",
            "time": round(time.time(), 3),
            "method": request.method if request is not None else "-",
            "path": request.path if request is not None else "-",
            "status": status,
            "duration_ms": round(duration * 1000.0, 3),
        }
        if request is not None and request.job is not None:
            record["job"] = request.job
        self._log(record)

    def _log(self, record: dict[str, Any]) -> None:
        if self._access_log is None:
            return
        try:
            with self._http_lock:
                self._access_log.write(
                    json.dumps(record, sort_keys=True) + "\n"
                )
                self._access_log.flush()
        except (OSError, ValueError):
            pass  # a dead log stream must never take a response down

    async def _dispatch(
        self, request: Request, writer: asyncio.StreamWriter
    ) -> None:
        parts = request.parts
        if not parts:
            writer.write(self._index(request))
        elif parts == ["presets"]:
            writer.write(self._presets(request))
        elif parts == ["stats"]:
            writer.write(self._stats(request))
        elif parts == ["metrics"]:
            writer.write(self._metrics(request))
        elif parts == ["jobs"]:
            if request.method == "POST":
                writer.write(self._submit(request))
            elif request.method == "GET":
                writer.write(json_response(200, {"jobs": self.jobs.list()}))
            else:
                raise HttpError(405, f"{request.method} not allowed on /jobs")
        elif parts[0] == "jobs":
            await self._job_routes(request, parts[1:], writer)
        elif parts[0] == "snapshots":
            writer.write(self._snapshot_routes(request, parts[1:]))
        else:
            raise HttpError(404, f"no such endpoint: {request.path}")
        await writer.drain()

    # -- flat endpoints ----------------------------------------------------

    def _index(self, request: Request) -> bytes:
        self._need(request, "GET")
        return json_response(
            200,
            {
                "service": "repro serve",
                "presets": list(preset_names()),
                "endpoints": [
                    "GET /presets",
                    "POST /jobs",
                    "GET /jobs",
                    "GET /jobs/{id}",
                    "GET /jobs/{id}/deltas?since=N",
                    "GET /jobs/{id}/snapshot",
                    "GET /jobs/{id}/report",
                    "GET /jobs/{id}/query/{kind}",
                    "GET /jobs/{id}/telemetry",
                    "POST /snapshots?preset=P",
                    "GET /snapshots/{digest}/report",
                    "GET /snapshots/{digest}/query/{kind}",
                    "GET /stats",
                    "GET /metrics",
                ],
            },
        )

    def _presets(self, request: Request) -> bytes:
        self._need(request, "GET")
        records = []
        for name in preset_names():
            preset = get_preset(name)
            records.append(
                {
                    "name": preset.name,
                    "description": preset.description,
                    "axis_overridable": preset.axis_overridable,
                    "adaptive": preset.adaptive,
                    "store_errors": preset.store_errors,
                    "scenario_axis": preset.scenario_axis,
                    "row_rendered": preset.row_rendered,
                    "curve_metrics": sorted(preset.curve_axes),
                }
            )
        return json_response(200, {"presets": records})

    def _stats(self, request: Request) -> bytes:
        self._need(request, "GET")
        jobs = self.jobs.list()
        by_state: dict[str, int] = {}
        for job in jobs:
            by_state[job["state"]] = by_state.get(job["state"], 0) + 1
        with self._snapshots_lock:
            uploads = len(self._snapshots)
        return json_response(
            200,
            {
                "jobs": {"total": len(jobs), "by_state": by_state},
                "snapshots": uploads,
                "query_cache": self.cache.stats(),
            },
        )

    def _metrics(self, request: Request) -> bytes:
        """Operational counters: HTTP traffic, job states, query cache,
        and every job's telemetry counters summed into one view."""
        self._need(request, "GET")
        jobs = self.jobs.all()
        by_state: dict[str, int] = {}
        counters: dict[str, int] = {}
        telemetry_jobs = 0
        for job in jobs:
            by_state[job.state] = by_state.get(job.state, 0) + 1
            exported = job.telemetry_counters()
            if exported is None:
                continue
            telemetry_jobs += 1
            for name, value in exported.items():
                counters[name] = counters.get(name, 0) + int(value)
        with self._http_lock:
            requests = {
                "total": self._request_total,
                "by_route": dict(sorted(self._route_counts.items())),
                "by_status": dict(sorted(self._status_counts.items())),
            }
        return json_response(
            200,
            {
                "uptime_seconds": round(time.monotonic() - self._started, 3),
                "requests": requests,
                "jobs": {"total": len(jobs), "by_state": by_state},
                "query_cache": self.cache.stats(),
                "telemetry": {
                    "jobs": telemetry_jobs,
                    "counters": dict(sorted(counters.items())),
                },
            },
        )

    def _submit(self, request: Request) -> bytes:
        try:
            job, reused = self.jobs.submit(request.json())
        except JobError as exc:
            raise HttpError(400, str(exc))
        return json_response(
            202 if not reused else 200,
            {"job": job.id, "reused": reused, "state": job.state},
        )

    # -- job endpoints -----------------------------------------------------

    async def _job_routes(
        self, request: Request, rest: list[str], writer: asyncio.StreamWriter
    ) -> None:
        if not rest:
            raise HttpError(404, "missing job id")
        job = self.jobs.get(rest[0])
        if job is None:
            raise HttpError(404, f"no such job: {rest[0]!r}")
        request.job = job.id  # attribute the access-log record
        sub = rest[1:]
        if not sub:
            self._need(request, "GET")
            writer.write(json_response(200, job.describe()))
        elif sub == ["deltas"]:
            self._need(request, "GET")
            await self._stream_deltas(request, job, writer)
        elif sub == ["snapshot"]:
            self._need(request, "GET")
            writer.write(self._job_snapshot(job))
        elif sub == ["report"]:
            self._need(request, "GET")
            writer.write(self._answer(job.query(), "report"))
        elif sub == ["telemetry"]:
            self._need(request, "GET")
            manifest = job.telemetry_manifest()
            if manifest is None:
                raise HttpError(
                    409,
                    f"job {job.id[:16]} is {job.state}; no telemetry yet",
                )
            writer.write(json_response(200, manifest))
        elif len(sub) == 2 and sub[0] == "query":
            self._need(request, "GET")
            writer.write(
                self._answer(
                    job.query(),
                    sub[1],
                    metric=request.query.get("metric"),
                    axis=request.query.get("axis"),
                )
            )
        else:
            raise HttpError(404, f"no such endpoint: {request.path}")

    async def _stream_deltas(
        self, request: Request, job: Job, writer: asyncio.StreamWriter
    ) -> None:
        """Replayable NDJSON event stream: every event from ``since`` on,
        then live events until the job's terminal event, then EOF."""
        try:
            since = int(request.query.get("since", "0"))
        except ValueError:
            raise HttpError(400, f"bad since={request.query['since']!r}")
        stream = ChunkedWriter(writer)
        await stream.start()
        next_seq = since
        while True:
            events = job.events_since(next_seq)
            for event in events:
                await stream.send(event)
                next_seq = event["seq"] + 1
                if event["type"] in ("complete", "failed"):
                    await stream.finish()
                    return
            if job.finished and not job.events_since(next_seq):
                # Terminal event was before `since`; close instead of
                # waiting forever for events that will never come.
                await stream.finish()
                return
            await asyncio.sleep(_POLL_SECONDS)

    def _job_snapshot(self, job: Job) -> bytes:
        if job.state_path is None:
            raise HttpError(
                404,
                f"job {job.id[:16]} has no snapshot (server started "
                f"without --spool-dir)",
            )
        if not job.finished:
            raise HttpError(
                409, f"job {job.id[:16]} is {job.state}; snapshot not final"
            )
        try:
            body = job.state_path.read_bytes()
        except OSError:
            raise HttpError(404, f"job {job.id[:16]} wrote no snapshot")
        return response(200, body, "application/json")

    # -- uploaded snapshots ------------------------------------------------

    def _snapshot_routes(self, request: Request, rest: list[str]) -> bytes:
        if not rest:
            self._need(request, "POST")
            return self._upload(request)
        with self._snapshots_lock:
            query = self._snapshots.get(rest[0])
            if query is None:
                matches = [
                    q
                    for d, q in self._snapshots.items()
                    if d.startswith(rest[0])
                ]
                query = matches[0] if len(matches) == 1 else None
        if query is None:
            raise HttpError(404, f"no such snapshot: {rest[0]!r}")
        sub = rest[1:]
        self._need(request, "GET")
        if sub == ["report"]:
            return self._answer(query, "report")
        if len(sub) == 2 and sub[0] == "query":
            return self._answer(
                query,
                sub[1],
                metric=request.query.get("metric"),
                axis=request.query.get("axis"),
            )
        raise HttpError(404, f"no such endpoint: {request.path}")

    def _upload(self, request: Request) -> bytes:
        preset = request.query.get("preset")
        if not preset:
            raise HttpError(400, "upload needs ?preset=<name>")
        try:
            query = SnapshotQuery.from_snapshot(
                request.json(), preset, where="uploaded snapshot"
            )
        except (QueryError, ValueError) as exc:
            raise HttpError(400, str(exc))
        digest = query.content_digest
        with self._snapshots_lock:
            reused = digest in self._snapshots
            self._snapshots[digest] = query
        return json_response(
            200 if reused else 202,
            {"snapshot": digest, "preset": preset, "reused": reused},
        )

    # -- shared query answering -------------------------------------------

    def _answer(self, query: SnapshotQuery, kind: str, **params: Any) -> bytes:
        """Answer one typed query, through the content-addressed cache."""
        if kind not in _QUERY_KINDS:
            raise HttpError(
                404, f"unknown query kind {kind!r}; known: "
                f"{'/'.join(_QUERY_KINDS)}"
            )
        key = QueryCache.key(query.content_digest, kind, **params)
        cached = self.cache.get(key)
        if cached is not None:
            return self._wrap(kind, cached, "hit")
        try:
            answer = query.query(kind, **params)
        except QueryError as exc:
            raise HttpError(400, str(exc))
        if kind == "report":
            body = (answer + "\n").encode("utf-8")
        else:
            from repro.runner.spec import canonical_json

            body = (canonical_json(answer) + "\n").encode("utf-8")
        self.cache.put(key, body)
        return self._wrap(kind, body, "miss")

    @staticmethod
    def _wrap(kind: str, body: bytes, cache_state: str) -> bytes:
        content_type = (
            "text/plain; charset=utf-8" if kind == "report"
            else "application/json"
        )
        return response(
            200, body, content_type, extra_headers={"X-Cache": cache_state}
        )

    @staticmethod
    def _need(request: Request, method: str) -> None:
        if request.method != method:
            raise HttpError(
                405, f"{request.method} not allowed on {request.path}"
            )

    # -- lifecycle ---------------------------------------------------------

    async def start(self, host: str, port: int) -> asyncio.AbstractServer:
        return await asyncio.start_server(self.handle, host, port)

    async def serve_forever(self, host: str, port: int) -> None:
        server = await self.start(host, port)
        addr = server.sockets[0].getsockname()
        url = f"http://{addr[0]}:{addr[1]}"
        print(f"[serve] listening on {url}", flush=True)
        self._log(
            {
                "type": "listening",
                "time": round(time.time(), 3),
                "host": addr[0],
                "port": addr[1],
                "url": url,
            }
        )
        async with server:
            await server.serve_forever()

    def start_in_thread(
        self, host: str = "127.0.0.1", port: int = 0
    ) -> tuple[str, int, "Any"]:
        """Run the event loop on a daemon thread (tests, benchmarks).

        Returns ``(host, port, stop)`` with the *bound* port (``port=0``
        picks a free one) and an idempotent ``stop()``.
        """
        loop = asyncio.new_event_loop()
        started = threading.Event()
        bound: dict[str, Any] = {}

        async def _run() -> None:
            server = await self.start(host, port)
            bound["server"] = server
            bound["addr"] = server.sockets[0].getsockname()
            started.set()
            try:
                await server.serve_forever()
            except asyncio.CancelledError:
                pass

        def _main() -> None:
            asyncio.set_event_loop(loop)
            task = loop.create_task(_run())
            bound["task"] = task
            try:
                loop.run_forever()
            finally:
                loop.close()

        thread = threading.Thread(
            target=_main, name="repro-serve", daemon=True
        )
        thread.start()
        if not started.wait(timeout=10):
            raise RuntimeError("server failed to start within 10s")
        stopped = threading.Event()

        def stop() -> None:
            if stopped.is_set():
                return
            stopped.set()

            async def _shutdown() -> None:
                bound["server"].close()
                await bound["server"].wait_closed()
                tasks = [
                    t
                    for t in asyncio.all_tasks(loop)
                    if t is not asyncio.current_task()
                ]
                for t in tasks:
                    t.cancel()
                await asyncio.gather(*tasks, return_exceptions=True)
                loop.stop()

            loop.call_soon_threadsafe(
                lambda: loop.create_task(_shutdown())
            )
            thread.join(timeout=10)

        addr = bound["addr"]
        return addr[0], addr[1], stop


__all__ = ["ReproServer"]
