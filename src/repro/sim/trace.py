"""Simulation traces: execution slices, events, metrics, ASCII Gantt."""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Iterable, Mapping

from repro.model import Job, Mode
from repro.util import EPS


class SimEventKind(enum.Enum):
    """Discrete events recorded by the simulators."""

    RELEASE = "release"
    COMPLETION = "completion"
    DEADLINE_MISS = "deadline_miss"
    ABORT = "abort"
    FAULT = "fault"
    MODE_SWITCH = "mode_switch"

    def __str__(self) -> str:  # pragma: no cover - trivial
        return self.value


@dataclass(frozen=True)
class SimEvent:
    """One timestamped event. ``who`` is a job name, task name or core id."""

    time: float
    kind: SimEventKind
    who: str
    detail: str = ""

    def __repr__(self) -> str:
        extra = f" ({self.detail})" if self.detail else ""
        return f"[{self.time:10.4f}] {self.kind:<14} {self.who}{extra}"


@dataclass(frozen=True)
class ExecutionSlice:
    """A maximal interval during which one job ran uninterrupted."""

    processor: str  # e.g. "NF[2]"
    job: str        # e.g. "tau4#3"
    task: str
    start: float
    end: float

    @property
    def duration(self) -> float:
        """Slice length."""
        return self.end - self.start


@dataclass
class SimTrace:
    """Aggregated output of a simulation run."""

    horizon: float
    slices: list[ExecutionSlice] = field(default_factory=list)
    events: list[SimEvent] = field(default_factory=list)

    def add_slice(self, s: ExecutionSlice) -> None:
        """Append an execution slice, merging with a contiguous predecessor."""
        if (
            self.slices
            and self.slices[-1].processor == s.processor
            and self.slices[-1].job == s.job
            and abs(self.slices[-1].end - s.start) <= EPS
        ):
            prev = self.slices[-1]
            self.slices[-1] = ExecutionSlice(
                prev.processor, prev.job, prev.task, prev.start, s.end
            )
        else:
            self.slices.append(s)

    def log(self, time: float, kind: SimEventKind, who: str, detail: str = "") -> None:
        """Record an event."""
        self.events.append(SimEvent(time, kind, who, detail))

    # -- queries ------------------------------------------------------------------

    def events_of(self, kind: SimEventKind) -> list[SimEvent]:
        """All events of one kind, in time order."""
        return [e for e in self.events if e.kind is kind]

    def misses(self) -> list[SimEvent]:
        """All deadline-miss events."""
        return self.events_of(SimEventKind.DEADLINE_MISS)

    def slices_on(self, processor: str) -> list[ExecutionSlice]:
        """Execution slices of one logical processor."""
        return [s for s in self.slices if s.processor == processor]

    def busy_time(self, processor: str | None = None) -> float:
        """Total executed time (optionally restricted to one processor)."""
        return sum(
            s.duration
            for s in self.slices
            if processor is None or s.processor == processor
        )

    def task_execution(self, task: str) -> float:
        """Total time executed on behalf of one task."""
        return sum(s.duration for s in self.slices if s.task == task)

    def merge(self, other: "SimTrace") -> None:
        """Fold another trace into this one (events re-sorted by time)."""
        self.slices.extend(other.slices)
        self.events.extend(other.events)
        self.events.sort(key=lambda e: (e.time, e.kind.value, e.who))

    # -- rendering ------------------------------------------------------------------

    def gantt(
        self,
        *,
        start: float = 0.0,
        end: float | None = None,
        width: int = 100,
        processors: Iterable[str] | None = None,
    ) -> str:
        """ASCII Gantt chart of ``[start, end)`` with one row per processor.

        Each column covers ``(end-start)/width`` time; the cell shows the
        first character(s) of the task that ran the majority of the column
        (``.`` = idle/unavailable).
        """
        end = end if end is not None else self.horizon
        if end <= start:
            raise ValueError(f"empty gantt range [{start}, {end})")
        procs = sorted(
            set(s.processor for s in self.slices)
            if processors is None
            else set(processors)
        )
        col_w = (end - start) / width
        lines = [f"t = [{start:g}, {end:g})  ({col_w:g} per column)"]
        for proc in procs:
            cells = []
            slices = self.slices_on(proc)
            for c in range(width):
                a = start + c * col_w
                b = a + col_w
                # Majority task in [a, b).
                best_task, best_time = None, 0.0
                for s in slices:
                    overlap = min(b, s.end) - max(a, s.start)
                    if overlap > best_time:
                        best_task, best_time = s.task, overlap
                if best_task is None:
                    cells.append(".")
                else:
                    label = best_task[-1] if best_task[-1].isdigit() else best_task[0]
                    cells.append(label)
            lines.append(f"{proc:<8}|{''.join(cells)}|")
        return "\n".join(lines)
