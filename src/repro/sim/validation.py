"""Analysis ⇄ simulation cross-validation.

Two independent implementations of the paper must agree:

* a design accepted by the analysis (Eqs. 12–15) must simulate with **zero
  deadline misses** under both the synchronous and the critical (slot-end
  aligned) release phasings — :func:`validate_design`;
* the supply each mode actually received in simulation must dominate the
  analytic minimum guarantee ``Z'(t)`` — :func:`measured_mode_supply` plus
  :func:`supply_dominates_guarantee`.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.config import PlatformConfig
from repro.model import Mode, PartitionedTaskSet
from repro.sim.multicore import MulticoreResult, MulticoreSim
from repro.supply import LinearSupply, MeasuredSupply
from repro.util import EPS


@dataclass(frozen=True)
class ValidationReport:
    """Outcome of a design validation run.

    ``ok`` requires zero misses under every exercised phasing and supply
    domination for every non-empty mode.
    """

    ok: bool
    horizon: float
    miss_counts: dict[str, int]           # phasing -> number of misses
    supply_ok: dict[Mode, bool]
    notes: tuple[str, ...] = field(default_factory=tuple)


def measured_mode_supply(result: MulticoreResult, mode: Mode) -> MeasuredSupply:
    """Empirical supply function of a mode from the simulated windows."""
    windows = result.availability_windows(mode)
    return MeasuredSupply(windows, result.horizon)


def supply_dominates_guarantee(
    result: MulticoreResult,
    config: PlatformConfig,
    mode: Mode,
    *,
    n_probes: int = 400,
    tol: float = 1e-7,
) -> bool:
    """Check ``measured Z(t) >= analytic Z'(t)`` over a probe grid.

    Probes are limited to one hyper-window below the horizon so the finite
    trace is meaningful everywhere it is queried.
    """
    measured = measured_mode_supply(result, mode)
    guarantee: LinearSupply = config.schedule.linear_supply(mode)
    t_max = min(result.horizon * 0.5, 10.0 * config.period)
    ts = np.linspace(0.0, t_max, n_probes)
    for t in ts:
        if measured.supply(float(t)) < guarantee.supply(float(t)) - tol:
            return False
    return True


def validate_design(
    partition: PartitionedTaskSet,
    config: PlatformConfig,
    *,
    horizon: float | None = None,
    phasings: tuple[str, ...] = ("zero", "critical"),
    check_supply: bool = True,
) -> ValidationReport:
    """Simulate a designed platform and verify the analysis' promises.

    Runs the fault-free simulation once per release phasing and checks that
    no deadline is ever missed; optionally also checks that each non-empty
    mode's measured supply dominates its linear guarantee.
    """
    sim = MulticoreSim(partition, config)
    horizon = horizon if horizon is not None else sim.default_horizon()
    miss_counts: dict[str, int] = {}
    notes: list[str] = []
    last_result: MulticoreResult | None = None
    for phasing in phasings:
        result = sim.run(horizon, release_offsets=phasing)
        miss_counts[phasing] = result.miss_count
        if result.miss_count:
            sample = ", ".join(e.who for e in result.misses[:5])
            notes.append(f"{phasing}: {result.miss_count} misses (e.g. {sample})")
        last_result = result
    supply_ok: dict[Mode, bool] = {}
    if check_supply and last_result is not None:
        for mode in Mode:
            if len(partition.mode_taskset(mode)) == 0:
                supply_ok[mode] = True
                continue
            supply_ok[mode] = supply_dominates_guarantee(last_result, config, mode)
            if not supply_ok[mode]:
                notes.append(f"measured supply of {mode} below the guarantee")
    else:
        supply_ok = {mode: True for mode in Mode}
    ok = all(c == 0 for c in miss_counts.values()) and all(supply_ok.values())
    return ValidationReport(
        ok=ok,
        horizon=horizon,
        miss_counts=miss_counts,
        supply_ok=supply_ok,
        notes=tuple(notes),
    )
