"""Preemptive uniprocessor scheduling policies for the simulator.

A policy is a stateless job selector: given the currently active jobs it
returns the one to execute. Preemption is handled by the simulator, which
re-invokes the selector at every event (release, completion, window edge).
Ties are broken deterministically (earlier release, then task name) so
simulations are reproducible.
"""

from __future__ import annotations

import abc
from typing import Mapping, Sequence

from repro.analysis import priority_order
from repro.model import Job, Task, TaskSet


class SchedulingPolicy(abc.ABC):
    """Picks which active job runs next on one logical processor."""

    name: str = "abstract"

    @abc.abstractmethod
    def select(self, jobs: Sequence[Job]) -> Job | None:
        """The job to execute among ``jobs`` (None when the set is empty)."""


class FixedPriorityPolicy(SchedulingPolicy):
    """Static priorities: highest-priority active job wins.

    Parameters
    ----------
    order:
        Tasks from highest to lowest priority (e.g. from
        :func:`repro.analysis.priority_order`).
    """

    def __init__(self, order: Sequence[Task]):
        self._rank: Mapping[str, int] = {t.name: i for i, t in enumerate(order)}
        self.name = "FP"

    def rank_of(self, task_name: str) -> int:
        """Priority rank (0 = highest)."""
        try:
            return self._rank[task_name]
        except KeyError:
            raise KeyError(f"task {task_name!r} has no assigned priority") from None

    def select(self, jobs: Sequence[Job]) -> Job | None:
        active = [j for j in jobs if j.is_active]
        if not active:
            return None
        return min(
            active,
            key=lambda j: (self.rank_of(j.task.name), j.release, j.task.name),
        )


class EDFPolicy(SchedulingPolicy):
    """Earliest absolute deadline first (dynamic priorities)."""

    name = "EDF"

    def select(self, jobs: Sequence[Job]) -> Job | None:
        active = [j for j in jobs if j.is_active]
        if not active:
            return None
        return min(
            active,
            key=lambda j: (j.absolute_deadline, j.release, j.task.name),
        )


def make_policy(taskset: TaskSet, algorithm: str) -> SchedulingPolicy:
    """Build a policy by algorithm name ("RM", "DM" or "EDF")."""
    alg = algorithm.upper()
    if alg == "EDF":
        return EDFPolicy()
    if alg in ("RM", "DM"):
        return FixedPriorityPolicy(priority_order(taskset, alg))
    raise ValueError(f"unknown algorithm {algorithm!r} (EDF, RM or DM)")
