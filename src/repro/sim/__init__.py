"""Discrete-event simulation of the flexible multiprocessor platform.

Built bottom-up for this repository (no external simulator):

* :mod:`repro.sim.scheduler` — preemptive uniprocessor policies (fixed
  priority, EDF) as pluggable job selectors;
* :mod:`repro.sim.uniproc` — one logical processor executing a partition's
  task set inside arbitrary availability windows, with channel-blackout and
  job-abort hooks for fail-silent faults;
* :mod:`repro.sim.multicore` — the full platform: expands a designed
  :class:`~repro.core.config.SlotSchedule` into mode slots, runs every
  logical processor of every mode, applies fault effects through the
  :class:`~repro.platform.hardware.Checker` semantics, and aggregates
  deadline and fault statistics;
* :mod:`repro.sim.events` — the deterministic event queue both the offline
  and online simulation cores drain (arrival / departure / fault strike /
  core death / re-assignment, totally ordered);
* :mod:`repro.sim.online` — the online engine: runtime arrivals decided
  live by the admission controller, departures reclaiming bandwidth, and
  permanent core failures triggering re-assignment of the dead core's
  tasks to surviving channels;
* :mod:`repro.sim.trace` — execution traces, events, metrics, ASCII Gantt;
* :mod:`repro.sim.validation` — analysis/simulation cross-checks (designs
  must run without misses; measured supply must dominate the analytic
  guarantee).
"""

from repro.sim.metrics import (
    mode_service,
    response_statistics,
    summarize,
    time_accounting,
)
from repro.sim.events import Event, EventKind, EventQueue
from repro.sim.multicore import MulticoreResult, MulticoreSim
from repro.sim.online import OnlineArrival, OnlineResult, OnlineSim
from repro.sim.scheduler import EDFPolicy, FixedPriorityPolicy, make_policy
from repro.sim.trace import ExecutionSlice, SimEvent, SimEventKind, SimTrace
from repro.sim.uniproc import UniprocResult, simulate_uniproc
from repro.sim.validation import ValidationReport, measured_mode_supply, validate_design

__all__ = [
    "make_policy",
    "FixedPriorityPolicy",
    "EDFPolicy",
    "simulate_uniproc",
    "UniprocResult",
    "MulticoreSim",
    "MulticoreResult",
    "Event",
    "EventKind",
    "EventQueue",
    "OnlineArrival",
    "OnlineResult",
    "OnlineSim",
    "SimTrace",
    "SimEvent",
    "SimEventKind",
    "ExecutionSlice",
    "validate_design",
    "ValidationReport",
    "measured_mode_supply",
    "response_statistics",
    "mode_service",
    "time_accounting",
    "summarize",
]
