"""The event queue shared by the offline and online simulation cores.

Both simulators — :class:`repro.sim.multicore.MulticoreSim` (the offline
special case: every task arrives at t=0 and stays) and
:class:`repro.sim.online.OnlineSim` (runtime arrivals/departures, live
admission, failure-triggered re-assignment) — drive their discrete dynamics
through one :class:`EventQueue`. The queue is a plain binary heap with a
**total deterministic order**:

``(time, kind priority, insertion sequence)``

* events pop in nondecreasing time;
* at equal times, the :class:`EventKind` priority breaks the tie — platform
  state changes (core death) are observed before the fault strikes they
  explain, departures free bandwidth before the same instant's admissions
  consume it, and re-assigned orphans (who held an admission before the
  failure) re-admit ahead of brand-new arrivals;
* at equal ``(time, kind)``, events pop in insertion order (FIFO), which is
  exactly the stable ``sorted(faults, key=time)`` order the pre-refactor
  offline loop used — the property the byte-identity goldens pin.

No wall clock, no randomness: given the same pushes, every drain is
identical, which is what lets campaign points built on either simulator
keep the runner's bit-identical ``(workers, batch, shard)`` contract.
"""

from __future__ import annotations

import enum
import heapq
import math
from dataclasses import dataclass, field
from typing import Any, Iterator

from repro import telemetry


class EventKind(enum.IntEnum):
    """Discrete simulation events; the int value is the same-time priority."""

    #: A core fails permanently (``PermanentScenario``'s onset).
    CORE_DEATH = 0
    #: A transient soft error strikes one core.
    FAULT_STRIKE = 1
    #: A task leaves the system and releases its bandwidth.
    DEPARTURE = 2
    #: A re-assignment attempt for a task orphaned by a core death.
    REASSIGN = 3
    #: A task enters the system (offline: all at t=0).
    ARRIVAL = 4

    def __str__(self) -> str:  # pragma: no cover - trivial
        return self.name.lower()


#: Telemetry counter name per kind, precomputed so the dispatch hot path
#: never builds strings.
_DISPATCH_COUNTER = {
    kind: f"sim.events.{kind.name.lower()}" for kind in EventKind
}


@dataclass(frozen=True)
class Event:
    """One timestamped simulation event.

    ``data`` carries the kind-specific payload (a task, a fault, a core
    index, ...) and never participates in the ordering.
    """

    time: float
    kind: EventKind
    data: Any = field(default=None, compare=False)

    def __post_init__(self) -> None:
        if not isinstance(self.time, (int, float)) or isinstance(self.time, bool):
            raise TypeError(f"event time must be a number: got {self.time!r}")
        if not math.isfinite(self.time):
            raise ValueError(f"event time must be finite: got {self.time!r}")
        if self.time < 0:
            raise ValueError(f"event time must be >= 0: got {self.time!r}")
        if not isinstance(self.kind, EventKind):
            raise TypeError(f"event kind must be an EventKind: got {self.kind!r}")


class EventQueue:
    """A deterministic min-heap of :class:`Event`.

    Orders by ``(time, kind priority, insertion sequence)``; pushing during
    a drain is allowed (the online engine schedules departures and
    re-assignments from inside its handlers).
    """

    def __init__(self, events: "Iterator[Event] | list[Event] | tuple[Event, ...]" = ()):
        self._heap: list[tuple[float, int, int, Event]] = []
        self._seq = 0
        for ev in events:
            self.push(ev)

    def push(self, event: Event) -> None:
        """Insert one event (FIFO among equal ``(time, kind)`` keys)."""
        if not isinstance(event, Event):
            raise TypeError(f"expected an Event: got {event!r}")
        heapq.heappush(
            self._heap, (event.time, int(event.kind), self._seq, event)
        )
        self._seq += 1
        telemetry.count("sim.events.pushed")

    def push_at(self, time: float, kind: EventKind, data: Any = None) -> Event:
        """Build and insert an event; returns it."""
        ev = Event(time, kind, data)
        self.push(ev)
        return ev

    def pop(self) -> Event:
        """Remove and return the next event (IndexError when empty)."""
        if not self._heap:
            raise IndexError("pop from an empty EventQueue")
        event = heapq.heappop(self._heap)[3]
        telemetry.count("sim.events.dispatched")
        telemetry.count(_DISPATCH_COUNTER[event.kind])
        return event

    def peek(self) -> Event:
        """The next event without removing it (IndexError when empty)."""
        if not self._heap:
            raise IndexError("peek into an empty EventQueue")
        return self._heap[0][3]

    def __len__(self) -> int:
        return len(self._heap)

    def __bool__(self) -> bool:
        return bool(self._heap)

    def drain(self, until: float | None = None) -> Iterator[Event]:
        """Pop events in order; stop (leaving the rest) at ``time >= until``.

        Handlers may :meth:`push` while iterating — newly scheduled events
        join the drain in their proper order (including at the current
        instant, where the kind/FIFO rules still apply).
        """
        while self._heap:
            if until is not None and self._heap[0][0] >= until:
                return
            event = heapq.heappop(self._heap)[3]
            telemetry.count("sim.events.dispatched")
            telemetry.count(_DISPATCH_COUNTER[event.kind])
            yield event


__all__ = ["Event", "EventKind", "EventQueue"]
