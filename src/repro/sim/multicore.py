"""Full-platform simulation: slots, channels, schedulers, faults.

:class:`MulticoreSim` executes a designed platform end-to-end:

1. the :class:`~repro.platform.switcher.ModeSwitchController` expands the
   slot schedule into per-mode usable windows;
2. a deterministic :class:`~repro.sim.events.EventQueue` is drained:
   every task arrives at t=0 (offline is the event core's special case)
   and injected faults are strike events, classified through the checker
   semantics of the mode active at the fault instant (mask / silence /
   corrupt / harmless);
3. every logical processor of every mode runs its partition bin with the
   local scheduler inside its windows — fail-silent faults black out the
   remainder of the silenced channel's slot and abort the running job;
4. NF corruptions are resolved against the execution trace (the victim is
   whatever job occupied the core at the fault instant);
5. results are aggregated into deadline, response-time and fault statistics.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from fractions import Fraction
from typing import Mapping, Sequence

from repro.core.config import PlatformConfig, SlotSchedule
from repro.faults.model import Fault, FaultOutcome, FaultRecord
from repro.model import Mode, PartitionedTaskSet, TaskSet
from repro.platform.hardware import FaultEffect
from repro.platform.modes import layout_for
from repro.platform.switcher import ModeSwitchController, SegmentKind
from repro.sim.events import EventKind, EventQueue
from repro.sim.scheduler import make_policy
from repro.sim.trace import SimEventKind, SimTrace
from repro.sim.uniproc import (
    UniprocResult,
    simulate_uniproc,
    subtract_blackouts,
)
from repro.util import EPS, check_positive, lcm_fractions, to_fraction

_EFFECT_TO_OUTCOME = {
    FaultEffect.MASKED: FaultOutcome.MASKED,
    FaultEffect.SILENCED: FaultOutcome.SILENCED,
    FaultEffect.CORRUPTED: FaultOutcome.CORRUPTED,
}


def _proc_key(mode: Mode, index: int) -> str:
    return f"{mode}[{index}]"


@dataclass
class MulticoreResult:
    """Aggregated outcome of a platform simulation run."""

    horizon: float
    schedule: SlotSchedule
    processors: dict[str, UniprocResult]
    trace: SimTrace
    fault_records: list[FaultRecord] = field(default_factory=list)

    @property
    def misses(self) -> list:
        """All deadline-miss events across processors."""
        return self.trace.misses()

    @property
    def miss_count(self) -> int:
        """Total number of deadline misses."""
        return len(self.misses)

    def misses_by_task(self) -> dict[str, int]:
        """Deadline misses grouped by task name."""
        out: dict[str, int] = {}
        for e in self.misses:
            task = e.who.split("#")[0]
            out[task] = out.get(task, 0) + 1
        return out

    def corrupted_jobs(self) -> list[str]:
        """Jobs whose outputs were silently corrupted (NF faults)."""
        return [
            r.victim for r in self.fault_records
            if r.outcome is FaultOutcome.CORRUPTED and r.victim
        ]

    def aborted_jobs(self) -> list[str]:
        """Jobs killed by fail-silent channel shutdowns."""
        out = []
        for res in self.processors.values():
            out.extend(j.name for j in res.aborted)
        return out

    def fault_summary(self) -> dict[FaultOutcome, int]:
        """Histogram of fault outcomes."""
        out = {o: 0 for o in FaultOutcome}
        for r in self.fault_records:
            out[r.outcome] += 1
        return out

    def worst_response_times(self) -> dict[str, float]:
        """Largest observed response time per task (completed jobs only)."""
        out: dict[str, float] = {}
        for res in self.processors.values():
            for task, rts in res.response_times().items():
                out[task] = max(out.get(task, 0.0), max(rts))
        return out

    def availability_windows(self, mode: Mode) -> list[tuple[float, float]]:
        """The usable windows the platform granted to a mode (fault-free view)."""
        controller = ModeSwitchController(self.schedule)
        return controller.usable_windows(mode, self.horizon)


class MulticoreSim:
    """Simulator of the flexible multicore platform for one designed config.

    The offline special case of the event-driven core: every task arrives
    at t=0 (an :class:`~repro.sim.events.EventKind.ARRIVAL` event per task)
    and the injected faults are
    :class:`~repro.sim.events.EventKind.FAULT_STRIKE` events, all drained
    from one deterministic :class:`~repro.sim.events.EventQueue` before the
    per-processor schedules run. The online engine
    (:mod:`repro.sim.online`) shares the same queue but feeds it runtime
    arrivals, departures and core deaths.

    Parameters
    ----------
    partition:
        The per-mode, per-processor task partition.
    config:
        A :class:`PlatformConfig` (from the design pipeline) or a raw
        :class:`SlotSchedule`.
    algorithm:
        Local scheduler; defaults to the config's algorithm (required when a
        raw schedule is given).
    core_count:
        Number of physical cores; defaults to the config's ``core_count``
        (a raw :class:`SlotSchedule` defaults to the paper's 4).
    """

    def __init__(
        self,
        partition: PartitionedTaskSet,
        config: PlatformConfig | SlotSchedule,
        algorithm: str | None = None,
        *,
        core_count: int | None = None,
    ):
        if isinstance(config, PlatformConfig):
            self._schedule = config.schedule
            algorithm = algorithm or config.algorithm
            if core_count is None:
                core_count = config.core_count
        else:
            self._schedule = config
        if algorithm is None:
            raise ValueError("algorithm is required when passing a raw SlotSchedule")
        self._alg = algorithm.upper()
        self._partition = partition
        self._controller = ModeSwitchController(self._schedule)
        self._core_count = 4 if core_count is None else int(core_count)

    @property
    def core_count(self) -> int:
        """Number of physical cores the simulated platform has."""
        return self._core_count

    @property
    def schedule(self) -> SlotSchedule:
        """The slot schedule being simulated."""
        return self._schedule

    def default_horizon(self, *, cycles_cap: int = 2000) -> float:
        """Two task hyperperiods, rounded up to whole platform cycles.

        Capped at ``cycles_cap`` platform cycles to keep pathological
        hyperperiods tractable.
        """
        tasks = self._partition.all_tasks()
        if len(tasks) == 0:
            return 10.0 * self._schedule.period
        h = float(lcm_fractions([to_fraction(t.period) for t in tasks]))
        p = self._schedule.period
        n_cycles = min(int(2.0 * h / p) + 1, cycles_cap)
        return max(n_cycles, 1) * p

    # -- fault classification ----------------------------------------------------

    def classify_fault(self, fault: Fault) -> tuple[FaultOutcome, Mode | None, int | None, object]:
        """Checker view of a fault: (outcome, mode, channel index, segment)."""
        if not 0 <= fault.core < self._core_count:
            raise ValueError(
                f"fault on core {fault.core} is outside the simulated "
                f"platform's cores 0..{self._core_count - 1}: regenerate "
                f"the fault stream with core_count={self._core_count}"
            )
        seg = self._controller.segment_at(fault.time)
        if seg.kind is not SegmentKind.USABLE or seg.mode is None:
            return FaultOutcome.HARMLESS, seg.mode, None, seg
        layout = layout_for(seg.mode, self._core_count)
        for idx, channel in enumerate(layout.channels):
            if channel.contains(fault.core):
                return _EFFECT_TO_OUTCOME[channel.fault_effect()], seg.mode, idx, seg
        raise AssertionError(
            f"layout for {seg.mode} does not cover core {fault.core}"
        )  # pragma: no cover - layouts are total by construction

    # -- main entry ----------------------------------------------------------------

    def run(
        self,
        horizon: float | None = None,
        *,
        faults: Sequence[Fault] = (),
        release_offsets: str | Mapping[str, float] = "zero",
    ) -> MulticoreResult:
        """Simulate ``[0, horizon)`` with optional fault injection.

        Parameters
        ----------
        horizon:
            Simulation length (default: :meth:`default_horizon`).
        faults:
            Transient faults to inject (times within the horizon).
        release_offsets:
            ``"zero"`` — synchronous release at t=0;
            ``"critical"`` — every task's first release is aligned with the
            *end* of its mode's first usable window (the supply-worst-case
            phasing used by Lemma 1);
            or an explicit per-task offset mapping.
        """
        horizon = horizon if horizon is not None else self.default_horizon()
        check_positive("horizon", horizon)

        # 1. drain the event queue: offline means every task arrives at
        # t=0 and every fault is a strike event. Equal-time strikes pop in
        # insertion order (the queue is FIFO per (time, kind)), matching
        # the stable time-sort of the pre-event-queue loop bit-for-bit.
        queue = EventQueue()
        bin_counts: dict[Mode, int] = {}
        for mode in Mode:
            bins = self._partition.bins(mode)
            bin_counts[mode] = len(bins)
            for idx, taskset in enumerate(bins):
                for task in taskset:
                    queue.push_at(0.0, EventKind.ARRIVAL, (mode, idx, task))
        for fault in faults:
            queue.push_at(fault.time, EventKind.FAULT_STRIKE, fault)

        arrivals: dict[tuple[Mode, int], list] = {}
        records: list[FaultRecord] = []
        aborts: dict[tuple[Mode, int], list[float]] = {}
        blackouts: dict[tuple[Mode, int], list[tuple[float, float]]] = {}
        for ev in queue.drain():
            if ev.kind is EventKind.ARRIVAL:
                mode, idx, task = ev.data
                arrivals.setdefault((mode, idx), []).append(task)
                continue
            fault = ev.data
            if fault.time >= horizon:
                raise ValueError(
                    f"fault at {fault.time} is beyond the horizon {horizon}"
                )
            outcome, mode, chan, seg = self.classify_fault(fault)
            if outcome is FaultOutcome.HARMLESS:
                records.append(
                    FaultRecord(
                        fault, outcome, mode, None,
                        detail=f"hit {seg.kind} time",
                    )
                )
            elif outcome is FaultOutcome.MASKED:
                records.append(
                    FaultRecord(
                        fault, outcome, mode, _proc_key(mode, chan),
                        detail="majority vote over redundant lock-step",
                    )
                )
            elif outcome is FaultOutcome.SILENCED:
                key = (mode, chan)
                aborts.setdefault(key, []).append(fault.time)
                blackouts.setdefault(key, []).append((fault.time, seg.end))
                # The victim (running job) is filled in after simulation.
                records.append(
                    FaultRecord(
                        fault, outcome, mode, _proc_key(mode, chan),
                        detail=f"channel blocked until {seg.end:g}",
                    )
                )
            else:  # CORRUPTED — resolved against the trace afterwards
                records.append(
                    FaultRecord(
                        fault, outcome, mode, _proc_key(mode, chan),
                        detail="undetected soft error",
                    )
                )

        # 2. run every logical processor on the tasks the drain delivered
        merged = SimTrace(horizon)
        processors: dict[str, UniprocResult] = {}
        for mode in Mode:
            windows = self._controller.usable_windows(mode, horizon)
            for idx in range(bin_counts[mode]):
                taskset = TaskSet(arrivals.get((mode, idx), ()))
                if len(taskset) == 0:
                    continue
                key = _proc_key(mode, idx)
                proc_windows = subtract_blackouts(
                    windows, blackouts.get((mode, idx), [])
                )
                offsets = self._resolve_offsets(release_offsets, mode, taskset)
                result = simulate_uniproc(
                    taskset,
                    make_policy(taskset, self._alg),
                    proc_windows,
                    horizon,
                    processor=key,
                    release_offsets=offsets,
                    abort_events=aborts.get((mode, idx), ()),
                )
                processors[key] = result
                merged.merge(result.trace)

        # 3. resolve fault victims against the executed trace
        final_records: list[FaultRecord] = []
        for rec in records:
            victim = None
            if (
                rec.outcome is FaultOutcome.CORRUPTED
                and rec.processor not in processors
            ):
                # The struck core hosts no tasks at all: nothing observable
                # was corrupted.
                rec = FaultRecord(
                    rec.fault, FaultOutcome.HARMLESS, rec.mode,
                    rec.processor, detail="core hosts no tasks",
                )
            if rec.processor in processors:
                res = processors[rec.processor]
                if rec.outcome is FaultOutcome.CORRUPTED:
                    victim = res.job_running_at(rec.fault.time)
                    if victim is None:
                        rec = FaultRecord(
                            rec.fault, FaultOutcome.HARMLESS, rec.mode,
                            rec.processor, detail="core was idle",
                        )
                    else:
                        # Mark the job object for downstream consumers.
                        for j in res.jobs:
                            if j.name == victim:
                                j.corrupted = True
                                break
                elif rec.outcome is FaultOutcome.SILENCED:
                    aborted_names = {j.name for j in res.aborted}
                    # The victim is the job the abort event killed at this time.
                    for e in res.trace.events_of(SimEventKind.ABORT):
                        if abs(e.time - rec.fault.time) <= EPS:
                            victim = e.who
                            break
                    victim = victim if victim in aborted_names or victim else None
            if victim is not None:
                rec = FaultRecord(
                    rec.fault, rec.outcome, rec.mode, rec.processor,
                    victim=victim, detail=rec.detail,
                )
            final_records.append(rec)
            merged.log(
                rec.fault.time,
                SimEventKind.FAULT,
                f"core{rec.fault.core}",
                detail=f"{rec.outcome}"
                + (f" victim={rec.victim}" if rec.victim else ""),
            )
        merged.events.sort(key=lambda e: (e.time, e.kind.value, e.who))
        return MulticoreResult(
            horizon=horizon,
            schedule=self._schedule,
            processors=processors,
            trace=merged,
            fault_records=final_records,
        )

    def _resolve_offsets(
        self,
        release_offsets: str | Mapping[str, float],
        mode: Mode,
        taskset,
    ) -> dict[str, float]:
        if isinstance(release_offsets, str):
            if release_offsets == "zero":
                return {}
            if release_offsets == "critical":
                # Worst-case phasing of Lemma 1: the window of interest starts
                # right when the mode's usable slot ends.
                _, slot_end = self._schedule.usable_window(mode)
                return {t.name: slot_end for t in taskset}
            raise ValueError(
                f"unknown release_offsets spec {release_offsets!r} "
                "(use 'zero', 'critical' or a mapping)"
            )
        return {t.name: float(release_offsets.get(t.name, 0.0)) for t in taskset}
