"""Online simulation: runtime arrivals, live admission, re-assignment.

The second engine on the event-driven core (:mod:`repro.sim.events`).
Where :class:`~repro.sim.multicore.MulticoreSim` admits a fixed task set
offline and replays a whole horizon, :class:`OnlineSim` runs the dynamic
scenario Section 4 motivates: tasks **arrive and leave at run time**, each
arrival is decided live by the deployed
:class:`~repro.core.admission.AdmissionController` (slack-reserve quantum
growth at the fixed period ``P``), and a **permanent core failure** — the
:class:`~repro.dependability.scenarios.PermanentScenario` onset — triggers
*re-assignment* of the dead core's admitted tasks to surviving channels
instead of recording guaranteed misses.

Event semantics (same-time priority is the :class:`EventKind` order):

* ``CORE_DEATH(core)`` — the core is dead for good. Every channel that can
  no longer uphold its fault semantics (see
  :func:`repro.platform.modes.surviving_channels`) is killed in the
  controller; its admitted tasks become *orphans*. Re-designing the
  platform is a per-cycle activity, so orphan ``i`` gets one re-admission
  attempt at the ``(i+1)``-th major-cycle boundary after the death — the
  re-assignment latency is queue position times ``P`` plus the boundary
  alignment.
* ``FAULT_STRIKE(fault)`` — a transient; classified through the mode
  active at the instant exactly like the offline simulator (strikes on
  already-dead cores are dropped: the channel is gone, there is no output
  to corrupt).
* ``DEPARTURE(name)`` — the task leaves and its quantum is reclaimed into
  the reserve (before any same-instant admission consumes it).
* ``REASSIGN(task, death_time)`` — one re-admission attempt for an
  orphan; failure means the task is *lost* (its miss window runs to the
  horizon).
* ``ARRIVAL(task, lifetime)`` — a live admission decision; accepted tasks
  with a finite lifetime schedule their own departure.

Everything is pure arithmetic over the pushed events — no clocks, no
hidden randomness — so campaign points built on this engine inherit the
runner's bit-identical ``(workers, batch, shard)`` contract.

Streaming metrics (all exact-accumulator friendly):

* acceptance over time — per time-bin ``(offered, accepted)`` counts;
* re-assignment latency — death-to-readmission per rescued orphan;
* post-failure miss window — death-to-resolution (horizon when lost) per
  orphan, plus the estimated deadline misses inside it.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Any, Sequence

from repro import telemetry
from repro.core.admission import AdmissionController
from repro.core.config import PlatformConfig
from repro.faults.model import Fault, FaultOutcome
from repro.model import Mode, PartitionedTaskSet, Task
from repro.platform.hardware import FaultEffect
from repro.platform.modes import layout_for, surviving_channels
from repro.platform.switcher import ModeSwitchController, SegmentKind
from repro.sim.events import EventKind, EventQueue
from repro.util import check_positive

_EFFECT_TO_OUTCOME = {
    FaultEffect.MASKED: FaultOutcome.MASKED,
    FaultEffect.SILENCED: FaultOutcome.SILENCED,
    FaultEffect.CORRUPTED: FaultOutcome.CORRUPTED,
}


@dataclass(frozen=True)
class OnlineArrival:
    """One dynamic arrival: a task entering at ``time`` for ``lifetime``.

    ``lifetime`` is how long the task stays once admitted (None: forever).
    """

    time: float
    task: Task
    lifetime: float | None = None

    def __post_init__(self) -> None:
        if self.time < 0:
            raise ValueError(f"arrival time must be >= 0: got {self.time}")
        if self.lifetime is not None:
            check_positive("lifetime", self.lifetime)


@dataclass
class OnlineResult:
    """Aggregated outcome of one online simulation run."""

    horizon: float
    period: float
    bin_width: float
    #: Per time-bin arrival counts: ``{bin index: [offered, accepted]}``.
    acceptance_bins: dict[int, list[int]] = field(default_factory=dict)
    #: Every admission decision: ``(time, task name, admitted, reason)``.
    decisions: list[tuple[float, str, bool, str]] = field(default_factory=list)
    #: Permanent core deaths applied: ``(time, core)``.
    deaths: list[tuple[float, int]] = field(default_factory=list)
    #: Tasks evicted by core deaths (orphan count).
    orphaned: int = 0
    #: Death-to-readmission latency per rescued orphan.
    reassign_latencies: list[float] = field(default_factory=list)
    #: Orphans that could not be re-admitted (lost for good).
    lost: list[str] = field(default_factory=list)
    #: Death-to-resolution window per orphan (horizon-capped when lost).
    miss_windows: list[float] = field(default_factory=list)
    #: Estimated deadline misses inside the miss windows (jobs whose
    #: periods elapsed while the orphan had no processor).
    post_failure_misses: int = 0
    #: Transient-fault outcome histogram (offline classification rules).
    fault_outcomes: dict[str, int] = field(default_factory=dict)
    departed: int = 0
    slack_final: float = 0.0

    @property
    def offered(self) -> int:
        """Total arrivals offered to the admission controller."""
        return sum(o for o, _ in self.acceptance_bins.values())

    @property
    def admitted(self) -> int:
        """Total arrivals admitted."""
        return sum(a for _, a in self.acceptance_bins.values())

    @property
    def acceptance_ratio(self) -> float | None:
        """Overall acceptance ratio (None before any arrival)."""
        return self.admitted / self.offered if self.offered else None

    def to_record(self) -> dict[str, Any]:
        """The JSON-able campaign-point record of this run.

        ``acceptance_bins`` is a sorted ``[bin, offered, accepted]`` list so
        the aggregation layer can fold each bin's counts exactly.
        """
        return {
            "horizon": self.horizon,
            "period": self.period,
            "bin_width": self.bin_width,
            "acceptance_bins": [
                [b, o, a]
                for b, (o, a) in sorted(self.acceptance_bins.items())
            ],
            "offered": self.offered,
            "admitted": self.admitted,
            "acceptance_ratio": self.acceptance_ratio,
            "departed": self.departed,
            "deaths": [[t, c] for t, c in self.deaths],
            "orphaned": self.orphaned,
            "reassigned": len(self.reassign_latencies),
            "reassign_latencies": list(self.reassign_latencies),
            "lost": len(self.lost),
            "miss_windows": list(self.miss_windows),
            "post_failure_misses": self.post_failure_misses,
            "fault_outcomes": dict(self.fault_outcomes),
            "slack_final": self.slack_final,
        }


class OnlineSim:
    """Event-driven online simulation over a deployed platform design.

    Parameters
    ----------
    config:
        The deployed :class:`PlatformConfig` (design with the ``max-slack``
        goal so the admission controller has a reserve to work with).
    partition:
        The initial (already admitted) task partition.
    algorithm:
        Local scheduler; defaults to the config's.
    core_count:
        Physical cores; defaults to the config's ``core_count``.
    """

    def __init__(
        self,
        config: PlatformConfig,
        partition: PartitionedTaskSet,
        algorithm: str | None = None,
        *,
        core_count: int | None = None,
    ):
        self._config = config
        self._controller = AdmissionController(config, partition, algorithm)
        self._switcher = ModeSwitchController(config.schedule)
        self._core_count = (
            config.core_count if core_count is None else int(core_count)
        )

    @property
    def admission(self) -> AdmissionController:
        """The live admission controller (evolves during :meth:`run`)."""
        return self._controller

    # -- main entry --------------------------------------------------------

    def run(
        self,
        horizon: float,
        *,
        arrivals: Sequence[OnlineArrival] = (),
        core_deaths: Sequence[tuple[float, int]] = (),
        faults: Sequence[Fault] = (),
        bin_width: float | None = None,
    ) -> OnlineResult:
        """Simulate ``[0, horizon)``: admissions, departures, failures.

        Events at or beyond the horizon never fire (a departure scheduled
        past the end simply does not happen). ``bin_width`` sets the
        acceptance-curve time bin (default: one major cycle ``P``).
        """
        check_positive("horizon", horizon)
        period = self._config.period
        width = period if bin_width is None else float(bin_width)
        check_positive("bin_width", width)

        result = OnlineResult(horizon, period, width)
        queue = EventQueue()
        for arrival in arrivals:
            queue.push_at(
                arrival.time, EventKind.ARRIVAL, (arrival.task, arrival.lifetime)
            )
        for time, core in core_deaths:
            if not 0 <= core < self._core_count:
                raise ValueError(
                    f"core death on core {core} is outside the platform's "
                    f"cores 0..{self._core_count - 1}"
                )
            queue.push_at(time, EventKind.CORE_DEATH, core)
        for fault in faults:
            queue.push_at(fault.time, EventKind.FAULT_STRIKE, fault)

        dead_cores: set[int] = set()
        #: Orphans awaiting re-assignment: name -> (task, death time).
        pending: dict[str, tuple[Task, float]] = {}
        handlers = {
            EventKind.ARRIVAL: self._on_arrival,
            EventKind.DEPARTURE: self._on_departure,
            EventKind.CORE_DEATH: self._on_core_death,
            EventKind.REASSIGN: self._on_reassign,
            EventKind.FAULT_STRIKE: self._on_fault,
        }
        for ev in queue.drain(until=horizon):
            handlers[ev.kind](ev, queue, result, dead_cores, pending)

        # Orphans whose re-assignment slot never arrived within the horizon
        # are unresolved: they miss until the end.
        for name, (task, death_time) in pending.items():
            result.lost.append(name)
            window = horizon - death_time
            result.miss_windows.append(window)
            result.post_failure_misses += self._window_misses(task, window)
        result.lost.sort()
        result.slack_final = self._controller.slack
        return result

    # -- handlers ----------------------------------------------------------

    def _on_arrival(self, ev, queue, result, dead_cores, pending) -> None:
        task, lifetime = ev.data
        decision = self._controller.try_admit(task)
        telemetry.count("sim.online.offered")
        b = int(ev.time // result.bin_width)
        counts = result.acceptance_bins.setdefault(b, [0, 0])
        counts[0] += 1
        if decision.admitted:
            telemetry.count("sim.online.admitted")
            counts[1] += 1
            if lifetime is not None:
                queue.push_at(ev.time + lifetime, EventKind.DEPARTURE, task.name)
        else:
            telemetry.count("sim.online.rejected")
        result.decisions.append(
            (ev.time, task.name, decision.admitted, decision.reason)
        )

    def _on_departure(self, ev, queue, result, dead_cores, pending) -> None:
        name = ev.data
        if name in pending:
            # The task would have left anyway: its orphanhood resolves as a
            # departure, not a loss — the miss window ends here.
            task, death_time = pending.pop(name)
            window = ev.time - death_time
            result.miss_windows.append(window)
            result.post_failure_misses += self._window_misses(task, window)
            result.departed += 1
            return
        try:
            self._controller.remove(name)
        except KeyError:
            return  # already lost or never admitted
        result.departed += 1

    def _on_core_death(self, ev, queue, result, dead_cores, pending) -> None:
        core = ev.data
        if core in dead_cores:
            return
        dead_cores.add(core)
        result.deaths.append((ev.time, core))
        orphans: list[Task] = []
        for mode in Mode:
            layout = layout_for(mode, self._core_count)
            alive = set(surviving_channels(layout, dead_cores))
            n_bins = len(self._controller.partition().bins(mode))
            for idx in range(min(n_bins, len(layout.channels))):
                if idx in alive:
                    continue
                orphans.extend(self._controller.kill_processor(mode, idx))
        result.orphaned += len(orphans)
        telemetry.count("sim.online.orphaned", len(orphans))
        # One re-admission attempt per major cycle, in eviction order: the
        # platform re-derives one bin's quanta per cycle boundary.
        boundary = (math.floor(ev.time / result.period) + 1) * result.period
        for i, task in enumerate(orphans):
            pending[task.name] = (task, ev.time)
            queue.push_at(
                boundary + i * result.period, EventKind.REASSIGN, (task, ev.time)
            )

    def _on_reassign(self, ev, queue, result, dead_cores, pending) -> None:
        task, death_time = ev.data
        if task.name not in pending:
            return  # departed (or otherwise resolved) while waiting
        decision = self._controller.try_admit(task)
        telemetry.count("sim.online.reassign_attempts")
        del pending[task.name]
        if decision.admitted:
            telemetry.count("sim.online.reassigned")
            window = ev.time - death_time
            result.reassign_latencies.append(window)
            result.miss_windows.append(window)
            result.post_failure_misses += self._window_misses(task, window)
        else:
            telemetry.count("sim.online.lost")
            result.lost.append(task.name)
            window = result.horizon - death_time
            result.miss_windows.append(window)
            result.post_failure_misses += self._window_misses(task, window)
            result.decisions.append(
                (ev.time, task.name, False, decision.reason)
            )

    def _on_fault(self, ev, queue, result, dead_cores, pending) -> None:
        fault = ev.data
        if not 0 <= fault.core < self._core_count:
            raise ValueError(
                f"fault on core {fault.core} is outside the platform's "
                f"cores 0..{self._core_count - 1}"
            )
        if fault.core in dead_cores:
            return  # the channel is gone; nothing observable remains
        seg = self._switcher.segment_at(fault.time)
        if seg.kind is not SegmentKind.USABLE or seg.mode is None:
            outcome = FaultOutcome.HARMLESS
        else:
            layout = layout_for(seg.mode, self._core_count)
            outcome = FaultOutcome.HARMLESS
            for channel in layout.channels:
                if channel.contains(fault.core):
                    outcome = _EFFECT_TO_OUTCOME[channel.fault_effect()]
                    break
        key = str(outcome)
        result.fault_outcomes[key] = result.fault_outcomes.get(key, 0) + 1

    # -- internals ---------------------------------------------------------

    @staticmethod
    def _window_misses(task: Task, window: float) -> int:
        """Deadline misses a processor-less task accrues over ``window``."""
        if window <= 0:
            return 0
        return int(math.floor(window / task.period))


__all__ = ["OnlineArrival", "OnlineResult", "OnlineSim"]
