"""Post-simulation metrics: response-time statistics and delivered service.

Turns a :class:`~repro.sim.multicore.MulticoreResult` into the numbers a
designer reads after a validation run:

* per-task response-time statistics (count/mean/max, normalised laxity);
* per-mode delivered service vs the design's promised bandwidth;
* platform-level accounting: how the horizon divided into usable, overhead
  and idle time (the Figure 2 identity, integrated over the run).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.config import PlatformConfig
from repro.model import Mode
from repro.platform.switcher import ModeSwitchController, SegmentKind
from repro.sim.multicore import MulticoreResult


@dataclass(frozen=True)
class ResponseStats:
    """Response-time statistics of one task over a simulation run."""

    task: str
    completed: int
    mean: float
    worst: float
    deadline: float

    @property
    def worst_case_laxity(self) -> float:
        """``D − worst response`` (negative would mean a miss)."""
        return self.deadline - self.worst

    @property
    def normalised_worst(self) -> float:
        """Worst response as a fraction of the deadline (1.0 = boundary)."""
        return self.worst / self.deadline


def response_statistics(result: MulticoreResult) -> dict[str, ResponseStats]:
    """Response-time statistics per task (completed jobs only)."""
    out: dict[str, ResponseStats] = {}
    for res in result.processors.values():
        for task_name, rts in res.response_times().items():
            arr = np.asarray(rts)
            deadline = next(
                j.task.deadline for j in res.jobs if j.task.name == task_name
            )
            out[task_name] = ResponseStats(
                task=task_name,
                completed=int(arr.size),
                mean=float(arr.mean()),
                worst=float(arr.max()),
                deadline=deadline,
            )
    return out


@dataclass(frozen=True)
class ModeService:
    """Delivered vs promised service of one mode over a run."""

    mode: Mode
    window_time: float      #: usable-slot time the platform granted
    busy_time: float        #: time the mode's processors actually executed
    promised_alpha: float   #: design bandwidth Q̃/P
    horizon: float

    @property
    def delivered_alpha(self) -> float:
        """Granted usable time per unit of horizon (0.0 on a zero-length
        run — nothing was promised over nothing)."""
        if self.horizon <= 0:
            return 0.0
        return self.window_time / self.horizon

    @property
    def capacity(self) -> float:
        """Total processor-time offered: windows × logical processors."""
        return self.window_time * self.mode.parallelism

    @property
    def mode_utilization(self) -> float:
        """Fraction of the granted processor-time actually used."""
        if self.capacity <= 0:
            return 0.0
        return self.busy_time / self.capacity


def mode_service(result: MulticoreResult, config: PlatformConfig) -> dict[Mode, ModeService]:
    """Per-mode delivered-service accounting against the design promise."""
    out: dict[Mode, ModeService] = {}
    for mode in Mode:
        windows = result.availability_windows(mode)
        window_time = sum(b - a for a, b in windows)
        busy = sum(
            res.trace.busy_time()
            for key, res in result.processors.items()
            if key.startswith(str(mode))
        )
        out[mode] = ModeService(
            mode=mode,
            window_time=window_time,
            busy_time=busy,
            promised_alpha=config.schedule.alpha(mode),
            horizon=result.horizon,
        )
    return out


@dataclass(frozen=True)
class TimeAccounting:
    """How the simulated horizon divided into platform activities."""

    usable: float
    overhead: float
    idle: float
    horizon: float

    @property
    def overhead_bandwidth(self) -> float:
        """Measured ``O/P`` over the run (Table 2's overhead row).

        A zero-length horizon accrues no overhead: report 0.0 instead of
        dividing by zero.
        """
        if self.horizon <= 0:
            return 0.0
        return self.overhead / self.horizon


def time_accounting(result: MulticoreResult) -> TimeAccounting:
    """Integrate the slot timeline over the simulated horizon."""
    ctrl = ModeSwitchController(result.schedule)
    usable = overhead = idle = 0.0
    for seg in ctrl.segments(result.horizon):
        if seg.kind is SegmentKind.USABLE:
            usable += seg.duration
        elif seg.kind is SegmentKind.OVERHEAD:
            overhead += seg.duration
        else:
            idle += seg.duration
    return TimeAccounting(usable, overhead, idle, result.horizon)


def summarize(result: MulticoreResult, config: PlatformConfig) -> str:
    """One-page text report of a simulation run."""
    lines = [
        f"horizon {result.horizon:.1f}, misses {result.miss_count}, "
        f"faults {len(result.fault_records)}"
    ]
    acct = time_accounting(result)
    lines.append(
        f"time split: usable {acct.usable:.1f} / overhead {acct.overhead:.1f}"
        f" / idle {acct.idle:.1f} (O-bandwidth {acct.overhead_bandwidth:.4f})"
    )
    for mode, svc in mode_service(result, config).items():
        if svc.window_time <= 0:
            continue
        lines.append(
            f"  {mode}: delivered α {svc.delivered_alpha:.4f} "
            f"(promised {svc.promised_alpha:.4f}), "
            f"window use {100 * svc.mode_utilization:.1f}%"
        )
    stats = response_statistics(result)
    if stats:
        tightest = max(stats.values(), key=lambda s: s.normalised_worst)
        lines.append(
            f"tightest task: {tightest.task} "
            f"(worst response {tightest.worst:.3f} of deadline "
            f"{tightest.deadline:g} -> {100 * tightest.normalised_worst:.1f}%)"
        )
    return "\n".join(lines)
