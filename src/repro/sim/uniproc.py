"""Simulation of one logical processor inside availability windows.

This is the workhorse of the platform simulator: a preemptive, event-driven
execution of a partition's task set on one logical processor that is only
available during the windows its mode's slots provide. The fail-silent fault
path is supported through *abort events* (kill whatever runs at time ``t``)
combined with pre-blacked-out windows.

Job releases follow the synchronous periodic pattern (``k T_i + offset``) —
the worst case the analysis assumes; per-task release offsets allow the
validation layer to align the critical instant with a slot blackout.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass, field
from typing import Mapping, Sequence

from repro.model import Job, JobState, TaskSet
from repro.sim.scheduler import SchedulingPolicy
from repro.sim.trace import ExecutionSlice, SimEvent, SimEventKind, SimTrace
from repro.util import EPS, check_positive


def merge_windows(
    windows: Sequence[tuple[float, float]], horizon: float
) -> list[tuple[float, float]]:
    """Sort, clip to ``[0, horizon)`` and merge touching windows."""
    ws = sorted(
        (max(float(a), 0.0), min(float(b), horizon))
        for a, b in windows
        if min(b, horizon) - max(a, 0.0) > EPS
    )
    merged: list[list[float]] = []
    for a, b in ws:
        if merged and a <= merged[-1][1] + EPS:
            merged[-1][1] = max(merged[-1][1], b)
        else:
            merged.append([a, b])
    return [(a, b) for a, b in merged]


def subtract_blackouts(
    windows: Sequence[tuple[float, float]],
    blackouts: Sequence[tuple[float, float]],
) -> list[tuple[float, float]]:
    """Remove blackout intervals (e.g. silenced-channel time) from windows."""
    out: list[tuple[float, float]] = []
    for a, b in windows:
        pieces = [(a, b)]
        for ba, bb in blackouts:
            next_pieces: list[tuple[float, float]] = []
            for pa, pb in pieces:
                if bb <= pa + EPS or ba >= pb - EPS:
                    next_pieces.append((pa, pb))
                    continue
                if ba > pa + EPS:
                    next_pieces.append((pa, ba))
                if bb < pb - EPS:
                    next_pieces.append((bb, pb))
            pieces = next_pieces
        out.extend(pieces)
    return [p for p in out if p[1] - p[0] > EPS]


@dataclass
class UniprocResult:
    """Outcome of a single-processor simulation.

    Attributes
    ----------
    processor:
        Logical processor label (e.g. ``"FS[1]"``).
    jobs:
        Every job instance released before the horizon.
    trace:
        Slices and events of this processor.
    """

    processor: str
    jobs: list[Job]
    trace: SimTrace

    @property
    def misses(self) -> list[SimEvent]:
        """Deadline-miss events."""
        return self.trace.misses()

    @property
    def completed(self) -> list[Job]:
        """Jobs that ran to completion."""
        return [j for j in self.jobs if j.state is JobState.COMPLETED]

    @property
    def aborted(self) -> list[Job]:
        """Jobs killed by fail-silent channel shutdown."""
        return [j for j in self.jobs if j.state is JobState.ABORTED]

    def response_times(self) -> dict[str, list[float]]:
        """Observed response times grouped by task."""
        out: dict[str, list[float]] = {}
        for j in self.completed:
            rt = j.response_time
            if rt is not None:
                out.setdefault(j.task.name, []).append(rt)
        return out

    def worst_response_time(self, task: str) -> float | None:
        """Largest observed response time of one task (None if never finished)."""
        rts = self.response_times().get(task)
        return max(rts) if rts else None

    def job_running_at(self, t: float) -> str | None:
        """Job name executing at instant ``t`` (None when idle)."""
        for s in self.trace.slices:
            if s.start - EPS <= t < s.end - EPS:
                return s.job
        return None


def simulate_uniproc(
    taskset: TaskSet,
    policy: SchedulingPolicy,
    windows: Sequence[tuple[float, float]],
    horizon: float,
    *,
    processor: str = "P[0]",
    release_offsets: Mapping[str, float] | None = None,
    abort_events: Sequence[float] = (),
) -> UniprocResult:
    """Simulate ``taskset`` under ``policy`` within availability ``windows``.

    Parameters
    ----------
    taskset:
        Tasks sharing this logical processor.
    policy:
        Preemptive scheduling policy (see :mod:`repro.sim.scheduler`).
    windows:
        Availability intervals; execution only happens inside them.
    horizon:
        Simulation end. Jobs whose absolute deadline falls beyond the horizon
        are not judged for misses (edge effect).
    release_offsets:
        Optional per-task first-release offsets (default 0 — synchronous).
    abort_events:
        Times at which the currently running job (if any) is killed — the
        fail-silent channel-shutdown hook. Each time is consumed once.

    Returns
    -------
    :class:`UniprocResult` with all jobs, slices and events.
    """
    check_positive("horizon", horizon)
    offsets = release_offsets or {}
    trace = SimTrace(horizon)
    windows = merge_windows(windows, horizon)
    aborts = sorted(t for t in abort_events if 0.0 <= t < horizon)

    # Pre-generate all releases before the horizon, time-ordered.
    jobs: list[Job] = []
    releases: list[tuple[float, Job]] = []
    for task in taskset:
        off = float(offsets.get(task.name, 0.0))
        if off < 0:
            raise ValueError(f"release offset of {task.name} must be >= 0")
        k = 0
        while True:
            r = off + k * task.period
            if r >= horizon - EPS:
                break
            job = Job(task, r, k)
            jobs.append(job)
            releases.append((r, job))
            k += 1
    releases.sort(key=lambda p: (p[0], p[1].task.name))
    release_times = [r for r, _ in releases]

    ready: list[Job] = []
    missed: set[str] = set()
    rel_idx = 0
    abort_idx = 0

    def admit_releases(now: float) -> int:
        """Move released jobs into the ready set; return new index."""
        nonlocal rel_idx
        while rel_idx < len(releases) and release_times[rel_idx] <= now + EPS:
            r, job = releases[rel_idx]
            ready.append(job)
            trace.log(r, SimEventKind.RELEASE, job.name)
            rel_idx += 1
        return rel_idx

    def check_misses(now: float) -> None:
        """Log (once) every active job whose deadline has passed."""
        for job in ready:
            if (
                job.is_active
                and job.absolute_deadline < now - EPS
                and job.name not in missed
            ):
                missed.add(job.name)
                trace.log(
                    job.absolute_deadline,
                    SimEventKind.DEADLINE_MISS,
                    job.name,
                    detail=f"remaining={job.remaining:g}",
                )

    def next_release_after(now: float) -> float:
        i = rel_idx
        return release_times[i] if i < len(releases) else float("inf")

    def consume_aborts(now: float, running: Job | None) -> None:
        """Fire abort events at ``now`` (kill the running job, if any)."""
        nonlocal abort_idx
        while abort_idx < len(aborts) and aborts[abort_idx] <= now + EPS:
            t = aborts[abort_idx]
            abort_idx += 1
            if running is not None and running.is_active:
                running.abort()
                trace.log(t, SimEventKind.ABORT, running.name, detail="channel silenced")
                running = None

    for win_a, win_b in windows:
        now = win_a
        while now < win_b - EPS:
            # Aborts at or before `now` hit an idle (or already handled)
            # instant — consume them harmlessly so a stale abort can never
            # kill a job that starts later.
            consume_aborts(now, None)
            admit_releases(now)
            check_misses(now)
            job = policy.select(ready)
            nr = next_release_after(now)
            na = aborts[abort_idx] if abort_idx < len(aborts) else float("inf")
            boundary = min(win_b, nr, na)
            if job is None:
                if boundary >= win_b - EPS:
                    break  # idle until the window closes
                now = boundary
                continue
            run_until = min(boundary, now + job.remaining)
            if run_until > now + EPS:
                job.execute(run_until - now)
                trace.add_slice(
                    ExecutionSlice(processor, job.name, job.task.name, now, run_until)
                )
            if not job.is_active and job.state is JobState.READY:
                job.complete(run_until)
                trace.log(run_until, SimEventKind.COMPLETION, job.name)
                if (
                    run_until > job.absolute_deadline + EPS
                    and job.name not in missed
                ):
                    missed.add(job.name)
                    trace.log(
                        job.absolute_deadline,
                        SimEventKind.DEADLINE_MISS,
                        job.name,
                        detail=f"completed late at {run_until:g}",
                    )
                ready.remove(job)
            now = run_until
            # The abort at `run_until` (if that is why we stopped) kills the
            # job that was just executing, provided it is still active.
            consume_aborts(now, job if job.state is JobState.READY else None)
            ready[:] = [j for j in ready if j.state is JobState.READY]
    # Horizon post-pass: unfinished jobs whose deadline lies inside the horizon.
    for job in jobs:
        if (
            job.state is JobState.READY
            and job.remaining > EPS
            and job.absolute_deadline <= horizon + EPS
            and job.name not in missed
        ):
            missed.add(job.name)
            trace.log(
                job.absolute_deadline,
                SimEventKind.DEADLINE_MISS,
                job.name,
                detail=f"unfinished at horizon (remaining={job.remaining:g})",
            )
    trace.events.sort(key=lambda e: (e.time, e.kind.value, e.who))
    return UniprocResult(processor, jobs, trace)
