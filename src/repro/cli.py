"""Command-line interface: ``python -m repro <command>``.

Commands
--------
``analyze <taskset.json>``
    Per-mode utilizations and a dedicated-processor schedulability check of
    each automatic partition bin.
``design <taskset.json> [--otot X] [--alg EDF|RM] [--goal ...]``
    Partition + slot-schedule design; prints the configuration (optionally
    as JSON for machine consumption).
``region <taskset.json> [--alg ...] [--p-max X]``
    ASCII feasible-period region (the Figure 4 view) with its key points.
``simulate <taskset.json> [--cycles N] [--fault-rate R] [--seed S]``
    Design, then run the multicore simulation with optional Poisson fault
    injection; prints miss/fault statistics.
``paper``
    Reproduce the paper's evaluation (Figure 4 points + Table 2) in one go.

Task-set JSON is the :mod:`repro.model.serialization` format::

    {"schema": 1, "tasks": [
        {"name": "ctrl", "wcet": 1, "period": 10, "mode": "FT"},
        ...
    ]}
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

from repro.analysis import edf_schedulable_dedicated, fp_schedulable_dedicated
from repro.core import (
    DesignError,
    FeasibleRegion,
    MaxSlackGoal,
    MinOverheadBandwidthGoal,
    Overheads,
    design_platform,
)
from repro.faults import FaultCampaign
from repro.model import MODE_ORDER, Mode, TaskSet, taskset_from_json
from repro.partition import PartitionError, partition_by_modes
from repro.sim import MulticoreSim
from repro.viz import format_table, render_region


def _load_taskset(path: str) -> TaskSet:
    text = Path(path).read_text()
    return taskset_from_json(text)


def _partition(ts: TaskSet, heuristic: str):
    return partition_by_modes(ts, heuristic=heuristic, admission="utilization")


def cmd_analyze(args: argparse.Namespace) -> int:
    ts = _load_taskset(args.taskset)
    print(ts.summary())
    print()
    try:
        part = _partition(ts, args.heuristic)
    except PartitionError as exc:
        print(f"partitioning failed: {exc}")
        return 1
    rows = []
    for mode in MODE_ORDER:
        for i, b in enumerate(part.bins(mode)):
            if not len(b):
                continue
            if args.alg.upper() == "EDF":
                ok = edf_schedulable_dedicated(b).schedulable
            else:
                ok = fp_schedulable_dedicated(b, args.alg.upper()).schedulable
            rows.append(
                [f"{mode}[{i}]", ", ".join(b.names), b.utilization, ok]
            )
    print(format_table(["processor", "tasks", "U", "schedulable (dedicated)"], rows))
    return 0


def cmd_design(args: argparse.Namespace) -> int:
    ts = _load_taskset(args.taskset)
    goal = {
        "min-overhead": MinOverheadBandwidthGoal(),
        "max-slack": MaxSlackGoal(),
    }[args.goal]
    try:
        part = _partition(ts, args.heuristic)
        config = design_platform(
            part, args.alg, Overheads.uniform(args.otot), goal
        )
    except (PartitionError, DesignError) as exc:
        print(f"design failed: {exc}")
        return 1
    if args.json:
        out = {
            "period": config.period,
            "algorithm": config.algorithm,
            "goal": config.goal,
            "slack": config.slack,
            "quanta": {
                str(m): config.schedule.quantum(m) for m in Mode
            },
            "usable": {
                str(m): config.schedule.usable(m) for m in Mode
            },
            "overheads": {
                str(m): config.schedule.overheads.of(m) for m in Mode
            },
        }
        print(json.dumps(out, indent=2))
    else:
        print(config.summary())
        print()
        print(config.schedule.table())
    return 0


def cmd_region(args: argparse.Namespace) -> int:
    ts = _load_taskset(args.taskset)
    try:
        part = _partition(ts, args.heuristic)
    except PartitionError as exc:
        print(f"partitioning failed: {exc}")
        return 1
    region = FeasibleRegion(part, args.alg, p_max=args.p_max)
    ps, g = region.sweep(n=args.n)
    print(render_region(ps, {args.alg.upper(): g}, otot=args.otot, width=args.width))
    print()
    try:
        print(f"max feasible P (Otot=0)        : {region.max_feasible_period(0.0):.4f}")
    except ValueError as exc:
        print(f"no feasible period at Otot=0   : {exc}")
        return 1
    peak = region.max_admissible_overhead()
    print(f"max admissible Otot            : {peak.lhs:.4f} (at P={peak.period:.4f})")
    if args.otot:
        try:
            print(
                f"max feasible P (Otot={args.otot:g})   : "
                f"{region.max_feasible_period(args.otot):.4f}"
            )
        except ValueError:
            print(f"infeasible at Otot={args.otot:g}")
    return 0


def cmd_simulate(args: argparse.Namespace) -> int:
    ts = _load_taskset(args.taskset)
    try:
        part = _partition(ts, args.heuristic)
        config = design_platform(
            part, args.alg, Overheads.uniform(args.otot)
        )
    except (PartitionError, DesignError) as exc:
        print(f"design failed: {exc}")
        return 1
    print(config.summary())
    print()
    horizon = config.period * args.cycles
    if args.fault_rate > 0:
        campaign = FaultCampaign(part, config, rate=args.fault_rate)
        result = campaign.run(horizon=horizon, seed=args.seed)
        print(result.summary())
        return 0 if result.ft_misses == 0 else 1
    result = MulticoreSim(part, config).run(horizon)
    print(
        f"simulated {result.horizon:.1f} time units ({args.cycles} cycles): "
        f"{result.miss_count} deadline misses"
    )
    if result.miss_count:
        print(f"misses by task: {result.misses_by_task()}")
    return 0 if result.miss_count == 0 else 1


def cmd_paper(args: argparse.Namespace) -> int:
    from repro.experiments import compute_figure4_points, compute_table2

    pts = compute_figure4_points()
    print("Figure 4 points (paper values in brackets):")
    print(f"  1. max P, EDF, Otot=0    : {pts.point1_max_period_edf:.3f}  [3.176]")
    print(f"  2. max P, RM,  Otot=0    : {pts.point2_max_period_rm:.3f}  [2.381]")
    print(f"  3. max Otot, EDF         : {pts.point3_max_overhead_edf:.3f}  [0.201]")
    print(f"  4. max Otot, RM          : {pts.point4_max_overhead_rm:.3f}  [0.129]")
    print(f"  5. max P, EDF, Otot=0.05 : {pts.point5_max_period_edf_otot:.3f}  [2.966]")
    print()
    print("Table 2:")
    print(compute_table2().render())
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Flexible fault-tolerant multiprocessor scheduling "
            "(Cirinei et al., IPPS 2007)"
        ),
    )
    sub = parser.add_subparsers(dest="command", required=True)

    def common(p: argparse.ArgumentParser, with_taskset: bool = True) -> None:
        if with_taskset:
            p.add_argument("taskset", help="task-set JSON file")
        p.add_argument("--alg", default="EDF", choices=["EDF", "RM", "DM", "edf", "rm", "dm"])
        p.add_argument(
            "--heuristic", default="worst-fit",
            choices=["worst-fit", "first-fit", "best-fit", "next-fit"],
            help="automatic partitioning heuristic",
        )

    p = sub.add_parser("analyze", help="utilization + dedicated schedulability per bin")
    common(p)
    p.set_defaults(func=cmd_analyze)

    p = sub.add_parser("design", help="derive P and the slot quanta")
    common(p)
    p.add_argument("--otot", type=float, default=0.0, help="total switch overhead")
    p.add_argument("--goal", default="min-overhead", choices=["min-overhead", "max-slack"])
    p.add_argument("--json", action="store_true", help="machine-readable output")
    p.set_defaults(func=cmd_design)

    p = sub.add_parser("region", help="feasible-period region (Figure 4 view)")
    common(p)
    p.add_argument("--otot", type=float, default=0.0)
    p.add_argument("--p-max", type=float, default=None)
    p.add_argument("--n", type=int, default=301)
    p.add_argument("--width", type=int, default=78)
    p.set_defaults(func=cmd_region)

    p = sub.add_parser("simulate", help="design then simulate (optional faults)")
    common(p)
    p.add_argument("--otot", type=float, default=0.0)
    p.add_argument("--cycles", type=int, default=100)
    p.add_argument("--fault-rate", type=float, default=0.0)
    p.add_argument("--seed", type=int, default=0)
    p.set_defaults(func=cmd_simulate)

    p = sub.add_parser("paper", help="reproduce the paper's evaluation")
    p.set_defaults(func=cmd_paper)
    return parser


def main(argv: list[str] | None = None) -> int:
    """CLI entry point (returns the process exit code)."""
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
