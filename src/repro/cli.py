"""Command-line interface: ``python -m repro <command>``.

Commands
--------
``analyze <taskset.json>``
    Per-mode utilizations and a dedicated-processor schedulability check of
    each automatic partition bin.
``design <taskset.json> [--otot X] [--alg EDF|RM] [--goal ...]``
    Partition + slot-schedule design; prints the configuration (optionally
    as JSON for machine consumption).
``region <taskset.json> [--alg ...] [--p-max X]``
    ASCII feasible-period region (the Figure 4 view) with its key points.
``simulate <taskset.json> [--cycles N] [--fault-rate R] [--seed S]``
    Design, then run the multicore simulation with optional Poisson fault
    injection; prints miss/fault statistics.
``paper``
    Reproduce the paper's evaluation (Figure 4 points + Table 2) in one go.
``campaign <preset> [--workers N] [--seed S] [--cache-dir D] [--axis k=v,..]``
    Run an experiment campaign through the parallel runner
    (:mod:`repro.runner`). Presets: ``table2``, ``figure4``, ``ablations``
    (the paper artifacts as campaign points), ``sched`` (synthetic
    schedulability grid), ``faults`` (fault-injection grid), ``weighted``
    (the weighted-schedulability sweep over the generator parameter space)
    and ``faultspace`` (the dependability sweep over u_total x fault rate x
    fault scenario, with outcome-taxonomy curves and Wilson confidence
    intervals; ``--scenario X`` narrows the scenario axis).
    Every preset streams into a mergeable aggregate
    (:mod:`repro.runner.aggregate`): results and aggregates are
    bit-identical for any ``--workers`` value; with ``--cache-dir`` a re-run
    recomputes nothing and resumes aggregation from a snapshot under
    ``<cache-dir>/aggregates`` (override with ``--state``); ``--out`` writes
    the canonical spec/result JSON and ``--agg-out`` the canonical aggregate
    state (what CI diffs to guard determinism). ``--shard i/N`` runs one
    deterministic digest-keyed shard of the grid (multi-host fan-out); its
    snapshot carries a shard manifest for ``repro merge``. ``--batch N``
    packs N points into each worker task (default: auto-sized) — batching
    cuts IPC overhead on cheap-point sweeps without changing a single
    output byte. ``--telemetry DIR`` records a span trace
    (``trace.ndjson``) and run manifest (``run-manifest.json``) for
    ``repro profile`` — observation only, snapshots stay byte-identical.
    See docs/campaigns.md.
``merge <snapshot>... [--out F] [--preset P] [--allow-partial]``
    Fold shard snapshots (:mod:`repro.runner.shard`) into the canonical
    full-campaign aggregate snapshot — byte-identical to an unsharded run.
    Mismatched configs/seeds/grids and missing, overlapping or incomplete
    shards are refused with a report instead of producing partial curves;
    ``--allow-partial`` downgrades *only* the completeness refusals to a
    preview snapshot explicitly marked ``"partial": true`` with the
    missing-shard list. ``--preset`` additionally renders the merged
    aggregate with that preset's renderer (e.g. the weighted curve tables
    + ASCII plot) through the snapshot query layer (:mod:`repro.reporting`)
    — byte-identical to what ``repro campaign`` prints for the same
    aggregate state.
``serve [--host H] [--port N] [--workers N] [--spool-dir D]``
    Serve campaigns over HTTP (:mod:`repro.server`, stdlib asyncio, no new
    dependencies): ``POST /jobs`` runs a preset campaign through the same
    deterministic engine, ``GET /jobs/{id}/deltas`` streams sequenced
    aggregate deltas while points fold in, ``GET /jobs/{id}/snapshot``
    serves the exact snapshot bytes, and the query endpoints answer
    curve/taxonomy/summary questions through a content-addressed cache.
    Identical job submissions are deduplicated (the job id is the
    canonical request digest). ``--access-log FILE`` writes one NDJSON
    record per request (``-`` for stderr); ``GET /metrics`` and
    ``GET /jobs/{id}/telemetry`` expose server-wide and per-job
    telemetry. See docs/campaigns.md.
``profile <trace-dir-or-file> [--top N] [--min-coverage X]``
    Render a ``--telemetry`` trace as an ascii phase tree with the
    sibling run-manifest summary; ``--min-coverage`` gates (exit 1) when
    the root span's direct children explain less than the given fraction
    of its wall time — CI's guard that instrumentation keeps up with the
    pipeline.

Task-set JSON is the :mod:`repro.model.serialization` format::

    {"schema": 1, "tasks": [
        {"name": "ctrl", "wcet": 1, "period": 10, "mode": "FT"},
        ...
    ]}
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from pathlib import Path

from repro import telemetry
from repro.analysis import edf_schedulable_dedicated, fp_schedulable_dedicated
from repro.dependability import scenario_names
from repro.core import (
    DesignError,
    FeasibleRegion,
    MaxSlackGoal,
    MinOverheadBandwidthGoal,
    Overheads,
    design_platform,
)
from repro.faults import FaultCampaign
from repro.model import MODE_ORDER, Mode, TaskSet, taskset_from_json
from repro.partition import PartitionError, partition_by_modes
from repro.sim import MulticoreSim
from repro.runner.presets import preset_names
from repro.viz import format_table, render_region


def _load_taskset(path: str) -> TaskSet:
    text = Path(path).read_text()
    return taskset_from_json(text)


def _partition(ts: TaskSet, heuristic: str):
    return partition_by_modes(ts, heuristic=heuristic, admission="utilization")


def cmd_analyze(args: argparse.Namespace) -> int:
    ts = _load_taskset(args.taskset)
    print(ts.summary())
    print()
    try:
        part = _partition(ts, args.heuristic)
    except PartitionError as exc:
        print(f"partitioning failed: {exc}")
        return 1
    rows = []
    for mode in MODE_ORDER:
        for i, b in enumerate(part.bins(mode)):
            if not len(b):
                continue
            if args.alg.upper() == "EDF":
                ok = edf_schedulable_dedicated(b).schedulable
            else:
                ok = fp_schedulable_dedicated(b, args.alg.upper()).schedulable
            rows.append(
                [f"{mode}[{i}]", ", ".join(b.names), b.utilization, ok]
            )
    print(format_table(["processor", "tasks", "U", "schedulable (dedicated)"], rows))
    return 0


def cmd_design(args: argparse.Namespace) -> int:
    ts = _load_taskset(args.taskset)
    goal = {
        "min-overhead": MinOverheadBandwidthGoal(),
        "max-slack": MaxSlackGoal(),
    }[args.goal]
    try:
        part = _partition(ts, args.heuristic)
        config = design_platform(
            part, args.alg, Overheads.uniform(args.otot), goal
        )
    except (PartitionError, DesignError) as exc:
        print(f"design failed: {exc}")
        return 1
    if args.json:
        out = {
            "period": config.period,
            "algorithm": config.algorithm,
            "goal": config.goal,
            "slack": config.slack,
            "quanta": {
                str(m): config.schedule.quantum(m) for m in Mode
            },
            "usable": {
                str(m): config.schedule.usable(m) for m in Mode
            },
            "overheads": {
                str(m): config.schedule.overheads.of(m) for m in Mode
            },
        }
        print(json.dumps(out, indent=2))
    else:
        print(config.summary())
        print()
        print(config.schedule.table())
    return 0


def cmd_region(args: argparse.Namespace) -> int:
    ts = _load_taskset(args.taskset)
    try:
        part = _partition(ts, args.heuristic)
    except PartitionError as exc:
        print(f"partitioning failed: {exc}")
        return 1
    region = FeasibleRegion(part, args.alg, p_max=args.p_max)
    ps, g = region.sweep(n=args.n)
    print(render_region(ps, {args.alg.upper(): g}, otot=args.otot, width=args.width))
    print()
    try:
        print(f"max feasible P (Otot=0)        : {region.max_feasible_period(0.0):.4f}")
    except ValueError as exc:
        print(f"no feasible period at Otot=0   : {exc}")
        return 1
    peak = region.max_admissible_overhead()
    print(f"max admissible Otot            : {peak.lhs:.4f} (at P={peak.period:.4f})")
    if args.otot:
        try:
            print(
                f"max feasible P (Otot={args.otot:g})   : "
                f"{region.max_feasible_period(args.otot):.4f}"
            )
        except ValueError:
            print(f"infeasible at Otot={args.otot:g}")
    return 0


def cmd_simulate(args: argparse.Namespace) -> int:
    ts = _load_taskset(args.taskset)
    try:
        part = _partition(ts, args.heuristic)
        config = design_platform(
            part, args.alg, Overheads.uniform(args.otot)
        )
    except (PartitionError, DesignError) as exc:
        print(f"design failed: {exc}")
        return 1
    print(config.summary())
    print()
    horizon = config.period * args.cycles
    if args.fault_rate > 0:
        campaign = FaultCampaign(part, config, rate=args.fault_rate)
        result = campaign.run(horizon=horizon, seed=args.seed)
        print(result.summary())
        return 0 if result.ft_misses == 0 else 1
    result = MulticoreSim(part, config).run(horizon)
    print(
        f"simulated {result.horizon:.1f} time units ({args.cycles} cycles): "
        f"{result.miss_count} deadline misses"
    )
    if result.miss_count:
        print(f"misses by task: {result.misses_by_task()}")
    return 0 if result.miss_count == 0 else 1


def _write_run_telemetry(
    recorder,
    sink,
    directory: Path,
    config: dict | None,
    *,
    stats: dict | None = None,
    aggregate_json: str | None = None,
    error: str | None = None,
) -> None:
    """Finalize one ``--telemetry`` run: close the trace, write the manifest."""
    from repro.telemetry import build_manifest, write_manifest

    sink.close(recorder)
    manifest = build_manifest(
        recorder,
        stats=stats,
        config=config,
        aggregate_json=aggregate_json,
        error=error,
    )
    write_manifest(directory / "run-manifest.json", manifest)
    print(
        f"[telemetry] trace {sink.path} + manifest "
        f"{directory / 'run-manifest.json'}",
        file=sys.stderr,
    )


def cmd_campaign(args: argparse.Namespace) -> int:
    from repro.runner import (
        CampaignError,
        ShardManifest,
        SnapshotError,
        grid_digest,
        parse_shard,
        shard_specs,
        stream_campaign,
    )
    from repro.runner.presets import PresetError, adaptive_message, get_preset

    args.preset = args.preset_flag or args.preset_pos
    if args.preset_pos and args.preset_flag and args.preset_pos != args.preset_flag:
        raise SystemExit(
            f"conflicting presets: {args.preset_pos!r} vs --preset "
            f"{args.preset_flag!r}"
        )
    if args.preset is None:
        raise SystemExit("campaign: a preset is required (see --help)")
    preset = get_preset(args.preset)
    adaptive = args.strategy == "adaptive"
    if not adaptive:
        if args.ci_width is not None:
            raise SystemExit("campaign: --ci-width requires --strategy adaptive")
        if args.max_points is not None:
            raise SystemExit(
                "campaign: --max-points requires --strategy adaptive"
            )
    elif not preset.adaptive:
        raise SystemExit(f"campaign: {adaptive_message()}")
    shard_index = shard_count = None
    if args.shard is not None:
        try:
            shard_index, shard_count = parse_shard(args.shard)
        except ValueError as exc:
            raise SystemExit(f"campaign: {exc}")
    aggregator = preset.aggregator()
    planning_aggregator = None
    state_path = args.state
    shard: "object | None" = None
    if adaptive:
        try:
            source = preset.adaptive_source(
                args.axis,
                args.scenario,
                ci_width=args.ci_width,
                max_points=args.max_points,
            )
        except PresetError as exc:
            raise SystemExit(str(exc))
        except ValueError as exc:
            print(f"campaign failed: {exc}")
            return 1
        if shard_count is not None:
            if args.state is None and args.cache_dir is None:
                raise SystemExit(
                    "campaign: --shard needs --state or --cache-dir — the "
                    "manifest-tagged snapshot is the shard's whole output"
                )
            # The point set is not known upfront, so the shard is an
            # (index, count) ownership rule; the manifest is rebuilt per
            # round. Every shard must also observe the other shards'
            # folds to plan rounds identically, hence the planning twin.
            shard = (shard_index, shard_count)
            if shard_count > 1:
                planning_aggregator = preset.aggregator()
        collect = bool(args.out or args.json)
        runnable = source
        if state_path is None and args.cache_dir is not None:
            # Adaptive snapshots are fingerprinted by the source config
            # (axes, ci target, budget) instead of a grid digest — the
            # emitted point set is an outcome, not an input.
            shard_tag = (
                f"-shard{shard_index}of{shard_count}"
                if shard_count is not None
                else ""
            )
            state_path = (
                Path(args.cache_dir)
                / "aggregates"
                / f"{args.preset}-s{args.seed}"
                f"-{aggregator.config_digest[:16]}"
                f"-a{source.config_digest[:16]}{shard_tag}.json"
            )
    else:
        try:
            specs = preset.specs(args.axis, args.scenario)
        except PresetError as exc:
            raise SystemExit(str(exc))
        except ValueError as exc:
            print(f"campaign failed: {exc}")
            return 1
        if shard_count is not None:
            if args.state is None and args.cache_dir is None:
                raise SystemExit(
                    "campaign: --shard needs --state or --cache-dir — the "
                    "manifest-tagged snapshot is the shard's whole output"
                )
            # Manifest first (it fingerprints the FULL grid), then narrow
            # the spec list to this shard's digest-keyed subset.
            shard = ShardManifest.for_shard(specs, shard_index, shard_count)
            specs = shard_specs(specs, shard_index, shard_count)
        # The per-point renderings (and --out/--json) need materialized
        # rows; the aggregate-rendered presets stream in O(accumulators)
        # memory. Shard runs never render rows, so they stay
        # streaming-only — which also keeps the snapshot's skip-outright
        # resume shortcut active.
        collect = bool(args.out or args.json) or (
            shard is None and preset.row_rendered
        )
        runnable = specs
        if state_path is None and args.cache_dir is not None:
            # The default snapshot is fingerprinted by the *spec set* too:
            # a different --axis grid must not resume into (and render)
            # bins folded by a previous grid. Deliberate incremental
            # extension of a sweep uses an explicit --state path instead.
            # Shards get their own snapshot next to the full run's (same
            # grid fingerprint).
            grid = (
                shard.grid if shard is not None
                else grid_digest(s.digest for s in specs)
            )[:16]
            shard_tag = (
                f"-shard{shard.index}of{shard.count}"
                if shard is not None
                else ""
            )
            state_path = (
                Path(args.cache_dir)
                / "aggregates"
                / f"{args.preset}-s{args.seed}"
                f"-{aggregator.config_digest[:16]}-g{grid}{shard_tag}.json"
            )
    show_progress = (
        args.progress
        if args.progress is not None
        else sys.stderr.isatty()
    )
    recorder = sink = None
    telemetry_dir: Path | None = None
    telemetry_config: dict | None = None
    if args.telemetry is not None:
        from repro.telemetry import Telemetry, TraceSink

        telemetry_dir = Path(args.telemetry)
        telemetry_config = {
            "preset": args.preset,
            "seed": args.seed,
            "strategy": args.strategy,
            "workers": args.workers,
            "batch": args.batch,
            "shard": args.shard,
            "config_digest": aggregator.config_digest,
        }
        sink = TraceSink(
            telemetry_dir / "trace.ndjson",
            preset=args.preset,
            seed=args.seed,
            strategy=args.strategy,
        )
        recorder = Telemetry(sink)
    previous = telemetry.activate(recorder) if recorder is not None else None
    try:
        streamed = stream_campaign(
            runnable,
            aggregator,
            workers=args.workers,
            master_seed=args.seed,
            cache_dir=args.cache_dir,
            state_path=state_path,
            collect=collect,
            progress=show_progress,
            # The weighted/faultspace sweeps span infeasible corners of the
            # generator space (a generated set may not even partition);
            # those points are recorded as errors and excluded.
            on_error=preset.on_error,
            shard=shard,
            batch_size=args.batch,
            planning_aggregator=planning_aggregator,
        )
    except (CampaignError, SnapshotError, OSError) as exc:
        if recorder is not None:
            # A failed run still leaves a trace and a manifest (with the
            # error recorded) — that is when the phase breakdown matters
            # most.
            _write_run_telemetry(
                recorder, sink, telemetry_dir, telemetry_config, error=str(exc)
            )
        print(f"campaign failed: {exc}")
        return 1
    finally:
        if recorder is not None:
            telemetry.activate(previous)
    if recorder is not None:
        _write_run_telemetry(
            recorder,
            sink,
            telemetry_dir,
            telemetry_config,
            stats=streamed.stats.to_dict(),
            aggregate_json=streamed.aggregate_json(),
        )
    if args.out:
        Path(args.out).write_text(streamed.to_json())
    if args.agg_out:
        Path(args.agg_out).write_text(streamed.aggregate_json())
    if args.json:
        print(streamed.to_json())
    elif shard is not None:
        # A shard's aggregate is deliberately partial; rendering it would
        # show misleading curves (and the table2/figure4 renderers require
        # the full point set). The snapshot is the product — merge all
        # shards with `repro merge` to render the campaign.
        print(
            f"shard {shard_index}/{shard_count} snapshot written; render "
            f"the full campaign with: repro merge <all shard snapshots> "
            f"--preset {args.preset}"
        )
    else:
        from repro.reporting import SnapshotQuery
        from repro.runner.presets import render_rows

        query = SnapshotQuery.from_aggregator(preset, streamed.aggregator)
        if preset.row_rendered:
            print(render_rows(streamed))
            if preset.render_fn is not None:
                print()
                print(query.report())
        else:
            print(query.report())
    s = streamed.stats
    extra = f", {s.errors} failed" if s.errors else ""
    shard_tag = (
        f"shard {shard_index}/{shard_count}: " if shard is not None else ""
    )
    round_info = ""
    if adaptive:
        sizes = "+".join(str(n) for n in s.round_sizes) or "0"
        open_info = (
            f", {s.open_bins} bin(s) short of the ci target"
            if s.open_bins
            else ""
        )
        planning_info = (
            f", {s.planning_points} planning point(s) for other shards"
            if s.planning_points
            else ""
        )
        round_info = (
            f"; adaptive: {s.rounds} round(s) "
            f"[{sizes}]{open_info}{planning_info}"
        )
    kernel_info = ""
    kernel_total = s.kernel_fast + s.kernel_fallback
    if kernel_total:
        kernel_info = (
            f"; kernels: {100.0 * s.kernel_fast / kernel_total:.1f}% fast "
            f"({s.kernel_fast}/{kernel_total})"
        )
    print(
        f"[campaign] {shard_tag}{s.total} points ({s.unique} unique): "
        f"{s.computed} computed, {s.cached} cached in {s.elapsed:.2f}s "
        f"with {s.workers} worker(s) x batch {s.batch_size}; "
        f"aggregate: {s.folded} folded, {s.skipped} resumed{extra}"
        f"{round_info}{kernel_info}",
        file=sys.stderr,
    )
    return 0


def cmd_merge(args: argparse.Namespace) -> int:
    from repro.runner import (
        MergeError,
        atomic_write_text,
        canonical_json,
        merge_snapshot_files,
    )

    try:
        merged = merge_snapshot_files(
            args.snapshots, allow_partial=args.allow_partial
        )
    except MergeError as exc:
        print(f"merge failed: {exc}")
        return 1
    text = canonical_json(merged)
    query = None
    if args.preset:
        from repro.reporting import QueryError, SnapshotQuery

        # Validate before writing --out: a failed merge invocation must not
        # leave a plausible-looking merged snapshot behind.
        try:
            query = SnapshotQuery.from_snapshot(
                merged, args.preset, where="merged snapshot"
            )
        except QueryError as exc:
            print(f"merge failed: {exc}")
            return 1
    if args.out:
        atomic_write_text(Path(args.out), text)
    if query is not None:
        print(query.report())
    elif not args.out:
        print(text)
    manifest = merged["shard"]
    partial_tag = ""
    if merged.get("partial"):
        reason = (
            f"missing shards {merged['missing_shards']}"
            if merged["missing_shards"]
            else "incomplete shard(s) — some covered points not yet folded"
        )
        partial_tag = (
            f" — PARTIAL PREVIEW ({reason}), not mergeable or resumable"
        )
    print(
        f"[merge] {len(args.snapshots)} shard snapshot(s): "
        f"{len(merged['folded'])} folded, {len(merged['failed'])} failed "
        f"over {len(manifest['points'])} points{partial_tag}",
        file=sys.stderr,
    )
    return 0


def cmd_serve(args: argparse.Namespace) -> int:
    import asyncio

    from repro.server import ReproServer

    access_log = None
    if args.access_log is not None:
        access_log = (
            sys.stderr if args.access_log == "-" else open(args.access_log, "a")
        )
    server = ReproServer(
        workers=args.workers, spool_dir=args.spool_dir, access_log=access_log
    )
    try:
        asyncio.run(server.serve_forever(args.host, args.port))
    except KeyboardInterrupt:
        print("[serve] stopped", file=sys.stderr)
    finally:
        if access_log is not None and access_log is not sys.stderr:
            access_log.close()
    return 0


def cmd_profile(args: argparse.Namespace) -> int:
    from repro.telemetry.profile import (
        load_trace,
        manifest_summary,
        render_profile,
    )

    target = Path(args.trace)
    try:
        profile = load_trace(target)
    except OSError as exc:
        print(f"profile failed: {exc}", file=sys.stderr)
        return 1
    print(render_profile(profile, top=args.top))
    manifest_dir = target if target.is_dir() else target.parent
    manifest_path = manifest_dir / "run-manifest.json"
    if manifest_path.exists():
        try:
            manifest = json.loads(manifest_path.read_text())
        except ValueError:
            manifest = None
        if isinstance(manifest, dict):
            summary = manifest_summary(manifest)
            if summary:
                print()
                print(f"manifest: {summary}")
    if args.min_coverage is not None:
        coverage = profile.coverage()
        if coverage is None or coverage < args.min_coverage:
            have = "n/a" if coverage is None else f"{coverage * 100:.1f}%"
            print(
                f"profile: phase coverage {have} is below the required "
                f"{args.min_coverage * 100:.1f}%",
                file=sys.stderr,
            )
            return 1
    return 0


def cmd_paper(args: argparse.Namespace) -> int:
    from repro.experiments import compute_figure4_points, compute_table2
    from repro.runner.presets import format_figure4

    print(format_figure4(compute_figure4_points()))
    print()
    print("Table 2:")
    print(compute_table2().render())
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Flexible fault-tolerant multiprocessor scheduling "
            "(Cirinei et al., IPPS 2007)"
        ),
    )
    sub = parser.add_subparsers(dest="command", required=True)

    def common(p: argparse.ArgumentParser, with_taskset: bool = True) -> None:
        if with_taskset:
            p.add_argument("taskset", help="task-set JSON file")
        p.add_argument("--alg", default="EDF", choices=["EDF", "RM", "DM", "edf", "rm", "dm"])
        p.add_argument(
            "--heuristic", default="worst-fit",
            choices=["worst-fit", "first-fit", "best-fit", "next-fit"],
            help="automatic partitioning heuristic",
        )

    p = sub.add_parser("analyze", help="utilization + dedicated schedulability per bin")
    common(p)
    p.set_defaults(func=cmd_analyze)

    p = sub.add_parser("design", help="derive P and the slot quanta")
    common(p)
    p.add_argument("--otot", type=float, default=0.0, help="total switch overhead")
    p.add_argument("--goal", default="min-overhead", choices=["min-overhead", "max-slack"])
    p.add_argument("--json", action="store_true", help="machine-readable output")
    p.set_defaults(func=cmd_design)

    p = sub.add_parser("region", help="feasible-period region (Figure 4 view)")
    common(p)
    p.add_argument("--otot", type=float, default=0.0)
    p.add_argument("--p-max", type=float, default=None)
    p.add_argument("--n", type=int, default=301)
    p.add_argument("--width", type=int, default=78)
    p.set_defaults(func=cmd_region)

    p = sub.add_parser("simulate", help="design then simulate (optional faults)")
    common(p)
    p.add_argument("--otot", type=float, default=0.0)
    p.add_argument("--cycles", type=int, default=100)
    p.add_argument("--fault-rate", type=float, default=0.0)
    p.add_argument("--seed", type=int, default=0)
    p.set_defaults(func=cmd_simulate)

    p = sub.add_parser("paper", help="reproduce the paper's evaluation")
    p.set_defaults(func=cmd_paper)

    p = sub.add_parser(
        "campaign",
        help="run an experiment campaign through the parallel runner",
    )
    p.add_argument(
        "preset_pos",
        nargs="?",
        metavar="preset",
        choices=list(preset_names()),
        help="which campaign to run",
    )
    p.add_argument(
        "--preset", dest="preset_flag", choices=list(preset_names()), default=None,
        help="flag form of the positional preset",
    )
    p.add_argument(
        "--workers", type=int, default=None,
        help="process-pool size (default: cores - 1; results are identical "
             "for any value)",
    )
    p.add_argument("--seed", type=int, default=0, help="campaign master seed")
    p.add_argument(
        "--strategy", choices=("grid", "adaptive"), default="grid",
        help="point supply: 'grid' sweeps the exhaustive cartesian grid "
             "(default, byte-identical to previous releases); 'adaptive' "
             "refines weighted/faultspace curve bins until each Wilson 95%% "
             "interval is narrower than --ci-width",
    )
    p.add_argument(
        "--ci-width", type=float, default=None, metavar="W",
        help="adaptive convergence target: maximum Wilson 95%% interval "
             "width per curve bin (default 0.05; requires --strategy "
             "adaptive)",
    )
    p.add_argument(
        "--max-points", type=int, default=None, metavar="N",
        help="adaptive point budget: stop refining after emitting N points "
             "(requires --strategy adaptive)",
    )
    p.add_argument(
        "--cache-dir", default=None,
        help="on-disk result cache; re-runs recompute only new points",
    )
    p.add_argument(
        "--axis", action="append", metavar="KEY=V1,V2,...",
        help="override/add a grid axis (sched/faults/weighted/faultspace "
             "presets; repeatable)",
    )
    p.add_argument(
        "--scenario", default=None, choices=scenario_names(),
        help="narrow the faultspace preset to one fault scenario",
    )
    p.add_argument(
        "--out", default=None,
        help="write canonical spec/result JSON to this file",
    )
    p.add_argument(
        "--agg-out", default=None,
        help="write the canonical aggregate-state JSON to this file",
    )
    p.add_argument(
        "--state", default=None,
        help="aggregate snapshot for incremental resume (default: under "
             "--cache-dir/aggregates)",
    )
    p.add_argument(
        "--shard", default=None, metavar="I/N",
        help="run only shard I of N of the grid (digest-keyed, deterministic"
             "); the snapshot records a manifest for 'repro merge'",
    )
    p.add_argument(
        "--batch", type=int, default=None, metavar="N",
        help="points per worker task (default: auto-sized; results are "
             "bit-identical for any value)",
    )
    p.add_argument(
        "--json", action="store_true",
        help="print the canonical JSON instead of tables",
    )
    p.add_argument(
        "--progress", action="store_true", default=None,
        help="force progress/ETA reporting on stderr (default: only on a tty)",
    )
    p.add_argument(
        "--no-progress", action="store_false", dest="progress",
        help="disable progress reporting",
    )
    p.add_argument(
        "--telemetry", default=None, metavar="DIR",
        help="record run telemetry: an NDJSON span trace (DIR/trace.ndjson) "
             "and a run manifest (DIR/run-manifest.json); campaign results "
             "are byte-identical with or without it",
    )
    p.set_defaults(func=cmd_campaign)

    p = sub.add_parser(
        "profile",
        help="render the phase breakdown of a --telemetry trace",
    )
    p.add_argument(
        "trace",
        help="trace.ndjson file (or the --telemetry directory holding one)",
    )
    p.add_argument(
        "--min-coverage", type=float, default=None, metavar="FRACTION",
        help="exit nonzero unless the root span's direct children cover at "
             "least this fraction of its wall time (e.g. 0.95)",
    )
    p.add_argument(
        "--top", type=int, default=40, metavar="N",
        help="show at most N phases outside the root span (default 40)",
    )
    p.set_defaults(func=cmd_profile)

    p = sub.add_parser(
        "merge",
        help="merge shard snapshots into the full-campaign aggregate",
    )
    p.add_argument(
        "snapshots", nargs="+",
        help="shard snapshot files (--state / --cache-dir outputs)",
    )
    p.add_argument(
        "--out", default=None,
        help="write the merged snapshot JSON here (default: stdout unless "
             "--preset renders)",
    )
    p.add_argument(
        "--preset", choices=list(preset_names()), default=None,
        help="also render the merged aggregate with this preset's renderer",
    )
    p.add_argument(
        "--allow-partial", action="store_true",
        help="preview an incomplete shard set: the merged snapshot is "
             "marked 'partial' with the missing-shard list instead of "
             "being refused (previews cannot be merged or resumed)",
    )
    p.set_defaults(func=cmd_merge)

    p = sub.add_parser(
        "serve",
        help="serve campaigns over HTTP (jobs, delta streams, queries)",
    )
    p.add_argument(
        "--host", default="127.0.0.1",
        help="bind address (default 127.0.0.1; 0.0.0.0 exposes the server)",
    )
    p.add_argument(
        "--port", type=int, default=8765,
        help="bind port (0 picks a free one; default 8765)",
    )
    p.add_argument(
        "--workers", type=int, default=None,
        help="default process-pool size per job (jobs may override)",
    )
    p.add_argument(
        "--spool-dir", default=None,
        help="directory for job snapshots (enables GET /jobs/{id}/snapshot)",
    )
    p.add_argument(
        "--access-log", default=None, metavar="FILE",
        help="append one NDJSON record per request (method, path, status, "
             "duration, job digest) to FILE; '-' logs to stderr",
    )
    p.set_defaults(func=cmd_serve)
    return parser


def main(argv: list[str] | None = None) -> int:
    """CLI entry point (returns the process exit code)."""
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.func(args)
    except BrokenPipeError:
        # stdout went away mid-print (e.g. `repro profile | head`); point
        # the fd at devnull so the interpreter's shutdown flush can't
        # raise again, and exit with the conventional SIGPIPE code.
        os.dup2(os.open(os.devnull, os.O_WRONLY), sys.stdout.fileno())
        return 141


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
