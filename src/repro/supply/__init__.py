"""Supply functions for hierarchical scheduling (Section 3.1).

A supply function ``Z(t)`` gives the minimum amount of processor time a time
partition provides in *any* window of length ``t`` (Definition 1). This
package implements:

* :class:`PeriodicSlotSupply` — the exact supply of a statically positioned
  slot of usable length ``Q̃`` inside a cycle of period ``P`` (Lemma 1);
* :class:`LinearSupply` — the bounded-delay lower bound
  ``Z'(t) = max(0, α (t − Δ))`` (Eq. 3), with ``α = Q̃/P``, ``Δ = P − Q̃``
  (Eq. 2);
* :class:`EDPSupply` / :class:`PeriodicServerSupply` — the explicit-deadline
  periodic and classic periodic *server* resource models (floating budget;
  blackout ``2(P−Q̃)``), for comparison with the paper's fixed-slot model;
* :class:`SlotLayoutSupply` — exact supply of an arbitrary static multi-slot
  layout (the paper's future-work item: the same mode served by more than
  one quantum per period);
* :class:`DedicatedSupply` — a full processor (``Z(t) = t``);
* :class:`MeasuredSupply` — empirical supply extracted from simulator
  availability traces, for analysis/simulation cross-validation;
* comparison helpers (:func:`dominates`, :func:`equivalent_on`).
"""

from repro.supply.base import SupplyFunction
from repro.supply.dedicated import DedicatedSupply, NullSupply
from repro.supply.edp import EDPSupply, PeriodicServerSupply
from repro.supply.linear import LinearSupply
from repro.supply.measured import MeasuredSupply, availability_to_supply
from repro.supply.periodic import PeriodicSlotSupply
from repro.supply.slots import SlotLayoutSupply
from repro.supply.algebra import dominates, equivalent_on, linear_bound_of

__all__ = [
    "SupplyFunction",
    "DedicatedSupply",
    "NullSupply",
    "LinearSupply",
    "PeriodicSlotSupply",
    "EDPSupply",
    "PeriodicServerSupply",
    "SlotLayoutSupply",
    "MeasuredSupply",
    "availability_to_supply",
    "dominates",
    "equivalent_on",
    "linear_bound_of",
]
