"""Linear (bounded-delay) lower bound of a supply function (Eq. 3).

``Z'(t) = max(0, α (t − Δ))`` is a safe lower bound of the exact periodic
slot supply (Figure 3): any task set feasible under ``Z'`` is feasible under
``Z``. The paper develops its whole design methodology on ``Z'`` because it
turns the feasibility conditions into the closed-form ``minQ`` formulas.
"""

from __future__ import annotations

import numpy as np

from repro.supply.base import SupplyFunction
from repro.util import EPS, check_in_range, check_nonneg


class LinearSupply(SupplyFunction):
    """Bounded-delay supply ``Z'(t) = max(0, alpha * (t - delta))``.

    Parameters
    ----------
    alpha:
        Supply rate in ``(0, 1]`` (``alpha = 0`` is allowed and models a
        partition that never supplies).
    delta:
        Initial service delay ``>= 0``.
    """

    __slots__ = ("_alpha", "_delta")

    def __init__(self, alpha: float, delta: float):
        check_in_range("alpha", alpha, 0.0, 1.0)
        check_nonneg("delta", delta)
        self._alpha = float(alpha)
        self._delta = float(delta)

    @classmethod
    def from_slot(cls, period: float, budget: float) -> "LinearSupply":
        """Build from slot parameters via Eq. 2: ``α = Q̃/P``, ``Δ = P − Q̃``."""
        if period <= 0:
            raise ValueError(f"period must be > 0: got {period}")
        if not 0 <= budget <= period + EPS:
            raise ValueError(f"budget must be in [0, period]: got {budget}")
        budget = min(budget, period)
        return cls(alpha=budget / period, delta=period - budget)

    @property
    def alpha(self) -> float:
        return self._alpha

    @property
    def delta(self) -> float:
        return self._delta if self._alpha > 0 else float("inf")

    def supply(self, t: float) -> float:
        check_nonneg("t", t)
        return max(0.0, self._alpha * (t - self._delta))

    def supply_array(self, ts) -> np.ndarray:
        t = np.asarray(ts, dtype=float)
        return np.maximum(0.0, self._alpha * (t - self._delta))

    def inverse(self, w: float, *, hint: float | None = None) -> float:
        """Closed form: ``t = Δ + w/α`` for ``w > 0``."""
        check_nonneg("w", w)
        if w <= EPS:
            return 0.0
        if self._alpha <= 0:
            raise ValueError(f"supply rate is 0; cannot ever provide w={w}")
        return self._delta + w / self._alpha

    def __repr__(self) -> str:
        return f"LinearSupply(α={self._alpha:g}, Δ={self._delta:g})"
