"""Comparison helpers over supply functions.

Supply functions form a partial order: ``Z1`` *dominates* ``Z2`` when
``Z1(t) >= Z2(t)`` for every ``t`` — any task set feasible under the
dominated supply is feasible under the dominating one. These helpers verify
dominance numerically on a dense grid plus the breakpoints relevant to
periodic supplies, which is how the library's safety claims (e.g. "the linear
bound is safe", Figure 3) are checked.
"""

from __future__ import annotations

import numpy as np

from repro.supply.base import SupplyFunction
from repro.supply.linear import LinearSupply
from repro.util import EPS, check_positive


def _probe_points(horizon: float, n: int, *extra_periods: float) -> np.ndarray:
    """Dense grid over [0, horizon] enriched with periodic breakpoints."""
    pts = [np.linspace(0.0, horizon, n)]
    for period in extra_periods:
        if period and period > 0:
            ks = np.arange(0.0, horizon + period, period)
            pts.append(ks)
            pts.append(np.maximum(ks - EPS, 0.0))
            pts.append(ks + EPS)
    out = np.unique(np.concatenate(pts))
    return out[(out >= 0.0) & (out <= horizon)]


def _periods_of(*supplies: SupplyFunction) -> list[float]:
    return [getattr(s, "period", 0.0) or 0.0 for s in supplies]


def dominates(
    z1: SupplyFunction,
    z2: SupplyFunction,
    horizon: float,
    *,
    n: int = 2001,
    tol: float = 1e-7,
) -> bool:
    """True if ``z1(t) >= z2(t) - tol`` on a dense probe of ``[0, horizon]``."""
    check_positive("horizon", horizon)
    ts = _probe_points(horizon, n, *_periods_of(z1, z2))
    return bool(np.all(z1.supply_array(ts) >= z2.supply_array(ts) - tol))


def equivalent_on(
    z1: SupplyFunction,
    z2: SupplyFunction,
    horizon: float,
    *,
    n: int = 2001,
    tol: float = 1e-7,
) -> bool:
    """True if the two supplies agree within ``tol`` on ``[0, horizon]``."""
    check_positive("horizon", horizon)
    ts = _probe_points(horizon, n, *_periods_of(z1, z2))
    return bool(np.all(np.abs(z1.supply_array(ts) - z2.supply_array(ts)) <= tol))


def linear_bound_of(supply: SupplyFunction) -> LinearSupply:
    """The bounded-delay abstraction ``Z'(t) = max(0, α(t − Δ))`` of a supply.

    For :class:`~repro.supply.periodic.PeriodicSlotSupply` this is exactly
    Eq. 3 of the paper (and is guaranteed to lower-bound the exact supply —
    Figure 3); for other models it uses their ``alpha``/``delta``.
    """
    alpha = supply.alpha
    delta = supply.delta
    if alpha <= 0 or not np.isfinite(delta):
        return LinearSupply(0.0, 0.0)
    return LinearSupply(alpha, delta)
