"""Abstract supply function interface.

Every concrete supply function provides ``supply(t)`` (Definition 1 of the
paper), its pseudo-inverse ``inverse(w)`` (earliest window length guaranteeing
``w`` units of service — used by supply-aware response-time analysis), and the
bounded-delay abstraction ``(alpha, delta)``.
"""

from __future__ import annotations

import abc
from typing import Iterable

import numpy as np

from repro.util import EPS, check_nonneg


class SupplyFunction(abc.ABC):
    """Minimum guaranteed service ``Z(t)`` of a time partition.

    Implementations must be non-decreasing, 1-Lipschitz (a partition cannot
    supply faster than real time), and satisfy ``Z(0) == 0``. These invariants
    are exercised by the hypothesis property tests in
    ``tests/properties/test_supply_props.py``.
    """

    @abc.abstractmethod
    def supply(self, t: float) -> float:
        """Minimum service guaranteed in any window of length ``t >= 0``."""

    @property
    @abc.abstractmethod
    def alpha(self) -> float:
        """Long-run supply rate ``lim Z(t)/t``."""

    @property
    @abc.abstractmethod
    def delta(self) -> float:
        """Longest starvation interval: ``sup { t : Z(t) = 0 }``."""

    # -- generic implementations ----------------------------------------------

    def supply_array(self, ts: Iterable[float]) -> np.ndarray:
        """Vectorised :meth:`supply` (subclasses may override with numpy)."""
        return np.array([self.supply(float(t)) for t in ts], dtype=float)

    def inverse(self, w: float, *, hint: float | None = None) -> float:
        """Smallest ``t`` with ``Z(t) >= w`` (pseudo-inverse).

        The generic implementation brackets geometrically from ``hint`` (or
        ``delta + w``) and bisects; subclasses with closed forms override it.
        Raises :class:`ValueError` if the supply can never reach ``w``
        (``alpha == 0``).
        """
        check_nonneg("w", w)
        if w <= EPS:
            return 0.0
        if self.alpha <= 0:
            raise ValueError(f"supply rate is 0; cannot ever provide w={w}")
        hi = max(hint if hint is not None else 0.0, self.delta + w, EPS)
        for _ in range(200):
            if self.supply(hi) >= w:
                break
            hi *= 2.0
        else:  # pragma: no cover - defensive
            raise RuntimeError(f"failed to bracket inverse for w={w}")
        lo = 0.0
        for _ in range(100):
            mid = 0.5 * (lo + hi)
            if self.supply(mid) >= w:
                hi = mid
            else:
                lo = mid
            if hi - lo <= EPS * max(1.0, hi):
                break
        return hi

    def is_feasible_budget(self) -> bool:
        """True when the partition supplies any time at all (``alpha > 0``)."""
        return self.alpha > 0
