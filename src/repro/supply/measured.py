"""Empirical supply functions extracted from simulator availability traces.

The multicore simulator records, for each logical processor, the exact time
windows during which the platform made it available (its mode's usable slot
portions). :class:`MeasuredSupply` turns such a finite trace into an
empirical supply function

.. math:: \\hat Z(t) = \\min_{t_0} \\text{available time in } [t_0, t_0+t]

over the observed horizon, which the validation layer compares against the
analytical guarantee: a correct platform must satisfy
``measured >= analytical`` everywhere (the analytical ``Z`` is a *minimum*
guarantee).
"""

from __future__ import annotations

from typing import Iterable, Sequence

import numpy as np

from repro.supply.base import SupplyFunction
from repro.util import EPS, check_nonneg, check_positive


def _merge_windows(windows: Iterable[tuple[float, float]]) -> list[tuple[float, float]]:
    ws = sorted((float(a), float(b)) for a, b in windows if b - a > EPS)
    merged: list[list[float]] = []
    for a, b in ws:
        if merged and a <= merged[-1][1] + EPS:
            merged[-1][1] = max(merged[-1][1], b)
        else:
            merged.append([a, b])
    return [(a, b) for a, b in merged]


class MeasuredSupply(SupplyFunction):
    """Empirical minimum-supply over a finite availability trace.

    Parameters
    ----------
    windows:
        Availability windows ``(start, end)`` observed in ``[0, horizon]``.
    horizon:
        Length of the observation. Queries with ``t > horizon`` raise
        ``ValueError`` — a finite trace says nothing beyond its horizon.

    Notes
    -----
    The empirical minimum is evaluated by sliding the window start over the
    candidate offsets where the minimum can occur (availability-window ends
    and ``start - t`` alignments), the same argument as
    :class:`~repro.supply.slots.SlotLayoutSupply`.
    """

    def __init__(self, windows: Iterable[tuple[float, float]], horizon: float):
        check_positive("horizon", horizon)
        self._windows = _merge_windows(windows)
        self._horizon = float(horizon)
        for a, b in self._windows:
            if a < -EPS or b > self._horizon + EPS:
                raise ValueError(
                    f"window [{a}, {b}) outside observed horizon [0, {self._horizon}]"
                )
        # Cumulative availability F(x) for O(log n) interval queries.
        self._starts = np.array([a for a, _ in self._windows])
        self._ends = np.array([b for _, b in self._windows])
        lens = self._ends - self._starts
        self._cum = np.concatenate([[0.0], np.cumsum(lens)])

    @property
    def horizon(self) -> float:
        """Observation length."""
        return self._horizon

    @property
    def windows(self) -> Sequence[tuple[float, float]]:
        """Merged availability windows."""
        return list(self._windows)

    def total_available(self) -> float:
        """Total availability over the horizon."""
        return float(self._cum[-1])

    def _F(self, x: float) -> float:
        """Cumulative available time in [0, x]."""
        if x <= 0:
            return 0.0
        x = min(x, self._horizon)
        i = int(np.searchsorted(self._starts, x, side="right")) - 1
        if i < 0:
            return 0.0
        base = float(self._cum[i])
        return base + min(max(x - self._starts[i], 0.0), self._ends[i] - self._starts[i])

    def _available(self, t0: float, t1: float) -> float:
        return self._F(t1) - self._F(t0)

    def supply(self, t: float) -> float:
        check_nonneg("t", t)
        if t > self._horizon + EPS:
            raise ValueError(
                f"cannot evaluate measured supply at t={t} beyond horizon "
                f"{self._horizon}"
            )
        if t <= EPS:
            return 0.0
        candidates = [0.0]
        for _a, b in self._windows:
            if b + t <= self._horizon + EPS:
                candidates.append(b)
        # Also consider the window ending exactly at the horizon.
        candidates.append(max(self._horizon - t, 0.0))
        best = min(self._available(t0, min(t0 + t, self._horizon)) for t0 in candidates)
        return max(best, 0.0)

    @property
    def alpha(self) -> float:
        """Empirical long-run rate: total availability / horizon."""
        return self.total_available() / self._horizon

    @property
    def delta(self) -> float:
        """Longest observed starvation stretch (including trace edges)."""
        if not self._windows:
            return float("inf")
        gaps = [self._windows[0][0]]
        for (a1, b1), (a2, _b2) in zip(self._windows, self._windows[1:]):
            gaps.append(a2 - b1)
        gaps.append(self._horizon - self._windows[-1][1])
        return max(max(gaps), 0.0)

    def __repr__(self) -> str:
        return (
            f"MeasuredSupply({len(self._windows)} windows, "
            f"horizon={self._horizon:g}, alpha={self.alpha:.3f})"
        )


def availability_to_supply(
    windows: Iterable[tuple[float, float]], horizon: float
) -> MeasuredSupply:
    """Convenience constructor mirroring the simulator's trace output."""
    return MeasuredSupply(windows, horizon)
