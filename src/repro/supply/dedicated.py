"""Trivial supply functions: a dedicated processor and an empty partition."""

from __future__ import annotations

import numpy as np

from repro.supply.base import SupplyFunction
from repro.util import check_nonneg


class DedicatedSupply(SupplyFunction):
    """A full dedicated processor: ``Z(t) = t`` (``alpha=1``, ``delta=0``).

    With this supply, the supply-aware schedulability tests of
    :mod:`repro.analysis` reduce exactly to the classic dedicated-processor
    tests — a relationship the test suite checks.
    """

    def supply(self, t: float) -> float:
        check_nonneg("t", t)
        return float(t)

    def supply_array(self, ts) -> np.ndarray:
        return np.asarray(ts, dtype=float).copy()

    @property
    def alpha(self) -> float:
        return 1.0

    @property
    def delta(self) -> float:
        return 0.0

    def inverse(self, w: float, *, hint: float | None = None) -> float:
        check_nonneg("w", w)
        return float(w)

    def __repr__(self) -> str:
        return "DedicatedSupply()"


class NullSupply(SupplyFunction):
    """A partition that never supplies time (``Z(t) = 0``)."""

    def supply(self, t: float) -> float:
        check_nonneg("t", t)
        return 0.0

    def supply_array(self, ts) -> np.ndarray:
        return np.zeros(len(np.asarray(ts)), dtype=float)

    @property
    def alpha(self) -> float:
        return 0.0

    @property
    def delta(self) -> float:
        return float("inf")

    def __repr__(self) -> str:
        return "NullSupply()"
