"""Exact supply of an arbitrary static multi-slot layout.

The paper's future-work section proposes providing *the same fault-tolerance
service during more than one time quantum per period*. This module supports
that extension: :class:`SlotLayoutSupply` computes the exact supply function
of a mode that is granted any finite union of fixed windows inside a cycle of
length ``P``.

The computation follows Definition 1 directly: ``Z(t)`` is the minimum, over
all window start points ``t0``, of the available time in ``[t0, t0 + t]``.
For a piecewise-constant availability pattern the minimum is attained with
``t0`` at the *end* of an availability window (starting anywhere inside an
available stretch can only increase supply, and sliding ``t0`` within a gap
until the previous window's end is supply-neutral or improving), so only
``len(windows)`` candidate offsets need to be evaluated.
"""

from __future__ import annotations

from typing import Iterable, Sequence

import numpy as np

from repro.supply.base import SupplyFunction
from repro.util import EPS, check_nonneg, check_positive, fuzzy_floor


def _normalise_windows(
    period: float, windows: Iterable[tuple[float, float]]
) -> tuple[tuple[float, float], ...]:
    """Validate, sort and merge [start, end) windows within [0, period)."""
    ws = sorted((float(a), float(b)) for a, b in windows)
    merged: list[list[float]] = []
    for a, b in ws:
        if b - a <= EPS:
            continue  # ignore degenerate windows
        if a < -EPS or b > period + EPS:
            raise ValueError(
                f"window [{a}, {b}) must lie within the cycle [0, {period})"
            )
        a = max(a, 0.0)
        b = min(b, period)
        if merged and a <= merged[-1][1] + EPS:
            merged[-1][1] = max(merged[-1][1], b)
        else:
            merged.append([a, b])
    return tuple((a, b) for a, b in merged)


class SlotLayoutSupply(SupplyFunction):
    """Exact supply of a set of fixed windows repeated with period ``P``.

    Parameters
    ----------
    period:
        Cycle length ``P``.
    windows:
        Iterable of ``(start, end)`` half-open availability windows within
        ``[0, P)``. Overlapping/adjacent windows are merged; degenerate
        (zero-length) windows are dropped.

    With a single window this coincides with Lemma 1
    (:class:`~repro.supply.periodic.PeriodicSlotSupply`), which the tests
    verify.
    """

    __slots__ = ("_P", "_windows", "_Q")

    def __init__(self, period: float, windows: Iterable[tuple[float, float]]):
        check_positive("period", period)
        self._P = float(period)
        self._windows = _normalise_windows(self._P, windows)
        self._Q = sum(b - a for a, b in self._windows)

    @property
    def period(self) -> float:
        return self._P

    @property
    def windows(self) -> tuple[tuple[float, float], ...]:
        """Normalised availability windows within one cycle."""
        return self._windows

    @property
    def budget(self) -> float:
        """Total usable time per cycle (sum of window lengths)."""
        return self._Q

    @property
    def alpha(self) -> float:
        return self._Q / self._P

    @property
    def delta(self) -> float:
        """Longest starvation stretch = largest gap between windows."""
        if not self._windows:
            return float("inf")
        gaps = []
        for i, (a, _b) in enumerate(self._windows):
            prev_end = self._windows[i - 1][1] - (self._P if i == 0 else 0.0)
            gaps.append(a - prev_end)
        return max(max(gaps), 0.0)

    # -- core computation ------------------------------------------------------

    def _available_from(self, t0: float, t: float) -> float:
        """Available time in [t0, t0 + t] under the periodic layout."""
        if t <= 0.0:
            return 0.0
        end = t0 + t
        full_cycles = fuzzy_floor(end / self._P) - fuzzy_floor(t0 / self._P)
        # Work with positions reduced to one cycle plus whole-cycle credit.
        total = 0.0
        a0 = t0 - fuzzy_floor(t0 / self._P) * self._P
        b0 = end - fuzzy_floor(end / self._P) * self._P
        total += full_cycles * self._Q
        total -= self._available_in_cycle(0.0, a0)
        total += self._available_in_cycle(0.0, b0)
        return max(total, 0.0)

    def _available_in_cycle(self, a: float, b: float) -> float:
        """Available time in [a, b] within a single cycle, 0 <= a <= b <= P."""
        total = 0.0
        for wa, wb in self._windows:
            total += max(0.0, min(b, wb) - max(a, wa))
        return total

    def supply(self, t: float) -> float:
        """``Z(t)`` = min over candidate offsets of available time (Def. 1)."""
        check_nonneg("t", t)
        if not self._windows:
            return 0.0
        # Candidate worst-case window starts: the end of each availability
        # window (see module docstring).
        best = float("inf")
        for _a, b in self._windows:
            best = min(best, self._available_from(b, t))
        return max(best, 0.0)

    def supply_array(self, ts) -> np.ndarray:
        return np.array([self.supply(float(t)) for t in np.asarray(ts, dtype=float)])

    def __repr__(self) -> str:
        ws = ", ".join(f"[{a:g},{b:g})" for a, b in self._windows)
        return f"SlotLayoutSupply(P={self._P:g}, windows=({ws}))"


def evenly_split_slots(
    period: float, budget: float, pieces: int, *, start: float = 0.0
) -> SlotLayoutSupply:
    """Layout with ``budget`` split into ``pieces`` equal slots spread evenly.

    The slots start at ``start + k * P/pieces`` for ``k = 0..pieces-1``. This
    realises the paper's future-work idea of serving one mode with several
    quanta per period; splitting strictly improves the supply delay
    (``delta`` shrinks from ``P − Q̃`` towards ``P/pieces − Q̃/pieces``).
    """
    check_positive("period", period)
    check_nonneg("budget", budget)
    if pieces < 1:
        raise ValueError(f"pieces must be >= 1: got {pieces}")
    if budget > period + EPS:
        raise ValueError("budget must not exceed period")
    piece_len = budget / pieces
    stride = period / pieces
    if piece_len > stride + EPS:
        raise ValueError("slots would overlap: budget/pieces > period/pieces")
    windows: list[tuple[float, float]] = []
    for k in range(pieces):
        a = start + k * stride
        a %= period
        b = a + piece_len
        if b <= period + EPS:
            windows.append((a, min(b, period)))
        else:  # wrap around the cycle end
            windows.append((a, period))
            windows.append((0.0, b - period))
    return SlotLayoutSupply(period, windows)
