"""Exact supply of a statically positioned periodic slot (Lemma 1).

The platform of the paper dedicates, inside every major cycle of length
``P``, one *fixed-position* slot of usable length ``Q̃`` to each mode. The
worst-case window for a task of that mode starts immediately after a slot
ends: it first sees a blackout of ``P − Q̃`` and then full service for ``Q̃``,
repeating. Lemma 1 (from Lipari & Bini 2004) gives:

.. math::

    Z(t) = \\begin{cases}
       j\\,Q̃ & t \\in [jP,\\ (j+1)P - Q̃) \\\\
       t - (j+1)(P - Q̃) & \\text{otherwise}
    \\end{cases}
    \\qquad j = \\lfloor t/P \\rfloor

Note this is *not* the periodic resource model of Shin & Lee (which allows
the budget to float inside the period and therefore has a ``2(P−Q̃)``
blackout); see :class:`repro.supply.edp.PeriodicServerSupply` for that model.
"""

from __future__ import annotations

import numpy as np

from repro.supply.base import SupplyFunction
from repro.util import EPS, check_nonneg, check_positive, fuzzy_ceil, fuzzy_floor


class PeriodicSlotSupply(SupplyFunction):
    """Exact supply ``Z(t)`` of a fixed slot of usable length ``Q̃`` per period ``P``.

    Parameters
    ----------
    period:
        Cycle length ``P`` (> 0).
    budget:
        Usable slot length ``Q̃`` with ``0 <= Q̃ <= P``. (``Q̃`` already
        excludes the mode-switch overhead: ``Q̃ = Q − O``.)
    """

    __slots__ = ("_P", "_Q")

    def __init__(self, period: float, budget: float):
        check_positive("period", period)
        check_nonneg("budget", budget)
        if budget > period + EPS:
            raise ValueError(
                f"budget ({budget}) must not exceed period ({period})"
            )
        self._P = float(period)
        self._Q = float(min(budget, period))

    @property
    def period(self) -> float:
        """Cycle length ``P``."""
        return self._P

    @property
    def budget(self) -> float:
        """Usable slot length ``Q̃``."""
        return self._Q

    @property
    def alpha(self) -> float:
        """Rate ``α = Q̃ / P`` (Eq. 2)."""
        return self._Q / self._P

    @property
    def delta(self) -> float:
        """Delay ``Δ = P − Q̃`` (Eq. 2)."""
        return self._P - self._Q

    def supply(self, t: float) -> float:
        """Exact ``Z(t)`` per Lemma 1."""
        check_nonneg("t", t)
        if self._Q <= 0.0:
            return 0.0
        P, Q = self._P, self._Q
        j = fuzzy_floor(t / P)
        if t < (j + 1) * P - Q:
            # Inside the blackout portion of cycle j: only j full slots seen.
            return j * Q
        return t - (j + 1) * (P - Q)

    def supply_array(self, ts) -> np.ndarray:
        """Vectorised Lemma 1 evaluation."""
        t = np.asarray(ts, dtype=float)
        if self._Q <= 0.0:
            return np.zeros_like(t)
        P, Q = self._P, self._Q
        j = np.floor(t / P + EPS)
        blackout = t < (j + 1) * P - Q
        return np.where(blackout, j * Q, t - (j + 1) * (P - Q))

    def inverse(self, w: float, *, hint: float | None = None) -> float:
        """Closed-form pseudo-inverse: smallest ``t`` with ``Z(t) >= w``.

        For ``w`` in ``(j Q̃, (j+1) Q̃]`` the ramp of cycle ``j`` reaches ``w``
        at ``t = (j+1)(P − Q̃) + w``.
        """
        check_nonneg("w", w)
        if w <= EPS:
            return 0.0
        if self._Q <= 0.0:
            raise ValueError(f"zero budget; cannot ever provide w={w}")
        P, Q = self._P, self._Q
        # w lies in ramp j when w in (jQ, (j+1)Q], i.e. j = ceil(w/Q) - 1;
        # fuzzy_ceil keeps w = jQ (an exact ramp top) in ramp j-1.
        j = max(fuzzy_ceil(w / Q) - 1, 0)
        return (j + 1) * (P - Q) + w

    def __repr__(self) -> str:
        return f"PeriodicSlotSupply(P={self._P:g}, Q̃={self._Q:g})"
