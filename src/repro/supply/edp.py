"""Explicit-deadline periodic (EDP) and periodic-server resource models.

These are the *floating-budget* resource models from the hierarchical
scheduling literature (Shin & Lee 2003; Easwaran et al. 2007), implemented as
comparison points for the paper's fixed-slot model of Lemma 1.

An EDP resource ``(Π, Θ, D)`` guarantees ``Θ`` units of service within each
window ``D`` of every period ``Π`` (``Θ <= D <= Π``), but the position of the
service inside the window may float. Its worst-case supply has an initial
blackout of ``Π + D − 2Θ`` followed by alternating full-service ramps of
length ``Θ`` and gaps of ``Π − Θ``:

.. math::

   y = t - (Π + D - 2Θ),\\qquad
   sbf(t) = \\lfloor y/Π \\rfloor Θ + \\min(y \\bmod Π,\\ Θ) \\ \\ (y > 0)

For ``D = Π`` this is exactly the classic Shin & Lee periodic resource model
with blackout ``2(Π−Θ)`` — strictly worse than Lemma 1's ``Π−Θ`` blackout,
which is the quantitative benefit of pinning slots statically. The test
suite asserts this dominance.
"""

from __future__ import annotations

import numpy as np

from repro.supply.base import SupplyFunction
from repro.util import EPS, check_nonneg, check_positive, fuzzy_ceil, fuzzy_floor


class EDPSupply(SupplyFunction):
    """Supply bound function of an EDP resource ``(period, budget, deadline)``.

    Parameters
    ----------
    period:
        Replenishment period ``Π``.
    budget:
        Guaranteed service ``Θ`` per period, ``0 <= Θ <= deadline``.
    deadline:
        Service deadline ``D`` within the period, ``Θ <= D <= Π``.
    """

    __slots__ = ("_P", "_Q", "_D")

    def __init__(self, period: float, budget: float, deadline: float | None = None):
        check_positive("period", period)
        check_nonneg("budget", budget)
        if deadline is None:
            deadline = period
        check_positive("deadline", deadline)
        if budget > deadline + EPS:
            raise ValueError(f"budget ({budget}) must not exceed deadline ({deadline})")
        if deadline > period + EPS:
            raise ValueError(f"deadline ({deadline}) must not exceed period ({period})")
        self._P = float(period)
        self._Q = float(min(budget, deadline))
        self._D = float(min(deadline, period))

    @property
    def period(self) -> float:
        return self._P

    @property
    def budget(self) -> float:
        return self._Q

    @property
    def deadline(self) -> float:
        return self._D

    @property
    def alpha(self) -> float:
        return self._Q / self._P

    @property
    def delta(self) -> float:
        """Worst-case blackout ``Π + D − 2Θ``."""
        if self._Q <= 0.0:
            return float("inf")
        return self._P + self._D - 2.0 * self._Q

    def supply(self, t: float) -> float:
        check_nonneg("t", t)
        if self._Q <= 0.0:
            return 0.0
        y = t - self.delta
        if y <= 0.0:
            return 0.0
        k = fuzzy_floor(y / self._P)
        r = y - k * self._P
        return k * self._Q + min(max(r, 0.0), self._Q)

    def supply_array(self, ts) -> np.ndarray:
        t = np.asarray(ts, dtype=float)
        if self._Q <= 0.0:
            return np.zeros_like(t)
        y = t - self.delta
        k = np.floor(y / self._P + EPS)
        r = y - k * self._P
        out = k * self._Q + np.clip(r, 0.0, self._Q)
        return np.where(y <= 0.0, 0.0, out)

    def inverse(self, w: float, *, hint: float | None = None) -> float:
        """Closed form: ramp ``j`` (0-based) reaches ``w`` at
        ``delta + j*(Π−Θ) + w``."""
        check_nonneg("w", w)
        if w <= EPS:
            return 0.0
        if self._Q <= 0.0:
            raise ValueError(f"zero budget; cannot ever provide w={w}")
        j = max(fuzzy_ceil(w / self._Q) - 1, 0)
        return self.delta + j * (self._P - self._Q) + w

    def __repr__(self) -> str:
        return f"EDPSupply(Π={self._P:g}, Θ={self._Q:g}, D={self._D:g})"


class PeriodicServerSupply(EDPSupply):
    """Shin & Lee periodic resource model ``(Π, Θ)`` — EDP with ``D = Π``.

    Worst-case blackout ``2(Π − Θ)``; used in ablations to quantify how much
    schedulable space the paper gains by pinning slots statically (Lemma 1's
    blackout is only ``Π − Θ``).
    """

    def __init__(self, period: float, budget: float):
        super().__init__(period, budget, deadline=period)

    def __repr__(self) -> str:
        return f"PeriodicServerSupply(Π={self._P:g}, Θ={self._Q:g})"
