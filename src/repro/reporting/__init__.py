"""Snapshot query layer: typed questions over exact aggregate states.

``repro campaign`` renders an aggregate it just streamed; ``repro merge
--preset`` renders one it reassembled from shards; ``repro serve`` answers
HTTP queries about one it holds in memory. All three go through
:class:`~repro.reporting.query.SnapshotQuery`, so the same snapshot always
produces the same bytes no matter which door it entered through.
"""

from repro.reporting.query import (
    QueryCache,
    QueryError,
    SnapshotQuery,
    render_summary,
)

__all__ = [
    "QueryCache",
    "QueryError",
    "SnapshotQuery",
    "render_summary",
]
