"""Typed queries over campaign aggregate snapshots.

A snapshot (see :mod:`repro.runner.stream`) is the canonical persisted form
of a campaign: exact accumulator states plus the digests of every folded
point. This module loads one, validates it against a registered preset
(:mod:`repro.runner.presets`), and answers structured questions about it —
a curve by metric (optionally pivoted over one axis), an outcome taxonomy
with Wilson confidence intervals, the scalar summary, or the preset's full
rendered report.

Every answer is a pure function of the accumulator states, so responses
are content-addressable: :attr:`SnapshotQuery.content_digest` fingerprints
``(preset, aggregate config, aggregate state)``, and :class:`QueryCache`
memoizes rendered responses under ``(content digest, query)`` — the
``repro serve`` cache hits whenever any client asks any question about an
aggregate state the server has already answered it for, regardless of
which campaign produced the state.
"""

from __future__ import annotations

import hashlib
import json
import os
import threading
from pathlib import Path
from typing import Any, Mapping

from repro.runner.aggregate import (
    Aggregator,
    CategoricalCountAccumulator,
    CurveAccumulator,
)
from repro.runner.presets import PresetSpec, get_preset
from repro.runner.spec import canonical_json
from repro.runner.stream import check_snapshot_compat


class QueryError(ValueError):
    """A snapshot or query that cannot be answered (malformed, mismatched)."""


def render_summary(aggregator: Aggregator) -> str:
    """Deterministic text of an aggregate's scalar summary.

    The fallback report for presets without an aggregate renderer (their
    campaign-time rendering needs materialized per-point rows, which a
    snapshot deliberately does not keep): one canonical-JSON line per
    metric, stable under sharding, merging and resumption.
    """
    lines = ["aggregate summary:"]
    for name, value in sorted(aggregator.summary().items()):
        lines.append(f"  {name} = {canonical_json(value)}")
    return "\n".join(lines)


def _parse_curve_key(
    key: Any, axes: "tuple[str, ...] | None"
) -> dict[str, Any]:
    """One curve bin key as a ``{axis: value}`` mapping.

    Three shapes appear in the wild: positional lists (zipped with the
    preset's declared ``curve_axes``), self-describing ``[[name, value],
    ...]`` pair lists (the sched-style grouped keys), and bare scalars.
    """
    if isinstance(key, list):
        if key and all(
            isinstance(p, list) and len(p) == 2 and isinstance(p[0], str)
            for p in key
        ):
            return {name: value for name, value in key}
        if axes is not None and len(key) == len(axes):
            return dict(zip(axes, key))
        return {f"axis{i}": v for i, v in enumerate(key)}
    return {"key": key}


class SnapshotQuery:
    """Typed queries over one validated (preset, aggregate) pair."""

    def __init__(self, preset: PresetSpec, aggregator: Aggregator):
        self.preset = preset
        self.aggregator = aggregator

    # -- constructors ------------------------------------------------------

    @classmethod
    def from_aggregator(
        cls, preset: "PresetSpec | str", aggregator: Aggregator
    ) -> "SnapshotQuery":
        """Wrap a live aggregator (the ``repro campaign`` render path)."""
        if isinstance(preset, str):
            preset = get_preset(preset)
        return cls(preset, aggregator)

    @classmethod
    def from_snapshot(
        cls,
        snap: Mapping[str, Any],
        preset: "PresetSpec | str",
        *,
        where: Any = "snapshot",
    ) -> "SnapshotQuery":
        """Validate a parsed snapshot against ``preset`` and load its state.

        Refuses (with :class:`QueryError`) a snapshot whose aggregate was
        not built by this preset — the config digest fingerprints the
        metric shapes, so mis-renderings are impossible rather than merely
        unlikely. Newer-minor snapshots warn and proceed (see
        :func:`repro.runner.stream.check_snapshot_compat`).
        """
        if isinstance(preset, str):
            preset = get_preset(preset)
        if not isinstance(snap, Mapping):
            raise QueryError(f"{where} is not a snapshot object")
        check_snapshot_compat(snap, where, error=QueryError)
        aggregator = preset.aggregator()
        if snap.get("config") != aggregator.config_digest:
            raise QueryError(
                f"snapshots were not built by the {preset.name!r} preset's "
                f"aggregate (config digest mismatch)"
            )
        try:
            aggregator.load_state(snap["aggregate"])
        except (KeyError, TypeError, ValueError) as exc:
            raise QueryError(
                f"{where} has a malformed aggregate state: {exc}"
            ) from None
        return cls(preset, aggregator)

    @classmethod
    def from_file(
        cls, path: "str | os.PathLike", preset: "PresetSpec | str"
    ) -> "SnapshotQuery":
        """Load and validate a snapshot file."""
        path = Path(path)
        try:
            snap = json.loads(path.read_text())
        except OSError as exc:
            raise QueryError(f"cannot read snapshot {path}: {exc}") from None
        except ValueError as exc:
            raise QueryError(
                f"snapshot {path} is not valid JSON: {exc}"
            ) from None
        return cls.from_snapshot(snap, preset, where=path)

    # -- identity ----------------------------------------------------------

    @property
    def content_digest(self) -> str:
        """SHA-256 over (preset, aggregate config, aggregate state).

        Two queries answer identically iff their digests match, so this is
        the cache key prefix for every derived response.
        """
        payload = {
            "preset": self.preset.name,
            "config": self.aggregator.config_digest,
            "aggregate": self.aggregator.state_dict(),
        }
        return hashlib.sha256(
            canonical_json(payload).encode("utf-8")
        ).hexdigest()

    # -- queries -----------------------------------------------------------

    def metrics(self) -> list[dict[str, Any]]:
        """Name + accumulator kind of every metric in the aggregate."""
        return [
            {"name": m.name, "kind": m.acc.kind}
            for m in self.aggregator.metrics
        ]

    def summary(self) -> dict[str, Any]:
        """The aggregate's scalar summary (exact accumulator summaries)."""
        return self.aggregator.summary()

    def curve(self, metric: str, axis: "str | None" = None) -> dict[str, Any]:
        """A curve metric's bins, optionally pivoted over one named axis.

        Without ``axis``: every bin as ``{"key": {axis: value, ...},
        "value": <sub-accumulator summary>}`` in canonical key order. With
        ``axis``: bins grouped into series by the remaining key axes, each
        series' points ordered by the grouped key — the shape a plotting
        client consumes directly.
        """
        acc = self._metric(metric)
        if not isinstance(acc, CurveAccumulator):
            raise QueryError(
                f"metric {metric!r} is {acc.kind!r}, not a curve"
            )
        axes = self.preset.curve_axes.get(metric)
        points = [
            {"key": _parse_curve_key(key, axes), "value": sub.summary()}
            for key, sub in acc.items()
        ]
        if axis is None:
            return {"metric": metric, "points": points}
        series: dict[str, dict[str, Any]] = {}
        for pt in points:
            if axis not in pt["key"]:
                raise QueryError(
                    f"curve {metric!r} has no axis {axis!r} "
                    f"(axes: {'/'.join(sorted(pt['key']))})"
                )
            rest = {k: v for k, v in pt["key"].items() if k != axis}
            group = canonical_json(rest)
            series.setdefault(group, {"key": rest, "points": []})[
                "points"
            ].append([pt["key"][axis], pt["value"]])
        return {
            "metric": metric,
            "axis": axis,
            "series": [series[g] for g in sorted(series)],
        }

    def categorical(self, metric: str) -> dict[str, Any]:
        """An outcome taxonomy with Wilson 95% confidence intervals.

        Accepts a plain categorical metric or a curve of categorical bins
        (the faultspace ``outcomes`` shape); each taxonomy reports exact
        per-category counts and rates plus the Wilson interval of each
        rate.
        """
        acc = self._metric(metric)
        if isinstance(acc, CategoricalCountAccumulator):
            return {"metric": metric, "taxonomy": _taxonomy(acc)}
        if isinstance(acc, CurveAccumulator):
            axes = self.preset.curve_axes.get(metric)
            bins = []
            for key, sub in acc.items():
                if not isinstance(sub, CategoricalCountAccumulator):
                    raise QueryError(
                        f"curve {metric!r} bins are {sub.kind!r}, not "
                        f"categorical"
                    )
                bins.append(
                    {
                        "key": _parse_curve_key(key, axes),
                        "taxonomy": _taxonomy(sub),
                    }
                )
            return {"metric": metric, "bins": bins}
        raise QueryError(
            f"metric {metric!r} is {acc.kind!r}, not categorical"
        )

    def report(self) -> str:
        """The preset's rendered report — the exact text ``repro campaign``
        prints from the same aggregate state (summary fallback for
        row-rendered presets, whose per-point tables are not in snapshots).
        """
        rendered = self.preset.render(self.aggregator)
        if rendered is None:
            rendered = render_summary(self.aggregator)
        return rendered

    def query(self, kind: str, **params: Any) -> Any:
        """Dispatch a named query (the HTTP endpoint surface)."""
        if kind == "summary":
            return self.summary()
        if kind == "metrics":
            return self.metrics()
        if kind == "report":
            return self.report()
        if kind == "curve":
            return self.curve(
                self._required(params, "metric"), params.get("axis")
            )
        if kind == "categorical":
            return self.categorical(self._required(params, "metric"))
        raise QueryError(
            f"unknown query kind {kind!r}; known: "
            f"summary/metrics/report/curve/categorical"
        )

    # -- internals ---------------------------------------------------------

    def _metric(self, name: str) -> Any:
        try:
            return self.aggregator[name]
        except KeyError:
            known = "/".join(m.name for m in self.aggregator.metrics)
            raise QueryError(
                f"unknown metric {name!r}; known: {known}"
            ) from None

    @staticmethod
    def _required(params: Mapping[str, Any], key: str) -> Any:
        value = params.get(key)
        if value is None:
            raise QueryError(f"query needs a {key!r} parameter")
        return value


def _taxonomy(acc: CategoricalCountAccumulator) -> dict[str, Any]:
    from repro.dependability.taxonomy import wilson_interval

    total = acc.total
    categories = {}
    for name in sorted(acc.counts):
        count = acc.counts[name]
        entry: dict[str, Any] = {"count": count, "rate": acc.rate(name)}
        ci = wilson_interval(count, total)
        if ci is not None:
            entry["ci95"] = [ci[0], ci[1]]
        categories[name] = entry
    return {"total": total, "categories": categories}


class QueryCache:
    """Content-addressed memo of rendered query responses.

    Keys are ``(aggregate content digest, canonical query)``: the digest
    pins the *state* the answer was computed from, so overlapping jobs —
    or a re-submitted identical campaign — reuse each other's answers, and
    a still-folding aggregate can never serve stale bytes (its digest
    changes with every fold). Thread-safe; the server shares one instance
    across all connections.
    """

    def __init__(self, max_entries: int = 1024):
        self.max_entries = max_entries
        self.hits = 0
        self.misses = 0
        self._lock = threading.Lock()
        self._entries: dict[tuple[str, str], bytes] = {}

    @staticmethod
    def key(content_digest: str, kind: str, **params: Any) -> tuple[str, str]:
        query = canonical_json(
            {"kind": kind, "params": {k: v for k, v in params.items() if v is not None}}
        )
        return (content_digest, query)

    def get(self, key: tuple[str, str]) -> "bytes | None":
        with self._lock:
            value = self._entries.get(key)
            if value is None:
                self.misses += 1
            else:
                self.hits += 1
            return value

    def put(self, key: tuple[str, str], value: bytes) -> None:
        with self._lock:
            if key not in self._entries and len(self._entries) >= self.max_entries:
                # Drop the oldest entry (insertion order); good enough for
                # a bounded memo — correctness never depends on retention.
                self._entries.pop(next(iter(self._entries)))
            self._entries[key] = value

    def stats(self) -> dict[str, int]:
        with self._lock:
            return {
                "entries": len(self._entries),
                "hits": self.hits,
                "misses": self.misses,
            }


__all__ = [
    "QueryCache",
    "QueryError",
    "SnapshotQuery",
    "render_summary",
]
