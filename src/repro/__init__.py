"""repro — reproduction of Cirinei, Bini, Lipari & Ferrari (IPPS 2007).

*A Flexible Scheme for Scheduling Fault-Tolerant Real-Time Tasks on
Multiprocessors.*

The library covers the full pipeline of the paper:

1. model sporadic tasks with FT / FS / NF fault-robustness modes
   (:mod:`repro.model`);
2. analyse schedulability inside periodic time partitions with hierarchical
   scheduling theory (:mod:`repro.analysis`, :mod:`repro.supply`);
3. invert the analysis into minimum quanta and the feasible-period region,
   and design the platform for a goal (:mod:`repro.core`);
4. validate designs on a discrete-event model of the 4-core lock-step
   platform, with fault injection (:mod:`repro.platform`, :mod:`repro.sim`,
   :mod:`repro.faults`);
5. compare against static lock-step and primary/backup baselines
   (:mod:`repro.baselines`).

Quickstart
----------
>>> from repro import paper_partition, Overheads, design_platform
>>> config = design_platform(paper_partition(), "EDF", Overheads.uniform(0.05))
>>> round(config.period, 3)
2.966
"""

from repro.core import (
    AdmissionController,
    FeasibleRegion,
    FixedPeriodGoal,
    MaxSlackGoal,
    MinOverheadBandwidthGoal,
    Overheads,
    PlatformConfig,
    SlotSchedule,
    design_platform,
    min_quantum,
    min_quantum_exact,
)
from repro.experiments import paper_partition, paper_taskset
from repro.model import Job, Mode, PartitionedTaskSet, Task, TaskSet

__version__ = "1.0.0"

__all__ = [
    "Task",
    "TaskSet",
    "Mode",
    "Job",
    "PartitionedTaskSet",
    "min_quantum",
    "min_quantum_exact",
    "FeasibleRegion",
    "Overheads",
    "SlotSchedule",
    "PlatformConfig",
    "design_platform",
    "MinOverheadBandwidthGoal",
    "MaxSlackGoal",
    "FixedPeriodGoal",
    "AdmissionController",
    "paper_taskset",
    "paper_partition",
    "__version__",
]
