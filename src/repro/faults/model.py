"""Fault events, outcomes and generators.

A :class:`Fault` is one transient soft error striking one physical core at
one instant. Outcomes depend on what the platform was doing at that instant
(Section 2.2 / 2.4):

* FT slot → ``MASKED`` (majority vote);
* FS slot → ``SILENCED`` (mismatch detected, channel blocked; the running
  job, if any, is killed — fail-silent);
* NF slot → ``CORRUPTED`` when a job was running (silent data corruption),
  ``HARMLESS`` when the core was idle;
* overhead / idle-reserve time → ``HARMLESS`` (no application output can be
  affected; platform state is re-synchronised at the next switch anyway).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Iterable, Sequence

import numpy as np

from repro.model import Mode
from repro.util import check_core_count, check_nonneg, check_positive


class FaultOutcome(enum.Enum):
    """Application-level consequence of one injected fault."""

    MASKED = "masked"
    SILENCED = "silenced"
    CORRUPTED = "corrupted"
    HARMLESS = "harmless"

    def __str__(self) -> str:  # pragma: no cover - trivial
        return self.value


@dataclass(frozen=True)
class Fault:
    """A transient soft error on one core at one instant.

    ``core_count`` is the platform size the strike is validated against
    (``0 <= core < core_count``); it defaults to the paper's 4-core chip and
    is excluded from equality so fault streams compare by (time, core) only.
    """

    time: float
    core: int
    core_count: int = field(default=4, compare=False, repr=False)

    def __post_init__(self) -> None:
        check_nonneg("fault time", self.time)
        check_core_count(self.core_count)
        if not 0 <= self.core < self.core_count:
            raise ValueError(
                f"core must be 0..{self.core_count - 1}: got {self.core}"
            )


@dataclass(frozen=True)
class FaultRecord:
    """A fault together with its simulated consequence.

    ``victim`` is the job name whose output was corrupted (NF) or which was
    aborted (FS); None when the fault hit idle time.
    """

    fault: Fault
    outcome: FaultOutcome
    mode: Mode | None
    processor: str | None
    victim: str | None = None
    detail: str = ""


def deterministic_faults(
    times_and_cores: Iterable[tuple[float, int]],
    *,
    core_count: int = 4,
) -> list[Fault]:
    """Build a fault list from explicit ``(time, core)`` pairs."""
    return [Fault(t, c, core_count) for t, c in times_and_cores]


class PoissonFaultGenerator:
    """Homogeneous Poisson soft-error arrivals with a minimum separation.

    Parameters
    ----------
    rate:
        Expected faults per unit time (across the whole chip).
    min_separation:
        Faults closer than this to their predecessor are dropped, enforcing
        the paper's single-transient-fault assumption ("time between two
        failures is sufficient to perform simple recovery operations").
    core_count:
        Cores the strikes are drawn over (the platform's actual size;
        default 4 — the paper's chip).
    """

    def __init__(
        self,
        rate: float,
        *,
        min_separation: float = 0.0,
        core_count: int = 4,
    ):
        check_positive("rate", rate)
        check_nonneg("min_separation", min_separation)
        self.rate = float(rate)
        self.min_separation = float(min_separation)
        self.core_count = check_core_count(core_count)

    def generate(
        self, horizon: float, rng: np.random.Generator
    ) -> list[Fault]:
        """Draw the fault arrivals in ``[0, horizon)``.

        Each fault strikes a uniformly random core (a particle strike hits
        one core only — Section 2.1).
        """
        check_positive("horizon", horizon)
        faults: list[Fault] = []
        t = 0.0
        last = -float("inf")
        while True:
            t += rng.exponential(1.0 / self.rate)
            if t >= horizon:
                break
            if t - last < self.min_separation:
                continue
            last = t
            faults.append(
                Fault(t, int(rng.integers(0, self.core_count)), self.core_count)
            )
        return faults
