"""Soft-error fault modelling and injection (Section 2.1).

The paper's fault model: transient single faults (alpha particles and
similar) that hit exactly one core, separated widely enough that at most one
fault is active at a time. This package provides:

* :mod:`repro.faults.model` — :class:`Fault` events, outcome taxonomy, and
  generators (deterministic lists and Poisson processes with a minimum
  separation enforcing the single-fault assumption);
* :mod:`repro.faults.injection` — campaign driver running the multicore
  simulator under injected faults and aggregating per-mode outcome
  statistics.
"""

from repro.faults.injection import FaultCampaign, FaultCampaignResult, run_campaign
from repro.faults.model import (
    Fault,
    FaultOutcome,
    FaultRecord,
    PoissonFaultGenerator,
    deterministic_faults,
)

__all__ = [
    "Fault",
    "FaultOutcome",
    "FaultRecord",
    "PoissonFaultGenerator",
    "deterministic_faults",
    "FaultCampaign",
    "FaultCampaignResult",
    "run_campaign",
]
