"""Fault-injection campaigns over the multicore simulator.

A campaign runs the platform simulation under a stream of injected soft
errors and aggregates what the paper's Section 2.2 promises qualitatively:

* faults landing in FT slots are always masked — FT tasks never miss
  deadlines nor produce wrong results;
* faults landing in FS slots are always detected and silenced — no wrong
  output propagates (jobs may be killed; that is the fail-silent contract);
* faults landing in NF slots may silently corrupt whatever was running;
* faults landing in overhead/idle time are harmless.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Iterable

import numpy as np

from repro.core.config import PlatformConfig
from repro.faults.model import Fault, FaultOutcome, FaultRecord, PoissonFaultGenerator
from repro.model import Mode, PartitionedTaskSet
from repro.util import check_positive

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (sim imports faults.model)
    from repro.dependability.scenarios import FaultScenario
    from repro.sim.multicore import MulticoreResult


@dataclass(frozen=True)
class FaultCampaignResult:
    """Aggregated statistics of one fault-injection campaign."""

    injected: int
    outcomes: dict[FaultOutcome, int]
    outcomes_by_mode: dict[Mode | None, dict[FaultOutcome, int]]
    corrupted_jobs: tuple[str, ...]
    aborted_jobs: tuple[str, ...]
    ft_misses: int
    total_misses: int
    records: tuple[FaultRecord, ...]
    simulation: MulticoreResult

    def rate(self, outcome: FaultOutcome) -> float | None:
        """Fraction of injected faults with the given outcome.

        ``None`` when nothing was injected — an empty campaign has no
        outcome rates, and reporting ``0.0`` would make it look like a
        perfect (fault-free) run.
        """
        if self.injected == 0:
            return None
        return self.outcomes.get(outcome, 0) / self.injected

    def summary(self) -> str:
        """Readable multi-line campaign summary."""
        lines = [f"faults injected : {self.injected}"]
        for outcome in FaultOutcome:
            share = self.rate(outcome)
            lines.append(
                f"  {str(outcome):<10}: {self.outcomes.get(outcome, 0):>5} "
                + (f"({share * 100:5.1f}%)" if share is not None else "(  n/a )")
            )
        lines.append(f"corrupted jobs  : {len(self.corrupted_jobs)}")
        lines.append(f"aborted jobs    : {len(self.aborted_jobs)}")
        lines.append(f"deadline misses : {self.total_misses} (FT: {self.ft_misses})")
        return "\n".join(lines)


@dataclass
class FaultCampaign:
    """A reproducible fault-injection experiment.

    Parameters
    ----------
    partition / config:
        The deployed design to attack.
    rate:
        Poisson fault rate (faults per time unit); ignored when explicit
        ``faults`` are passed to :meth:`run` or a ``scenario`` is set.
    min_separation:
        Single-fault-assumption spacing (defaults to one platform period, a
        conservative reading of "time to perform simple recovery").
    scenario:
        Optional :class:`~repro.dependability.scenarios.FaultScenario`
        generating the fault stream instead of the default Poisson process
        (bursty, correlated, intermittent, permanent — see
        :mod:`repro.dependability`). The scenario draws strikes over the
        config's ``core_count`` cores.
    """

    partition: PartitionedTaskSet
    config: PlatformConfig
    rate: float = 0.01
    min_separation: float | None = None
    scenario: "FaultScenario | None" = None

    def run(
        self,
        *,
        horizon: float | None = None,
        faults: Iterable[Fault] | None = None,
        seed: int | np.random.SeedSequence = 0,
    ) -> FaultCampaignResult:
        """Run the campaign (explicit fault list or Poisson generation).

        ``seed`` is anything :func:`numpy.random.default_rng` accepts — the
        campaign runner passes a spawned :class:`~numpy.random.SeedSequence`
        so fault streams stay deterministic under parallel fan-out.
        """
        from repro.sim.multicore import MulticoreSim  # deferred: cycle guard

        sim = MulticoreSim(self.partition, self.config)
        horizon = horizon if horizon is not None else sim.default_horizon()
        check_positive("horizon", horizon)
        if faults is None:
            rng = np.random.default_rng(seed)
            if self.scenario is not None:
                faults = self.scenario.generate(
                    horizon, rng, core_count=self.config.core_count
                )
            else:
                sep = (
                    self.min_separation
                    if self.min_separation is not None
                    else self.config.period
                )
                gen = PoissonFaultGenerator(
                    self.rate,
                    min_separation=sep,
                    core_count=self.config.core_count,
                )
                faults = gen.generate(horizon, rng)
        # Materialize once: a one-shot iterable would be drained by the sim,
        # leaving the injected count at 0.
        fault_list = list(faults)
        result = sim.run(horizon, faults=fault_list)
        return _aggregate(result, len(fault_list))


def run_campaign(
    partition: PartitionedTaskSet,
    config: PlatformConfig,
    *,
    rate: float = 0.01,
    horizon: float | None = None,
    seed: int = 0,
) -> FaultCampaignResult:
    """One-call Poisson fault campaign (see :class:`FaultCampaign`)."""
    return FaultCampaign(partition, config, rate=rate).run(horizon=horizon, seed=seed)


def _aggregate(result: MulticoreResult, injected: int) -> FaultCampaignResult:
    outcomes: dict[FaultOutcome, int] = {o: 0 for o in FaultOutcome}
    by_mode: dict[Mode | None, dict[FaultOutcome, int]] = {}
    for rec in result.fault_records:
        outcomes[rec.outcome] += 1
        slot = by_mode.setdefault(rec.mode, {o: 0 for o in FaultOutcome})
        slot[rec.outcome] += 1
    ft_misses = sum(
        1 for e in result.misses if e.who.split("#")[0] in _ft_tasks(result)
    )
    return FaultCampaignResult(
        injected=injected,
        outcomes=outcomes,
        outcomes_by_mode=by_mode,
        corrupted_jobs=tuple(result.corrupted_jobs()),
        aborted_jobs=tuple(result.aborted_jobs()),
        ft_misses=ft_misses,
        total_misses=result.miss_count,
        records=tuple(result.fault_records),
        simulation=result,
    )


def _ft_tasks(result: MulticoreResult) -> set[str]:
    names: set[str] = set()
    for key, res in result.processors.items():
        if key.startswith("FT"):
            names.update(j.task.name for j in res.jobs)
    return names
