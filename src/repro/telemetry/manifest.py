"""The per-run ``run-manifest.json``: one JSON document describing a run.

The manifest is the machine-readable sibling of the stats line
``repro campaign`` prints: configuration digest and seed (what ran),
wall/CPU breakdown by phase (where time went), cache hit ratio and kernel
fast share (how well the fast paths engaged), and the content digest of
the aggregate the run produced (what came out). It is derived purely from
the telemetry recorder and the finished stats — never fed back into any
accumulator — so writing it cannot perturb the byte-identity contract.
"""

from __future__ import annotations

import hashlib
import json
from pathlib import Path
from typing import Any, Mapping

#: Bump when the manifest layout changes.
MANIFEST_SCHEMA = 1


def _ratio(hits: int, total: int) -> "float | None":
    return (hits / total) if total > 0 else None


def build_manifest(
    telemetry: "Any",
    *,
    stats: "Mapping[str, Any] | None" = None,
    config: "Mapping[str, Any] | None" = None,
    aggregate_json: "str | None" = None,
    error: "str | None" = None,
) -> dict[str, Any]:
    """Assemble the manifest dict from a recorder and run metadata.

    ``telemetry`` is a :class:`repro.telemetry.core.Telemetry`;
    ``stats`` is the campaign's ``StreamStats.to_dict()`` (absent when the
    run failed before producing stats); ``config`` carries caller-provided
    run identity (preset, seed, axes, workers, ...); ``aggregate_json`` is
    the canonical aggregate snapshot text, digested — not embedded — so the
    manifest can vouch for the run's output without duplicating it.
    """
    export = telemetry.export()
    counters: dict[str, int] = export["counters"]

    cache_hits = counters.get("cache.hit", 0)
    cache_misses = counters.get("cache.miss", 0)
    kernel_fast = counters.get("kernels.fast", 0)
    kernel_fallback = counters.get("kernels.fallback", 0)

    phases = {
        path: {"count": n, "wall_seconds": total}
        for path, (n, total) in sorted(export["phases"].items())
    }

    manifest: dict[str, Any] = {
        "schema": MANIFEST_SCHEMA,
        "config": dict(config or {}),
        "wall_seconds": export["wall_seconds"],
        "cpu_seconds": export["cpu_seconds"],
        "phases": phases,
        "counters": dict(sorted(counters.items())),
        "gauges": dict(sorted(export["gauges"].items())),
        "cache": {
            "hits": cache_hits,
            "misses": cache_misses,
            "hit_ratio": _ratio(cache_hits, cache_hits + cache_misses),
        },
        "kernels": {
            "fast": kernel_fast,
            "fallback": kernel_fallback,
            "fast_share": _ratio(kernel_fast, kernel_fast + kernel_fallback),
        },
    }
    if stats is not None:
        manifest["stats"] = dict(stats)
    if aggregate_json is not None:
        manifest["aggregate_digest"] = hashlib.sha256(
            aggregate_json.encode("utf-8")
        ).hexdigest()
    if error is not None:
        manifest["error"] = error
    return manifest


def write_manifest(path: "str | Path", manifest: Mapping[str, Any]) -> Path:
    """Atomically write the manifest (sorted keys, trailing newline)."""
    from ..runner.cache import atomic_write_text

    target = Path(path)
    target.parent.mkdir(parents=True, exist_ok=True)
    atomic_write_text(target, json.dumps(manifest, sort_keys=True, indent=2) + "\n")
    return target


__all__ = ["MANIFEST_SCHEMA", "build_manifest", "write_manifest"]
