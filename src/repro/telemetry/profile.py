"""Offline trace analysis: ``repro profile <trace>``.

Reads the NDJSON trace a campaign wrote with ``--telemetry`` and renders
an ascii top-phase / flame view: every span path with its call count,
total wall seconds, and share of the root span, drawn as an indented tree
(children grouped under their parent path) with per-line bars. Coverage —
the fraction of the root span's wall time accounted for by its direct
children — is computed so CI can assert the instrumentation actually
explains where the time went (the ISSUE's >= 95% acceptance gate).
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Iterable, Mapping


@dataclass
class TraceProfile:
    """Aggregated view of one trace: phase totals plus meta/summary lines."""

    meta: dict[str, Any] = field(default_factory=dict)
    summary: dict[str, Any] = field(default_factory=dict)
    #: span path -> [count, total wall seconds]
    phases: dict[str, list[float]] = field(default_factory=dict)
    span_records: int = 0

    @property
    def root_path(self) -> "str | None":
        """The shallowest recorded path (fewest ``/`` segments, then longest wall)."""
        if not self.phases:
            return None
        return min(
            self.phases,
            key=lambda p: (p.count("/"), -self.phases[p][1]),
        )

    def wall(self, path: str) -> float:
        slot = self.phases.get(path)
        return float(slot[1]) if slot else 0.0

    def children(self, path: str) -> list[str]:
        """Direct children of ``path``, longest wall time first."""
        prefix = path + "/"
        kids = [
            p
            for p in self.phases
            if p.startswith(prefix) and "/" not in p[len(prefix) :]
        ]
        return sorted(kids, key=lambda p: -self.phases[p][1])

    def coverage(self, path: "str | None" = None) -> "float | None":
        """Fraction of ``path``'s wall time covered by its direct children.

        ``None`` when the trace has no spans or the root took no measurable
        time. A root with no children counts as fully covered — all of its
        time is attributed to itself, there is nothing unexplained.
        """
        root = path if path is not None else self.root_path
        if root is None:
            return None
        total = self.wall(root)
        if total <= 0.0:
            return None
        kids = self.children(root)
        if not kids:
            return 1.0
        return min(1.0, sum(self.wall(k) for k in kids) / total)


def load_trace(path: "str | Path") -> TraceProfile:
    """Parse a trace NDJSON file (or a directory containing ``trace.ndjson``).

    Span records are aggregated by path; a trailing ``summary`` record, when
    present, is preferred for phase totals because it also contains phases
    absorbed from pool workers (which never appear as parent-side span
    lines). Malformed lines are skipped — a truncated trace still profiles.
    """
    target = Path(path)
    if target.is_dir():
        target = target / "trace.ndjson"
    profile = TraceProfile()
    from_spans: dict[str, list[float]] = {}
    with target.open() as handle:
        for line in handle:
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except ValueError:
                continue
            kind = record.get("type")
            if kind == "meta":
                profile.meta = record
            elif kind == "span":
                profile.span_records += 1
                slot = from_spans.setdefault(record.get("path", "?"), [0, 0.0])
                slot[0] += 1
                slot[1] += float(record.get("dur", 0.0))
            elif kind == "summary":
                profile.summary = record
    summary_phases = profile.summary.get("phases")
    if summary_phases:
        profile.phases = {
            path: [int(slot[0]), float(slot[1])]
            for path, slot in summary_phases.items()
        }
    else:
        profile.phases = from_spans
    return profile


def _bar(share: float, width: int = 24) -> str:
    filled = int(round(max(0.0, min(1.0, share)) * width))
    return "#" * filled + "." * (width - filled)


def _render_subtree(
    profile: TraceProfile,
    path: str,
    root_wall: float,
    depth: int,
    lines: list[str],
) -> None:
    count, total = profile.phases[path]
    share = (total / root_wall) if root_wall > 0 else 0.0
    name = path.rsplit("/", 1)[-1] if depth else path
    lines.append(
        f"{share * 100:6.1f}%  {total:10.3f}s  {int(count):>8}  "
        f"{_bar(share)}  {'  ' * depth}{name}"
    )
    for child in profile.children(path):
        _render_subtree(profile, child, root_wall, depth + 1, lines)


def render_profile(profile: TraceProfile, *, top: int = 40) -> str:
    """Ascii phase breakdown: tree under the root plus a flat top list."""
    lines: list[str] = []
    meta_bits = [
        f"{key}={profile.meta[key]}"
        for key in ("preset", "seed", "run")
        if key in profile.meta
    ]
    if meta_bits:
        lines.append("trace: " + " ".join(meta_bits))
    root = profile.root_path
    if root is None:
        lines.append("(no spans recorded)")
        return "\n".join(lines)

    root_wall = profile.wall(root)
    wall_seconds = profile.summary.get("wall_seconds")
    header = f"root span: {root} ({root_wall:.3f}s"
    if isinstance(wall_seconds, (int, float)):
        header += f" of {wall_seconds:.3f}s run"
    header += ")"
    coverage = profile.coverage()
    if coverage is not None:
        header += f"  coverage: {coverage * 100:.1f}%"
    lines.append(header)
    lines.append("")
    lines.append(f"{'share':>7}  {'wall':>11}  {'count':>8}  {'':24}  phase")
    _render_subtree(profile, root, root_wall, 0, lines)

    others = sorted(
        (p for p in profile.phases if p != root and not p.startswith(root + "/")),
        key=lambda p: -profile.phases[p][1],
    )
    if others:
        lines.append("")
        lines.append("outside the root span:")
        for path in others[:top]:
            count, total = profile.phases[path]
            share = (total / root_wall) if root_wall > 0 else 0.0
            lines.append(
                f"{share * 100:6.1f}%  {total:10.3f}s  {int(count):>8}  "
                f"{_bar(share)}  {path}"
            )
    return "\n".join(lines)


def profile_paths(directory: "str | Path") -> "Iterable[Path]":
    """All ``trace.ndjson`` files under ``directory`` (sorted)."""
    return sorted(Path(directory).rglob("trace.ndjson"))


def manifest_summary(manifest: Mapping[str, Any]) -> str:
    """One-line digest of a run manifest for the profile footer."""
    bits: list[str] = []
    cache = manifest.get("cache") or {}
    if cache.get("hit_ratio") is not None:
        bits.append(f"cache hit {cache['hit_ratio'] * 100:.1f}%")
    kernels = manifest.get("kernels") or {}
    if kernels.get("fast_share") is not None:
        bits.append(f"kernel fast {kernels['fast_share'] * 100:.1f}%")
    if "cpu_seconds" in manifest:
        bits.append(f"cpu {manifest['cpu_seconds']:.3f}s")
    if "wall_seconds" in manifest:
        bits.append(f"wall {manifest['wall_seconds']:.3f}s")
    if manifest.get("error"):
        bits.append(f"error: {manifest['error']}")
    return "  ".join(bits)


__all__ = [
    "TraceProfile",
    "load_trace",
    "manifest_summary",
    "profile_paths",
    "render_profile",
]
