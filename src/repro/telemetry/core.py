"""Hierarchical spans, counters and gauges with an O(1) disabled path.

The telemetry layer answers "where did this run spend its time?" without
ever touching what the run *computes*: recorders hold wall-clock spans
(``time.perf_counter``), exact integer counters and last-value gauges, and
none of that state is readable by the engine, the accumulators, or the
snapshot writer. Campaign snapshots are therefore byte-identical with
telemetry enabled or disabled — the contract CI enforces with ``cmp``.

Activation is **thread-local**: :func:`activate` installs a
:class:`Telemetry` recorder for the current thread only, so two server
jobs folding on different threads never cross-contaminate, and the module
level helpers (:func:`count`, :func:`gauge`, :func:`span`) are safe to
sprinkle through hot paths — with no recorder active they are a single
thread-local read followed by a ``None`` check, and :func:`span` returns a
shared no-op context manager without allocating.

Pool workers are separate processes: the engine passes an "enable
telemetry" flag in the batch payload, each worker records into a private
collector, and the per-batch :meth:`Telemetry.export` delta ships back
with the batch results to be :meth:`Telemetry.absorb`-ed into the parent
recorder under the ``worker/`` prefix — the same pattern the fast-kernel
counters established.

Span paths are ``/``-joined from the enclosing span stack, so
``with span("campaign"): with span("execute"): ...`` records the inner
time under ``campaign/execute``. When a :class:`TraceSink` is attached,
every finished span is also appended to the run's NDJSON trace.
"""

from __future__ import annotations

import json
import threading
import time
from pathlib import Path
from typing import Any, Mapping, TextIO

#: Bump when the NDJSON trace record layout changes.
TRACE_SCHEMA = 1

_local = threading.local()


def active() -> "Telemetry | None":
    """The recorder installed for this thread, or None (disabled)."""
    return getattr(_local, "telemetry", None)


def enabled() -> bool:
    """Whether any recorder is active on this thread."""
    return getattr(_local, "telemetry", None) is not None


def activate(telemetry: "Telemetry | None") -> "Telemetry | None":
    """Install ``telemetry`` for this thread; returns the previous recorder."""
    previous = getattr(_local, "telemetry", None)
    _local.telemetry = telemetry
    return previous


class activated:
    """Context manager installing a recorder for the enclosed block."""

    def __init__(self, telemetry: "Telemetry | None"):
        self._telemetry = telemetry
        self._previous: "Telemetry | None" = None

    def __enter__(self) -> "Telemetry | None":
        self._previous = activate(self._telemetry)
        return self._telemetry

    def __exit__(self, *exc: object) -> None:
        activate(self._previous)


def count(name: str, n: int = 1) -> None:
    """Add ``n`` to counter ``name`` on the active recorder (no-op if none)."""
    t = getattr(_local, "telemetry", None)
    if t is not None:
        t.count(name, n)


def gauge(name: str, value: float) -> None:
    """Set gauge ``name`` on the active recorder (no-op if none)."""
    t = getattr(_local, "telemetry", None)
    if t is not None:
        t.gauge(name, value)


class _NullSpan:
    """Shared allocation-free span used while telemetry is disabled."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc: object) -> bool:
        return False


NULL_SPAN = _NullSpan()


def span(name: str, **attrs: Any) -> "Any":
    """A timed span on the active recorder; the shared no-op when disabled."""
    t = getattr(_local, "telemetry", None)
    if t is None:
        return NULL_SPAN
    return _Span(t, name, attrs)


class _Span:
    """One live span: pushes its name on enter, records duration on exit."""

    __slots__ = ("_telemetry", "_name", "_attrs", "_start")

    def __init__(self, telemetry: "Telemetry", name: str, attrs: dict[str, Any]):
        self._telemetry = telemetry
        self._name = name
        self._attrs = attrs
        self._start = 0.0

    def __enter__(self) -> "_Span":
        self._telemetry._stack.append(self._name)
        self._start = time.perf_counter()
        return self

    def __exit__(self, *exc: object) -> bool:
        end = time.perf_counter()
        stack = self._telemetry._stack
        path = "/".join(stack)
        stack.pop()
        self._telemetry._finish(path, self._start, end - self._start, self._attrs)
        return False


def _copy_mapping(source: Mapping[str, Any]) -> dict[str, Any]:
    """Snapshot a dict that another thread may be growing.

    Recorders are single-writer (the thread they are activated on) but may
    be *read* from other threads (the server's ``/metrics`` endpoints), and
    copying a dict mid-insert can raise ``RuntimeError``. A short retry is
    all that is needed — inserts are rare relative to reads.
    """
    for _ in range(8):
        try:
            return dict(source)
        except RuntimeError:
            continue
    return dict(source)  # last attempt; propagate if it still races


class Telemetry:
    """One run's recorder: counters, gauges, and span phase totals.

    ``phases`` maps span *paths* to ``[count, total_seconds]``; the path is
    the ``/``-joined stack of enclosing span names, so the mapping is a
    collapsed flame graph of the run. Worker-collector exports fold in via
    :meth:`absorb` under a prefix, keeping parallel CPU time separate from
    the parent's wall-clock phases.
    """

    def __init__(self, sink: "TraceSink | None" = None):
        self._t0 = time.perf_counter()
        self._cpu0 = time.process_time()
        self.counters: dict[str, int] = {}
        self.gauges: dict[str, float] = {}
        self.phases: dict[str, list[float]] = {}
        self._stack: list[str] = []
        self._sink = sink
        #: CPU seconds absorbed from worker-process collectors.
        self.worker_cpu: float = 0.0

    # -- recording (single writer thread) ----------------------------------

    def count(self, name: str, n: int = 1) -> None:
        self.counters[name] = self.counters.get(name, 0) + n

    def gauge(self, name: str, value: float) -> None:
        self.gauges[name] = float(value)

    def span(self, name: str, **attrs: Any) -> _Span:
        return _Span(self, name, attrs)

    def _finish(
        self, path: str, started: float, duration: float, attrs: dict[str, Any]
    ) -> None:
        slot = self.phases.get(path)
        if slot is None:
            self.phases[path] = [1, duration]
        else:
            slot[0] += 1
            slot[1] += duration
        if self._sink is not None:
            self._sink.span(path, started - self._t0, duration, attrs)

    def absorb(self, delta: Mapping[str, Any], prefix: str = "worker") -> None:
        """Fold a worker collector's :meth:`export` into this recorder."""
        for name, n in delta.get("counters", {}).items():
            self.count(name, n)
        for path, (n, total) in delta.get("phases", {}).items():
            key = f"{prefix}/{path}" if prefix else path
            slot = self.phases.get(key)
            if slot is None:
                self.phases[key] = [n, total]
            else:
                slot[0] += n
                slot[1] += total
        for name, value in delta.get("gauges", {}).items():
            self.gauge(name, value)
        self.worker_cpu += float(delta.get("cpu_seconds", 0.0))

    # -- reading (any thread) ----------------------------------------------

    @property
    def wall_seconds(self) -> float:
        """Wall-clock seconds since the recorder was created."""
        return time.perf_counter() - self._t0

    @property
    def cpu_seconds(self) -> float:
        """This process's CPU seconds since creation plus absorbed worker CPU."""
        return (time.process_time() - self._cpu0) + self.worker_cpu

    def export(self) -> dict[str, Any]:
        """JSON-safe snapshot: counters, gauges, phases, cpu/wall seconds."""
        return {
            "counters": _copy_mapping(self.counters),
            "gauges": _copy_mapping(self.gauges),
            "phases": {
                path: [int(slot[0]), slot[1]]
                for path, slot in _copy_mapping(self.phases).items()
            },
            "cpu_seconds": self.cpu_seconds,
            "wall_seconds": self.wall_seconds,
        }

    def phase_wall(self, path: str) -> float:
        """Total recorded wall seconds of one span path (0.0 if never seen)."""
        slot = self.phases.get(path)
        return float(slot[1]) if slot else 0.0


class TraceSink:
    """Append-only NDJSON trace writer (one JSON object per line).

    Line types: a ``meta`` header, one ``span`` record per finished span
    (path, start relative to the recorder epoch, duration, attrs), and a
    final ``summary`` holding the recorder's aggregate export — which is
    what :mod:`repro.telemetry.profile` prefers when present, so a
    truncated trace still profiles from its span records alone.
    """

    def __init__(self, path: "str | Path", **meta: Any):
        self.path = Path(path)
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self._handle: "TextIO | None" = self.path.open("w")
        self._write(
            {
                "type": "meta",
                "schema": TRACE_SCHEMA,
                "clock": "perf_counter",
                "unix_time": time.time(),
                **meta,
            }
        )

    def _write(self, record: Mapping[str, Any]) -> None:
        if self._handle is None:
            return
        self._handle.write(json.dumps(record, sort_keys=True) + "\n")

    def span(
        self, path: str, t0: float, duration: float, attrs: Mapping[str, Any]
    ) -> None:
        record: dict[str, Any] = {
            "type": "span",
            "path": path,
            "t0": round(t0, 6),
            "dur": round(duration, 6),
        }
        if attrs:
            record["attrs"] = dict(attrs)
        self._write(record)

    def record(self, record: Mapping[str, Any]) -> None:
        """Append one free-form record (must carry its own ``type``)."""
        self._write(dict(record))

    def close(self, telemetry: "Telemetry | None" = None) -> None:
        """Write the final summary (if a recorder is given) and close."""
        if self._handle is None:
            return
        if telemetry is not None:
            self._write({"type": "summary", **telemetry.export()})
        self._handle.close()
        self._handle = None


__all__ = [
    "NULL_SPAN",
    "TRACE_SCHEMA",
    "Telemetry",
    "TraceSink",
    "activate",
    "activated",
    "active",
    "count",
    "enabled",
    "gauge",
    "span",
]
