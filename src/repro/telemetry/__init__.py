"""Run telemetry: spans, counters, traces, manifests and profiling.

Import the module-level helpers (``count``, ``gauge``, ``span``) from here
in instrumented code; they are O(1) no-ops until a :class:`Telemetry`
recorder is :func:`activate`-d on the current thread.
"""

from .core import (
    NULL_SPAN,
    TRACE_SCHEMA,
    Telemetry,
    TraceSink,
    activate,
    activated,
    active,
    count,
    enabled,
    gauge,
    span,
)
from .manifest import MANIFEST_SCHEMA, build_manifest, write_manifest
from .profile import TraceProfile, load_trace, render_profile

__all__ = [
    "MANIFEST_SCHEMA",
    "NULL_SPAN",
    "TRACE_SCHEMA",
    "Telemetry",
    "TraceProfile",
    "TraceSink",
    "activate",
    "activated",
    "active",
    "build_manifest",
    "count",
    "enabled",
    "gauge",
    "load_trace",
    "render_profile",
    "span",
    "write_manifest",
]
