"""The three channel layouts of the reconfigurable platform (Section 2.4)."""

from __future__ import annotations

from dataclasses import dataclass

from repro.model import Mode
from repro.platform.hardware import LockstepChannel


@dataclass(frozen=True)
class ModeLayout:
    """Channel grouping of the four cores for one operating mode."""

    mode: Mode
    channels: tuple[LockstepChannel, ...]

    @property
    def logical_processors(self) -> int:
        """Number of schedulable logical processors in this mode."""
        return len(self.channels)

    @property
    def replication(self) -> int:
        """Cores per logical processor (degree of hardware replication)."""
        return self.channels[0].width


_LAYOUTS: dict[Mode, ModeLayout] = {
    # All four cores in redundant lock-step: one fault-tolerant channel.
    Mode.FT: ModeLayout(
        Mode.FT, (LockstepChannel((0, 1, 2, 3), voting=True),)
    ),
    # Two dual lock-step couples: two independent fail-silent channels.
    Mode.FS: ModeLayout(
        Mode.FS,
        (LockstepChannel((0, 1)), LockstepChannel((2, 3))),
    ),
    # Four independent cores: maximum parallelism, no protection.
    Mode.NF: ModeLayout(
        Mode.NF,
        tuple(LockstepChannel((c,)) for c in range(4)),
    ),
}


def layout_for(mode: Mode) -> ModeLayout:
    """The canonical channel layout of an operating mode."""
    return _LAYOUTS[mode]
