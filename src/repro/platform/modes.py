"""The three channel layouts of the reconfigurable platform (Section 2.4).

The paper's chip has four cores, and the classic layouts — one 4-way
voting channel (FT), two dual lock-step couples (FS), four independent
cores (NF) — are the ``core_count=4`` instances of the general rule
implemented here:

* **FT** — every core in one redundant lock-step channel; the channel
  votes when it has >= 3 members (the Section 2.4 remark: three fault-free
  outputs suffice for a majority), and degrades to fail-silent
  comparison on a 2-core platform;
* **FS** — consecutive dual lock-step couples ``(0,1), (2,3), ...``; an
  odd trailing core runs as an unprotected singleton;
* **NF** — every core an independent logical processor.

Layouts are cached per ``(mode, core_count)`` so identity-based consumers
(e.g. dict keys) see one object per configuration.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache

from repro.model import Mode
from repro.platform.hardware import LockstepChannel
from repro.util import check_core_count


@dataclass(frozen=True)
class ModeLayout:
    """Channel grouping of the platform's cores for one operating mode."""

    mode: Mode
    channels: tuple[LockstepChannel, ...]

    @property
    def logical_processors(self) -> int:
        """Number of schedulable logical processors in this mode."""
        return len(self.channels)

    @property
    def replication(self) -> int:
        """Cores per logical processor (degree of hardware replication).

        On platforms where a mode's channels have unequal widths (an odd
        ``core_count`` in FS), this is the width of the *protected*
        channels — the first, widest one.
        """
        return self.channels[0].width

    @property
    def core_count(self) -> int:
        """Number of physical cores the layout covers."""
        return sum(ch.width for ch in self.channels)


@lru_cache(maxsize=None)
def layout_for(mode: Mode, core_count: int = 4) -> ModeLayout:
    """The canonical channel layout of an operating mode on ``core_count`` cores."""
    check_core_count(core_count)
    if mode is Mode.FT:
        channels = (
            LockstepChannel(tuple(range(core_count)), voting=core_count >= 3),
        )
    elif mode is Mode.FS:
        pairs = [
            LockstepChannel((c, c + 1)) for c in range(0, core_count - 1, 2)
        ]
        if core_count % 2:
            pairs.append(LockstepChannel((core_count - 1,)))
        channels = tuple(pairs)
    else:
        channels = tuple(LockstepChannel((c,)) for c in range(core_count))
    return ModeLayout(mode, channels)


def surviving_channels(
    layout: ModeLayout, dead_cores: "frozenset[int] | set[int]"
) -> tuple[int, ...]:
    """Indices of ``layout``'s channels still operational given dead cores.

    A channel survives a permanent core failure when it can still uphold
    its fault semantics with the remaining members:

    * a voting channel keeps voting while >= 3 members are alive (the
      Section 2.4 majority remark);
    * a non-voting lock-step couple needs *both* members — with one dead
      there is nothing to compare against, so the channel is lost;
    * a singleton dies with its core.
    """
    alive = []
    for idx, ch in enumerate(layout.channels):
        live = sum(1 for c in ch.cores if c not in dead_cores)
        if ch.voting:
            if live >= 3:
                alive.append(idx)
        elif live == ch.width:
            alive.append(idx)
    return tuple(alive)


__all__ = ["ModeLayout", "layout_for", "surviving_channels"]
