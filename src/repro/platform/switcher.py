"""Mode-switch controller: walking a slot schedule over simulated time.

Turns a :class:`~repro.core.config.SlotSchedule` into the concrete timeline
of Figure 2 — for every major cycle, each mode's usable window, the
switch-out overhead window at the slot tail, and any idle reserve at the end
of the cycle. The multicore simulator consumes these segments; the fault
layer uses :meth:`ModeSwitchController.segment_at` to find what the platform
was doing at an arbitrary fault instant.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Iterator

from repro.core.config import SlotSchedule
from repro.model import Mode
from repro.platform.modes import ModeLayout, layout_for
from repro.util import EPS, check_nonneg, check_positive


class SegmentKind(enum.Enum):
    """What the platform is doing during a timeline segment."""

    USABLE = "usable"       #: a mode's tasks may execute
    OVERHEAD = "overhead"   #: switching out of the mode (state sync, storing)
    IDLE = "idle"           #: unallocated reserve at the end of the cycle

    def __str__(self) -> str:  # pragma: no cover - trivial
        return self.value


@dataclass(frozen=True)
class Segment:
    """A maximal timeline interval with constant platform behaviour.

    ``mode`` is None for idle segments (no channel layout is guaranteed
    during reserve time; we treat faults there as harmless).
    """

    start: float
    end: float
    kind: SegmentKind
    mode: Mode | None
    cycle: int

    @property
    def duration(self) -> float:
        """Segment length."""
        return self.end - self.start

    def __repr__(self) -> str:
        who = str(self.mode) if self.mode is not None else "-"
        return f"Segment[{self.start:.4f},{self.end:.4f}) {self.kind} {who} (cycle {self.cycle})"


class ModeSwitchController:
    """Expands a slot schedule into the platform timeline.

    Parameters
    ----------
    schedule:
        Any object exposing ``period`` and ``cycle_template()`` (the classic
        :class:`~repro.core.config.SlotSchedule`, or the multi-quantum
        :class:`~repro.core.multislot.SplitSchedule`).
    """

    _KIND = {
        "usable": SegmentKind.USABLE,
        "overhead": SegmentKind.OVERHEAD,
        "idle": SegmentKind.IDLE,
    }

    def __init__(self, schedule: SlotSchedule):
        self._schedule = schedule
        self._template: list[tuple[float, float, SegmentKind, Mode | None]] = [
            (a, b, self._KIND[kind], mode)
            for a, b, kind, mode in schedule.cycle_template()
        ]

    @property
    def schedule(self) -> SlotSchedule:
        """The underlying slot schedule."""
        return self._schedule

    def layout_at(self, mode: Mode, core_count: int = 4) -> ModeLayout:
        """Channel layout installed while serving ``mode``."""
        return layout_for(mode, core_count)

    def segments(self, horizon: float) -> Iterator[Segment]:
        """All segments of ``[0, horizon)``, in time order (clipped at the end)."""
        check_positive("horizon", horizon)
        period = self._schedule.period
        cycle = 0
        base = 0.0
        while base < horizon - EPS:
            for rel_a, rel_b, kind, mode in self._template:
                a, b = base + rel_a, base + rel_b
                if a >= horizon - EPS:
                    break
                yield Segment(a, min(b, horizon), kind, mode, cycle)
            cycle += 1
            base = cycle * period

    def usable_windows(self, mode: Mode, horizon: float) -> list[tuple[float, float]]:
        """The mode's usable windows within ``[0, horizon)`` (simulator input)."""
        return [
            (s.start, s.end)
            for s in self.segments(horizon)
            if s.kind is SegmentKind.USABLE and s.mode is mode
        ]

    def segment_at(self, t: float) -> Segment:
        """The segment containing time ``t >= 0``.

        Boundary convention: a boundary instant belongs to the *starting*
        segment (half-open segments), matching the simulator's event order.
        """
        check_nonneg("t", t)
        period = self._schedule.period
        cycle = int(t // period)
        rel = t - cycle * period
        # Guard against rel == period from float division artifacts.
        if rel >= period - EPS and self._template:
            cycle += 1
            rel = 0.0
        for rel_a, rel_b, kind, mode in self._template:
            if rel_a - EPS <= rel < rel_b - EPS:
                base = cycle * period
                return Segment(base + rel_a, base + rel_b, kind, mode, cycle)
        # rel fell into the final sliver before the next cycle (float noise):
        rel_a, rel_b, kind, mode = self._template[-1]
        base = cycle * period
        return Segment(base + rel_a, base + rel_b, kind, mode, cycle)

    def mode_at(self, t: float) -> Mode | None:
        """The operating mode active at ``t`` (None during idle reserve)."""
        return self.segment_at(t).mode
