"""Model of the 4-core reconfigurable lock-step platform (Section 2.4).

The hardware of Figure 1 — four identical cores behind a crossbar, with a
*checker* that compares core outputs, gates memory access, and reconfigures
the core grouping — is modelled at the level the paper's scheme needs:

* :mod:`repro.platform.hardware` — cores, lock-step channels, the checker's
  compare/vote/silence semantics;
* :mod:`repro.platform.modes` — the three channel layouts (FT: one 4-way
  redundant channel; FS: two 2-way fail-silent channels; NF: four
  independent cores);
* :mod:`repro.platform.switcher` — the mode-switch controller that walks a
  :class:`~repro.core.config.SlotSchedule` over time, yielding usable
  windows, overhead windows and idle reserve.

Cycle-level lock-step execution is *not* modelled: every property the paper
claims depends only on slot timing and on the checker's per-mode outcome for
a single transient fault (mask / silence / corrupt), which this model
captures exactly. See DESIGN.md §3.3.
"""

from repro.platform.hardware import Checker, Core, FaultEffect, LockstepChannel
from repro.platform.modes import ModeLayout, layout_for, surviving_channels
from repro.platform.switcher import ModeSwitchController, Segment, SegmentKind

__all__ = [
    "Core",
    "LockstepChannel",
    "Checker",
    "FaultEffect",
    "ModeLayout",
    "layout_for",
    "surviving_channels",
    "ModeSwitchController",
    "Segment",
    "SegmentKind",
]
