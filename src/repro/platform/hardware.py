"""Cores, lock-step channels, and the checker's fault semantics.

A *channel* is a group of cores executing the same code in lock-step and
appearing to the scheduler as one logical processor. The checker observes
every channel's outputs and applies the Section 2.4 semantics when a single
transient fault hits one member core:

* 4-way redundant lock-step (FT): majority voting over 4 (or the 3
  fault-free) outputs masks the fault — the channel keeps running and never
  emits a wrong value;
* 2-way lock-step (FS): the two outputs disagree; the checker blocks the
  channel's bus access (fail-silent) before the wrong value reaches memory;
* single core (NF): nothing observes the fault — the running job's output
  is silently corrupted.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from repro.model import Mode


class FaultEffect(enum.Enum):
    """Checker outcome for a single transient fault hitting a channel."""

    MASKED = "masked"          #: majority vote hid the fault (FT)
    SILENCED = "silenced"      #: mismatch detected, channel blocked (FS)
    CORRUPTED = "corrupted"    #: undetected wrong output (NF)

    def __str__(self) -> str:  # pragma: no cover - trivial
        return self.value


@dataclass(frozen=True)
class Core:
    """One physical core of the platform."""

    index: int

    def __post_init__(self) -> None:
        if not isinstance(self.index, int) or self.index < 0:
            raise ValueError(
                f"core index must be a nonnegative int: got {self.index}"
            )


@dataclass(frozen=True)
class LockstepChannel:
    """A group of cores appearing as one logical processor.

    Attributes
    ----------
    cores:
        Member core indices (>= 1 core; the paper's chip uses widths 1, 2
        and 4, but larger platforms group more).
    voting:
        True when the channel has enough redundancy to *mask* a single fault
        by majority (the paper's 4-way redundant lock-step; 3 cores would
        also suffice, see the Section 2.4 remark).
    """

    cores: tuple[int, ...]
    voting: bool = False

    def __post_init__(self) -> None:
        if len(self.cores) < 1:
            raise ValueError("channel must group at least one core")
        if len(set(self.cores)) != len(self.cores):
            raise ValueError(f"duplicate cores in channel: {self.cores}")
        for c in self.cores:
            if not isinstance(c, int) or c < 0:
                raise ValueError(
                    f"core index must be a nonnegative int: got {c}"
                )
        if self.voting and len(self.cores) < 3:
            raise ValueError(
                "majority voting needs at least 3 lock-stepped cores"
            )

    @property
    def width(self) -> int:
        """Number of member cores."""
        return len(self.cores)

    def contains(self, core: int) -> bool:
        """Whether the physical core belongs to this channel."""
        return core in self.cores

    def fault_effect(self) -> FaultEffect:
        """Checker outcome when a single member core suffers a soft error."""
        if self.voting:
            return FaultEffect.MASKED
        if self.width >= 2:
            return FaultEffect.SILENCED
        return FaultEffect.CORRUPTED


class Checker:
    """The output comparator / bus gate / reconfiguration unit of Figure 1.

    The checker holds the current channel layout and classifies faults.
    Reconfiguration (changing layouts at slot boundaries) is driven by the
    :class:`~repro.platform.switcher.ModeSwitchController`.
    """

    def __init__(self) -> None:
        self._channels: tuple[LockstepChannel, ...] = ()
        self._mode: Mode | None = None

    @property
    def mode(self) -> Mode | None:
        """The currently configured operating mode (None before first config)."""
        return self._mode

    @property
    def channels(self) -> tuple[LockstepChannel, ...]:
        """The current channel layout."""
        return self._channels

    def configure(self, mode: Mode, channels: tuple[LockstepChannel, ...]) -> None:
        """Install a new channel layout (a mode switch).

        Validates that the layout uses each physical core of a contiguous
        ``0..n-1`` platform exactly once.
        """
        used = [c for ch in channels for c in ch.cores]
        if not used or sorted(used) != list(range(len(used))):
            raise ValueError(
                f"layout must use each of cores 0..n-1 exactly once: got {used}"
            )
        self._channels = tuple(channels)
        self._mode = mode

    def channel_of(self, core: int) -> tuple[int, LockstepChannel]:
        """The (index, channel) hosting a physical core."""
        for i, ch in enumerate(self._channels):
            if ch.contains(core):
                return i, ch
        raise RuntimeError("checker is not configured")

    def classify_fault(self, core: int) -> tuple[int, FaultEffect]:
        """Outcome of a single transient fault on ``core``.

        Returns the logical processor (channel) index affected and the
        :class:`FaultEffect` the checker produces for it.
        """
        idx, channel = self.channel_of(core)
        return idx, channel.fault_effect()
