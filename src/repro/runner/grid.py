"""Cartesian grid expansion for campaign sweeps.

An *axes* mapping describes a sweep: each key is a parameter name, each
value either a sequence of settings or a scalar (a degenerate one-value
axis). :func:`expand_grid` expands the cartesian product in a deterministic
order — axes vary in insertion order with the **last** axis fastest, like
nested ``for`` loops written in the same order.
"""

from __future__ import annotations

import itertools
import json
from typing import Any, Iterable, Mapping, Sequence

from repro.runner.spec import PointSpec


def axis_values(value: Any, *, name: str | None = None) -> list[Any]:
    """Normalize one axis value into its list of settings.

    Ordered sequences (lists, tuples, ranges, numpy arrays) expand into
    one setting per element; strings, bytes, and mappings are scalars (a
    degenerate one-value axis). Unordered or one-shot iterables (sets,
    generators) are rejected: their iteration order is not deterministic
    across runs, which would silently break the campaign determinism
    contract.
    """
    label = f"axis {name!r}" if name else "grid axis"
    if isinstance(value, (str, bytes, Mapping)):
        return [value]
    if hasattr(value, "tolist") and hasattr(value, "ndim"):  # numpy array
        value = value.tolist()
        if not isinstance(value, list):  # 0-d array -> python scalar
            return [value]
    if isinstance(value, (Sequence, range)):
        values = list(value)
        if not values:
            raise ValueError(f"{label} must not be empty")
        return values
    if isinstance(value, (set, frozenset)):
        raise TypeError(
            f"{label} is a set; sets have no deterministic order — "
            "pass a sorted list instead"
        )
    if isinstance(value, Iterable):
        raise TypeError(
            f"{label} is a one-shot iterable ({type(value).__name__}); "
            "pass a list instead"
        )
    return [value]


def expand_grid(axes: Mapping[str, Any]) -> list[dict[str, Any]]:
    """Expand ``axes`` into the full list of parameter dicts.

    >>> expand_grid({"u": [0.5, 1.0], "n": 8})
    [{'u': 0.5, 'n': 8}, {'u': 1.0, 'n': 8}]
    """
    names = list(axes)
    value_lists = [axis_values(axes[name], name=name) for name in names]
    return [
        dict(zip(names, combo)) for combo in itertools.product(*value_lists)
    ]


def grid_specs(
    experiment: str,
    axes: Mapping[str, Any],
    *,
    base_params: Mapping[str, Any] | None = None,
) -> list[PointSpec]:
    """Build one :class:`PointSpec` per grid point (base params + axes)."""
    base = dict(base_params or {})
    overlap = set(base) & set(axes)
    if overlap:
        raise ValueError(f"axes shadow base params: {sorted(overlap)}")
    return [
        PointSpec(experiment, {**base, **point}) for point in expand_grid(axes)
    ]


def parse_axis(text: str) -> tuple[str, list[Any]]:
    """Parse one ``key=v1,v2,...`` CLI axis (values JSON-decoded when possible).

    ``key:=v1,v2,...`` opts out of JSON decoding: every value stays a raw
    string, so e.g. ``mode:=true,false`` sweeps the *strings* ``"true"``
    and ``"false"`` instead of booleans.

    >>> parse_axis("u_total=0.5,1.0")
    ('u_total', [0.5, 1.0])
    >>> parse_axis("mode:=true,off")
    ('mode', ['true', 'off'])
    """
    key, sep, rest = text.partition("=")
    if not sep or not key or not rest:
        raise ValueError(f"axis must look like key=v1,v2,...: got {text!r}")
    raw = key.endswith(":")
    if raw:
        key = key[:-1]
        if not key:
            raise ValueError(f"axis must look like key=v1,v2,...: got {text!r}")
        return key, list(rest.split(","))
    values: list[Any] = []
    for token in rest.split(","):
        try:
            values.append(json.loads(token))
        except ValueError:
            values.append(token)
    return key, values


def parse_axes(texts: Iterable[str]) -> dict[str, list[Any]]:
    """Parse repeated ``--axis`` options into an axes mapping."""
    axes: dict[str, list[Any]] = {}
    for text in texts:
        key, values = parse_axis(text)
        axes[key] = values
    return axes


# Backwards-compatible alias for the pre-strategy private name.
_axis_values = axis_values
