"""Sharded multi-host campaigns: partition a grid, merge the snapshots.

A campaign that is too big for one machine splits into *shards*: each host
(or CI job) runs ``repro campaign ... --shard i/N`` over the same grid, and
a final ``repro merge`` folds the N shard snapshots into the canonical
full-campaign aggregate. Three properties make this safe:

* **Deterministic partitioning** — a point belongs to shard
  ``int(digest, 16) % N``, a pure function of the spec's content digest.
  Shard membership never depends on enumeration order, axis order, or which
  host expands the grid, so independently launched hosts agree on the split
  and extending a grid never moves existing points between shards.
* **Shard manifests** — every snapshot records *what it claims to cover*:
  the campaign's grid digest, master seed, shard index/count, and the exact
  point-digest coverage set. Merging validates the manifests instead of
  trusting file names.
* **Mergeable aggregates** — accumulator states merge associatively and
  exactly (see :mod:`repro.runner.aggregate`), so the merged snapshot is
  **byte-identical** to the one an unsharded run would have written.

:func:`merge_snapshots` refuses to merge mismatched configs, seeds, grids
or shard counts, and reports missing, overlapping, or incomplete shards
instead of silently producing partial curves.
"""

from __future__ import annotations

import hashlib
import json
import os
from dataclasses import dataclass
from functools import reduce
from pathlib import Path
from typing import Any, Iterable, Mapping, Sequence

from repro.runner.aggregate import merge_states
from repro.runner.spec import PointSpec


class MergeError(RuntimeError):
    """Shard snapshots cannot be merged into a full campaign."""


def parse_shard(text: str) -> tuple[int, int]:
    """Parse an ``i/N`` shard selector into ``(index, count)``.

    >>> parse_shard("0/3")
    (0, 3)
    """
    index_text, sep, count_text = text.partition("/")
    try:
        if not sep:
            raise ValueError
        index, count = int(index_text), int(count_text)
    except ValueError:
        raise ValueError(
            f"shard must look like i/N (e.g. 0/3): got {text!r}"
        ) from None
    if count < 1:
        raise ValueError(f"shard count must be >= 1: got {text!r}")
    if not 0 <= index < count:
        raise ValueError(
            f"shard index must be in [0, {count}): got {text!r}"
        )
    return index, count


def shard_of(digest: str, count: int) -> int:
    """The shard a point digest belongs to (content-keyed, order-free)."""
    return int(digest, 16) % count


def shard_specs(
    specs: Iterable[PointSpec], index: int, count: int
) -> list[PointSpec]:
    """The sub-list of ``specs`` assigned to shard ``index`` of ``count``.

    Submission order is preserved; duplicates stay with their shard. Every
    spec lands in exactly one shard, so the N shard lists partition the
    campaign regardless of which host computes the split.
    """
    if count < 1:
        raise ValueError(f"shard count must be >= 1: got {count}")
    if not 0 <= index < count:
        raise ValueError(f"shard index must be in [0, {count}): got {index}")
    return [s for s in specs if shard_of(s.digest, count) == index]


def grid_digest(digests: Iterable[str]) -> str:
    """SHA-256 fingerprint of a campaign's unique point-digest set."""
    return hashlib.sha256(
        "\n".join(sorted(set(digests))).encode("utf-8")
    ).hexdigest()


@dataclass(frozen=True)
class ShardManifest:
    """What one shard snapshot claims to cover.

    ``grid`` fingerprints the *full* campaign's point set (identical across
    all shards); ``points`` is this shard's exact coverage — the digests it
    is responsible for, folded or not, which is what lets the merge detect
    an incomplete shard.
    """

    index: int
    count: int
    grid: str
    points: tuple[str, ...]

    def __post_init__(self) -> None:
        if self.count < 1:
            raise ValueError(f"shard count must be >= 1: got {self.count}")
        if not 0 <= self.index < self.count:
            raise ValueError(
                f"shard index must be in [0, {self.count}): got {self.index}"
            )
        object.__setattr__(self, "points", tuple(sorted(set(self.points))))

    @classmethod
    def for_shard(
        cls, specs: Sequence[PointSpec], index: int, count: int
    ) -> "ShardManifest":
        """Manifest of shard ``index/count`` of the full campaign ``specs``."""
        digests = {s.digest for s in specs}
        return cls(
            index=index,
            count=count,
            grid=grid_digest(digests),
            points=tuple(d for d in digests if shard_of(d, count) == index),
        )

    @classmethod
    def full(cls, digests: Iterable[str]) -> "ShardManifest":
        """The trivial 1-shard manifest covering a whole campaign."""
        points = tuple(sorted(set(digests)))
        return cls(index=0, count=1, grid=grid_digest(points), points=points)

    def to_dict(self) -> dict[str, Any]:
        return {
            "index": self.index,
            "count": self.count,
            "grid": self.grid,
            "points": list(self.points),
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "ShardManifest":
        return cls(
            index=int(data["index"]),
            count=int(data["count"]),
            grid=str(data["grid"]),
            points=tuple(str(p) for p in data["points"]),
        )


def read_shard_snapshot(path: str | os.PathLike) -> dict[str, Any]:
    """Read and structurally validate one shard snapshot file.

    Unlike :func:`repro.runner.stream.load_snapshot` (which treats a missing
    or corrupt file as "start fresh"), a merge input that cannot be read is
    an error — merging around it would silently drop a shard.
    """
    from repro.runner.stream import check_snapshot_compat  # late: avoid cycle

    path = Path(path)
    try:
        snap = json.loads(path.read_text())
    except OSError as exc:
        raise MergeError(f"cannot read snapshot {path}: {exc}") from None
    except ValueError as exc:
        raise MergeError(f"snapshot {path} is not valid JSON: {exc}") from None
    if not isinstance(snap, dict):
        raise MergeError(f"snapshot {path} is not a snapshot object")
    check_snapshot_compat(snap, path, error=MergeError)
    for key in ("master_seed", "config", "shard", "folded", "failed", "aggregate"):
        if key not in snap:
            raise MergeError(f"snapshot {path} is missing {key!r}")
    if snap.get("partial"):
        raise MergeError(
            f"snapshot {path} is a partial-merge preview (missing shards "
            f"{snap.get('missing_shards')}); previews cannot be merged — "
            f"merge the original shard snapshots instead"
        )
    try:
        ShardManifest.from_dict(snap["shard"])
    except (KeyError, TypeError, ValueError) as exc:
        raise MergeError(f"snapshot {path} has a malformed shard manifest: {exc}") from None
    return snap


def merge_snapshots(
    snaps: Sequence[Mapping[str, Any]],
    sources: Sequence[str] | None = None,
    *,
    allow_partial: bool = False,
) -> dict[str, Any]:
    """Fold shard snapshots into the canonical full-campaign snapshot.

    Validates before touching any accumulator state:

    * every snapshot shares one master seed, aggregator config digest, grid
      digest and shard count;
    * shard indices are pairwise distinct (overlapping shards) and together
      exactly cover ``0..count-1`` (missing shards);
    * each shard is *complete*: every point in its manifest coverage was
      folded or recorded as failed — a half-run shard is reported, not
      silently merged into a partial curve;
    * coverage sets are pairwise disjoint and their union is the grid;
    * adaptive shards (snapshots carrying point-source state) must all be
      adaptive, all finished, and agree on the final source state, which
      the merged snapshot inherits.

    The merged snapshot carries the trivial ``0/1`` manifest over the full
    grid, the unions of the folded/failed digest sets, and the exact merge
    of the aggregate states — byte-identical (via
    :func:`~repro.runner.spec.canonical_json`) to the snapshot an unsharded
    run of the same campaign writes.

    ``allow_partial=True`` is the deliberate escape hatch for previewing a
    campaign that is still in flight: missing and incomplete shards are
    tolerated, and the result is a *preview* snapshot explicitly marked
    ``"partial": true`` with the missing-shard list — previews are refused
    both as future merge inputs and as campaign resume states, so they can
    never masquerade as the finished campaign. Every consistency check
    that does not concern completeness (seeds, configs, grids, overlaps,
    stray folds) still applies. A complete shard set merged with
    ``allow_partial=True`` yields the canonical (unmarked) snapshot.
    """
    if not snaps:
        raise MergeError("no snapshots to merge")
    names = list(sources) if sources is not None else [
        f"snapshot #{i}" for i in range(len(snaps))
    ]

    def distinct(key: str, values: list[Any]) -> None:
        if len(set(map(repr, values))) > 1:
            detail = ", ".join(f"{n}: {v!r}" for n, v in zip(names, values))
            raise MergeError(f"snapshots disagree on {key}: {detail}")

    manifests = [ShardManifest.from_dict(s["shard"]) for s in snaps]
    distinct("master seed", [s["master_seed"] for s in snaps])
    distinct("aggregator config digest", [s["config"] for s in snaps])
    distinct("grid digest", [m.grid for m in manifests])
    distinct("shard count", [m.count for m in manifests])

    # Adaptive campaigns persist their point-source state; shards of one
    # adaptive campaign must all be adaptive, all *finished* (an in-flight
    # shard's point set is still growing — its manifest covers only the
    # rounds it has seen), and must agree on the final source state, which
    # the merged snapshot then carries so it stays byte-identical to the
    # unsharded run's.
    source_states = [s.get("source") for s in snaps]
    present = [st for st in source_states if st is not None]
    source_state: Mapping[str, Any] | None = None
    if present:
        if len(present) != len(snaps):
            have = [n for n, st in zip(names, source_states) if st is not None]
            raise MergeError(
                f"snapshots disagree on point-source strategy: "
                f"{', '.join(have)} carry adaptive source state, the "
                f"others do not"
            )
        in_flight = [
            name
            for name, st in zip(names, source_states)
            if not st.get("complete")
        ]
        if in_flight and not allow_partial:
            raise MergeError(
                f"{in_flight[0]} is an in-flight adaptive shard — its "
                f"point set is still growing; finish every shard before "
                f"merging (or preview with --allow-partial)"
            )
        if not in_flight:
            distinct("adaptive source state", present)
            source_state = present[0]
    else:
        in_flight = []

    count = manifests[0].count
    seen: dict[int, str] = {}
    for name, manifest in zip(names, manifests):
        if manifest.index in seen:
            raise MergeError(
                f"overlapping shards: index {manifest.index}/{count} appears "
                f"in both {seen[manifest.index]} and {name}"
            )
        seen[manifest.index] = name
    missing = sorted(set(range(count)) - set(seen))
    if missing and not allow_partial:
        raise MergeError(
            f"missing shards: have {sorted(seen)} of {count}, "
            f"missing {missing}"
        )

    incomplete = 0
    all_points: set[str] = set()
    all_done: set[str] = set()
    for name, snap, manifest in zip(names, snaps, manifests):
        coverage = set(manifest.points)
        done = set(snap["folded"]) | set(snap["failed"])
        stray = sorted(done - coverage)
        if stray:
            raise MergeError(
                f"{name} folded {len(stray)} point(s) outside its manifest "
                f"coverage (first: {stray[0][:16]}…)"
            )
        unfinished = coverage - done
        if unfinished:
            if not allow_partial:
                raise MergeError(
                    f"{name} is incomplete: {len(unfinished)} of "
                    f"{len(coverage)} points not yet folded — rerun that "
                    f"shard before merging"
                )
            incomplete += 1
        if all_points & coverage:
            raise MergeError(
                f"{name} covers points already claimed by another shard"
            )
        all_points |= coverage
        all_done |= done

    # An in-flight adaptive shard set can look internally complete (each
    # manifest only covers the rounds that shard has seen), so it must be
    # forced down the marked-preview path regardless.
    partial = bool(missing) or incomplete > 0 or bool(in_flight)
    # The manifests' own grid digest must re-derive from the union of their
    # coverage sets — a truncated/hand-edited points list would otherwise
    # pass every per-shard check and merge into a silently partial curve.
    # (Moot for an acknowledged-partial preview: its union is partial by
    # construction, and the preview keeps the *declared* grid digest.)
    if not partial and grid_digest(all_points) != manifests[0].grid:
        raise MergeError(
            f"shard coverage sets do not reassemble the declared grid: "
            f"union of {len(all_points)} point(s) hashes to "
            f"{grid_digest(all_points)[:16]}…, manifests claim "
            f"{manifests[0].grid[:16]}…"
        )

    aggregate = reduce(merge_states, [s["aggregate"] for s in snaps])
    folded = set().union(*(set(s["folded"]) for s in snaps))
    failed = set().union(*(set(s["failed"]) for s in snaps))
    from repro.runner.stream import snapshot_dict  # late: avoid cycle

    if partial:
        # The preview claims the *declared* grid (what the campaign will
        # eventually cover) but only the done points — never the trivial
        # full manifest an unsharded run would earn.
        shard = ShardManifest(
            index=0, count=1, grid=manifests[0].grid, points=tuple(all_done)
        )
        return snapshot_dict(
            config=snaps[0]["config"],
            master_seed=snaps[0]["master_seed"],
            folded=folded,
            failed=failed,
            aggregate=aggregate,
            shard=shard,
            missing_shards=missing,
        )
    return snapshot_dict(
        config=snaps[0]["config"],
        master_seed=snaps[0]["master_seed"],
        folded=folded,
        failed=failed,
        aggregate=aggregate,
        shard=ShardManifest.full(all_points),
        source=source_state,
    )


def merge_snapshot_files(
    paths: Sequence[str | os.PathLike], *, allow_partial: bool = False
) -> dict[str, Any]:
    """:func:`merge_snapshots` over snapshot files (the ``repro merge`` core)."""
    return merge_snapshots(
        [read_shard_snapshot(p) for p in paths],
        sources=[str(p) for p in paths],
        allow_partial=allow_partial,
    )


__all__ = [
    "MergeError",
    "ShardManifest",
    "grid_digest",
    "merge_snapshot_files",
    "merge_snapshots",
    "parse_shard",
    "read_shard_snapshot",
    "shard_of",
    "shard_specs",
]
