"""Mergeable streaming accumulators for campaign aggregation.

Campaign sweeps at paper scale (millions of points) cannot materialize every
point result; they need results *folded* into constant-size aggregates as
points complete. The accumulators here obey a strict merge contract that
makes streaming aggregation deterministic:

* **Exactness** — numeric accumulation is carried in
  :class:`fractions.Fraction`. Every IEEE-754 float is a dyadic rational, so
  sums and weighted sums are exact; exact arithmetic is associative and
  commutative, which makes every accumulator *order-insensitive*:
  ``merge(a, merge(b, c)) == merge(merge(a, b), c)`` and any fold order —
  any worker count, any completion order — produces **bit-identical** state.
* **Identity** — a freshly constructed accumulator is the merge identity.
* **Serialization** — ``state_dict()`` / :func:`accumulator_from_state`
  round-trip through canonical JSON, so partial aggregates persist next to
  the point cache and extended sweeps resume aggregation incrementally
  (see :mod:`repro.runner.stream`).

The zoo: :class:`MeanAccumulator` (count / sum / mean — a ratio when fed
booleans), :class:`WeightedMeanAccumulator` (weighted schedulability with
per-point utilization weights), :class:`ExtremaAccumulator` (min/max),
:class:`HistogramSketch` (fixed-bin counts with deterministic percentile
queries), :class:`CategoricalCountAccumulator` (exact per-category integer
counts — the fault-outcome taxonomy), :class:`CurveAccumulator` (binned
curves: one sub-accumulator per x-key) and :class:`SlotAccumulator` (a
fixed set of named results — how the paper artifacts stream).
:class:`Aggregator` bundles named accumulators with fold rules over
``(spec, result)`` pairs.
"""

from __future__ import annotations

import hashlib
import json
import math
from fractions import Fraction
from typing import Any, Callable, Mapping, Sequence

from repro.runner.spec import PointSpec, canonical_json

#: Registry of accumulator kinds (filled by ``_register``).
_KINDS: dict[str, type["Accumulator"]] = {}


def _register(cls: type["Accumulator"]) -> type["Accumulator"]:
    if cls.kind in _KINDS:
        raise ValueError(f"accumulator kind {cls.kind!r} registered twice")
    _KINDS[cls.kind] = cls
    return cls


def accumulator_from_state(state: Mapping[str, Any]) -> "Accumulator":
    """Rebuild any accumulator from its ``state_dict()`` form."""
    try:
        cls = _KINDS[state["kind"]]
    except KeyError:
        raise ValueError(f"unknown accumulator kind in state: {state!r}") from None
    return cls.from_state(state)


def _exact(value: Any, what: str = "value") -> Fraction:
    """Exact rational form of a fold input (bool/int/float), rejecting NaN/inf."""
    if isinstance(value, bool):
        return Fraction(int(value))
    if isinstance(value, int):
        return Fraction(value)
    if isinstance(value, float):
        if not math.isfinite(value):
            raise ValueError(f"cannot fold non-finite {what}: {value!r}")
        return Fraction(value)
    raise TypeError(f"cannot fold {what} of type {type(value).__name__}: {value!r}")


def _as_float(f: Fraction) -> float:
    """Correctly rounded float of ``f``, saturating to ±inf out of range.

    Exact sums can exceed the float range (two near-``sys.float_info.max``
    folds) even though every summand was finite; the exact state is kept,
    only the *finalized* view saturates.
    """
    try:
        return float(f)
    except OverflowError:
        return math.inf if f > 0 else -math.inf


def _fraction_state(f: Fraction) -> list[int]:
    return [f.numerator, f.denominator]


def _fraction_from_state(pair: Sequence[int]) -> Fraction:
    return Fraction(int(pair[0]), int(pair[1]))


class Accumulator:
    """Base class: a mergeable, serializable streaming aggregate."""

    kind: str = ""

    # -- merge contract --------------------------------------------------

    def merge(self, other: "Accumulator") -> "Accumulator":
        """Pure merge: a new accumulator holding both sides' folds."""
        self._check_mergeable(other)
        return self._merged(other)

    def _check_mergeable(self, other: "Accumulator") -> None:
        if type(other) is not type(self):
            raise ValueError(
                f"cannot merge {type(self).__name__} with {type(other).__name__}"
            )
        if self.config_dict() != other.config_dict():
            raise ValueError(
                f"cannot merge {self.kind} accumulators with different "
                f"configs: {self.config_dict()} vs {other.config_dict()}"
            )

    def _merged(self, other: "Accumulator") -> "Accumulator":
        raise NotImplementedError

    # -- serialization ---------------------------------------------------

    def config_dict(self) -> dict[str, Any]:
        """Structural identity (kind + shape params, no folded data)."""
        return {"kind": self.kind}

    def state_dict(self) -> dict[str, Any]:
        """Full JSON-serializable state (canonical: equal folds, equal bytes)."""
        raise NotImplementedError

    @classmethod
    def from_state(cls, state: Mapping[str, Any]) -> "Accumulator":
        raise NotImplementedError

    def summary(self) -> dict[str, Any]:
        """Finalized values (floats) for rendering and ``--agg-out``."""
        raise NotImplementedError

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Accumulator):
            return NotImplemented
        return type(self) is type(other) and self.state_dict() == other.state_dict()

    def __hash__(self) -> int:  # states are mutable; identity hash is fine
        return id(self)


@_register
class MeanAccumulator(Accumulator):
    """Exact count/sum/mean. Fed booleans it is a ratio accumulator."""

    kind = "mean"

    def __init__(self) -> None:
        self.count = 0
        self.total = Fraction(0)

    def fold(self, value: Any, count: int = 1) -> None:
        """Fold ``value`` into the running sum.

        With ``count > 1``, ``value`` is the *sum* over ``count``
        observations folded at once — the exact multiplicity form used by
        pre-binned curve data (e.g. an online acceptance bin carrying
        ``accepted`` admissions out of ``offered`` arrivals). The state
        shape is unchanged, so the merge contract is unaffected.
        """
        if isinstance(count, bool) or not isinstance(count, int):
            raise TypeError(f"count must be an int: got {count!r}")
        if count < 1:
            raise ValueError(f"count must be >= 1: got {count}")
        self.total += _exact(value)
        self.count += count

    def _merged(self, other: "MeanAccumulator") -> "MeanAccumulator":
        out = MeanAccumulator()
        out.count = self.count + other.count
        out.total = self.total + other.total
        return out

    def state_dict(self) -> dict[str, Any]:
        return {
            "kind": self.kind,
            "count": self.count,
            "total": _fraction_state(self.total),
        }

    @classmethod
    def from_state(cls, state: Mapping[str, Any]) -> "MeanAccumulator":
        out = cls()
        out.count = int(state["count"])
        out.total = _fraction_from_state(state["total"])
        return out

    @property
    def mean(self) -> float | None:
        """Correctly rounded exact mean (None before any fold)."""
        if self.count == 0:
            return None
        return _as_float(self.total / self.count)

    def summary(self) -> dict[str, Any]:
        return {
            "count": self.count,
            "sum": _as_float(self.total),
            "mean": self.mean,
        }


@_register
class WeightedMeanAccumulator(Accumulator):
    """Exact weighted mean — e.g. utilization-weighted schedulability."""

    kind = "wmean"

    def __init__(self) -> None:
        self.count = 0
        self.weight = Fraction(0)
        self.weighted_total = Fraction(0)

    def fold(self, value: Any, weight: Any = 1) -> None:
        w = _exact(weight, "weight")
        if w < 0:
            raise ValueError(f"weights must be >= 0: got {weight!r}")
        self.weighted_total += w * _exact(value)
        self.weight += w
        self.count += 1

    def _merged(self, other: "WeightedMeanAccumulator") -> "WeightedMeanAccumulator":
        out = WeightedMeanAccumulator()
        out.count = self.count + other.count
        out.weight = self.weight + other.weight
        out.weighted_total = self.weighted_total + other.weighted_total
        return out

    def state_dict(self) -> dict[str, Any]:
        return {
            "kind": self.kind,
            "count": self.count,
            "weight": _fraction_state(self.weight),
            "weighted_total": _fraction_state(self.weighted_total),
        }

    @classmethod
    def from_state(cls, state: Mapping[str, Any]) -> "WeightedMeanAccumulator":
        out = cls()
        out.count = int(state["count"])
        out.weight = _fraction_from_state(state["weight"])
        out.weighted_total = _fraction_from_state(state["weighted_total"])
        return out

    @property
    def mean(self) -> float | None:
        """Weighted mean (None while the total weight is zero)."""
        if self.weight == 0:
            return None
        return _as_float(self.weighted_total / self.weight)

    def summary(self) -> dict[str, Any]:
        return {
            "count": self.count,
            "weight": _as_float(self.weight),
            "mean": self.mean,
        }


@_register
class ExtremaAccumulator(Accumulator):
    """Exact running min/max (floats compare exactly; order-insensitive)."""

    kind = "extrema"

    def __init__(self) -> None:
        self.count = 0
        self.min: float | None = None
        self.max: float | None = None

    def fold(self, value: Any) -> None:
        v = float(_exact(value))
        self.min = v if self.min is None else min(self.min, v)
        self.max = v if self.max is None else max(self.max, v)
        self.count += 1

    def _merged(self, other: "ExtremaAccumulator") -> "ExtremaAccumulator":
        out = ExtremaAccumulator()
        out.count = self.count + other.count
        mins = [m for m in (self.min, other.min) if m is not None]
        maxs = [m for m in (self.max, other.max) if m is not None]
        out.min = min(mins) if mins else None
        out.max = max(maxs) if maxs else None
        return out

    def state_dict(self) -> dict[str, Any]:
        return {
            "kind": self.kind,
            "count": self.count,
            "min": self.min,
            "max": self.max,
        }

    @classmethod
    def from_state(cls, state: Mapping[str, Any]) -> "ExtremaAccumulator":
        out = cls()
        out.count = int(state["count"])
        out.min = state["min"]
        out.max = state["max"]
        return out

    def summary(self) -> dict[str, Any]:
        return {"count": self.count, "min": self.min, "max": self.max}


@_register
class HistogramSketch(Accumulator):
    """Fixed-bin histogram with deterministic percentile queries.

    Exact order statistics over a stream need O(points) memory; the sketch
    keeps ``bins`` integer counts over ``[lo, hi)`` plus exact min/max and
    answers percentiles by linear interpolation inside the covering bin —
    a deterministic, mergeable approximation with error bounded by the bin
    width. Out-of-range folds land in the underflow/overflow counters.
    """

    kind = "histogram"

    def __init__(self, lo: float, hi: float, bins: int = 32) -> None:
        if not (math.isfinite(lo) and math.isfinite(hi)) or hi <= lo:
            raise ValueError(f"need finite lo < hi: got [{lo}, {hi})")
        if bins < 1:
            raise ValueError(f"bins must be >= 1: got {bins}")
        self.lo = float(lo)
        self.hi = float(hi)
        self.bins = int(bins)
        self.counts = [0] * self.bins
        self.underflow = 0
        self.overflow = 0
        self.extrema = ExtremaAccumulator()
        self._lo_exact = Fraction(self.lo)
        self._span_exact = Fraction(self.hi) - self._lo_exact

    def fold(self, value: Any) -> None:
        exact = _exact(value)
        v = float(exact)
        self.extrema.fold(v)
        if v < self.lo:
            self.underflow += 1
        elif v >= self.hi:
            self.overflow += 1
        else:
            # Index from exact rationals: float((v-lo)/(hi-lo))*bins can
            # round across a bin edge, which would break order-insensitivity
            # between platforms; integer floor of the exact ratio cannot.
            idx = int((exact - self._lo_exact) * self.bins // self._span_exact)
            self.counts[min(idx, self.bins - 1)] += 1

    @property
    def count(self) -> int:
        return self.extrema.count

    def _merged(self, other: "HistogramSketch") -> "HistogramSketch":
        out = HistogramSketch(self.lo, self.hi, self.bins)
        out.counts = [a + b for a, b in zip(self.counts, other.counts)]
        out.underflow = self.underflow + other.underflow
        out.overflow = self.overflow + other.overflow
        out.extrema = self.extrema.merge(other.extrema)
        return out

    def percentile(self, q: float) -> float | None:
        """Approximate q-quantile (``0 <= q <= 1``), None when empty."""
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"q must be in [0, 1]: got {q}")
        n = self.count
        if n == 0:
            return None
        assert self.extrema.min is not None and self.extrema.max is not None
        rank = q * n
        seen = float(self.underflow)
        if rank <= seen:
            return self.extrema.min
        width = (self.hi - self.lo) / self.bins
        for i, c in enumerate(self.counts):
            if c and rank <= seen + c:
                frac = (rank - seen) / c
                approx = self.lo + (i + frac) * width
                return min(max(approx, self.extrema.min), self.extrema.max)
            seen += c
        return self.extrema.max

    def config_dict(self) -> dict[str, Any]:
        return {"kind": self.kind, "lo": self.lo, "hi": self.hi, "bins": self.bins}

    def state_dict(self) -> dict[str, Any]:
        return {
            **self.config_dict(),
            "counts": list(self.counts),
            "underflow": self.underflow,
            "overflow": self.overflow,
            "extrema": self.extrema.state_dict(),
        }

    @classmethod
    def from_state(cls, state: Mapping[str, Any]) -> "HistogramSketch":
        out = cls(state["lo"], state["hi"], state["bins"])
        out.counts = [int(c) for c in state["counts"]]
        out.underflow = int(state["underflow"])
        out.overflow = int(state["overflow"])
        extrema = accumulator_from_state(state["extrema"])
        assert isinstance(extrema, ExtremaAccumulator)
        out.extrema = extrema
        return out

    def summary(self) -> dict[str, Any]:
        return {
            "count": self.count,
            "min": self.extrema.min,
            "max": self.extrema.max,
            "p50": self.percentile(0.5),
            "p90": self.percentile(0.9),
            "underflow": self.underflow,
            "overflow": self.overflow,
        }


@_register
class CategoricalCountAccumulator(Accumulator):
    """Exact integer counts per category — the outcome-taxonomy aggregate.

    Folds one category name, or a whole ``{category: count}`` mapping (the
    shape of a per-point dependability record: outcome counts by kind or by
    ``mode/outcome``). Merge is per-category integer addition — trivially
    associative and commutative with the fresh accumulator as identity — so
    outcome curves built on this accumulator shard, batch and resume
    bit-identically under the same contract as the numeric accumulators.
    Zero counts fold to nothing: a category exists in the state only once a
    positive count arrived, keeping the canonical bytes independent of
    which all-zero records a shard happened to see.
    """

    kind = "catcount"

    def __init__(self) -> None:
        self.counts: dict[str, int] = {}

    def fold(self, value: Any, count: int = 1) -> None:
        if isinstance(value, Mapping):
            if count != 1:
                raise ValueError(
                    "count applies to single-category folds, not mappings"
                )
            for category, n in value.items():
                self._add(str(category), n)
        else:
            self._add(str(value), count)

    def _add(self, category: str, n: Any) -> None:
        if isinstance(n, bool) or not isinstance(n, int):
            raise TypeError(
                f"category counts must be ints: got {n!r} for {category!r}"
            )
        if n < 0:
            raise ValueError(
                f"category counts must be >= 0: got {n} for {category!r}"
            )
        if n:
            self.counts[category] = self.counts.get(category, 0) + n

    @property
    def total(self) -> int:
        """Total count over every category."""
        return sum(self.counts.values())

    def rate(self, category: str) -> float | None:
        """Exact share of ``category`` (None while nothing was counted)."""
        total = self.total
        if total == 0:
            return None
        return _as_float(Fraction(self.counts.get(category, 0), total))

    def rates(self) -> dict[str, float]:
        """Per-category shares, sorted by category (empty when empty)."""
        total = self.total
        if total == 0:
            return {}
        return {
            k: _as_float(Fraction(self.counts[k], total))
            for k in sorted(self.counts)
        }

    def _merged(
        self, other: "CategoricalCountAccumulator"
    ) -> "CategoricalCountAccumulator":
        out = CategoricalCountAccumulator()
        out.counts = dict(self.counts)
        for k, n in other.counts.items():
            out.counts[k] = out.counts.get(k, 0) + n
        return out

    def state_dict(self) -> dict[str, Any]:
        return {
            "kind": self.kind,
            "counts": {k: self.counts[k] for k in sorted(self.counts)},
        }

    @classmethod
    def from_state(cls, state: Mapping[str, Any]) -> "CategoricalCountAccumulator":
        out = cls()
        for k, n in state["counts"].items():
            out._add(str(k), int(n))
        return out

    def summary(self) -> dict[str, Any]:
        return {
            "total": self.total,
            "counts": self.state_dict()["counts"],
            "rates": self.rates(),
        }


@_register
class CurveAccumulator(Accumulator):
    """A binned curve: one sub-accumulator per x-key.

    Keys are arbitrary JSON values (scalars or ``[u_total, n, ...]`` tuples
    for multi-series curves), canonicalized to their JSON text so logically
    equal keys always share a bin. This is what weighted-schedulability
    curves stream into: key = the swept parameters, sub-accumulator = a
    :class:`WeightedMeanAccumulator`.
    """

    kind = "curve"

    def __init__(self, sub: Accumulator | None = None) -> None:
        self._prototype = sub if sub is not None else WeightedMeanAccumulator()
        if self._prototype.state_dict() != type(self._prototype)(
            **_config_kwargs(self._prototype)
        ).state_dict():
            raise ValueError("curve prototype accumulator must be empty")
        self.points: dict[str, Accumulator] = {}

    def _fresh(self) -> Accumulator:
        return type(self._prototype)(**_config_kwargs(self._prototype))

    def bin(self, key: Any) -> Accumulator:
        """The sub-accumulator of ``key`` (created empty on first use)."""
        k = canonical_json(key)
        acc = self.points.get(k)
        if acc is None:
            acc = self.points[k] = self._fresh()
        return acc

    def fold(self, key: Any, *args: Any, **kwargs: Any) -> None:
        self.bin(key).fold(*args, **kwargs)  # type: ignore[attr-defined]

    def _merged(self, other: "CurveAccumulator") -> "CurveAccumulator":
        out = CurveAccumulator(self._fresh())
        for k, acc in self.points.items():
            out.points[k] = acc.merge(self._fresh())
        for k, acc in other.points.items():
            if k in out.points:
                out.points[k] = out.points[k].merge(acc)
            else:
                out.points[k] = acc.merge(self._fresh())
        return out

    def items(self) -> list[tuple[Any, Accumulator]]:
        """``(parsed key, sub-accumulator)`` pairs, deterministically ordered."""
        return [
            (json.loads(k), acc) for k, acc in sorted(self.points.items())
        ]

    def config_dict(self) -> dict[str, Any]:
        return {"kind": self.kind, "sub": self._prototype.config_dict()}

    def state_dict(self) -> dict[str, Any]:
        return {
            **self.config_dict(),
            "points": {
                k: acc.state_dict() for k, acc in sorted(self.points.items())
            },
        }

    @classmethod
    def from_state(cls, state: Mapping[str, Any]) -> "CurveAccumulator":
        out = cls(_accumulator_from_config(state["sub"]))
        out.points = {
            k: accumulator_from_state(s) for k, s in state["points"].items()
        }
        return out

    def summary(self) -> dict[str, Any]:
        return {canonical_json(k): acc.summary() for k, acc in self.items()}


@_register
class SlotAccumulator(Accumulator):
    """A fixed set of named results (the paper-artifact aggregate).

    Each slot is written at most once per campaign (specs are deduplicated),
    so merge is a union; a conflicting double-write — two different values
    for one slot — violates the determinism contract and raises.
    """

    kind = "slots"

    def __init__(self) -> None:
        self.slots: dict[str, Any] = {}

    def fold(self, key: str, value: Any) -> None:
        self._set(str(key), value)

    def _set(self, key: str, value: Any) -> None:
        if key in self.slots and canonical_json(self.slots[key]) != canonical_json(value):
            raise ValueError(f"conflicting values for slot {key!r}")
        self.slots[key] = value

    def __getitem__(self, key: str) -> Any:
        return self.slots[key]

    def _merged(self, other: "SlotAccumulator") -> "SlotAccumulator":
        out = SlotAccumulator()
        for k, v in self.slots.items():
            out._set(k, v)
        for k, v in other.slots.items():
            out._set(k, v)
        return out

    def state_dict(self) -> dict[str, Any]:
        return {
            "kind": self.kind,
            "slots": {k: self.slots[k] for k in sorted(self.slots)},
        }

    @classmethod
    def from_state(cls, state: Mapping[str, Any]) -> "SlotAccumulator":
        out = cls()
        out.slots = dict(state["slots"])
        return out

    def summary(self) -> dict[str, Any]:
        return {"count": len(self.slots), "slots": self.state_dict()["slots"]}


def _config_kwargs(acc: Accumulator) -> dict[str, Any]:
    """Constructor kwargs recovering an *empty* clone of ``acc``'s shape."""
    config = dict(acc.config_dict())
    config.pop("kind")
    if isinstance(acc, CurveAccumulator):
        return {"sub": _accumulator_from_config(config["sub"])}
    return config


def _accumulator_from_config(config: Mapping[str, Any]) -> Accumulator:
    """Build an empty accumulator from a ``config_dict()``."""
    cls = _KINDS[config["kind"]]
    kwargs = dict(config)
    kwargs.pop("kind")
    if cls is CurveAccumulator:
        return CurveAccumulator(_accumulator_from_config(kwargs["sub"]))
    return cls(**kwargs)


def merge_states(
    a: Mapping[str, Any], b: Mapping[str, Any]
) -> dict[str, Any]:
    """Merge two ``Aggregator.state_dict()`` mappings metric-by-metric.

    This is the cross-process merge path: shard snapshots carry serialized
    accumulator states but no fold rules, so the merge works purely on
    states — rebuild each side, merge (which validates kind and config
    compatibility), serialize back. Exactness makes the result independent
    of merge order and byte-identical to single-process folding.
    """
    if set(a) != set(b):
        raise ValueError(
            f"cannot merge aggregate states with different metrics: "
            f"{sorted(a)} vs {sorted(b)}"
        )
    return {
        name: accumulator_from_state(a[name])
        .merge(accumulator_from_state(b[name]))
        .state_dict()
        for name in a
    }


# -- named-aggregate bundles ---------------------------------------------------


class Metric:
    """One named aggregate: an accumulator plus its fold rule.

    ``fold_fn(acc, spec, result)`` extracts whatever the metric measures
    from a finished point and folds it (or does nothing to skip the point).
    """

    def __init__(
        self,
        name: str,
        acc: Accumulator,
        fold_fn: Callable[[Accumulator, PointSpec, Any], None],
    ):
        self.name = name
        self.acc = acc
        self.fold = fold_fn


class Aggregator:
    """Named accumulators folding ``(spec, result)`` streams.

    The engine-facing bundle: :meth:`fold` consumes completed points,
    :meth:`merge` combines shards, :meth:`state_dict`/:meth:`load_state`
    round-trip the accumulator states for snapshot persistence, and
    :attr:`config_digest` fingerprints the aggregate's *shape* so a stale
    snapshot (different metrics or accumulator configs) is never silently
    resumed into.
    """

    def __init__(self, metrics: Sequence[Metric]):
        names = [m.name for m in metrics]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate metric names: {names}")
        self.metrics = list(metrics)

    def __getitem__(self, name: str) -> Accumulator:
        for m in self.metrics:
            if m.name == name:
                return m.acc
        raise KeyError(name)

    def fold(self, spec: PointSpec, result: Any) -> None:
        """Fold one finished point into every metric."""
        for m in self.metrics:
            m.fold(m.acc, spec, result)

    def merge(self, other: "Aggregator") -> "Aggregator":
        """Pure metric-wise merge (both sides need the same shape).

        Metrics pair by *name*, not position — independently constructed
        shards (the cross-process merge case) may list equal metrics in a
        different order, and equal kinds would merge silently wrong if
        paired positionally.
        """
        if self.config_digest != other.config_digest:
            raise ValueError("cannot merge aggregators with different configs")
        theirs = {m.name: m.acc for m in other.metrics}
        return Aggregator(
            [
                Metric(m.name, m.acc.merge(theirs[m.name]), m.fold)
                for m in self.metrics
            ]
        )

    @property
    def config_digest(self) -> str:
        """SHA-256 over the canonical metric-name → accumulator-config map."""
        shape = {m.name: m.acc.config_dict() for m in self.metrics}
        return hashlib.sha256(canonical_json(shape).encode("utf-8")).hexdigest()

    def state_dict(self) -> dict[str, Any]:
        return {m.name: m.acc.state_dict() for m in self.metrics}

    def load_state(self, state: Mapping[str, Any]) -> None:
        """Replace accumulator states with a persisted snapshot's."""
        if set(state) != {m.name for m in self.metrics}:
            raise ValueError(
                f"snapshot metrics {sorted(state)} do not match aggregator "
                f"metrics {sorted(m.name for m in self.metrics)}"
            )
        for m in self.metrics:
            acc = accumulator_from_state(state[m.name])
            if acc.config_dict() != m.acc.config_dict():
                raise ValueError(
                    f"snapshot config for metric {m.name!r} does not match"
                )
            m.acc = acc

    def summary(self) -> dict[str, Any]:
        return {m.name: m.acc.summary() for m in self.metrics}


# -- metric constructors -------------------------------------------------------

Extractor = Callable[[Mapping[str, Any], Any], Any]


def _extractor(how: str | Extractor | None) -> Extractor:
    """Normalize a value spec: result key (str), callable, or whole result."""
    if how is None:
        return lambda params, result: result
    if isinstance(how, str):
        return lambda params, result: (
            result.get(how) if isinstance(result, Mapping) else None
        )
    return how


def _param(name: str) -> Extractor:
    return lambda params, result: params.get(name)


def _guarded(
    experiment: str | None, extract: Extractor
) -> Callable[[PointSpec, Any], Any]:
    def pull(spec: PointSpec, result: Any) -> Any:
        if experiment is not None and spec.experiment != experiment:
            return None
        if isinstance(result, Mapping) and "error" in result:
            return None
        return extract(spec.params, result)

    return pull


def mean_metric(
    name: str,
    value: str | Extractor,
    *,
    experiment: str | None = None,
) -> Metric:
    """Exact mean/ratio of ``value`` over points (None values are skipped)."""
    pull = _guarded(experiment, _extractor(value))

    def fold(acc: Accumulator, spec: PointSpec, result: Any) -> None:
        v = pull(spec, result)
        if v is not None:
            acc.fold(v)  # type: ignore[attr-defined]

    return Metric(name, MeanAccumulator(), fold)


def extrema_metric(
    name: str,
    value: str | Extractor,
    *,
    experiment: str | None = None,
) -> Metric:
    """Running min/max of ``value`` over points."""
    pull = _guarded(experiment, _extractor(value))

    def fold(acc: Accumulator, spec: PointSpec, result: Any) -> None:
        v = pull(spec, result)
        if v is not None:
            acc.fold(v)  # type: ignore[attr-defined]

    return Metric(name, ExtremaAccumulator(), fold)


def histogram_metric(
    name: str,
    value: str | Extractor,
    *,
    lo: float,
    hi: float,
    bins: int = 32,
    experiment: str | None = None,
) -> Metric:
    """Percentile sketch of ``value`` over ``[lo, hi)``."""
    pull = _guarded(experiment, _extractor(value))

    def fold(acc: Accumulator, spec: PointSpec, result: Any) -> None:
        v = pull(spec, result)
        if v is not None:
            acc.fold(v)  # type: ignore[attr-defined]

    return Metric(name, HistogramSketch(lo, hi, bins), fold)


def curve_metric(
    name: str,
    key: str | Sequence[str] | Extractor,
    value: str | Extractor,
    *,
    weight: str | Extractor | None = None,
    experiment: str | None = None,
    sub: Accumulator | None = None,
) -> Metric:
    """A binned curve of ``value`` over the ``key`` parameter(s).

    ``key`` names one spec parameter, a list of them (multi-series curves),
    or a callable. With ``weight`` (a *result* key or callable — e.g. the
    generated task set's utilization) each bin is a
    :class:`WeightedMeanAccumulator`, which is exactly the
    weighted-schedulability construction; without it, a plain mean.
    ``sub`` overrides the per-bin accumulator entirely (e.g. an empty
    :class:`CategoricalCountAccumulator` for outcome-taxonomy curves) and
    is mutually exclusive with ``weight``.
    """
    if isinstance(key, str):
        key_fn: Extractor = _param(key)
    elif callable(key):
        key_fn = key
    else:
        names = list(key)
        key_fn = lambda params, result: [params.get(k) for k in names]  # noqa: E731
    pull = _guarded(experiment, _extractor(value))
    weigh = None if weight is None else _extractor(weight)
    if sub is None:
        sub = MeanAccumulator() if weight is None else WeightedMeanAccumulator()
    elif weight is not None:
        raise ValueError("curve_metric: pass either weight or sub, not both")

    def fold(acc: Accumulator, spec: PointSpec, result: Any) -> None:
        v = pull(spec, result)
        if v is None:
            return
        k = key_fn(spec.params, result)
        if weigh is None:
            acc.fold(k, v)  # type: ignore[attr-defined]
        else:
            w = weigh(spec.params, result)
            if w is None:
                return
            acc.fold(k, v, w)  # type: ignore[attr-defined]

    return Metric(name, CurveAccumulator(sub), fold)


def categorical_metric(
    name: str,
    value: str | Extractor,
    *,
    experiment: str | None = None,
) -> Metric:
    """Exact per-category counts of ``value`` over points.

    ``value`` extracts either a category name or a whole
    ``{category: count}`` mapping from each result (the per-point outcome
    taxonomy); None values skip the point.
    """
    pull = _guarded(experiment, _extractor(value))

    def fold(acc: Accumulator, spec: PointSpec, result: Any) -> None:
        v = pull(spec, result)
        if v is not None:
            acc.fold(v)  # type: ignore[attr-defined]

    return Metric(name, CategoricalCountAccumulator(), fold)


def slot_metric(
    name: str,
    key: Callable[[PointSpec], str],
    value: str | Extractor | None = None,
    *,
    experiment: str | None = None,
) -> Metric:
    """Collect a fixed, named set of point results (paper artifacts)."""
    pull = _guarded(experiment, _extractor(value))

    def fold(acc: Accumulator, spec: PointSpec, result: Any) -> None:
        v = pull(spec, result)
        if v is not None:
            acc.fold(key(spec), v)  # type: ignore[attr-defined]

    return Metric(name, SlotAccumulator(), fold)


__all__ = [
    "Accumulator",
    "Aggregator",
    "CategoricalCountAccumulator",
    "CurveAccumulator",
    "ExtremaAccumulator",
    "HistogramSketch",
    "MeanAccumulator",
    "Metric",
    "SlotAccumulator",
    "WeightedMeanAccumulator",
    "accumulator_from_state",
    "categorical_metric",
    "curve_metric",
    "extrema_metric",
    "histogram_metric",
    "mean_metric",
    "merge_states",
    "slot_metric",
]
