"""Declarative campaign preset registry.

Everything that defines what a campaign *preset* is — how its point grid
(or adaptive point source) is built, which streaming aggregate it folds
into, which capabilities its CLI surface exposes (``--axis`` overrides,
``--strategy adaptive``, store-vs-raise error handling), and how its
aggregate renders — used to live as private functions and parallel
name tuples inside ``repro.cli``, so no second consumer could exist.
This module bundles each preset into one :class:`PresetSpec` record and
keeps them in a process-wide registry: ``repro campaign``, ``repro
merge --preset``, the snapshot query layer (:mod:`repro.reporting`) and
the HTTP server (:mod:`repro.server`) are all thin consumers of the same
records, which is what keeps their rendered reports byte-identical.

The registry is *declarative*: a :class:`PresetSpec` carries factory
callables, not prebuilt objects, so constructing the registry imports
nothing heavy — the experiment modules load lazily, on first use, exactly
like the old CLI-private dispatch functions did.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, Callable, Mapping, Sequence

from repro.runner.aggregate import Aggregator
from repro.runner.grid import grid_specs, parse_axes
from repro.runner.source import GridSource, PointSource
from repro.runner.spec import PointSpec


class PresetError(ValueError):
    """A preset was asked for a capability it does not declare."""


def _normalize_axes(
    axes: "Mapping[str, Any] | Sequence[str] | None",
) -> dict[str, Any]:
    """Accept both CLI ``--axis KEY=V1,V2`` strings and plain mappings."""
    if axes is None:
        return {}
    if isinstance(axes, Mapping):
        return dict(axes)
    return parse_axes(list(axes))


@dataclass(frozen=True)
class PresetSpec:
    """One campaign preset: grid, aggregate, capabilities, renderers.

    The capability flags replace the drift-prone parallel name tuples the
    CLI used to keep (``_AXIS_PRESETS``, ``_ADAPTIVE_PRESETS``,
    ``_STORE_ERROR_PRESETS``): a preset's CLI wiring is now *derived* from
    its record, and a test asserts the two can never disagree again.

    ``specs_fn(axes, scenario)`` builds the exhaustive grid;
    ``aggregator_fn()`` the streaming aggregate; ``adaptive_fn(axes,
    scenario, ci_width, max_points)`` the adaptive refinement source (None
    for grid-only presets); ``render_fn(aggregator)`` the aggregate-state
    report shared by every consumer (None for presets rendered only from
    materialized per-point rows).
    """

    name: str
    description: str
    specs_fn: Callable[[dict[str, Any], "str | None"], list[PointSpec]]
    aggregator_fn: Callable[[], Aggregator]
    adaptive_fn: "Callable[..., PointSource] | None" = None
    render_fn: "Callable[[Aggregator], str] | None" = None
    #: ``--axis`` overrides apply (synthetic grids; the paper-artifact
    #: presets pin their exact point sets instead).
    axis_overridable: bool = False
    #: Failing points are stored and excluded instead of aborting (grids
    #: spanning infeasible corners of the generator space).
    store_errors: bool = False
    #: ``--scenario`` narrows the scenario axis (faultspace only).
    scenario_axis: bool = False
    #: ``repro campaign`` renders materialized per-point rows (these
    #: presets force ``collect=True`` on unsharded runs).
    row_rendered: bool = False
    #: Axis names of list-keyed curve metrics, for the query layer's
    #: curve-by-axis queries (pair-keyed curves are self-describing).
    curve_axes: Mapping[str, tuple[str, ...]] = field(default_factory=dict)

    @property
    def adaptive(self) -> bool:
        """True when the preset has an adaptive-refinement point source."""
        return self.adaptive_fn is not None

    @property
    def on_error(self) -> str:
        """The ``stream_campaign`` error policy this preset runs under."""
        return "store" if self.store_errors else "raise"

    # -- capability checks (the messages the CLI surfaces verbatim) -------

    def check_axes(self, axes_given: bool) -> None:
        if axes_given and not self.axis_overridable:
            raise PresetError(axis_override_message())

    def check_scenario(self, scenario_given: bool) -> None:
        if scenario_given and not self.scenario_axis:
            raise PresetError(scenario_message())

    def check_adaptive(self) -> None:
        if not self.adaptive:
            raise PresetError(adaptive_message())

    # -- construction ------------------------------------------------------

    def specs(
        self,
        axes: "Mapping[str, Any] | Sequence[str] | None" = None,
        scenario: "str | None" = None,
    ) -> list[PointSpec]:
        """The preset's exhaustive point grid (``--axis`` overrides applied)."""
        self.check_axes(bool(axes))
        self.check_scenario(scenario is not None)
        return self.specs_fn(_normalize_axes(axes), scenario)

    def aggregator(self) -> Aggregator:
        """A fresh instance of the preset's streaming aggregate."""
        return self.aggregator_fn()

    def adaptive_source(
        self,
        axes: "Mapping[str, Any] | Sequence[str] | None" = None,
        scenario: "str | None" = None,
        *,
        ci_width: "float | None" = None,
        max_points: "int | None" = None,
    ) -> PointSource:
        """The preset's adaptive refinement source (``--strategy adaptive``)."""
        self.check_adaptive()
        self.check_axes(bool(axes))
        self.check_scenario(scenario is not None)
        kwargs: dict[str, Any] = {
            "ci_width": DEFAULT_CI_WIDTH if ci_width is None else ci_width,
            "max_points": max_points,
        }
        if self.scenario_axis:
            kwargs["scenario"] = scenario
        return self.adaptive_fn(_normalize_axes(axes), **kwargs)

    def source(
        self,
        strategy: str = "grid",
        axes: "Mapping[str, Any] | Sequence[str] | None" = None,
        scenario: "str | None" = None,
        *,
        ci_width: "float | None" = None,
        max_points: "int | None" = None,
    ) -> PointSource:
        """Resolve a point-supply strategy name to the preset's source."""
        if strategy == "grid":
            return GridSource(self.specs(axes, scenario))
        if strategy == "adaptive":
            return self.adaptive_source(
                axes, scenario, ci_width=ci_width, max_points=max_points
            )
        raise PresetError(f"unknown point-source strategy {strategy!r}")

    # -- rendering ---------------------------------------------------------

    def render(self, aggregator: Aggregator) -> "str | None":
        """Render the aggregate-state report (None: rows-only preset)."""
        if self.render_fn is None:
            return None
        return self.render_fn(aggregator)


#: Convergence target ``--strategy adaptive`` refines toward by default.
DEFAULT_CI_WIDTH = 0.05

_REGISTRY: dict[str, PresetSpec] = {}


def register_preset(spec: PresetSpec) -> PresetSpec:
    """Add a preset to the registry (re-registering a name is an error)."""
    if spec.name in _REGISTRY:
        raise ValueError(f"preset {spec.name!r} is already registered")
    _REGISTRY[spec.name] = spec
    return spec


def get_preset(name: str) -> PresetSpec:
    """Look up a registered preset by name."""
    try:
        return _REGISTRY[name]
    except KeyError:
        raise PresetError(
            f"unknown preset {name!r}; known: {'/'.join(_REGISTRY)}"
        ) from None


def preset_names() -> tuple[str, ...]:
    """Every registered preset, in registration order."""
    return tuple(_REGISTRY)


def axis_preset_names() -> tuple[str, ...]:
    """Presets accepting ``--axis`` grid overrides."""
    return tuple(n for n, p in _REGISTRY.items() if p.axis_overridable)


def adaptive_preset_names() -> tuple[str, ...]:
    """Presets with an adaptive-refinement point source."""
    return tuple(n for n, p in _REGISTRY.items() if p.adaptive)


def scenario_preset_names() -> tuple[str, ...]:
    """Presets whose grids have a narrowable fault-scenario axis."""
    return tuple(n for n, p in _REGISTRY.items() if p.scenario_axis)


def axis_override_message() -> str:
    return f"--axis only applies to the {'/'.join(axis_preset_names())} presets"


def scenario_message() -> str:
    names = scenario_preset_names()
    noun = "preset" if len(names) == 1 else "presets"
    return f"--scenario only applies to the {'/'.join(names)} {noun}"


def adaptive_message() -> str:
    return (
        f"--strategy adaptive supports the "
        f"{'/'.join(adaptive_preset_names())} presets"
    )


# -- shared rendering helpers --------------------------------------------------


def format_value(value: Any) -> str:
    """One table cell: canonical formatting shared by every row renderer."""
    if isinstance(value, bool) or value is None:
        return str(value)
    if isinstance(value, float):
        return f"{value:.4f}"
    if isinstance(value, (dict, list)):
        return json.dumps(value, sort_keys=True)
    return str(value)


def render_rows(campaign: Any) -> str:
    """Generic per-experiment tables of a campaign's materialized rows."""
    from repro.viz import format_table

    groups: dict[str, list] = {}
    for spec, result in campaign.rows():
        groups.setdefault(spec.experiment, []).append((spec, result))
    blocks = []
    for experiment, rows in groups.items():
        param_keys = sorted(
            {
                k
                for spec, _ in rows
                for k in spec.params
                if k not in ("taskset", "partition")
            }
        )
        result_keys = sorted(
            {k for _, result in rows for k in result if isinstance(result, dict)}
        )
        table = format_table(
            param_keys + result_keys,
            [
                [format_value(spec.params.get(k, "")) for k in param_keys]
                + [
                    format_value(
                        result.get(k, "") if isinstance(result, dict) else result
                    )
                    for k in result_keys
                ]
                for spec, result in rows
            ],
        )
        blocks.append(f"== {experiment} ({len(rows)} points) ==\n{table}")
    return "\n\n".join(blocks)


# -- the built-in presets ------------------------------------------------------

#: Default grids of the synthetic campaign presets (overridable via --axis).
SCHED_AXES: dict[str, Any] = {
    "u_total": [0.5, 1.0, 1.5, 2.0],
    "n": [8],
    "rep": list(range(5)),
}
FAULTS_AXES: dict[str, Any] = {
    "rate": [0.01, 0.02, 0.05, 0.1],
    "cycles": [50],
    "rep": list(range(3)),
}


def _sched_curve_key(params: Mapping[str, Any], result: Any) -> Any:
    """Group sched points over reps: every non-rep, non-payload parameter."""
    return sorted(
        [k, v]
        for k, v in params.items()
        if k not in ("rep", "taskset", "partition")
    )


def _sched_specs(axes: dict[str, Any], scenario: "str | None") -> list[PointSpec]:
    return grid_specs("schedulability", {**SCHED_AXES, **axes})


def _faults_specs(axes: dict[str, Any], scenario: "str | None") -> list[PointSpec]:
    return grid_specs("fault-injection", {**FAULTS_AXES, **axes})


def _sched_aggregator() -> Aggregator:
    from repro.runner.aggregate import curve_metric

    return Aggregator(
        [
            curve_metric(
                "acceptance_partitioned", _sched_curve_key, "partitioned",
                experiment="schedulability",
            ),
            curve_metric(
                "acceptance_feasible", _sched_curve_key, "feasible",
                experiment="schedulability",
            ),
            curve_metric(
                "weighted_feasible", _sched_curve_key, "feasible",
                weight="utilization", experiment="schedulability",
            ),
        ]
    )


def _faults_aggregator() -> Aggregator:
    from repro.runner.aggregate import curve_metric, mean_metric

    return Aggregator(
        [
            curve_metric(
                "coverage",
                _sched_curve_key,
                lambda params, result: result["ft_misses"] == 0,
                experiment="fault-injection",
            ),
            mean_metric("injected", "injected", experiment="fault-injection"),
        ]
    )


def render_acceptance(aggregator: Aggregator) -> str:
    """Acceptance ratios of a ``schedulability`` campaign, grouped over reps.

    Rendered from the streamed ``acceptance_*`` curve aggregates (exact
    rational means), not from materialized per-point results.
    """
    from repro.viz import axis_sort_token, format_table

    feasible = aggregator["acceptance_feasible"]
    partitioned = aggregator["acceptance_partitioned"]
    items = sorted(
        feasible.items(), key=lambda item: [axis_sort_token(v) for _, v in item[0]]
    )
    if not items:
        return ""
    keys = [k for k, _ in items[0][0]]
    rows = []
    for key, acc in items:
        rows.append(
            [format_value(v) for _, v in key]
            + [
                acc.count,
                f"{partitioned.bin(key).mean:.2f}",
                f"{acc.mean:.2f}",
            ]
        )
    return "acceptance ratios (over reps):\n" + format_table(
        keys + ["reps", "partitioned", "feasible"], rows
    )


def render_weighted(aggregator: Aggregator) -> str:
    """The weighted preset's curve tables, ASCII curve plot + summary."""
    from repro.experiments.weighted import (
        render_weighted_ascii,
        weighted_curve_rows,
    )
    from repro.viz import format_curve_pivot

    blocks = []
    headers, rows = weighted_curve_rows(
        aggregator, "weighted_feasible", ["u_total", "n", "H"]
    )
    if rows:
        blocks.append(
            "weighted schedulability (utilization-weighted acceptance):\n"
            + format_curve_pivot(headers, rows, x="u_total")
        )
    plot = render_weighted_ascii(aggregator)
    if plot:
        blocks.append("weighted acceptance curves:\n" + plot)
    headers, rows = weighted_curve_rows(
        aggregator, "weighted_partitioned", ["u_total", "n", "H"]
    )
    if rows:
        blocks.append(
            "weighted partitioning success:\n"
            + format_curve_pivot(headers, rows, x="u_total")
        )
    headers, rows = weighted_curve_rows(
        aggregator, "fault_coverage", ["rate", "u_total"]
    )
    if rows:
        blocks.append(
            "weighted fault coverage (zero FT-miss campaigns):\n"
            + format_curve_pivot(headers, rows, x="rate")
        )
    summary = aggregator.summary()
    scalars = {
        "feasible_ratio": summary["feasible_ratio"]["mean"],
        "partitioned_ratio": summary["partitioned_ratio"]["mean"],
        "slack_ratio_p50": summary["slack_ratio"]["p50"],
        "max_period": summary["period"]["max"],
    }
    blocks.append(
        "summary: "
        + "  ".join(
            f"{k}={v:.3f}" if isinstance(v, float) else f"{k}={v}"
            for k, v in scalars.items()
        )
    )
    return "\n\n".join(blocks)


def format_figure4(pts: Any) -> str:
    return "\n".join(
        [
            "Figure 4 points (paper values in brackets):",
            f"  1. max P, EDF, Otot=0    : {pts.point1_max_period_edf:.3f}  [3.176]",
            f"  2. max P, RM,  Otot=0    : {pts.point2_max_period_rm:.3f}  [2.381]",
            f"  3. max Otot, EDF         : {pts.point3_max_overhead_edf:.3f}  [0.201]",
            f"  4. max Otot, RM          : {pts.point4_max_overhead_rm:.3f}  [0.129]",
            f"  5. max P, EDF, Otot=0.05 : {pts.point5_max_period_edf_otot:.3f}  [2.966]",
        ]
    )


def _table2_specs(axes: dict[str, Any], scenario: "str | None") -> list[PointSpec]:
    from repro.experiments.table2 import table2_specs

    return table2_specs()


def _table2_aggregator() -> Aggregator:
    from repro.experiments.table2 import table2_aggregator

    return table2_aggregator()


def _render_table2(aggregator: Aggregator) -> str:
    from repro.experiments.table2 import table2_from_aggregate

    return table2_from_aggregate(aggregator).render()


def _figure4_specs(axes: dict[str, Any], scenario: "str | None") -> list[PointSpec]:
    from repro.experiments.figure4 import figure4_specs

    return figure4_specs()


def _figure4_aggregator() -> Aggregator:
    from repro.experiments.figure4 import figure4_aggregator

    return figure4_aggregator()


def _render_figure4(aggregator: Aggregator) -> str:
    from repro.experiments.figure4 import figure4_points_from_aggregate

    return format_figure4(figure4_points_from_aggregate(aggregator))


def _ablations_specs(axes: dict[str, Any], scenario: "str | None") -> list[PointSpec]:
    from repro.experiments.ablations import ablation_specs

    return ablation_specs()


def _ablations_aggregator() -> Aggregator:
    from repro.experiments.ablations import ablation_aggregator

    return ablation_aggregator()


def _weighted_specs(axes: dict[str, Any], scenario: "str | None") -> list[PointSpec]:
    from repro.experiments.weighted import WEIGHTED_FAULT_AXES, weighted_specs

    return weighted_specs(
        sched_axes={k: v for k, v in axes.items() if k != "rate"},
        fault_axes={k: v for k, v in axes.items() if k in WEIGHTED_FAULT_AXES},
    )


def _weighted_aggregator() -> Aggregator:
    from repro.experiments.weighted import weighted_aggregator

    return weighted_aggregator()


def _weighted_adaptive(
    axes: dict[str, Any],
    *,
    ci_width: float,
    max_points: "int | None",
) -> PointSource:
    from repro.experiments.weighted import weighted_adaptive_source

    return weighted_adaptive_source(axes, ci_width=ci_width, max_points=max_points)


def _faultspace_specs(
    axes: dict[str, Any], scenario: "str | None"
) -> list[PointSpec]:
    from repro.experiments.faultspace import faultspace_specs

    return faultspace_specs(axes, scenario=scenario)


def _faultspace_aggregator() -> Aggregator:
    from repro.experiments.faultspace import faultspace_aggregator

    return faultspace_aggregator()


def _faultspace_adaptive(
    axes: dict[str, Any],
    *,
    scenario: "str | None",
    ci_width: float,
    max_points: "int | None",
) -> PointSource:
    from repro.experiments.faultspace import faultspace_adaptive_source

    return faultspace_adaptive_source(
        axes, scenario=scenario, ci_width=ci_width, max_points=max_points
    )


def _render_faultspace(aggregator: Aggregator) -> str:
    from repro.experiments.faultspace import render_faultspace

    return render_faultspace(aggregator)


def _online_specs(
    axes: dict[str, Any], scenario: "str | None"
) -> list[PointSpec]:
    from repro.experiments.online import online_specs

    return online_specs(axes, scenario=scenario)


def _online_aggregator() -> Aggregator:
    from repro.experiments.online import online_aggregator

    return online_aggregator()


def _render_online(aggregator: Aggregator) -> str:
    from repro.experiments.online import render_online

    return render_online(aggregator)


register_preset(
    PresetSpec(
        name="table2",
        description="the paper's Table 2 artifact as campaign points",
        specs_fn=_table2_specs,
        aggregator_fn=_table2_aggregator,
        render_fn=_render_table2,
    )
)
register_preset(
    PresetSpec(
        name="figure4",
        description="the paper's Figure 4 key points as campaign points",
        specs_fn=_figure4_specs,
        aggregator_fn=_figure4_aggregator,
        render_fn=_render_figure4,
    )
)
register_preset(
    PresetSpec(
        name="ablations",
        description="the design-choice ablation suite",
        specs_fn=_ablations_specs,
        aggregator_fn=_ablations_aggregator,
        row_rendered=True,
    )
)
register_preset(
    PresetSpec(
        name="sched",
        description="synthetic schedulability grid (acceptance ratios)",
        specs_fn=_sched_specs,
        aggregator_fn=_sched_aggregator,
        render_fn=render_acceptance,
        axis_overridable=True,
        row_rendered=True,
    )
)
register_preset(
    PresetSpec(
        name="faults",
        description="fault-injection grid (coverage over rates)",
        specs_fn=_faults_specs,
        aggregator_fn=_faults_aggregator,
        axis_overridable=True,
        row_rendered=True,
    )
)
register_preset(
    PresetSpec(
        name="weighted",
        description="weighted-schedulability sweep over the generator space",
        specs_fn=_weighted_specs,
        aggregator_fn=_weighted_aggregator,
        adaptive_fn=_weighted_adaptive,
        render_fn=render_weighted,
        axis_overridable=True,
        store_errors=True,
        curve_axes={
            "weighted_feasible": ("u_total", "n", "period_hyperperiod"),
            "weighted_partitioned": ("u_total", "n", "period_hyperperiod"),
            "fault_coverage": ("rate", "u_total"),
        },
    )
)
register_preset(
    PresetSpec(
        name="faultspace",
        description="dependability sweep: u_total x rate x fault scenario",
        specs_fn=_faultspace_specs,
        aggregator_fn=_faultspace_aggregator,
        adaptive_fn=_faultspace_adaptive,
        render_fn=_render_faultspace,
        axis_overridable=True,
        store_errors=True,
        scenario_axis=True,
        curve_axes={
            "outcomes": ("scenario", "rate"),
            "outcomes_by_mode": ("scenario", "rate"),
            "ft_miss": ("scenario", "rate"),
            "any_corruption": ("scenario", "rate"),
            "corrupted_jobs": ("scenario", "rate"),
        },
    )
)
register_preset(
    PresetSpec(
        name="online",
        description="event-driven online simulation: arrivals x load x scenario",
        specs_fn=_online_specs,
        aggregator_fn=_online_aggregator,
        render_fn=_render_online,
        axis_overridable=True,
        store_errors=True,
        scenario_axis=True,
        curve_axes={
            "acceptance": ("scenario", "arrival_rate", "cycle"),
            "reassign_latency": ("scenario", "arrival_rate"),
            "miss_window": ("scenario", "arrival_rate"),
            "orphaned": ("scenario", "arrival_rate"),
            "reassigned": ("scenario", "arrival_rate"),
            "lost": ("scenario", "arrival_rate"),
        },
    )
)


__all__ = [
    "DEFAULT_CI_WIDTH",
    "FAULTS_AXES",
    "PresetError",
    "PresetSpec",
    "SCHED_AXES",
    "adaptive_message",
    "adaptive_preset_names",
    "axis_override_message",
    "axis_preset_names",
    "format_figure4",
    "format_value",
    "get_preset",
    "preset_names",
    "register_preset",
    "render_acceptance",
    "render_rows",
    "render_weighted",
    "scenario_message",
    "scenario_preset_names",
]
