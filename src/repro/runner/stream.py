"""Streaming campaign execution: fold results as points complete.

:func:`run_campaign` materializes every point result — fine for the paper's
worked example, fatal for million-point sweeps. :func:`stream_campaign`
runs the same deterministic engine but hands each finished point straight to
an :class:`~repro.runner.aggregate.Aggregator` and forgets it, so peak
memory is O(accumulators + in-flight points), not O(points).

Because every accumulator is exact and order-insensitive (see
:mod:`repro.runner.aggregate`), the final aggregate is **bit-identical**
for any worker count, completion order, or cache state.

Point sources and rounds
------------------------
Where the points come from is a strategy (see :mod:`repro.runner.source`):
``stream_campaign`` accepts either a plain spec iterable — wrapped in a
:class:`~repro.runner.source.GridSource`, today's exhaustive behavior
bit-for-bit — or any :class:`~repro.runner.source.PointSource`. A source
emits successive *rounds* of specs; each round is fully executed and
folded before the source is asked for the next, so a feedback-driven
source (:class:`~repro.runner.source.AdaptiveRefinementSource`) observes
an exact, order-insensitive aggregate at every round boundary and plans
identically for any ``(workers, batch, shard)`` combination.

Snapshot persistence
--------------------
With a ``state_path`` (the CLI defaults it to ``<cache-dir>/aggregates/``),
the aggregate is periodically persisted as one canonical-JSON snapshot
recording the accumulator states plus the digests of every point already
folded. An interrupted or extended sweep resumes incrementally: points in
the snapshot are *skipped outright* — no recomputation, no cache read, no
re-fold — and only new points are evaluated and folded. Snapshots are keyed
by the aggregator's config digest and the campaign master seed, so a stale
snapshot (changed metrics, changed seed) is rejected instead of silently
merged into. Sources with state of their own (adaptive refinement) persist
it under the snapshot's ``"source"`` key and resume mid-campaign; grid
snapshots carry no such key, so their bytes are unchanged.
"""

from __future__ import annotations

import json
import os
import time
import warnings
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Callable, Iterable, Mapping, Sequence, TextIO

from repro import telemetry
from repro.runner.aggregate import Aggregator
from repro.runner.cache import ResultCache, atomic_write_text
from repro.runner.engine import (
    CampaignError,
    CampaignStats,
    default_workers,
    execute_points,
)
from repro.runner.points import get_experiment
from repro.runner.progress import ProgressReporter
from repro.runner.shard import ShardManifest, grid_digest, shard_of
from repro.runner.source import GridSource, PointSource, SnapshotError
from repro.runner.spec import PointSpec, canonical_json

#: Bump when the snapshot layout changes; old snapshots are rejected.
#: Schema 2 added the shard manifest (see :mod:`repro.runner.shard`).
#: Adaptive campaigns add optional ``source``/``planning`` keys; grid
#: snapshots are byte-identical to pre-source-strategy ones, so the
#: schema number is unchanged.
SNAPSHOT_SCHEMA = 2

#: Minor revision: additive, backward-readable snapshot changes. A reader
#: encountering a *higher* minor than it knows warns and proceeds (new
#: optional keys are ignorable by construction); a different major is still
#: refused. Minor 0 is never written — snapshots gain a ``schema_minor``
#: key only once a revision exists, so current bytes are unchanged.
SNAPSHOT_SCHEMA_MINOR = 0

#: Every key a current writer may put at a snapshot's top level. Anything
#: else was written by a newer minor revision (or by hand) — tolerated
#: with a warning, never an error.
_KNOWN_SNAPSHOT_KEYS = frozenset(
    {
        "schema",
        "schema_minor",
        "master_seed",
        "config",
        "shard",
        "folded",
        "failed",
        "aggregate",
        "partial",
        "missing_shards",
        "source",
        "planning",
    }
)


class SnapshotCompatWarning(UserWarning):
    """A snapshot from a newer minor revision was read best-effort."""


def check_snapshot_compat(
    snap: Mapping[str, Any],
    where: Any,
    *,
    error: type[Exception] = SnapshotError,
) -> None:
    """Schema compatibility gate shared by every snapshot reader.

    Major mismatch raises ``error`` (layout changed — reading on would
    corrupt); a newer *minor* revision or unknown top-level keys only warn
    (:class:`SnapshotCompatWarning`) and proceed, so clients of a newer
    server can still fold what they understand.
    """
    if snap.get("schema") != SNAPSHOT_SCHEMA:
        raise error(
            f"snapshot {where} has schema {snap.get('schema')!r}, "
            f"expected {SNAPSHOT_SCHEMA}"
        )
    minor = snap.get("schema_minor", 0)
    if not isinstance(minor, int) or minor > SNAPSHOT_SCHEMA_MINOR:
        warnings.warn(
            f"snapshot {where} has schema minor {minor!r}, newer than this "
            f"reader's {SNAPSHOT_SCHEMA_MINOR}; reading best-effort",
            SnapshotCompatWarning,
            stacklevel=2,
        )
    unknown = sorted(set(snap) - _KNOWN_SNAPSHOT_KEYS)
    if unknown:
        warnings.warn(
            f"snapshot {where} has unknown top-level key(s) "
            f"{', '.join(map(repr, unknown))}; ignoring them",
            SnapshotCompatWarning,
            stacklevel=2,
        )


#: Persist the snapshot at least every this many newly folded points. Each
#: flush rewrites the whole snapshot (aggregate + folded digests), so the
#: effective interval scales with campaign size — max(this, unique/64) —
#: to keep total snapshot I/O linear-ish instead of quadratic in points.
_FLUSH_EVERY = 256


@dataclass(frozen=True)
class StreamStats(CampaignStats):
    """Engine bookkeeping plus the streaming-specific counters."""

    folded: int = 0
    skipped: int = 0
    #: Completed batches the engine handed back (0 when nothing computed).
    batches: int = 0
    #: Rounds the point source emitted (1 for a plain grid campaign).
    rounds: int = 0
    #: Points this shard owned in each round, in round order.
    round_sizes: "tuple[int, ...]" = ()
    #: Bins still short of the convergence target when an adaptive source
    #: stopped (None for sources without a convergence notion).
    open_bins: int | None = None
    #: Other shards' points this shard evaluated so an adaptive source
    #: could observe the full aggregate between rounds (0 otherwise).
    planning_points: int = 0
    #: Analysis calls that ran on the integer fast kernels vs. the float
    #: fallback across every *computed* point (cached/skipped points report
    #: nothing — their kernel selections happened in an earlier run). See
    #: :mod:`repro.analysis.kernels`.
    kernel_fast: int = 0
    kernel_fallback: int = 0


@dataclass
class StreamResult:
    """What a streaming campaign returns: the aggregate, not the points."""

    aggregator: Aggregator
    stats: StreamStats
    specs: list[PointSpec]
    #: Per-spec results, only populated with ``collect=True`` (CLI ``--out``).
    results: list[Any] | None = None

    def rows(self) -> list[tuple[PointSpec, Any]]:
        """``(spec, result)`` pairs — requires ``collect=True``."""
        if self.results is None:
            raise ValueError("stream_campaign(collect=False) kept no results")
        return list(zip(self.specs, self.results))

    def to_json(self) -> str:
        """Canonical spec/result JSON (``collect=True`` runs only)."""
        return canonical_json(
            [{"spec": s.to_dict(), "result": r} for s, r in self.rows()]
        )

    def aggregate_json(self) -> str:
        """Canonical JSON of the aggregate state — the bytes CI diffs."""
        return canonical_json(self.aggregator.state_dict())


def _timed_rounds(rounds: "Iterable[Sequence[PointSpec]]"):
    """Yield rounds, timing each planning step as a ``plan`` span.

    Planning happens inside the source's generator between yields; pulling
    items through ``next`` under a span attributes that time without
    restructuring the campaign loop.
    """
    iterator = iter(rounds)
    while True:
        with telemetry.span("plan"):
            batch = next(iterator, _ROUNDS_DONE)
        if batch is _ROUNDS_DONE:
            return
        yield batch


_ROUNDS_DONE = object()


def _read_snapshot(path: Path) -> dict[str, Any] | None:
    """Parse a snapshot file; None when missing, unreadable, or corrupt."""
    try:
        snap = json.loads(path.read_text())
    except (OSError, ValueError):
        return None
    return snap if isinstance(snap, dict) else None


def _validate_snapshot_core(
    snap: Mapping[str, Any],
    path: Path,
    aggregator: Aggregator,
    master_seed: int,
) -> None:
    """Schema/seed/config/partial checks shared by every resume path."""
    check_snapshot_compat(snap, path)
    if snap.get("master_seed") != master_seed:
        raise SnapshotError(
            f"snapshot {path} was built with master seed "
            f"{snap.get('master_seed')!r}, not {master_seed}"
        )
    if snap.get("config") != aggregator.config_digest:
        raise SnapshotError(
            f"snapshot {path} does not match this aggregator's shape "
            f"(config digest mismatch)"
        )
    if snap.get("partial"):
        # A partial-merge preview (`repro merge --allow-partial`) unions
        # several shards' folds under the trivial manifest; resuming a
        # campaign from it would silently skip whole shards of points.
        raise SnapshotError(
            f"snapshot {path} is a partial-merge preview "
            f"(missing shards {snap.get('missing_shards')}); previews "
            f"cannot seed a campaign resume"
        )


def load_snapshot(
    path: str | os.PathLike,
    aggregator: Aggregator,
    master_seed: int,
    shard: ShardManifest | None = None,
) -> tuple[set[str], set[str]]:
    """Resume ``aggregator`` from a snapshot; returns (folded, failed) digests.

    A missing or unreadable/corrupt snapshot starts fresh (empty sets); a
    *readable* snapshot with a mismatched schema, master seed, or aggregator
    shape raises :class:`SnapshotError` — silently dropping or merging an
    incompatible aggregate would corrupt the resumed campaign.

    When resuming a *sharded* campaign (``shard`` with ``count > 1``), the
    snapshot's manifest must match the shard exactly — folding shard 1/3's
    points into a snapshot claiming to be shard 2/3, or into a shard of a
    different grid, would poison the eventual merge. Unsharded campaigns
    stay permissive: extending a grid into an existing snapshot is the
    documented incremental-resume path.

    Snapshots written by a stateful point source (adaptive campaigns carry
    a ``"source"`` key) are refused here: resuming one requires handing the
    state back to the matching source, which only
    :func:`stream_campaign` can do.
    """
    path = Path(path)
    snap = _read_snapshot(path)
    if snap is None:
        return set(), set()
    _validate_snapshot_core(snap, path, aggregator, master_seed)
    if snap.get("source") is not None:
        raise SnapshotError(
            f"snapshot {path} was written by a "
            f"{snap['source'].get('strategy', '?')!r} point source; resume "
            f"it through stream_campaign with the matching source"
        )
    if shard is not None and shard.count > 1:
        stored = snap.get("shard")
        stored_key = (
            (stored.get("index"), stored.get("count"), stored.get("grid"))
            if isinstance(stored, dict)
            else None
        )
        if stored_key != (shard.index, shard.count, shard.grid):
            raise SnapshotError(
                f"snapshot {path} belongs to a different shard or grid "
                f"(have {stored_key}, resuming shard "
                f"{shard.index}/{shard.count} of grid {shard.grid[:16]}…)"
            )
    aggregator.load_state(snap["aggregate"])
    return set(snap["folded"]), set(snap.get("failed", []))


def snapshot_dict(
    *,
    config: str,
    master_seed: int,
    folded: set[str],
    failed: set[str],
    aggregate: Mapping[str, Any],
    shard: ShardManifest,
    missing_shards: "Sequence[int] | None" = None,
    source: "Mapping[str, Any] | None" = None,
    planning: "Mapping[str, Any] | None" = None,
) -> dict[str, Any]:
    """The canonical snapshot payload — the single layout both
    :func:`save_snapshot` and :func:`repro.runner.shard.merge_snapshots`
    emit, so a merged snapshot can be byte-compared against a live one.

    ``missing_shards`` marks a *partial-merge preview* (``repro merge
    --allow-partial``): the payload gains ``"partial": true`` plus the
    missing-shard list, so a preview can never be byte-confused with — or
    resumed/merged as — a complete campaign snapshot.

    ``source`` is a stateful point source's resume state (adaptive
    campaigns); ``planning`` is a sharded adaptive campaign's in-flight
    cross-shard planning aggregate. Both keys are simply omitted when
    None, so grid snapshots keep their pre-source-strategy bytes.
    """
    snap = {
        "schema": SNAPSHOT_SCHEMA,
        "master_seed": master_seed,
        "config": config,
        "shard": shard.to_dict(),
        "folded": sorted(folded),
        "failed": sorted(failed),
        "aggregate": dict(aggregate),
    }
    if missing_shards is not None:
        snap["partial"] = True
        snap["missing_shards"] = sorted(missing_shards)
    if source is not None:
        snap["source"] = dict(source)
    if planning is not None:
        snap["planning"] = dict(planning)
    return snap


def save_snapshot(
    path: str | os.PathLike,
    aggregator: Aggregator,
    master_seed: int,
    folded: set[str],
    failed: set[str] = frozenset(),  # type: ignore[assignment]
    shard: ShardManifest | None = None,
    *,
    source: "Mapping[str, Any] | None" = None,
    planning: "Mapping[str, Any] | None" = None,
) -> None:
    """Atomically persist the aggregate + folded/failed point digests.

    Without an explicit ``shard`` manifest the snapshot records the trivial
    0/1 manifest covering exactly the folded/failed points (direct callers;
    :func:`stream_campaign` always passes the campaign's real manifest).
    """
    path = Path(path)
    if shard is None:
        shard = ShardManifest.full(set(folded) | set(failed))
    snap = snapshot_dict(
        config=aggregator.config_digest,
        master_seed=master_seed,
        folded=folded,
        failed=failed,
        aggregate=aggregator.state_dict(),
        shard=shard,
        source=source,
        planning=planning,
    )
    atomic_write_text(path, canonical_json(snap))


def stream_campaign(
    specs: "Iterable[PointSpec] | PointSource",
    aggregator: Aggregator,
    *,
    workers: int | None = 1,
    master_seed: int = 0,
    cache_dir: str | os.PathLike | None = None,
    state_path: str | os.PathLike | None = None,
    collect: bool = False,
    progress: bool | ProgressReporter = False,
    progress_stream: TextIO | None = None,
    on_error: str = "raise",
    shard: "ShardManifest | tuple[int, int] | None" = None,
    batch_size: int | None = None,
    planning_aggregator: Aggregator | None = None,
    on_delta: "Callable[[Mapping[str, Any]], None] | None" = None,
) -> StreamResult:
    """Run a campaign, folding each finished point into ``aggregator``.

    ``specs`` is either a spec iterable — wrapped in a
    :class:`~repro.runner.source.GridSource`, preserving the historical
    behavior bit-for-bit — or a :class:`~repro.runner.source.PointSource`
    whose rounds are executed and folded in sequence.

    Same execution contract as :func:`~repro.runner.engine.run_campaign`
    (determinism, caching, dedup) with three differences:

    * results are folded and dropped — set ``collect=True`` to also keep
      the aligned per-spec result list (back to O(points) memory);
    * with ``state_path``, aggregation itself is resumable: already-folded
      points are skipped without touching cache or pool;
    * failing points are never folded or cached. ``on_error="store"``
      records ``{"error": ...}`` in the collected results (if any), keeps
      going, and persists the failing digests in the snapshot — a resumed
      ``store`` run skips known failures instead of re-evaluating them
      (deterministic points fail identically every time).

    ``shard`` declares this run evaluates one shard of a larger campaign
    (see :mod:`repro.runner.shard`). Two forms:

    * a prebuilt :class:`~repro.runner.shard.ShardManifest` — only valid
      for upfront sources (grids): the specs must match the manifest's
      coverage exactly, and the snapshot is tagged with the manifest so
      ``repro merge`` can validate it;
    * an ``(index, count)`` tuple — ownership is derived per point via
      :func:`~repro.runner.shard.shard_of`. For grids this is equivalent
      to pre-narrowing; for adaptive sources it is the *only* form, since
      the point set is not known upfront — the manifest is rebuilt each
      round over the points emitted so far.

    A sharded *feedback* source must observe every shard's folds to plan
    rounds identically everywhere, so each shard also evaluates the other
    shards' points into ``planning_aggregator`` (required in that case; a
    shared ``cache_dir`` lets shards reuse each other's planning work).
    Only owned points reach ``aggregator``, the snapshot's folded set, and
    the manifest — adaptive shards therefore merge byte-identically to the
    unsharded run.

    Without ``shard`` the snapshot carries the trivial 0/1 manifest over
    the campaign's own point set.

    ``batch_size`` packs that many points into each pool task (``None``
    auto-sizes, see :func:`~repro.runner.engine.auto_batch_size`); cache
    entries are written per batch through
    :meth:`~repro.runner.cache.ResultCache.put_many` and completed batches
    fold as they arrive. Results, aggregates and snapshots are
    **bit-identical** for every ``(workers, batch_size)`` combination —
    batching only changes how work is packed, never what a point computes
    or how folds combine.

    ``on_delta`` is a progress observer for live consumers (the
    ``repro serve`` delta stream): it is called with a counters mapping
    (``event``, ``folded``, ``failed``, ``cached``, ``computed``,
    ``errors``, ``rounds``, ``batches``) after each round's cache scan
    (``event="scan"``) and after each completed batch folds
    (``event="batch"``). Emission *cadence* depends on worker scheduling
    and is deliberately outside the determinism contract — only the final
    aggregate is bit-identical; the hook must not mutate campaign state.
    """
    if on_error not in ("raise", "store"):
        raise ValueError(f"on_error must be 'raise' or 'store': got {on_error!r}")
    source = specs if isinstance(specs, PointSource) else GridSource(specs)
    upfront = source.upfront_specs()
    dynamic = upfront is None

    if isinstance(shard, ShardManifest):
        if dynamic:
            raise ValueError(
                "a prebuilt shard manifest requires an upfront point "
                "source; pass shard=(index, count) for adaptive sources"
            )
        manifest: ShardManifest = shard
        shard_index, shard_count = shard.index, shard.count
    elif shard is not None:
        shard_index, shard_count = int(shard[0]), int(shard[1])
        if shard_count < 1 or not (0 <= shard_index < shard_count):
            raise ValueError(f"invalid shard {shard_index}/{shard_count}")
        manifest = ShardManifest(
            index=shard_index, count=shard_count, grid=grid_digest(()), points=()
        )
    else:
        shard_index, shard_count = 0, 1
        manifest = ShardManifest.full(())

    sharded_dynamic = dynamic and shard_count > 1
    if sharded_dynamic:
        if planning_aggregator is None:
            raise ValueError(
                "a sharded feedback source needs a planning_aggregator to "
                "observe the other shards' folds"
            )
        if planning_aggregator.config_digest != aggregator.config_digest:
            raise ValueError(
                "planning_aggregator must have the same configuration as "
                "the output aggregator (config digest mismatch)"
            )
    planning_view = planning_aggregator if sharded_dynamic else aggregator

    if not dynamic:
        for spec in upfront:
            get_experiment(spec.experiment)  # fail fast on unknown experiments
        upfront_unique: dict[str, PointSpec] = {}
        for spec in upfront:
            upfront_unique.setdefault(spec.digest, spec)
        if isinstance(shard, ShardManifest):
            if set(upfront_unique) != set(manifest.points):
                raise ValueError(
                    f"specs do not match the shard manifest: got "
                    f"{len(upfront_unique)} unique point(s), manifest "
                    f"{manifest.index}/{manifest.count} covers "
                    f"{len(manifest.points)}"
                )
            owned_upfront = len(manifest.points)
        elif shard is not None:
            manifest = ShardManifest.for_shard(
                upfront_unique.values(), shard_index, shard_count
            )
            owned_upfront = len(manifest.points)
        else:
            manifest = ShardManifest.full(upfront_unique)
            owned_upfront = len(upfront_unique)
    else:
        owned_upfront = 0

    workers = default_workers() if workers is None else max(1, int(workers))
    cache = ResultCache(cache_dir) if cache_dir is not None else None
    start = time.monotonic()

    folded: set[str] = set()
    failed: set[str] = set()
    planning_folded: set[str] = set()
    planning_failed: set[str] = set()
    resumed_complete = False
    if state_path is not None:
        path = Path(state_path)
        snap = _read_snapshot(path)
        if snap is not None:
            _validate_snapshot_core(snap, path, aggregator, master_seed)
            if shard_count > 1:
                stored = snap.get("shard")
                stored_key = (
                    (stored.get("index"), stored.get("count"), stored.get("grid"))
                    if isinstance(stored, dict)
                    else None
                )
                if dynamic:
                    # An adaptive shard's manifest grows round by round, so
                    # only the shard *identity* must match on resume.
                    if stored_key is None or stored_key[:2] != (
                        shard_index,
                        shard_count,
                    ):
                        raise SnapshotError(
                            f"snapshot {path} belongs to a different shard "
                            f"(have {stored_key and stored_key[:2]}, resuming "
                            f"shard {shard_index}/{shard_count})"
                        )
                elif stored_key != (
                    manifest.index,
                    manifest.count,
                    manifest.grid,
                ):
                    raise SnapshotError(
                        f"snapshot {path} belongs to a different shard or "
                        f"grid (have {stored_key}, resuming shard "
                        f"{manifest.index}/{manifest.count} of grid "
                        f"{manifest.grid[:16]}…)"
                    )
            src_state = snap.get("source")
            if src_state is not None:
                source.load_state(src_state)
            elif source.needs_feedback and (
                snap.get("folded") or snap.get("failed")
            ):
                raise SnapshotError(
                    f"snapshot {path} has folded points but no source "
                    f"state; it was not written by an adaptive campaign"
                )
            aggregator.load_state(snap["aggregate"])
            folded = set(snap["folded"])
            failed = set(snap.get("failed", []))
            resumed_complete = src_state is not None and source.is_complete
            if sharded_dynamic and not resumed_complete:
                planning = snap.get("planning")
                if planning is not None:
                    planning_aggregator.load_state(planning["aggregate"])
                    planning_folded = set(planning["folded"])
                elif folded or failed:
                    raise SnapshotError(
                        f"snapshot {path} is an in-flight sharded adaptive "
                        f"snapshot without planning state; it cannot be "
                        f"resumed"
                    )
    initial_folded = frozenset(folded)

    reporter: ProgressReporter | None
    if isinstance(progress, ProgressReporter):
        reporter = progress
    elif progress:
        reporter = ProgressReporter(owned_upfront, stream=progress_stream)
    else:
        reporter = None

    collected: dict[str, Any] | None = {} if collect else None
    cached = computed = errors = 0
    resumed_failed = 0
    already_folded = 0
    new_folds = 0
    flush_every = max(_FLUSH_EVERY, owned_upfront // 64)

    unique: dict[str, PointSpec] = {}
    planning_seen: set[str] = set()
    ordered_specs: list[PointSpec] = []
    round_sizes: list[int] = []
    rounds_run = 0
    batches = 0
    effective_batch: int | None = None
    kernel_totals: dict[str, int] = {"fast": 0, "fallback": 0}

    def owns(digest: str) -> bool:
        return shard_count == 1 or shard_of(digest, shard_count) == shard_index

    def flush(force: bool = False) -> None:
        nonlocal new_folds
        if state_path is None:
            return
        if force or new_folds >= flush_every:
            planning_blob = None
            if sharded_dynamic and not source.is_complete:
                planning_blob = {
                    "folded": sorted(planning_folded),
                    "aggregate": planning_aggregator.state_dict(),
                }
            with telemetry.span("snapshot"):
                save_snapshot(
                    state_path,
                    aggregator,
                    master_seed,
                    folded,
                    failed,
                    manifest,
                    source=source.state_dict(),
                    planning=planning_blob,
                )
            telemetry.count("campaign.snapshots")
            new_folds = 0

    def fold_planning(spec: PointSpec, result: Any) -> None:
        # No flush here: callers flush after *all* bookkeeping for the
        # point is done, so a snapshot never records a fold whose digest
        # is missing from the folded set.
        nonlocal new_folds
        if spec.digest not in planning_folded:
            planning_aggregator.fold(spec, result)
            planning_folded.add(spec.digest)
            new_folds += 1

    def finish(spec: PointSpec, ok: bool, result: Any) -> None:
        nonlocal errors, new_folds
        if not owns(spec.digest):
            # Another shard's point, evaluated only so the feedback source
            # can observe the full aggregate: folds into the planning view,
            # never into the output aggregate or the snapshot's folded set.
            if not ok:
                if on_error == "raise":
                    raise CampaignError(spec, result)
                planning_failed.add(spec.digest)
                if reporter:
                    reporter.update(error=True)
                return
            fold_planning(spec, result)
            flush()
            if reporter:
                reporter.update()
            return
        if not ok:
            if on_error == "raise":
                raise CampaignError(spec, result)
            errors += 1
            if spec.digest not in failed:
                failed.add(spec.digest)
                new_folds += 1
                flush()
            if collected is not None:
                collected[spec.digest] = {"error": result}
            if reporter:
                reporter.update(error=True)
            return
        if collected is not None:
            collected[spec.digest] = result
        if spec.digest not in folded:
            aggregator.fold(spec, result)
            folded.add(spec.digest)
            new_folds += 1
            if sharded_dynamic:
                fold_planning(spec, result)
            flush()
        if reporter:
            reporter.update()

    def emit_delta(event: str) -> None:
        if on_delta is None:
            return
        on_delta(
            {
                "event": event,
                "folded": len(folded),
                "failed": len(failed),
                "cached": cached,
                "computed": computed,
                "errors": errors,
                "rounds": rounds_run,
                "batches": batches,
            }
        )

    def on_complete_batch(
        batch: list[tuple[PointSpec, bool, Any, float]]
    ) -> None:
        nonlocal batches
        batches += 1
        if reporter:
            reporter.note_batch()
        if cache is not None:
            with telemetry.span("write"):
                cache.put_many(
                    (spec, master_seed, result, elapsed)
                    for spec, ok, result, elapsed in batch
                    if ok
                )
        with telemetry.span("fold"):
            for spec, ok, result, _elapsed in batch:
                finish(spec, ok, result)
        emit_delta("batch")

    with telemetry.span("campaign"):
        for round_specs in _timed_rounds(source.rounds(planning_view)):
            rounds_run += 1
            telemetry.count("campaign.rounds")
            owned_round = 0
            for spec in round_specs:
                if dynamic:
                    get_experiment(spec.experiment)
                digest = spec.digest
                if owns(digest):
                    owned_round += 1
                    ordered_specs.append(spec)
                    if digest not in unique:
                        unique[digest] = spec
                        if digest in initial_folded:
                            already_folded += 1
                elif sharded_dynamic:
                    planning_seen.add(digest)
                # else: grid shard narrowing — other shards' points are
                # simply not this run's work (no feedback to serve).
            round_sizes.append(owned_round)

            if dynamic:
                if shard_count > 1:
                    manifest = ShardManifest(
                        index=shard_index,
                        count=shard_count,
                        grid=grid_digest(set(unique) | planning_seen),
                        points=tuple(unique),
                    )
                else:
                    manifest = ShardManifest.full(unique)
                flush_every = max(
                    _FLUSH_EVERY, (len(unique) + len(planning_seen)) // 64
                )
                if reporter:
                    reporter.grow(
                        len(unique) + len(planning_seen) - reporter.total
                    )

            # Points already in the snapshot are done: no cache read, no
            # compute, no re-fold. Known-failed points are skipped the same
            # way in "store" mode (deterministic evaluation fails
            # identically on every re-run). Both shortcuts are off when the
            # caller wants the raw results back.
            todo: list[PointSpec] = []
            owned_todo = 0
            round_seen: set[str] = set()
            with telemetry.span("scan"):
                for spec in round_specs:
                    digest = spec.digest
                    if digest in round_seen:
                        continue
                    round_seen.add(digest)
                    if not owns(digest):
                        if not sharded_dynamic:
                            continue
                        if digest in planning_folded or digest in planning_failed:
                            if reporter:
                                reporter.update(cached=True)
                            continue
                        hit = (
                            cache.get(spec, master_seed)
                            if cache is not None
                            else None
                        )
                        if hit is not None:
                            fold_planning(spec, hit)
                            flush()
                            if reporter:
                                reporter.update(cached=True)
                        else:
                            todo.append(spec)
                        continue
                    if digest in folded and collected is None:
                        if reporter:
                            reporter.update(cached=True)
                        continue
                    if (
                        digest in failed
                        and collected is None
                        and on_error == "store"
                    ):
                        errors += 1
                        resumed_failed += 1
                        if reporter:
                            reporter.update(error=True)
                        continue
                    hit = (
                        cache.get(spec, master_seed)
                        if cache is not None
                        else None
                    )
                    if hit is not None:
                        cached += 1
                        if collected is not None:
                            collected[digest] = hit
                        if digest not in folded:
                            aggregator.fold(spec, hit)
                            folded.add(digest)
                            new_folds += 1
                            if sharded_dynamic:
                                fold_planning(spec, hit)
                            flush()
                        if reporter:
                            reporter.update(cached=True)
                    else:
                        todo.append(spec)
                        owned_todo += 1

            emit_delta("scan")
            computed += owned_todo
            with telemetry.span("execute"):
                eb = execute_points(
                    todo,
                    workers,
                    master_seed,
                    on_complete_batch,
                    # persist what has been folded so far even when a point
                    # aborts the campaign — a resumed run then skips
                    # everything already aggregated
                    on_abort=lambda: flush(force=True),
                    batch_size=batch_size,
                    kernel_totals=kernel_totals,
                )
            if effective_batch is None:
                effective_batch = eb

        if effective_batch is None:
            # No rounds ran (empty grid, or a resumed-complete adaptive
            # snapshot); report the batch size an empty execution would use.
            effective_batch = execute_points(
                [], workers, master_seed, on_complete_batch, batch_size=batch_size
            )

        if not (dynamic and rounds_run == 0 and resumed_complete):
            # A resumed-complete adaptive run replans nothing; rewriting the
            # snapshot would shrink its manifest to the (empty) point set
            # seen this run and corrupt it.
            flush(force=True)
    computed -= errors - resumed_failed

    results: list[Any] | None = None
    if collected is not None:
        results = [collected[spec.digest] for spec in ordered_specs]

    return StreamResult(
        aggregator=aggregator,
        specs=ordered_specs,
        results=results,
        stats=StreamStats(
            total=len(ordered_specs),
            unique=len(unique),
            computed=computed,
            cached=cached,
            errors=errors,
            elapsed=time.monotonic() - start,
            workers=workers,
            batch_size=effective_batch,
            folded=len(folded & set(unique)) - already_folded,
            skipped=already_folded + resumed_failed,
            batches=batches,
            rounds=rounds_run,
            round_sizes=tuple(round_sizes),
            open_bins=source.open_bins,
            planning_points=len(planning_seen),
            kernel_fast=kernel_totals.get("fast", 0),
            kernel_fallback=kernel_totals.get("fallback", 0),
        ),
    )


def fold_rows(
    aggregator: Aggregator, rows: Iterable[tuple[PointSpec, Any]]
) -> Aggregator:
    """Fold already-materialized ``(spec, result)`` pairs (post-hoc path)."""
    for spec, result in rows:
        if isinstance(result, dict) and "error" in result:
            continue
        aggregator.fold(spec, result)
    return aggregator


__all__ = [
    "SNAPSHOT_SCHEMA",
    "SNAPSHOT_SCHEMA_MINOR",
    "SnapshotCompatWarning",
    "SnapshotError",
    "check_snapshot_compat",
    "StreamResult",
    "StreamStats",
    "fold_rows",
    "load_snapshot",
    "save_snapshot",
    "snapshot_dict",
    "stream_campaign",
]
