"""Streaming campaign execution: fold results as points complete.

:func:`run_campaign` materializes every point result — fine for the paper's
worked example, fatal for million-point sweeps. :func:`stream_campaign`
runs the same deterministic engine but hands each finished point straight to
an :class:`~repro.runner.aggregate.Aggregator` and forgets it, so peak
memory is O(accumulators + in-flight points), not O(points).

Because every accumulator is exact and order-insensitive (see
:mod:`repro.runner.aggregate`), the final aggregate is **bit-identical**
for any worker count, completion order, or cache state.

Snapshot persistence
--------------------
With a ``state_path`` (the CLI defaults it to ``<cache-dir>/aggregates/``),
the aggregate is periodically persisted as one canonical-JSON snapshot
recording the accumulator states plus the digests of every point already
folded. An interrupted or extended sweep resumes incrementally: points in
the snapshot are *skipped outright* — no recomputation, no cache read, no
re-fold — and only new points are evaluated and folded. Snapshots are keyed
by the aggregator's config digest and the campaign master seed, so a stale
snapshot (changed metrics, changed seed) is rejected instead of silently
merged into.
"""

from __future__ import annotations

import json
import os
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Iterable, Mapping, Sequence, TextIO

from repro.runner.aggregate import Aggregator
from repro.runner.cache import ResultCache, atomic_write_text
from repro.runner.engine import (
    CampaignError,
    CampaignStats,
    default_workers,
    execute_points,
)
from repro.runner.points import get_experiment
from repro.runner.progress import ProgressReporter
from repro.runner.shard import ShardManifest
from repro.runner.spec import PointSpec, canonical_json

#: Bump when the snapshot layout changes; old snapshots are rejected.
#: Schema 2 added the shard manifest (see :mod:`repro.runner.shard`).
SNAPSHOT_SCHEMA = 2

#: Persist the snapshot at least every this many newly folded points. Each
#: flush rewrites the whole snapshot (aggregate + folded digests), so the
#: effective interval scales with campaign size — max(this, unique/64) —
#: to keep total snapshot I/O linear-ish instead of quadratic in points.
_FLUSH_EVERY = 256


class SnapshotError(RuntimeError):
    """A snapshot exists but cannot be resumed into this campaign."""


@dataclass(frozen=True)
class StreamStats(CampaignStats):
    """Engine bookkeeping plus the streaming-specific counters."""

    folded: int = 0
    skipped: int = 0
    #: Completed batches the engine handed back (0 when nothing computed).
    batches: int = 0


@dataclass
class StreamResult:
    """What a streaming campaign returns: the aggregate, not the points."""

    aggregator: Aggregator
    stats: StreamStats
    specs: list[PointSpec]
    #: Per-spec results, only populated with ``collect=True`` (CLI ``--out``).
    results: list[Any] | None = None

    def rows(self) -> list[tuple[PointSpec, Any]]:
        """``(spec, result)`` pairs — requires ``collect=True``."""
        if self.results is None:
            raise ValueError("stream_campaign(collect=False) kept no results")
        return list(zip(self.specs, self.results))

    def to_json(self) -> str:
        """Canonical spec/result JSON (``collect=True`` runs only)."""
        return canonical_json(
            [{"spec": s.to_dict(), "result": r} for s, r in self.rows()]
        )

    def aggregate_json(self) -> str:
        """Canonical JSON of the aggregate state — the bytes CI diffs."""
        return canonical_json(self.aggregator.state_dict())


def load_snapshot(
    path: str | os.PathLike,
    aggregator: Aggregator,
    master_seed: int,
    shard: ShardManifest | None = None,
) -> tuple[set[str], set[str]]:
    """Resume ``aggregator`` from a snapshot; returns (folded, failed) digests.

    A missing or unreadable/corrupt snapshot starts fresh (empty sets); a
    *readable* snapshot with a mismatched schema, master seed, or aggregator
    shape raises :class:`SnapshotError` — silently dropping or merging an
    incompatible aggregate would corrupt the resumed campaign.

    When resuming a *sharded* campaign (``shard`` with ``count > 1``), the
    snapshot's manifest must match the shard exactly — folding shard 1/3's
    points into a snapshot claiming to be shard 2/3, or into a shard of a
    different grid, would poison the eventual merge. Unsharded campaigns
    stay permissive: extending a grid into an existing snapshot is the
    documented incremental-resume path.
    """
    path = Path(path)
    try:
        snap = json.loads(path.read_text())
    except (OSError, ValueError):
        return set(), set()
    if not isinstance(snap, dict):
        return set(), set()
    if snap.get("schema") != SNAPSHOT_SCHEMA:
        raise SnapshotError(
            f"snapshot {path} has schema {snap.get('schema')!r}, "
            f"expected {SNAPSHOT_SCHEMA}"
        )
    if snap.get("master_seed") != master_seed:
        raise SnapshotError(
            f"snapshot {path} was built with master seed "
            f"{snap.get('master_seed')!r}, not {master_seed}"
        )
    if snap.get("config") != aggregator.config_digest:
        raise SnapshotError(
            f"snapshot {path} does not match this aggregator's shape "
            f"(config digest mismatch)"
        )
    if snap.get("partial"):
        # A partial-merge preview (`repro merge --allow-partial`) unions
        # several shards' folds under the trivial manifest; resuming a
        # campaign from it would silently skip whole shards of points.
        raise SnapshotError(
            f"snapshot {path} is a partial-merge preview "
            f"(missing shards {snap.get('missing_shards')}); previews "
            f"cannot seed a campaign resume"
        )
    if shard is not None and shard.count > 1:
        stored = snap.get("shard")
        stored_key = (
            (stored.get("index"), stored.get("count"), stored.get("grid"))
            if isinstance(stored, dict)
            else None
        )
        if stored_key != (shard.index, shard.count, shard.grid):
            raise SnapshotError(
                f"snapshot {path} belongs to a different shard or grid "
                f"(have {stored_key}, resuming shard "
                f"{shard.index}/{shard.count} of grid {shard.grid[:16]}…)"
            )
    aggregator.load_state(snap["aggregate"])
    return set(snap["folded"]), set(snap.get("failed", []))


def snapshot_dict(
    *,
    config: str,
    master_seed: int,
    folded: set[str],
    failed: set[str],
    aggregate: Mapping[str, Any],
    shard: ShardManifest,
    missing_shards: "Sequence[int] | None" = None,
) -> dict[str, Any]:
    """The canonical snapshot payload — the single layout both
    :func:`save_snapshot` and :func:`repro.runner.shard.merge_snapshots`
    emit, so a merged snapshot can be byte-compared against a live one.

    ``missing_shards`` marks a *partial-merge preview* (``repro merge
    --allow-partial``): the payload gains ``"partial": true`` plus the
    missing-shard list, so a preview can never be byte-confused with — or
    resumed/merged as — a complete campaign snapshot.
    """
    snap = {
        "schema": SNAPSHOT_SCHEMA,
        "master_seed": master_seed,
        "config": config,
        "shard": shard.to_dict(),
        "folded": sorted(folded),
        "failed": sorted(failed),
        "aggregate": dict(aggregate),
    }
    if missing_shards is not None:
        snap["partial"] = True
        snap["missing_shards"] = sorted(missing_shards)
    return snap


def save_snapshot(
    path: str | os.PathLike,
    aggregator: Aggregator,
    master_seed: int,
    folded: set[str],
    failed: set[str] = frozenset(),  # type: ignore[assignment]
    shard: ShardManifest | None = None,
) -> None:
    """Atomically persist the aggregate + folded/failed point digests.

    Without an explicit ``shard`` manifest the snapshot records the trivial
    0/1 manifest covering exactly the folded/failed points (direct callers;
    :func:`stream_campaign` always passes the campaign's real manifest).
    """
    path = Path(path)
    if shard is None:
        shard = ShardManifest.full(set(folded) | set(failed))
    snap = snapshot_dict(
        config=aggregator.config_digest,
        master_seed=master_seed,
        folded=folded,
        failed=failed,
        aggregate=aggregator.state_dict(),
        shard=shard,
    )
    atomic_write_text(path, canonical_json(snap))


def stream_campaign(
    specs: Iterable[PointSpec],
    aggregator: Aggregator,
    *,
    workers: int | None = 1,
    master_seed: int = 0,
    cache_dir: str | os.PathLike | None = None,
    state_path: str | os.PathLike | None = None,
    collect: bool = False,
    progress: bool | ProgressReporter = False,
    progress_stream: TextIO | None = None,
    on_error: str = "raise",
    shard: ShardManifest | None = None,
    batch_size: int | None = None,
) -> StreamResult:
    """Run a campaign, folding each finished point into ``aggregator``.

    Same execution contract as :func:`~repro.runner.engine.run_campaign`
    (determinism, caching, dedup) with three differences:

    * results are folded and dropped — set ``collect=True`` to also keep
      the aligned per-spec result list (back to O(points) memory);
    * with ``state_path``, aggregation itself is resumable: already-folded
      points are skipped without touching cache or pool;
    * failing points are never folded or cached. ``on_error="store"``
      records ``{"error": ...}`` in the collected results (if any), keeps
      going, and persists the failing digests in the snapshot — a resumed
      ``store`` run skips known failures instead of re-evaluating them
      (deterministic points fail identically every time).

    ``shard`` declares that ``specs`` are one shard of a larger campaign
    (see :mod:`repro.runner.shard`): the specs must match the manifest's
    coverage exactly, and the snapshot is tagged with the manifest so
    ``repro merge`` can validate it. Without ``shard`` the snapshot carries
    the trivial 0/1 manifest over the campaign's own point set.

    ``batch_size`` packs that many points into each pool task (``None``
    auto-sizes, see :func:`~repro.runner.engine.auto_batch_size`); cache
    entries are written per batch through
    :meth:`~repro.runner.cache.ResultCache.put_many` and completed batches
    fold as they arrive. Results, aggregates and snapshots are
    **bit-identical** for every ``(workers, batch_size)`` combination —
    batching only changes how work is packed, never what a point computes
    or how folds combine.
    """
    if on_error not in ("raise", "store"):
        raise ValueError(f"on_error must be 'raise' or 'store': got {on_error!r}")
    specs = list(specs)
    for spec in specs:
        get_experiment(spec.experiment)  # fail fast on unknown experiments
    workers = default_workers() if workers is None else max(1, int(workers))
    cache = ResultCache(cache_dir) if cache_dir is not None else None
    start = time.monotonic()

    unique: dict[str, PointSpec] = {}
    for spec in specs:
        unique.setdefault(spec.digest, spec)

    if shard is None:
        shard = ShardManifest.full(unique)
    elif set(unique) != set(shard.points):
        raise ValueError(
            f"specs do not match the shard manifest: got {len(unique)} "
            f"unique point(s), manifest {shard.index}/{shard.count} covers "
            f"{len(shard.points)}"
        )

    folded: set[str] = set()
    failed: set[str] = set()
    if state_path is not None:
        folded, failed = load_snapshot(state_path, aggregator, master_seed, shard)
    already_folded = folded & set(unique)
    resumed_failed = 0

    reporter: ProgressReporter | None
    if isinstance(progress, ProgressReporter):
        reporter = progress
    elif progress:
        reporter = ProgressReporter(len(unique), stream=progress_stream)
    else:
        reporter = None

    collected: dict[str, Any] | None = {} if collect else None
    cached = computed = errors = 0
    new_folds = 0
    flush_every = max(_FLUSH_EVERY, len(unique) // 64)

    def flush(force: bool = False) -> None:
        nonlocal new_folds
        if state_path is None:
            return
        if force or new_folds >= flush_every:
            save_snapshot(
                state_path, aggregator, master_seed, folded, failed, shard
            )
            new_folds = 0

    def finish(spec: PointSpec, ok: bool, result: Any) -> None:
        nonlocal errors, new_folds
        if not ok:
            if on_error == "raise":
                raise CampaignError(spec, result)
            errors += 1
            if spec.digest not in failed:
                failed.add(spec.digest)
                new_folds += 1
                flush()
            if collected is not None:
                collected[spec.digest] = {"error": result}
            if reporter:
                reporter.update(error=True)
            return
        if collected is not None:
            collected[spec.digest] = result
        if spec.digest not in folded:
            aggregator.fold(spec, result)
            folded.add(spec.digest)
            new_folds += 1
            flush()
        if reporter:
            reporter.update()

    # Points already in the snapshot are done: no cache read, no compute,
    # no re-fold. Known-failed points are skipped the same way in "store"
    # mode (deterministic evaluation fails identically on every re-run).
    # Both shortcuts are off when the caller wants the raw results back.
    todo: list[PointSpec] = []
    for digest, spec in unique.items():
        if digest in folded and collected is None:
            if reporter:
                reporter.update(cached=True)
            continue
        if digest in failed and collected is None and on_error == "store":
            errors += 1
            resumed_failed += 1
            if reporter:
                reporter.update(error=True)
            continue
        hit = cache.get(spec, master_seed) if cache is not None else None
        if hit is not None:
            cached += 1
            if collected is not None:
                collected[digest] = hit
            if digest not in folded:
                aggregator.fold(spec, hit)
                folded.add(digest)
                new_folds += 1
                flush()
            if reporter:
                reporter.update(cached=True)
        else:
            todo.append(spec)

    batches = 0

    def on_complete_batch(
        batch: list[tuple[PointSpec, bool, Any, float]]
    ) -> None:
        nonlocal batches
        batches += 1
        if cache is not None:
            cache.put_many(
                (spec, master_seed, result, elapsed)
                for spec, ok, result, elapsed in batch
                if ok
            )
        for spec, ok, result, _elapsed in batch:
            finish(spec, ok, result)

    computed = len(todo)
    effective_batch = execute_points(
        todo,
        workers,
        master_seed,
        on_complete_batch,
        # persist what has been folded so far even when a point aborts the
        # campaign — a resumed run then skips everything already aggregated
        on_abort=lambda: flush(force=True),
        batch_size=batch_size,
    )

    flush(force=True)
    computed -= errors - resumed_failed

    results: list[Any] | None = None
    if collected is not None:
        results = [collected[spec.digest] for spec in specs]

    return StreamResult(
        aggregator=aggregator,
        specs=specs,
        results=results,
        stats=StreamStats(
            total=len(specs),
            unique=len(unique),
            computed=computed,
            cached=cached,
            errors=errors,
            elapsed=time.monotonic() - start,
            workers=workers,
            batch_size=effective_batch,
            folded=len(folded & set(unique)) - len(already_folded),
            skipped=len(already_folded) + resumed_failed,
            batches=batches,
        ),
    )


def fold_rows(
    aggregator: Aggregator, rows: Iterable[tuple[PointSpec, Any]]
) -> Aggregator:
    """Fold already-materialized ``(spec, result)`` pairs (post-hoc path)."""
    for spec, result in rows:
        if isinstance(result, dict) and "error" in result:
            continue
        aggregator.fold(spec, result)
    return aggregator


__all__ = [
    "SNAPSHOT_SCHEMA",
    "SnapshotError",
    "StreamResult",
    "StreamStats",
    "fold_rows",
    "load_snapshot",
    "save_snapshot",
    "snapshot_dict",
    "stream_campaign",
]
