"""On-disk JSON result cache for campaign points.

One file per ``(spec, master_seed)`` pair under
``<root>/<experiment>/<digest16>-s<master_seed>.json``. The stored record
embeds the full spec, so a short-prefix collision or a stale file from an
older spec layout is detected (canonical mismatch) and treated as a miss.
Writes go through a temp file + :func:`os.replace` so concurrent campaigns
sharing a cache directory never observe half-written records.
"""

from __future__ import annotations

import json
import os
import re
import tempfile
from pathlib import Path
from typing import Any, Iterable

from repro import telemetry
from repro.runner.spec import PointSpec

#: Bump when the record layout changes; old records become misses.
CACHE_SCHEMA = 1

_SAFE = re.compile(r"[^A-Za-z0-9._-]+")


def atomic_write_text(path: Path, text: str) -> None:
    """Write ``text`` to ``path`` atomically (same-directory temp + rename).

    The temp name comes from :func:`tempfile.mkstemp`, so concurrent writers
    — other processes *and* other threads of this process, which share a
    PID — never collide on it; on any failure the temp file is removed
    instead of being orphaned next to the cache forever.
    """
    path.parent.mkdir(parents=True, exist_ok=True)
    fd, tmp = tempfile.mkstemp(
        dir=path.parent, prefix=f".{path.name}.", suffix=".tmp"
    )
    try:
        with os.fdopen(fd, "w") as handle:
            handle.write(text)
        os.replace(tmp, path)
    except BaseException:
        try:
            os.unlink(tmp)
        except OSError:
            pass
        raise


class ResultCache:
    """Directory-backed cache mapping ``(spec, master_seed)`` to results."""

    def __init__(self, root: str | Path):
        self.root = Path(root)

    def path(self, spec: PointSpec, master_seed: int) -> Path:
        """Cache file for one point (deterministic, collision-checked on read)."""
        bucket = _SAFE.sub("_", spec.experiment) or "_"
        return self.root / bucket / f"{spec.digest[:16]}-s{master_seed}.json"

    def get(self, spec: PointSpec, master_seed: int) -> Any | None:
        """Stored result, or None on miss/corruption/spec mismatch."""
        path = self.path(spec, master_seed)
        try:
            record = json.loads(path.read_text())
        except (OSError, ValueError):
            telemetry.count("cache.miss")
            return None
        # A truncated or overwritten file can parse to a non-dict (e.g. a
        # bare number cut from a larger record) — that's a miss too, so a
        # corrupt entry is recomputed and overwritten mid-campaign instead
        # of crashing it.
        if not isinstance(record, dict):
            telemetry.count("cache.miss")
            return None
        if (
            record.get("schema") != CACHE_SCHEMA
            or record.get("canonical") != spec.canonical
            or record.get("master_seed") != master_seed
            or "result" not in record
        ):
            telemetry.count("cache.miss")
            return None
        telemetry.count("cache.hit")
        return record["result"]

    def put(
        self,
        spec: PointSpec,
        master_seed: int,
        result: Any,
        *,
        elapsed: float | None = None,
    ) -> Path:
        """Atomically persist one point's result; returns the cache path."""
        path = self.path(spec, master_seed)
        record = {
            "schema": CACHE_SCHEMA,
            "canonical": spec.canonical,
            "spec": spec.to_dict(),
            "master_seed": master_seed,
            "result": result,
            "elapsed": elapsed,
        }
        atomic_write_text(path, json.dumps(record, sort_keys=True))
        telemetry.count("cache.write")
        return path

    def put_many(
        self,
        entries: Iterable[tuple[PointSpec, int, Any, float | None]],
    ) -> list[Path]:
        """Persist a batch of ``(spec, master_seed, result, elapsed)`` entries.

        The batched engine's per-batch spelling of :meth:`put`: the
        grouping is at the call layer (one call per completed batch), not
        the I/O layer — every entry still lands as its own atomic file,
        byte-identical to a per-point ``put``, so per-point resume and
        cross-campaign cache sharing keep working unchanged.
        """
        return [
            self.put(spec, master_seed, result, elapsed=elapsed)
            for spec, master_seed, result, elapsed in entries
        ]
