"""Structured progress and ETA reporting for campaign runs.

The engine calls :meth:`ProgressReporter.update` once per finished point
(computed or served from cache). Rendering is throttled and terminal-aware:
on a TTY the reporter redraws one ``\\r`` status line; on a plain stream it
emits at most ~10 full lines per campaign so CI logs stay readable. The
:meth:`snapshot` dict is the machine-readable view used by tests and by the
CLI's final summary.
"""

from __future__ import annotations

import sys
import time
from typing import Any, TextIO


class ProgressReporter:
    """Campaign progress: counts, elapsed wall-clock, and a rate-based ETA."""

    def __init__(
        self,
        total: int,
        *,
        stream: TextIO | None = None,
        label: str = "campaign",
        min_interval: float = 0.2,
    ):
        if total < 0:
            raise ValueError(f"total must be >= 0: got {total}")
        self.total = total
        self.label = label
        self.computed = 0
        self.cached = 0
        self.errors = 0
        self.batches = 0
        self._stream = stream if stream is not None else sys.stderr
        self._min_interval = min_interval
        self._started = time.monotonic()
        self._last_render = 0.0
        self._line_step = max(1, total // 10)
        self._is_tty = bool(getattr(self._stream, "isatty", lambda: False)())

    def grow(self, n: int) -> None:
        """Extend the expected total by ``n`` points.

        Round-based campaigns (adaptive refinement) discover their point
        count as they go: each round grows the denominator instead of
        finishing against a wrong one.
        """
        if n < 0:
            raise ValueError(f"grow() takes n >= 0: got {n}")
        self.total += n
        self._line_step = max(1, self.total // 10)

    def note_batch(self) -> None:
        """Record one completed engine batch (no rendering — the per-point
        :meth:`update` calls that follow it do that)."""
        self.batches += 1

    @property
    def done(self) -> int:
        """Points finished so far (computed + cached + errored)."""
        return self.computed + self.cached + self.errors

    @property
    def cache_ratio(self) -> float | None:
        """Cache hits as a share of finished points (None before any)."""
        if self.done <= 0:
            return None
        return self.cached / self.done

    def batch_rate(self) -> float | None:
        """Completed batches per second (None before the first batch)."""
        if self.batches <= 0:
            return None
        elapsed = self.elapsed
        if elapsed <= 0.0:
            return None
        return self.batches / elapsed

    @property
    def elapsed(self) -> float:
        """Wall-clock seconds since the reporter was created."""
        return time.monotonic() - self._started

    def eta(self) -> float | None:
        """Estimated seconds to completion (None until a point is computed).

        Cache hits are ~free, so the rate is based on *computed* points
        only. Until at least one point has actually been computed there is
        no rate to extrapolate from, so the ETA is ``None`` (unknown) —
        a warm-cache prefix must not report "eta 0.0s" while thousands of
        never-computed points remain. A finished campaign reports 0.
        """
        remaining = self.total - self.done
        if remaining <= 0:
            return 0.0
        if self.computed == 0:
            return None
        return remaining * (self.elapsed / self.computed)

    def snapshot(self) -> dict[str, Any]:
        """Machine-readable progress state."""
        return {
            "label": self.label,
            "total": self.total,
            "done": self.done,
            "computed": self.computed,
            "cached": self.cached,
            "errors": self.errors,
            "elapsed": self.elapsed,
            "eta": self.eta(),
            "batches": self.batches,
            "cache_ratio": self.cache_ratio,
        }

    def update(self, *, cached: bool = False, error: bool = False) -> None:
        """Record one finished point and maybe re-render the status line."""
        if error:
            self.errors += 1
        elif cached:
            self.cached += 1
        else:
            self.computed += 1
        final = self.done >= self.total
        now = time.monotonic()
        if self._is_tty:
            if not final and now - self._last_render < self._min_interval:
                return
            self._last_render = now
            end = "\n" if final else ""
            self._stream.write(f"\r{self._render()}{end}")
        else:
            if not final and self.done % self._line_step != 0:
                # Nothing rendered, nothing to flush: a throttled update
                # must be free — one flush syscall per finished point adds
                # up to real time on a million-point campaign.
                return
            self._stream.write(f"{self._render()}\n")
        self._stream.flush()

    def _render(self) -> str:
        pct = 100.0 * self.done / self.total if self.total else 100.0
        eta = self.eta()
        eta_s = "--" if eta is None else f"{eta:.1f}s"
        bits = [
            f"{self.label}: {self.done}/{self.total} ({pct:3.0f}%)",
            f"elapsed {self.elapsed:.1f}s",
            f"eta {eta_s}",
        ]
        if self.cached:
            ratio = self.cache_ratio
            bits.append(
                f"cache {self.cached}"
                + (f" ({ratio * 100:.0f}%)" if ratio is not None else "")
            )
        rate = self.batch_rate()
        if rate is not None:
            bits.append(f"{rate:.1f} batch/s")
        if self.errors:
            bits.append(f"errors {self.errors}")
        return "  ".join(bits)
