"""The campaign experiment registry: one picklable function per point kind.

Every experiment function has the signature ``fn(params, seed) -> result``
where ``params`` is the JSON parameter mapping of a
:class:`~repro.runner.spec.PointSpec`, ``seed`` is the point's
:class:`numpy.random.SeedSequence` (see :func:`repro.runner.spec.point_seed`)
and ``result`` is a JSON-serializable dict. Functions are module-level so
:class:`concurrent.futures.ProcessPoolExecutor` workers can unpickle the
dispatch payload; deterministic experiments simply ignore ``seed``.

The registry powers both the paper's artifacts (Table 2, Figure 4, the
ablations — migrated from their former ad-hoc serial loops) and the
open-ended synthetic sweeps (``schedulability``, ``fault-injection``) that
scale the evaluation beyond the worked example.
"""

from __future__ import annotations

from functools import lru_cache
from typing import Any, Callable, Mapping

import numpy as np

from repro import telemetry
from repro.core import (
    DesignError,
    FeasibleRegion,
    Overheads,
    design_platform,
    min_quantum,
    min_quantum_exact,
)
from repro.experiments.paper import paper_partition, paper_taskset
from repro.faults import FaultCampaign, FaultOutcome
from repro.generators import generate_mixed_taskset
from repro.model import Mode, PartitionedTaskSet, TaskSet
from repro.model.partitioned import partition_from_names
from repro.model.serialization import taskset_from_dict, taskset_to_dict
from repro.partition import PartitionError, partition_by_modes
from repro.supply import PeriodicSlotSupply
from repro.supply.slots import evenly_split_slots

ExperimentFn = Callable[[Mapping[str, Any], np.random.SeedSequence], dict]

_REGISTRY: dict[str, ExperimentFn] = {}


def experiment(name: str) -> Callable[[ExperimentFn], ExperimentFn]:
    """Register ``fn`` under ``name`` (decorator)."""

    def register(fn: ExperimentFn) -> ExperimentFn:
        if name in _REGISTRY:
            raise ValueError(f"experiment {name!r} registered twice")
        _REGISTRY[name] = fn
        return fn

    return register


def get_experiment(name: str) -> ExperimentFn:
    """Look up a registered experiment function."""
    try:
        return _REGISTRY[name]
    except KeyError:
        raise KeyError(
            f"unknown experiment {name!r}; known: {sorted(_REGISTRY)}"
        ) from None


def experiments() -> list[str]:
    """Names of all registered experiments."""
    return sorted(_REGISTRY)


# -- spec <-> model plumbing ---------------------------------------------------


def taskset_params(taskset: TaskSet | None) -> dict[str, Any]:
    """Spec params pinning ``taskset`` (empty: points use the paper's)."""
    if taskset is None:
        return {}
    return {"taskset": taskset_to_dict(taskset)}


def partition_params(partition: PartitionedTaskSet | None) -> dict[str, Any]:
    """Spec params pinning an explicit partition (empty: the paper's)."""
    if partition is None:
        return {}
    return {
        "taskset": taskset_to_dict(partition.all_tasks()),
        "partition": {
            str(mode): [list(ts.names) for ts in partition.bins(mode)]
            for mode in Mode
        },
    }


def _resolve_taskset(params: Mapping[str, Any]) -> TaskSet:
    if "taskset" in params:
        return taskset_from_dict(params["taskset"])
    return paper_taskset()


def _resolve_partition(params: Mapping[str, Any]) -> PartitionedTaskSet:
    if "partition" in params:
        return partition_from_names(
            _resolve_taskset(params),
            {
                Mode(mode): [list(names) for names in bins]
                for mode, bins in params["partition"].items()
            },
        )
    if "taskset" in params:
        return partition_by_modes(
            _resolve_taskset(params),
            heuristic=params.get("heuristic", "worst-fit"),
            admission="utilization",
        )
    return paper_partition()


@lru_cache(maxsize=8)
def _paper_region(
    algorithm: str, p_max: float | None, grid: int
) -> FeasibleRegion:
    """Per-process cache of the (expensive) paper-partition region sweep."""
    return FeasibleRegion(
        paper_partition(), algorithm, p_max=p_max, grid=grid
    )


def _region(params: Mapping[str, Any]) -> FeasibleRegion:
    p_max = params.get("p_max")
    grid = int(params.get("grid", 4001))
    if "partition" in params or "taskset" in params:
        return FeasibleRegion(
            _resolve_partition(params),
            params["algorithm"],
            p_max=p_max,
            grid=grid,
        )
    return _paper_region(params["algorithm"], p_max, grid)


# -- paper artifacts -----------------------------------------------------------


@experiment("table2-required")
def table2_required(params: Mapping[str, Any], seed: np.random.SeedSequence) -> dict:
    """Table 2 row (a): required per-mode utilizations ``max_i U(T_k^i)``."""
    partition = _resolve_partition(params)
    return {str(m): partition.max_bin_utilization(m) for m in Mode}


@experiment("table2-row")
def table2_row(params: Mapping[str, Any], seed: np.random.SeedSequence) -> dict:
    """One Table 2 design row: run a design goal end-to-end."""
    partition = _resolve_partition(params)
    config = design_platform(
        partition,
        params["algorithm"],
        Overheads.uniform(params["otot"]),
        params["goal"],
        region=_region(params),
    )
    s = config.schedule
    return {
        "period": s.period,
        "otot": s.overheads.total,
        "q_ft": s.usable(Mode.FT),
        "q_fs": s.usable(Mode.FS),
        "q_nf": s.usable(Mode.NF),
        "alloc_ft": s.alpha(Mode.FT),
        "alloc_fs": s.alpha(Mode.FS),
        "alloc_nf": s.alpha(Mode.NF),
        "slack": config.slack,
        "slack_ratio": config.slack_ratio,
        "overhead_bandwidth": s.overheads.total / s.period,
    }


@experiment("figure4-point")
def figure4_point(params: Mapping[str, Any], seed: np.random.SeedSequence) -> dict:
    """One annotated Figure 4 point (max feasible period or max overhead)."""
    region = _region(params)
    query = params["query"]
    if query == "max-period":
        value = region.max_feasible_period(params["otot"])
    elif query == "max-overhead":
        value = region.max_admissible_overhead().lhs
    else:
        raise ValueError(f"unknown figure4 query {query!r}")
    return {"value": value}


# -- ablations (DESIGN.md index) ----------------------------------------------


@experiment("ablate-minq-gap")
def ablate_minq_gap(params: Mapping[str, Any], seed: np.random.SeedSequence) -> dict:
    """minQ under the linear bound vs the exact Lemma-1 supply, one bin."""
    partition = _resolve_partition(params)
    ts = partition.bin(Mode(params["mode"]), params["bin"])
    period = params["period"]
    return {
        "minq_linear": min_quantum(ts, params["algorithm"], period),
        "minq_exact": min_quantum_exact(ts, params["algorithm"], period),
    }


@experiment("ablate-region")
def ablate_region(params: Mapping[str, Any], seed: np.random.SeedSequence) -> dict:
    """Feasible-region key figures for one scheduling algorithm."""
    region = _region(params)
    return {
        "max_period_zero_overhead": region.max_feasible_period(0.0),
        "max_admissible_overhead": region.max_admissible_overhead().lhs,
    }


@experiment("ablate-partitioning")
def ablate_partitioning(
    params: Mapping[str, Any], seed: np.random.SeedSequence
) -> dict:
    """Region quality achieved by one partitioning strategy."""
    strategy = params["strategy"]
    if strategy == "manual (paper)":
        part = paper_partition()
    else:
        part = partition_by_modes(
            _resolve_taskset(params),
            heuristic=strategy,
            admission="utilization",
        )
    region = FeasibleRegion(part, params["algorithm"])
    try:
        max_p = region.max_feasible_period(0.0)
    except ValueError:
        max_p = None  # the partition admits no feasible period
    return {
        "max_period_zero_overhead": max_p,
        "max_admissible_overhead": region.max_admissible_overhead().lhs,
        "max_bin_utilization": {
            str(m): part.max_bin_utilization(m) for m in Mode
        },
    }


@experiment("ablate-overhead")
def ablate_overhead(params: Mapping[str, Any], seed: np.random.SeedSequence) -> dict:
    """Max feasible period (or None) at one total-overhead level."""
    region = _region(params)
    try:
        max_p = region.max_feasible_period(params["otot"])
    except ValueError:
        max_p = None
    return {"max_period": max_p}


@experiment("ablate-slot-split")
def ablate_slot_split(
    params: Mapping[str, Any], seed: np.random.SeedSequence
) -> dict:
    """Supply improvement from splitting a mode's quantum into k pieces."""
    period, budget, pieces = params["period"], params["budget"], params["pieces"]
    supply = (
        PeriodicSlotSupply(period, budget)
        if pieces == 1
        else evenly_split_slots(period, budget, pieces)
    )
    return {
        "delay": supply.delta,
        "supply_at_half_period": supply.supply(period / 2),
    }


# -- synthetic sweeps ----------------------------------------------------------


def _generate(
    params: Mapping[str, Any], rng: np.random.Generator
) -> TaskSet:
    shares = params.get("mode_shares")
    # Campaign points default to hyperperiod-limited periods: free integer
    # periods make per-bin hyperperiods (and so the exact EDF dlSet behind
    # the region sweeps) explode, turning single points into minute-long
    # computations. Divisor-limited periods keep the analysis exact *and*
    # bounded; pass period_method explicitly to opt back out.
    return generate_mixed_taskset(
        params["n"],
        params["u_total"],
        rng,
        mode_shares=(
            {Mode(m): s for m, s in shares.items()} if shares else None
        ),
        period_low=params.get("period_low", 10.0),
        period_high=params.get("period_high", 1000.0),
        u_max=params.get("u_max", 1.0),
        deadline_factor=params.get("deadline_factor", 1.0),
        utilization_method=params.get("utilization_method", "uunifast-discard"),
        period_method=params.get("period_method", "hyperperiod-limited"),
        period_hyperperiod=params.get("period_hyperperiod", 3600.0),
    )


@experiment("schedulability")
def schedulability(params: Mapping[str, Any], seed: np.random.SeedSequence) -> dict:
    """One synthetic acceptance point: generate, partition, design.

    The grid axes (``u_total``, ``n``, ``otot``, heuristic, generator
    params, plus a free ``rep`` replication index) reproduce the classic
    weighted-schedulability sweep; the result records where the pipeline
    stopped (partitioning vs slot design) so acceptance ratios can be split
    by failure cause.
    """
    rng = np.random.default_rng(seed.spawn(1)[0])
    with telemetry.span("generate"):
        ts = _generate(params, rng)
    out: dict[str, Any] = {
        "utilization": ts.utilization,
        "partitioned": False,
        "feasible": False,
        "period": None,
        "slack_ratio": None,
    }
    try:
        with telemetry.span("partition"):
            part = partition_by_modes(
                ts,
                heuristic=params.get("heuristic", "worst-fit"),
                admission="utilization",
            )
    except PartitionError:
        return out
    out["partitioned"] = True
    try:
        with telemetry.span("design"):
            config = design_platform(
                part,
                params.get("algorithm", "EDF"),
                Overheads.uniform(params.get("otot", 0.0)),
                params.get("goal", "min-overhead-bandwidth"),
            )
    except DesignError:
        return out
    out["feasible"] = True
    out["period"] = config.period
    out["slack_ratio"] = config.slack_ratio
    return out


@experiment("fault-injection")
def fault_injection(params: Mapping[str, Any], seed: np.random.SeedSequence) -> dict:
    """One fault-injection campaign point (paper design or synthetic).

    Two child streams are spawned — task-set generation and the Poisson
    fault process — so e.g. extending the fault-rate axis never perturbs
    the generated task sets.
    """
    gen_seed, fault_seed = seed.spawn(2)
    with telemetry.span("generate"):
        if params.get("source", "paper") == "generated":
            ts = _generate(params, np.random.default_rng(gen_seed))
            part = partition_by_modes(
                ts,
                heuristic=params.get("heuristic", "worst-fit"),
                admission="utilization",
            )
        else:
            part = _resolve_partition(params)
    with telemetry.span("design"):
        config = design_platform(
            part,
            params.get("algorithm", "EDF"),
            Overheads.uniform(params.get("otot", 0.05)),
            params.get("goal", "min-overhead-bandwidth"),
        )
    campaign = FaultCampaign(
        part,
        config,
        rate=params["rate"],
        min_separation=params.get("min_separation"),
    )
    with telemetry.span("simulate"):
        result = campaign.run(
            horizon=config.period * params.get("cycles", 50), seed=fault_seed
        )
    return {
        "injected": result.injected,
        "outcomes": {
            str(o): result.outcomes.get(o, 0) for o in FaultOutcome
        },
        # None (not 0.0) when nothing was injected: an empty campaign has
        # no outcome rates and must not read as a perfect one.
        "outcome_rates": {
            str(o): result.rate(o) for o in FaultOutcome
        },
        "corrupted_jobs": len(result.corrupted_jobs),
        "aborted_jobs": len(result.aborted_jobs),
        "ft_misses": result.ft_misses,
        "total_misses": result.total_misses,
    }


@experiment("online")
def online(params: Mapping[str, Any], seed: np.random.SeedSequence) -> dict:
    """One online-simulation point: runtime arrivals under a live scenario.

    A max-slack platform is designed for a generated initial task set, then
    :class:`repro.sim.online.OnlineSim` replays a seed-spawned stream of
    dynamic arrivals (``params["arrival_rate"]`` expected arrivals per
    major cycle, each with an exponential lifetime) against the admission
    controller while the fault scenario strikes. A ``permanent`` scenario
    is mapped to a core-death event at its onset — the dead core's tasks
    are orphaned and re-assigned to surviving channels — while transient
    scenarios inject their fault stream unchanged.

    Three child streams are spawned (task-set generation, arrival process,
    fault scenario), so extending any one axis never perturbs the others.
    """
    from repro.dependability import PermanentScenario, scenario_from_params
    from repro.model import Task
    from repro.sim.online import OnlineArrival, OnlineSim

    scenario = scenario_from_params(params)  # fail before any expensive work
    gen_seed, arrival_seed, fault_seed = seed.spawn(3)
    with telemetry.span("generate"):
        ts = _generate(params, np.random.default_rng(gen_seed))
        part = partition_by_modes(
            ts,
            heuristic=params.get("heuristic", "worst-fit"),
            admission="utilization",
        )
    with telemetry.span("design"):
        config = design_platform(
            part,
            params.get("algorithm", "EDF"),
            Overheads.uniform(params.get("otot", 0.05)),
            params.get("goal", "max-slack"),
        )
    horizon = config.period * params.get("cycles", 30)

    rng = np.random.default_rng(arrival_seed)
    rate = float(params.get("arrival_rate", 1.0))
    arrivals: list[OnlineArrival] = []
    if rate > 0.0:
        from repro.generators.periods import hyperperiod_limited_periods

        t = float(rng.exponential(config.period / rate))
        i = 0
        while t < horizon:
            # Draw the arriving task's shape from the same stream: mode mix
            # skewed toward NF (half the arrivals), periods on the same
            # hyperperiod-divisor lattice as the generated initial tasks —
            # free continuous periods would make every admission check's
            # exact EDF deadline set (and so the whole point) explode.
            draw = rng.random()
            mode = Mode.NF if draw < 0.5 else (Mode.FS if draw < 0.8 else Mode.FT)
            period = float(
                hyperperiod_limited_periods(
                    1,
                    rng,
                    low=params.get("period_low", 10.0),
                    high=params.get("period_high", 1000.0),
                    hyperperiod=params.get("period_hyperperiod", 3600.0),
                )[0]
            )
            wcet = period * float(rng.uniform(0.02, 0.08))
            lifetime = float(rng.exponential(horizon / 4.0))
            arrivals.append(
                OnlineArrival(
                    t,
                    Task(f"dyn{i}", wcet, period, mode=mode),
                    lifetime=lifetime,
                )
            )
            i += 1
            t += float(rng.exponential(config.period / rate))

    faults = scenario.generate(
        horizon,
        np.random.default_rng(fault_seed),
        core_count=config.core_count,
    )
    core_deaths: list[tuple[float, int]] = []
    if isinstance(scenario, PermanentScenario):
        # The permanent stream is one dead core's strike cadence; the
        # online engine models the death itself, so the first strike
        # becomes the core-death event and the rest are dropped.
        if faults:
            core_deaths = [(faults[0].time, faults[0].core)]
        faults = []

    with telemetry.span("simulate"):
        result = OnlineSim(config, part).run(
            horizon,
            arrivals=arrivals,
            core_deaths=core_deaths,
            faults=faults,
        )
    record = result.to_record()
    record["utilization"] = ts.utilization
    record["arrivals_generated"] = len(arrivals)
    record["period"] = config.period
    record["slack_initial"] = config.slack
    return record


@experiment("dependability")
def dependability(params: Mapping[str, Any], seed: np.random.SeedSequence) -> dict:
    """One dependability point: a scenario-driven fault campaign.

    Like ``fault-injection`` but the fault stream comes from the scenario
    library (:mod:`repro.dependability.scenarios`) — ``params["scenario"]``
    names the arrival process, ``params["rate"]`` (and the scenario's own
    knobs) parameterize it — and the result is the full outcome-taxonomy
    record of :func:`repro.dependability.taxonomy.dependability_record`.
    Two child streams are spawned (task-set generation, fault scenario), so
    extending the scenario axis never perturbs the generated task sets.
    """
    from repro.dependability import (
        PoissonScenario,
        dependability_record,
        scenario_from_params,
    )

    scenario = scenario_from_params(params)  # fail before any expensive work
    gen_seed, fault_seed = seed.spawn(2)
    with telemetry.span("generate"):
        if params.get("source", "paper") == "generated":
            ts = _generate(params, np.random.default_rng(gen_seed))
            part = partition_by_modes(
                ts,
                heuristic=params.get("heuristic", "worst-fit"),
                admission="utilization",
            )
        else:
            part = _resolve_partition(params)
    with telemetry.span("design"):
        config = design_platform(
            part,
            params.get("algorithm", "EDF"),
            Overheads.uniform(params.get("otot", 0.05)),
            params.get("goal", "min-overhead-bandwidth"),
        )
    if isinstance(scenario, PoissonScenario) and "min_separation" not in params:
        # The poisson scenario is the paper baseline: keep its single-fault
        # assumption (one platform period between transients, matching the
        # ``fault-injection`` experiment) unless the spec overrides it, so
        # faultspace poisson rows stay comparable to the faults preset.
        scenario = PoissonScenario(
            scenario.rate, min_separation=config.period
        )
    horizon = config.period * params.get("cycles", 50)
    faults = scenario.generate(
        horizon,
        np.random.default_rng(fault_seed),
        core_count=config.core_count,
    )
    with telemetry.span("simulate"):
        result = FaultCampaign(part, config).run(horizon=horizon, faults=faults)
    record = dependability_record(result)
    record["utilization"] = part.all_tasks().utilization
    return record
