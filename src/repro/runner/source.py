"""Campaign point supply as a pluggable *strategy*.

Every campaign used to materialize one exhaustive cartesian grid up
front. This module turns the point supply into a strategy behind the
:class:`PointSource` protocol: a source emits successive **rounds** of
:class:`~repro.runner.spec.PointSpec` lists, and
:func:`~repro.runner.stream.stream_campaign` fully executes and folds
each round before asking for the next. Two strategies ship:

* :class:`GridSource` — the exhaustive grid, bit-for-bit today's
  behavior: one round containing every point.
* :class:`AdaptiveRefinementSource` — deterministic design-space
  exploration. Between rounds it reads the live aggregate, finds every
  curve bin whose Wilson 95% interval is still wider than the target
  ``ci_width``, grows that bin's replication count toward the
  sample size the current estimate implies, and bisects the refinement
  axis between adjacent bins whose means disagree by more than the
  target width. It terminates when every bin meets the target (or went
  dead — every sample failed), a point budget is exhausted, or a round
  cap is hit.

Determinism contract
--------------------
A source is a pure function of its configuration and the folded
aggregate it observes at each round boundary. Aggregates are exact and
order-insensitive, so the observed state at a boundary — and therefore
every planning decision — is identical for any ``(workers, batch,
shard)`` combination. Point seeds stay content-keyed
(:func:`~repro.runner.spec.point_seed`), so the source needs no RNG of
its own: same strategy + seed + config ⇒ byte-identical snapshots.

Resumability
------------
:meth:`PointSource.state_dict` is persisted inside the campaign
snapshot. The adaptive state records per-bin emission counts, which
fully determine the set of points emitted so far: a resumed run
re-emits that set as one catch-up round (already-folded points are
skipped outright by the stream layer), reaches the round boundary with
the exact same aggregate, and plans every subsequent round identically
— converging on the same final snapshot bytes as an uninterrupted run.
"""

from __future__ import annotations

import hashlib
import itertools
import json
import math
from typing import Any, Iterable, Iterator, Mapping, Sequence

from repro import telemetry
from repro.runner.aggregate import Aggregator
from repro.runner.grid import axis_values, expand_grid, grid_specs
from repro.runner.shard import grid_digest
from repro.runner.spec import PointSpec, canonical_json


class SnapshotError(RuntimeError):
    """A snapshot exists but cannot be resumed into this campaign."""


#: z for the 95% Wilson score interval (matches
#: :func:`repro.dependability.taxonomy.wilson_interval`; duplicated here
#: because the runner layer must not import the dependability layer).
_Z95 = 1.959963984540054


def wilson_width(p: float, n: int) -> float:
    """Width of the Wilson 95% score interval at proportion ``p``, size ``n``.

    ``inf`` for an empty bin — an unsampled bin is maximally uncertain.
    The interval is clamped to ``[0, 1]`` exactly like the rendering-side
    :func:`repro.dependability.taxonomy.wilson_interval`, so "converged"
    here means the same thing the rendered CI columns show.
    """
    if n <= 0:
        return math.inf
    p = min(1.0, max(0.0, float(p)))
    z2 = _Z95 * _Z95
    denom = 1.0 + z2 / n
    center = (p + z2 / (2.0 * n)) / denom
    half = _Z95 * math.sqrt(p * (1.0 - p) / n + z2 / (4.0 * n * n)) / denom
    return min(1.0, center + half) - max(0.0, center - half)


def reps_for_width(p: float, width: float, cap: int = 1 << 20) -> int:
    """Smallest sample size whose Wilson 95% width is <= ``width`` at ``p``.

    The width is monotonically decreasing in ``n`` for a fixed proportion,
    so a doubling search plus bisection is exact and deterministic.
    """
    if width <= 0:
        raise ValueError(f"width must be > 0: got {width}")
    if wilson_width(p, 1) <= width:
        return 1
    hi = 2
    while hi < cap and wilson_width(p, hi) > width:
        hi *= 2
    hi = min(hi, cap)
    lo = hi // 2
    while lo + 1 < hi:
        mid = (lo + hi) // 2
        if wilson_width(p, mid) > width:
            lo = mid
        else:
            hi = mid
    return hi


class PointSource:
    """Strategy protocol: where a campaign's points come from.

    Subclasses emit rounds via :meth:`rounds`; the stream layer folds a
    whole round before advancing the generator, so :meth:`rounds` may
    read the ``view`` aggregate between yields to decide what comes
    next. ``needs_feedback`` declares whether it actually does — a
    feedback-free source (the grid) lets sharded runs skip evaluating
    the other shards' points entirely.
    """

    strategy: str = "?"
    #: True when round planning reads the folded aggregate between rounds.
    needs_feedback: bool = False
    #: Bins still short of the convergence target after the final round
    #: (None for sources without a convergence notion).
    open_bins: int | None = None

    @property
    def config_digest(self) -> str:
        """Fingerprint of the source's full configuration (snapshot key)."""
        raise NotImplementedError

    @property
    def is_complete(self) -> bool:
        """True once the source will emit no further rounds."""
        return False

    def upfront_specs(self) -> list[PointSpec] | None:
        """The full spec list when it is known before any round runs
        (grid sources), else None (adaptive sources)."""
        return None

    def rounds(self, view: Aggregator | None = None) -> Iterator[list[PointSpec]]:
        """Yield successive rounds; the caller folds each before advancing."""
        raise NotImplementedError

    def state_dict(self) -> dict[str, Any] | None:
        """Resumable source state for the snapshot (None: nothing to save,
        and the snapshot bytes stay identical to a plain grid run's)."""
        return None

    def load_state(self, state: Mapping[str, Any] | None) -> None:
        """Adopt a snapshot's source state; raise :class:`SnapshotError`
        when the state belongs to a different strategy or configuration."""
        if state is not None:
            raise SnapshotError(
                f"snapshot was written by a {state.get('strategy', '?')!r} "
                f"point source; a {self.strategy!r} campaign cannot resume it"
            )


class GridSource(PointSource):
    """Today's exhaustive grid as a (single-round) point source."""

    strategy = "grid"
    needs_feedback = False

    def __init__(self, specs: Iterable[PointSpec]):
        self.specs = list(specs)

    @classmethod
    def from_grid(
        cls,
        experiment: str,
        axes: Mapping[str, Any],
        *,
        base_params: Mapping[str, Any] | None = None,
    ) -> "GridSource":
        """Wrap :func:`~repro.runner.grid.grid_specs` bit-for-bit."""
        return cls(grid_specs(experiment, axes, base_params=base_params))

    @property
    def config_digest(self) -> str:
        # Exactly the grid digest of the spec set, so e.g. default
        # snapshot filenames keyed on it match the pre-strategy layout.
        return grid_digest(s.digest for s in self.specs)

    def upfront_specs(self) -> list[PointSpec]:
        return list(self.specs)

    def rounds(self, view: Aggregator | None = None) -> Iterator[list[PointSpec]]:
        if self.specs:
            yield list(self.specs)


class AdaptiveRefinementSource(PointSource):
    """Seeded, resumable adaptive refinement of a curve metric.

    ``key_axes`` (ordered) must name exactly the parameters the watched
    curve ``metric`` is keyed on, in the same order — the source
    addresses aggregate bins by the canonical JSON of the key-value
    list. ``refine_axis`` names the numeric key axis that bisection
    subdivides. ``extra_axes`` are swept for every bin sample but are
    not part of the bin key (their folds pool into the bin); the
    ``rep_axis`` replication index grows without bound as a bin demands
    more samples.

    Round 0 emits ``static_specs`` (a fixed companion grid that rides
    along unrefined) plus ``initial_reps`` replication units for every
    initial bin. Each later round, per bin:

    * converged (Wilson 95% width <= ``ci_width``) — nothing;
    * dead (samples were emitted but none ever folded — the experiment
      fails there) — abandoned;
    * open — grow toward :func:`reps_for_width` of the current estimate,
      at most ``max_round_reps`` units per round (the estimate moves as
      samples arrive; capping bounds overshoot);

    and between each pair of refine-axis-adjacent bins of a series whose
    means differ by more than ``ci_width``, a midpoint bin is inserted
    (down to ``max_depth`` halvings of the smallest initial gap).
    Termination: no requests, ``max_points`` exhausted, or
    ``max_rounds`` reached.
    """

    strategy = "adaptive"
    needs_feedback = True

    def __init__(
        self,
        experiment: str,
        *,
        metric: str,
        key_axes: Mapping[str, Any],
        refine_axis: str,
        ci_width: float,
        extra_axes: Mapping[str, Any] | None = None,
        base_params: Mapping[str, Any] | None = None,
        rep_axis: str = "rep",
        initial_reps: int = 4,
        max_points: int | None = None,
        max_rounds: int = 64,
        max_round_reps: int = 256,
        max_depth: int = 3,
        static_specs: Sequence[PointSpec] | None = None,
    ):
        if not experiment:
            raise ValueError("experiment name must be non-empty")
        if not (isinstance(ci_width, (int, float)) and 0 < ci_width < 1):
            raise ValueError(f"ci_width must be in (0, 1): got {ci_width!r}")
        if initial_reps < 1:
            raise ValueError(f"initial_reps must be >= 1: got {initial_reps}")
        if max_rounds < 1:
            raise ValueError(f"max_rounds must be >= 1: got {max_rounds}")
        if max_round_reps < 1:
            raise ValueError(f"max_round_reps must be >= 1: got {max_round_reps}")
        if max_depth < 0:
            raise ValueError(f"max_depth must be >= 0: got {max_depth}")
        if max_points is not None and max_points < 1:
            raise ValueError(f"max_points must be >= 1: got {max_points}")
        if not key_axes:
            raise ValueError("key_axes must name at least one axis")
        self.experiment = experiment
        self.metric = metric
        self.key_axes = {
            name: axis_values(value, name=name) for name, value in key_axes.items()
        }
        if refine_axis not in self.key_axes:
            raise ValueError(
                f"refine_axis {refine_axis!r} is not a key axis "
                f"{list(self.key_axes)}"
            )
        for v in self.key_axes[refine_axis]:
            if isinstance(v, bool) or not isinstance(v, (int, float)):
                raise ValueError(
                    f"refine axis {refine_axis!r} values must be numbers: "
                    f"got {v!r}"
                )
        self.refine_axis = refine_axis
        self.extra_axes = {
            name: axis_values(value, name=name)
            for name, value in dict(extra_axes or {}).items()
        }
        self.base_params = dict(base_params or {})
        self.rep_axis = rep_axis
        names = list(self.key_axes) + list(self.extra_axes) + [rep_axis]
        clashes = {n for n in names if names.count(n) > 1} | (
            set(names) & set(self.base_params)
        )
        if clashes:
            raise ValueError(f"parameter names collide: {sorted(clashes)}")
        self.ci_width = float(ci_width)
        self.initial_reps = int(initial_reps)
        self.max_points = max_points
        self.max_rounds = int(max_rounds)
        self.max_round_reps = int(max_round_reps)
        self.max_depth = int(max_depth)
        self.static_specs = list(static_specs or [])

        #: One sample *unit* = one rep index swept over every extra combo.
        self._extras = expand_grid(self.extra_axes) if self.extra_axes else [{}]
        self._unit = len(self._extras)
        self._key_names = list(self.key_axes)
        self._refine_pos = self._key_names.index(refine_axis)
        refine_sorted = sorted(float(v) for v in self.key_axes[refine_axis])
        gaps = [b - a for a, b in zip(refine_sorted, refine_sorted[1:]) if b > a]
        #: Bisection floor: the smallest initial gap halved max_depth times.
        self._min_gap = min(gaps) / (2 ** self.max_depth) if gaps else None

        #: Canonical bin key -> replication units emitted. Insertion order
        #: is the deterministic planning/emission order; midpoint bins
        #: append as they are created.
        self._bins: dict[str, int] = {
            canonical_json(list(combo)): 0
            for combo in itertools.product(
                *(self.key_axes[n] for n in self._key_names)
            )
        }
        self._static_emitted = 0
        self._emitted = 0
        self._round = 0
        self._round_specs: list[PointSpec] | None = None
        self._budget_hit = False
        self._complete = False
        self._resumed_midflight = False
        self._digest: str | None = None

    # -- identity ---------------------------------------------------------

    @property
    def config_digest(self) -> str:
        if self._digest is None:
            cfg = {
                "strategy": self.strategy,
                "experiment": self.experiment,
                "metric": self.metric,
                "key_axes": self.key_axes,
                "refine_axis": self.refine_axis,
                "extra_axes": self.extra_axes,
                "base_params": self.base_params,
                "rep_axis": self.rep_axis,
                "initial_reps": self.initial_reps,
                "ci_width": self.ci_width,
                "max_points": self.max_points,
                "max_rounds": self.max_rounds,
                "max_round_reps": self.max_round_reps,
                "max_depth": self.max_depth,
                "static_grid": (
                    grid_digest(s.digest for s in self.static_specs)
                    if self.static_specs
                    else None
                ),
            }
            self._digest = hashlib.sha256(
                canonical_json(cfg).encode("utf-8")
            ).hexdigest()
        return self._digest

    @property
    def is_complete(self) -> bool:
        return self._complete

    @property
    def rounds_planned(self) -> int:
        """Rounds emitted so far (== total rounds once complete)."""
        return self._round

    @property
    def points_emitted(self) -> int:
        return self._emitted

    # -- emission ---------------------------------------------------------

    def _bin_specs(self, key_c: str, rep: int) -> list[PointSpec]:
        """One replication unit of the bin: rep index x every extra combo."""
        bin_params = dict(zip(self._key_names, json.loads(key_c)))
        return [
            PointSpec(
                self.experiment,
                {**self.base_params, **bin_params, **extra, self.rep_axis: rep},
            )
            for extra in self._extras
        ]

    def _budget_left(self) -> int | None:
        if self.max_points is None:
            return None
        return self.max_points - self._emitted

    def _emit_static(self) -> list[PointSpec]:
        out: list[PointSpec] = []
        for spec in self.static_specs:
            left = self._budget_left()
            if left is not None and left < 1:
                self._budget_hit = True
                break
            out.append(spec)
            self._static_emitted += 1
            self._emitted += 1
        return out

    def _emit(self, requests: Sequence[tuple[str, int]]) -> list[PointSpec]:
        """Emit whole replication units per request, stopping at the budget."""
        out: list[PointSpec] = []
        for key_c, units in requests:
            start = self._bins[key_c]
            for offset in range(units):
                left = self._budget_left()
                if left is not None and left < self._unit:
                    self._budget_hit = True
                    return out
                block = self._bin_specs(key_c, start + offset)
                out.extend(block)
                self._bins[key_c] = start + offset + 1
                self._emitted += len(block)
        return out

    def _reconstruct_emitted(self) -> list[PointSpec]:
        """Every spec emitted so far, rebuilt from the per-bin counters.

        The resume catch-up round: already-folded points are skipped
        outright downstream, so re-emitting the full set is cheap and
        restores the exact aggregate at the next round boundary.
        """
        out = list(self.static_specs[: self._static_emitted])
        for key_c, units in self._bins.items():
            for rep in range(units):
                out.extend(self._bin_specs(key_c, rep))
        return out

    # -- planning ---------------------------------------------------------

    def _bin_stats(self, curve: Any, key_c: str) -> tuple[float | None, int]:
        acc = curve.points.get(key_c)
        if acc is None:
            return None, 0
        count = getattr(acc, "count", 0)
        if not count:
            return None, 0
        mean = acc.mean
        if mean is None:
            return None, count
        return float(mean), count

    def _bisect(self, curve: Any) -> list[str]:
        """Insert midpoint bins where adjacent series bins disagree."""
        if self._min_gap is None:
            return []
        series: dict[str, list[tuple[float, str]]] = {}
        for key_c in self._bins:
            key_vals = json.loads(key_c)
            position = float(key_vals[self._refine_pos])
            rest = list(key_vals)
            rest[self._refine_pos] = None
            series.setdefault(canonical_json(rest), []).append((position, key_c))
        created: list[str] = []
        for series_key in sorted(series):
            bins = sorted(series[series_key])
            for (va, ka), (vb, kb) in zip(bins, bins[1:]):
                if vb - va <= self._min_gap * (1 + 1e-9):
                    continue  # depth floor reached
                pa, na = self._bin_stats(curve, ka)
                pb, nb = self._bin_stats(curve, kb)
                if pa is None or pb is None or not na or not nb:
                    continue
                if abs(pa - pb) <= self.ci_width:
                    continue  # curve is flat here at the target resolution
                key_vals = json.loads(ka)
                key_vals[self._refine_pos] = (va + vb) / 2.0
                key_c = canonical_json(key_vals)
                if key_c not in self._bins:
                    self._bins[key_c] = 0
                    created.append(key_c)
        return created

    def _plan(self, view: Aggregator) -> list[PointSpec]:
        if self._budget_hit:
            return []
        if self.max_points is not None and self._emitted >= self.max_points:
            self._budget_hit = True
            return []
        if self._round >= self.max_rounds:
            return []
        curve = view[self.metric]
        requests: list[tuple[str, int]] = []
        for key_c, emitted_units in self._bins.items():
            p, n = self._bin_stats(curve, key_c)
            if p is None:
                # Never sampled (budget starvation is handled above) or
                # every sample failed: a dead bin cannot converge.
                continue
            if wilson_width(p, n) <= self.ci_width:
                continue
            deficit = reps_for_width(p, self.ci_width) - n
            units = max(1, min(self.max_round_reps, -(-deficit // self._unit)))
            requests.append((key_c, units))
        for key_c in self._bisect(curve):
            requests.append((key_c, self.initial_reps))
        return self._emit(requests)

    def _finalize(self, view: Aggregator) -> None:
        curve = view[self.metric]
        open_bins = 0
        for key_c, emitted_units in self._bins.items():
            if emitted_units == 0:
                open_bins += 1  # budget ran out before it was ever sampled
                continue
            p, n = self._bin_stats(curve, key_c)
            if p is None:
                continue  # dead bin: abandoned, not open
            if wilson_width(p, n) > self.ci_width:
                open_bins += 1
        self.open_bins = open_bins

    def rounds(self, view: Aggregator | None = None) -> Iterator[list[PointSpec]]:
        if self._complete:
            return
        if view is None:
            raise ValueError(
                "AdaptiveRefinementSource.rounds() needs the live aggregate"
            )
        if self._resumed_midflight:
            self._resumed_midflight = False
            specs = self._reconstruct_emitted()
        else:
            specs = self._emit_static() + self._emit(
                [(key_c, self.initial_reps) for key_c in self._bins]
            )
        while specs:
            telemetry.count("adaptive.rounds")
            telemetry.count("adaptive.planned", len(specs))
            self._round_specs = specs
            yield list(specs)
            self._round += 1
            self._round_specs = None
            specs = self._plan(view)
        self._complete = True
        self._finalize(view)
        if self.open_bins is not None:
            telemetry.gauge("adaptive.open_bins", self.open_bins)

    # -- persistence ------------------------------------------------------

    def state_dict(self) -> dict[str, Any]:
        state: dict[str, Any] = {
            "strategy": self.strategy,
            "config": self.config_digest,
            "round": self._round,
            "emitted": self._emitted,
            "complete": self._complete,
        }
        if not self._complete:
            # Bins are an ordered list of [key, units] pairs: insertion
            # order IS the planning order, and canonical JSON would sort
            # an object's keys.
            state["budget_hit"] = self._budget_hit
            state["static_emitted"] = self._static_emitted
            state["bins"] = [[k, u] for k, u in self._bins.items()]
        return state

    def load_state(self, state: Mapping[str, Any] | None) -> None:
        if state is None:
            raise SnapshotError(
                "snapshot has folded points but no adaptive source state; "
                "it was not written by an adaptive campaign"
            )
        if state.get("strategy") != self.strategy:
            raise SnapshotError(
                f"snapshot was written by a {state.get('strategy')!r} point "
                f"source, not an adaptive campaign"
            )
        if state.get("config") != self.config_digest:
            raise SnapshotError(
                "snapshot belongs to a different adaptive configuration "
                "(source config digest mismatch)"
            )
        try:
            self._round = int(state["round"])
            self._emitted = int(state["emitted"])
            if state.get("complete"):
                self._complete = True
                return
            self._budget_hit = bool(state["budget_hit"])
            self._static_emitted = int(state["static_emitted"])
            bins = state["bins"]
            self._bins = {str(k): int(u) for k, u in bins}
        except (KeyError, TypeError, ValueError) as exc:
            raise SnapshotError(
                f"snapshot's adaptive source state is malformed: {exc}"
            ) from None
        self._resumed_midflight = True


__all__ = [
    "AdaptiveRefinementSource",
    "GridSource",
    "PointSource",
    "SnapshotError",
    "reps_for_width",
    "wilson_width",
]
