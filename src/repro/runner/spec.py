"""Experiment-point specifications and their determinism contract.

A *point* is one unit of campaign work: the name of a registered experiment
function plus a JSON-serializable parameter mapping. Two properties make the
whole runner deterministic and cacheable:

* **Canonical form** — :attr:`PointSpec.canonical` serializes the spec with
  sorted keys and no whitespace, so logically equal specs always produce the
  same bytes, the same :attr:`PointSpec.digest`, and the same cache file.
* **Content-keyed seeding** — :func:`point_seed` derives each point's
  :class:`numpy.random.SeedSequence` from the campaign master seed with a
  ``spawn_key`` taken from the spec digest. This is the same mechanism
  ``SeedSequence.spawn`` uses internally (spawned children differ only in
  their ``spawn_key``), but keyed by *content* instead of spawn order — so a
  point's random stream never depends on grid enumeration order, worker
  count, or which other points share the campaign. Points that need several
  independent streams call ``seed.spawn(k)`` on their own sequence.
"""

from __future__ import annotations

import hashlib
import json
from typing import Any, Mapping

import numpy as np


def canonical_json(value: Any) -> str:
    """Serialize ``value`` to canonical JSON (sorted keys, no whitespace).

    Raises ``TypeError``/``ValueError`` for values outside the JSON model
    (including NaN/Infinity) — specs must be exactly representable so their
    hash is stable across processes and Python versions.
    """
    return json.dumps(
        value, sort_keys=True, separators=(",", ":"), allow_nan=False
    )


class PointSpec:
    """One experiment point: registered experiment name + JSON parameters."""

    __slots__ = ("experiment", "params", "_canonical")

    def __init__(self, experiment: str, params: Mapping[str, Any] | None = None):
        if not experiment or not isinstance(experiment, str):
            raise ValueError(f"experiment must be a non-empty str: got {experiment!r}")
        self.experiment = experiment
        self.params: dict[str, Any] = dict(params or {})
        # Canonicalize eagerly so malformed params fail at construction time,
        # not in a worker process.
        self._canonical = canonical_json(
            {"experiment": self.experiment, "params": self.params}
        )

    @property
    def canonical(self) -> str:
        """Canonical JSON of the whole spec (the identity of this point)."""
        return self._canonical

    @property
    def digest(self) -> str:
        """SHA-256 hex digest of :attr:`canonical`."""
        return hashlib.sha256(self._canonical.encode("utf-8")).hexdigest()

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, PointSpec):
            return NotImplemented
        return self._canonical == other._canonical

    def __hash__(self) -> int:
        return hash(self._canonical)

    def __repr__(self) -> str:
        return f"PointSpec({self.experiment!r}, {self.params!r})"

    def to_dict(self) -> dict[str, Any]:
        """Plain-dict form (used by caching and ``--out`` files)."""
        return {"experiment": self.experiment, "params": dict(self.params)}

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "PointSpec":
        return cls(data["experiment"], data.get("params", {}))


def point_seed(spec: PointSpec, master_seed: int = 0) -> np.random.SeedSequence:
    """Derive the point's root :class:`~numpy.random.SeedSequence`.

    The sequence is ``SeedSequence(entropy=master_seed, spawn_key=words)``
    where ``words`` are the first 128 bits of the spec digest. Equal specs
    under the same master seed always get identical streams; changing either
    the master seed or any parameter changes the stream.
    """
    raw = hashlib.sha256(spec.canonical.encode("utf-8")).digest()
    words = tuple(
        int.from_bytes(raw[i : i + 4], "big") for i in range(0, 16, 4)
    )
    return np.random.SeedSequence(entropy=master_seed, spawn_key=words)
