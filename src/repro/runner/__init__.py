"""Parallel, deterministic, cache-aware experiment campaign engine.

This package is the subsystem behind ``repro campaign``: it fans a grid of
experiment points — utilization x task count x fault rate x generator
parameters, or the paper's own artifacts — out over a process pool while
keeping the results exactly reproducible.

Determinism contract
--------------------
* Every point is a :class:`PointSpec` (experiment name + JSON params) with
  a canonical serialization and SHA-256 digest.
* The point's random streams come from
  ``SeedSequence(entropy=master_seed, spawn_key=digest_words)`` — the
  ``spawn_key`` mechanism of :meth:`numpy.random.SeedSequence.spawn`, keyed
  by spec *content* instead of spawn order. Points needing several
  independent streams ``spawn()`` children from their own sequence.
* Consequently ``--workers 1``, ``--workers 4``, shuffled submission order
  and extended grids all yield bit-identical per-point results.

Caching contract
----------------
* With a cache directory, each finished point is stored as one JSON file
  keyed by ``(spec digest, master seed)`` with the full spec embedded
  (collisions and stale layouts read as misses).
* A re-run — or a grown sweep that shares old points — recomputes only the
  points that are not on disk; everything else is served from cache.

See ``docs/campaigns.md`` for the user-facing guide.
"""

from repro.runner.aggregate import (
    Accumulator,
    Aggregator,
    CategoricalCountAccumulator,
    CurveAccumulator,
    ExtremaAccumulator,
    HistogramSketch,
    MeanAccumulator,
    Metric,
    SlotAccumulator,
    WeightedMeanAccumulator,
    accumulator_from_state,
    categorical_metric,
    curve_metric,
    extrema_metric,
    histogram_metric,
    mean_metric,
    merge_states,
    slot_metric,
)
from repro.runner.cache import ResultCache, atomic_write_text
from repro.runner.engine import (
    MAX_AUTO_BATCH,
    CampaignError,
    CampaignResult,
    CampaignStats,
    auto_batch_size,
    default_workers,
    evaluate_batch,
    evaluate_point,
    execute_points,
    run_campaign,
    sweep,
)
from repro.runner.grid import (
    axis_values,
    expand_grid,
    grid_specs,
    parse_axes,
    parse_axis,
)
from repro.runner.points import (
    experiment,
    experiments,
    get_experiment,
    partition_params,
    taskset_params,
)
from repro.runner.presets import (
    PresetError,
    PresetSpec,
    adaptive_preset_names,
    axis_preset_names,
    get_preset,
    preset_names,
    register_preset,
    scenario_preset_names,
)
from repro.runner.progress import ProgressReporter
from repro.runner.shard import (
    MergeError,
    ShardManifest,
    grid_digest,
    merge_snapshot_files,
    merge_snapshots,
    parse_shard,
    shard_of,
    shard_specs,
)
from repro.runner.source import (
    AdaptiveRefinementSource,
    GridSource,
    PointSource,
    reps_for_width,
    wilson_width,
)
from repro.runner.spec import PointSpec, canonical_json, point_seed
from repro.runner.stream import (
    SNAPSHOT_SCHEMA,
    SNAPSHOT_SCHEMA_MINOR,
    SnapshotCompatWarning,
    SnapshotError,
    StreamResult,
    StreamStats,
    check_snapshot_compat,
    fold_rows,
    load_snapshot,
    save_snapshot,
    snapshot_dict,
    stream_campaign,
)

__all__ = [
    "MAX_AUTO_BATCH",
    "SNAPSHOT_SCHEMA",
    "SNAPSHOT_SCHEMA_MINOR",
    "Accumulator",
    "AdaptiveRefinementSource",
    "Aggregator",
    "CampaignError",
    "CampaignResult",
    "CampaignStats",
    "CategoricalCountAccumulator",
    "CurveAccumulator",
    "ExtremaAccumulator",
    "GridSource",
    "HistogramSketch",
    "MeanAccumulator",
    "MergeError",
    "Metric",
    "PointSource",
    "PointSpec",
    "PresetError",
    "PresetSpec",
    "ProgressReporter",
    "ResultCache",
    "ShardManifest",
    "SlotAccumulator",
    "SnapshotCompatWarning",
    "SnapshotError",
    "StreamResult",
    "StreamStats",
    "WeightedMeanAccumulator",
    "accumulator_from_state",
    "adaptive_preset_names",
    "atomic_write_text",
    "auto_batch_size",
    "axis_preset_names",
    "axis_values",
    "canonical_json",
    "check_snapshot_compat",
    "categorical_metric",
    "curve_metric",
    "default_workers",
    "evaluate_batch",
    "evaluate_point",
    "execute_points",
    "expand_grid",
    "experiment",
    "experiments",
    "extrema_metric",
    "fold_rows",
    "get_experiment",
    "get_preset",
    "grid_digest",
    "grid_specs",
    "histogram_metric",
    "load_snapshot",
    "mean_metric",
    "merge_snapshot_files",
    "merge_snapshots",
    "merge_states",
    "parse_axes",
    "parse_axis",
    "parse_shard",
    "partition_params",
    "point_seed",
    "preset_names",
    "register_preset",
    "reps_for_width",
    "run_campaign",
    "save_snapshot",
    "scenario_preset_names",
    "shard_of",
    "shard_specs",
    "slot_metric",
    "snapshot_dict",
    "stream_campaign",
    "sweep",
    "taskset_params",
    "wilson_width",
]
