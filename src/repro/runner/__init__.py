"""Parallel, deterministic, cache-aware experiment campaign engine.

This package is the subsystem behind ``repro campaign``: it fans a grid of
experiment points — utilization x task count x fault rate x generator
parameters, or the paper's own artifacts — out over a process pool while
keeping the results exactly reproducible.

Determinism contract
--------------------
* Every point is a :class:`PointSpec` (experiment name + JSON params) with
  a canonical serialization and SHA-256 digest.
* The point's random streams come from
  ``SeedSequence(entropy=master_seed, spawn_key=digest_words)`` — the
  ``spawn_key`` mechanism of :meth:`numpy.random.SeedSequence.spawn`, keyed
  by spec *content* instead of spawn order. Points needing several
  independent streams ``spawn()`` children from their own sequence.
* Consequently ``--workers 1``, ``--workers 4``, shuffled submission order
  and extended grids all yield bit-identical per-point results.

Caching contract
----------------
* With a cache directory, each finished point is stored as one JSON file
  keyed by ``(spec digest, master seed)`` with the full spec embedded
  (collisions and stale layouts read as misses).
* A re-run — or a grown sweep that shares old points — recomputes only the
  points that are not on disk; everything else is served from cache.

See ``docs/campaigns.md`` for the user-facing guide.
"""

from repro.runner.cache import ResultCache
from repro.runner.engine import (
    CampaignError,
    CampaignResult,
    CampaignStats,
    default_workers,
    run_campaign,
    sweep,
)
from repro.runner.grid import expand_grid, grid_specs, parse_axes, parse_axis
from repro.runner.points import (
    experiment,
    experiments,
    get_experiment,
    partition_params,
    taskset_params,
)
from repro.runner.progress import ProgressReporter
from repro.runner.spec import PointSpec, canonical_json, point_seed

__all__ = [
    "CampaignError",
    "CampaignResult",
    "CampaignStats",
    "PointSpec",
    "ProgressReporter",
    "ResultCache",
    "canonical_json",
    "default_workers",
    "expand_grid",
    "experiment",
    "experiments",
    "get_experiment",
    "grid_specs",
    "parse_axes",
    "parse_axis",
    "partition_params",
    "point_seed",
    "run_campaign",
    "sweep",
    "taskset_params",
]
