"""The parallel campaign engine: fan points out, keep results deterministic.

Execution contract
------------------
* **Determinism** — a point's result depends only on its spec and the
  campaign master seed (content-keyed :func:`~repro.runner.spec.point_seed`),
  never on worker count, completion order, or which other points run.
  ``run_campaign(specs, workers=4)`` is bit-identical to ``workers=1``.
* **Caching** — with a ``cache_dir``, finished points are persisted as JSON
  keyed by ``(spec digest, master seed)``; a re-run (or an extended sweep
  sharing old points) recomputes nothing that is already on disk.
* **Dedup** — duplicate specs inside one campaign are evaluated once and
  fanned back to every occurrence.
* **Ordering** — ``CampaignResult.results[i]`` always corresponds to
  ``specs[i]`` regardless of the order points actually finished in.

Worker processes evaluate :func:`evaluate_batch` on ``(points,
master_seed)`` payloads — plain picklable tuples, resolved against the
registry in :mod:`repro.runner.points` on the worker side. Each pool task
carries a whole *batch* of points (:func:`auto_batch_size` picks how many),
so IPC and future bookkeeping are amortized over the batch instead of paid
once per point — the difference between a million pool tasks and a few
thousand on a million-point shard. Batching never changes results: every
point is still seeded by its own content digest, and completions are folded
through the same order-insensitive paths as unbatched runs.
"""

from __future__ import annotations

import os
import time
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from dataclasses import dataclass
from typing import Any, Callable, Iterable, Mapping, TextIO

from repro import telemetry
from repro.analysis import kernels
from repro.runner.grid import grid_specs
from repro.runner.points import get_experiment
from repro.runner.progress import ProgressReporter
from repro.runner.spec import PointSpec, canonical_json, point_seed


class CampaignError(RuntimeError):
    """A point raised during evaluation (carries the failing spec)."""

    def __init__(self, spec: PointSpec, message: str):
        super().__init__(f"{spec.experiment} point failed: {message}\n  spec: {spec.canonical}")
        self.spec = spec


@dataclass(frozen=True)
class CampaignStats:
    """Bookkeeping of one engine run (not part of the deterministic output)."""

    total: int
    unique: int
    computed: int
    cached: int
    errors: int
    elapsed: float
    workers: int
    #: Points-per-task the engine resolved (the request, or the auto-sized
    #: value) — informational, like ``workers``; results never depend on it.
    batch_size: int = 1

    def to_dict(self) -> dict[str, Any]:
        """JSON-safe mapping of every counter (tuples become lists)."""
        from dataclasses import fields

        out: dict[str, Any] = {}
        for f in fields(self):
            value = getattr(self, f.name)
            out[f.name] = list(value) if isinstance(value, tuple) else value
        return out


@dataclass
class CampaignResult:
    """Results aligned one-to-one with the submitted specs."""

    specs: list[PointSpec]
    results: list[Any]
    stats: CampaignStats

    def rows(self) -> list[tuple[PointSpec, Any]]:
        """``(spec, result)`` pairs in submission order."""
        return list(zip(self.specs, self.results))

    def to_json(self) -> str:
        """Canonical JSON of specs+results only — identical across worker
        counts and cache states, which is what CI's determinism check diffs."""
        return canonical_json(
            [
                {"spec": spec.to_dict(), "result": result}
                for spec, result in self.rows()
            ]
        )


def evaluate_point(
    payload: tuple[str, Mapping[str, Any], int]
) -> tuple[bool, Any, float]:
    """Evaluate one ``(experiment, params, master_seed)`` payload.

    Returns ``(ok, result_or_error_message, elapsed_seconds)``; exceptions
    are flattened to strings so pool workers never die on a point failure.
    """
    experiment, params, master_seed = payload
    spec = PointSpec(experiment, params)
    fn = get_experiment(experiment)
    start = time.perf_counter()
    try:
        with telemetry.span("point"):
            result = fn(params, point_seed(spec, master_seed))
    except Exception as exc:  # noqa: BLE001 - reported via CampaignError/on_error
        return False, f"{type(exc).__name__}: {exc}", time.perf_counter() - start
    return True, result, time.perf_counter() - start


def evaluate_batch(
    payload: tuple[tuple[tuple[str, Mapping[str, Any]], ...], int]
) -> tuple[list[tuple[bool, Any, float]], dict[str, int], "dict[str, Any] | None"]:
    """Evaluate a whole ``((experiment, params), ...)`` batch in one task.

    One pool task, one pickled payload, one result message — regardless of
    how many points the batch holds. Outcomes are returned in batch order;
    each point is evaluated independently (a failing point never poisons
    its batch mates).

    Returns ``(outcomes, kernel_delta, telemetry_delta)``: the per-point
    results, this batch's fast/fallback kernel-selection counts (see
    :func:`repro.analysis.kernels.kernel_counters`), and — when the payload
    carries a truthy third element — this batch's telemetry export
    (counters, span phases, CPU seconds), recorded into a private
    per-batch collector so pool workers need no shared state. Without the
    flag the delta is ``None`` and no collector is ever created, keeping
    the disabled path allocation-free.
    """
    points, master_seed, *rest = payload
    with_telemetry = bool(rest[0]) if rest else False
    before = kernels.kernel_counters()
    if not with_telemetry:
        outcomes = [
            evaluate_point((experiment, params, master_seed))
            for experiment, params in points
        ]
        return outcomes, kernels.counters_delta(before), None
    collector = telemetry.Telemetry()
    with telemetry.activated(collector):
        outcomes = [
            evaluate_point((experiment, params, master_seed))
            for experiment, params in points
        ]
    return outcomes, kernels.counters_delta(before), collector.export()


def default_workers() -> int:
    """Default parallelism: every core but one (floor 1)."""
    return max(1, (os.cpu_count() or 2) - 1)


#: Auto-sized batches never exceed this many points: snapshot flushes,
#: progress updates and cache writes all happen at batch completion, so an
#: unbounded batch would turn a resumable campaign into an all-or-nothing
#: task per worker.
MAX_AUTO_BATCH = 256

#: Target number of batches handed to each worker over an auto-sized run —
#: enough slack that an unlucky worker stuck with slow points doesn't
#: serialize the tail of the campaign.
_BATCHES_PER_WORKER = 8

#: In-flight (submitted, unfinished) batches per worker. The engine submits
#: lazily up to this window instead of materializing every pickled future
#: up front — a million-point shard queues a handful of batches, not a
#: million futures.
_INFLIGHT_PER_WORKER = 4


def auto_batch_size(points: int, workers: int) -> int:
    """Heuristic batch size for ``points`` spread over ``workers``.

    Aims for :data:`_BATCHES_PER_WORKER` batches per worker (so the pool
    load-balances), capped at :data:`MAX_AUTO_BATCH` (so progress,
    snapshots and caching stay responsive) with a floor of one point.
    Small campaigns therefore keep per-point tasks; million-point sweeps
    get maximal amortization.
    """
    if points <= 0 or workers <= 0:
        return 1
    return max(1, min(MAX_AUTO_BATCH, points // (workers * _BATCHES_PER_WORKER)))


def execute_points(
    todo: list[PointSpec],
    workers: int,
    master_seed: int,
    finish_batch: "Callable[[list[tuple[PointSpec, bool, Any, float]]], None]",
    on_abort: "Callable[[], None] | None" = None,
    batch_size: int | None = None,
    kernel_totals: "dict[str, int] | None" = None,
) -> int:
    """Evaluate ``todo`` sequentially or via a process pool, in batches.

    The shared execution core of :func:`run_campaign` and
    :func:`repro.runner.stream.stream_campaign`: calls
    ``finish_batch([(spec, ok, result, elapsed), ...])`` as each batch
    completes (any batch order in pool mode; batch-internal order is
    submission order). ``batch_size=None`` auto-sizes via
    :func:`auto_batch_size`; returns the effective batch size. If
    ``finish_batch`` raises :class:`CampaignError`, queued batches are
    cancelled and ``on_abort`` runs before the error propagates — both
    paths, so e.g. snapshot flushing behaves identically at any worker
    count.

    ``kernel_totals`` (a ``{"fast": n, "fallback": n}`` dict) accumulates
    the fast-kernel selection counts of every evaluated batch in place —
    inline deltas and pool workers' per-batch deltas alike. Purely
    informational bookkeeping: results never depend on it.

    Submission is windowed: at most ``workers *`` a small factor of
    batches are in flight at once, so the pending-future set stays O(
    workers) however many points the campaign holds.
    """
    if batch_size is None:
        batch_size = auto_batch_size(len(todo), workers)
    batch_size = max(1, int(batch_size))
    if not todo:
        return batch_size
    batches = [
        todo[i : i + batch_size] for i in range(0, len(todo), batch_size)
    ]
    def note_kernels(delta: "Mapping[str, int]") -> None:
        if kernel_totals is not None:
            for key, value in delta.items():
                kernel_totals[key] = kernel_totals.get(key, 0) + value

    recorder = telemetry.active()

    def note_batch(points: int, tdelta: "Mapping[str, Any] | None") -> None:
        if recorder is None:
            return
        if tdelta is not None:
            recorder.absorb(tdelta)
        recorder.count("engine.batches")
        recorder.count("engine.points", points)

    if workers == 1 or len(todo) == 1:
        try:
            for batch in batches:
                before = kernels.kernel_counters()
                # Inline batches record into a throwaway collector exactly
                # like a pool worker would, so traces keep the same
                # ``worker/`` shape at any worker count. CPU is zeroed
                # before absorbing: this process's own clock already
                # covers inline work.
                collector = (
                    telemetry.Telemetry() if recorder is not None else None
                )
                done: list[tuple[PointSpec, bool, Any, float]] = []
                for spec in batch:
                    previous = telemetry.activate(collector) if collector else None
                    try:
                        outcome = evaluate_point(
                            (spec.experiment, spec.params, master_seed)
                        )
                    finally:
                        if collector is not None:
                            telemetry.activate(previous)
                    done.append((spec, *outcome))
                    if not outcome[0]:
                        # Surface failures immediately: inline execution
                        # has no IPC to amortize, so an on_error="raise"
                        # campaign must abort without evaluating the rest
                        # of the batch first.
                        finish_batch(done)
                        done = []
                note_kernels(kernels.counters_delta(before))
                if collector is not None:
                    inline_delta = collector.export()
                    inline_delta["cpu_seconds"] = 0.0
                    note_batch(len(batch), inline_delta)
                if done:
                    finish_batch(done)
        except CampaignError:
            if on_abort is not None:
                on_abort()
            raise
        return batch_size
    with ProcessPoolExecutor(max_workers=min(workers, len(batches))) as pool:
        window = workers * _INFLIGHT_PER_WORKER
        queued = iter(batches)
        pending: dict[Any, list[PointSpec]] = {}

        def top_up() -> None:
            while len(pending) < window:
                batch = next(queued, None)
                if batch is None:
                    return
                future = pool.submit(
                    evaluate_batch,
                    (
                        tuple((s.experiment, s.params) for s in batch),
                        master_seed,
                        recorder is not None,
                    ),
                )
                pending[future] = batch
                telemetry.count("engine.submitted")
        try:
            top_up()
            while pending:
                done, _ = wait(set(pending), return_when=FIRST_COMPLETED)
                for future in done:
                    batch = pending.pop(future)
                    outcomes, kdelta, tdelta = future.result()
                    note_kernels(kdelta)
                    note_batch(len(batch), tdelta)
                    finish_batch(
                        [
                            (spec, ok, result, elapsed)
                            for spec, (ok, result, elapsed) in zip(
                                batch, outcomes
                            )
                        ]
                    )
                top_up()
        except CampaignError:
            # Don't let the context-manager exit block on the whole
            # remaining campaign: drop every queued batch first.
            pool.shutdown(wait=False, cancel_futures=True)
            if on_abort is not None:
                on_abort()
            raise
    return batch_size


def run_campaign(
    specs: Iterable[PointSpec],
    *,
    workers: int | None = 1,
    master_seed: int = 0,
    cache_dir: str | os.PathLike | None = None,
    progress: bool | ProgressReporter = False,
    progress_stream: TextIO | None = None,
    on_error: str = "raise",
    batch_size: int | None = None,
) -> CampaignResult:
    """Run every point of a campaign and return aligned results.

    Parameters
    ----------
    specs:
        The experiment points. Duplicates are evaluated once.
    workers:
        Process-pool size; ``1`` (default) runs inline in this process with
        identical results, ``None`` means :func:`default_workers`.
    master_seed:
        Campaign-level entropy for :func:`~repro.runner.spec.point_seed`.
    cache_dir:
        Optional on-disk :class:`~repro.runner.cache.ResultCache` root.
    progress:
        ``True`` for a stderr :class:`ProgressReporter`, or a pre-built
        reporter (used by tests to capture snapshots).
    on_error:
        ``"raise"`` aborts on the first failing point;
        ``"store"`` records ``{"error": message}`` as that point's result
        (never cached) and keeps going.
    batch_size:
        Points per pool task; ``None`` (default) auto-sizes via
        :func:`auto_batch_size`. Results are bit-identical for any value.
    """
    # A materialized campaign is a streamed one that folds into nothing
    # and keeps every result; the streaming module owns the engine loop.
    from repro.runner.aggregate import Aggregator
    from repro.runner.stream import stream_campaign

    streamed = stream_campaign(
        specs,
        Aggregator([]),
        workers=workers,
        master_seed=master_seed,
        cache_dir=cache_dir,
        collect=True,
        progress=progress,
        progress_stream=progress_stream,
        on_error=on_error,
        batch_size=batch_size,
    )
    return CampaignResult(
        specs=streamed.specs,
        results=streamed.results,
        stats=streamed.stats,  # StreamStats is-a (frozen) CampaignStats
    )


def sweep(
    experiment: str,
    axes: Mapping[str, Any],
    *,
    base_params: Mapping[str, Any] | None = None,
    **campaign_kwargs: Any,
) -> CampaignResult:
    """Grid-expand ``axes`` and run the campaign in one call."""
    return run_campaign(
        grid_specs(experiment, axes, base_params=base_params),
        **campaign_kwargs,
    )


__all__ = [
    "MAX_AUTO_BATCH",
    "CampaignError",
    "CampaignResult",
    "CampaignStats",
    "auto_batch_size",
    "default_workers",
    "evaluate_batch",
    "evaluate_point",
    "execute_points",
    "run_campaign",
    "sweep",
]
