"""The parallel campaign engine: fan points out, keep results deterministic.

Execution contract
------------------
* **Determinism** — a point's result depends only on its spec and the
  campaign master seed (content-keyed :func:`~repro.runner.spec.point_seed`),
  never on worker count, completion order, or which other points run.
  ``run_campaign(specs, workers=4)`` is bit-identical to ``workers=1``.
* **Caching** — with a ``cache_dir``, finished points are persisted as JSON
  keyed by ``(spec digest, master seed)``; a re-run (or an extended sweep
  sharing old points) recomputes nothing that is already on disk.
* **Dedup** — duplicate specs inside one campaign are evaluated once and
  fanned back to every occurrence.
* **Ordering** — ``CampaignResult.results[i]`` always corresponds to
  ``specs[i]`` regardless of the order points actually finished in.

Worker processes evaluate :func:`evaluate_point` on ``(experiment, params,
master_seed)`` payloads — plain picklable tuples, resolved against the
registry in :mod:`repro.runner.points` on the worker side.
"""

from __future__ import annotations

import os
import time
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from dataclasses import dataclass
from typing import Any, Callable, Iterable, Mapping, TextIO

from repro.runner.grid import grid_specs
from repro.runner.points import get_experiment
from repro.runner.progress import ProgressReporter
from repro.runner.spec import PointSpec, canonical_json, point_seed


class CampaignError(RuntimeError):
    """A point raised during evaluation (carries the failing spec)."""

    def __init__(self, spec: PointSpec, message: str):
        super().__init__(f"{spec.experiment} point failed: {message}\n  spec: {spec.canonical}")
        self.spec = spec


@dataclass(frozen=True)
class CampaignStats:
    """Bookkeeping of one engine run (not part of the deterministic output)."""

    total: int
    unique: int
    computed: int
    cached: int
    errors: int
    elapsed: float
    workers: int


@dataclass
class CampaignResult:
    """Results aligned one-to-one with the submitted specs."""

    specs: list[PointSpec]
    results: list[Any]
    stats: CampaignStats

    def rows(self) -> list[tuple[PointSpec, Any]]:
        """``(spec, result)`` pairs in submission order."""
        return list(zip(self.specs, self.results))

    def to_json(self) -> str:
        """Canonical JSON of specs+results only — identical across worker
        counts and cache states, which is what CI's determinism check diffs."""
        return canonical_json(
            [
                {"spec": spec.to_dict(), "result": result}
                for spec, result in self.rows()
            ]
        )


def evaluate_point(
    payload: tuple[str, Mapping[str, Any], int]
) -> tuple[bool, Any, float]:
    """Evaluate one ``(experiment, params, master_seed)`` payload.

    Returns ``(ok, result_or_error_message, elapsed_seconds)``; exceptions
    are flattened to strings so pool workers never die on a point failure.
    """
    experiment, params, master_seed = payload
    spec = PointSpec(experiment, params)
    fn = get_experiment(experiment)
    start = time.perf_counter()
    try:
        result = fn(params, point_seed(spec, master_seed))
    except Exception as exc:  # noqa: BLE001 - reported via CampaignError/on_error
        return False, f"{type(exc).__name__}: {exc}", time.perf_counter() - start
    return True, result, time.perf_counter() - start


def default_workers() -> int:
    """Default parallelism: every core but one (floor 1)."""
    return max(1, (os.cpu_count() or 2) - 1)


def execute_points(
    todo: list[PointSpec],
    workers: int,
    master_seed: int,
    finish: "Callable[[PointSpec, bool, Any, float], None]",
    on_abort: "Callable[[], None] | None" = None,
) -> None:
    """Evaluate ``todo`` sequentially or via a process pool.

    The shared execution core of :func:`run_campaign` and
    :func:`repro.runner.stream.stream_campaign`: calls ``finish(spec, ok,
    result, elapsed)`` as each point completes (any order in pool mode).
    If ``finish`` raises :class:`CampaignError`, queued points are
    cancelled and ``on_abort`` runs before the error propagates — both
    paths, so e.g. snapshot flushing behaves identically at any worker
    count.
    """
    if not todo:
        return
    if workers == 1 or len(todo) == 1:
        try:
            for spec in todo:
                ok, result, elapsed = evaluate_point(
                    (spec.experiment, spec.params, master_seed)
                )
                finish(spec, ok, result, elapsed)
        except CampaignError:
            if on_abort is not None:
                on_abort()
            raise
        return
    with ProcessPoolExecutor(max_workers=min(workers, len(todo))) as pool:
        futures = {
            pool.submit(
                evaluate_point, (spec.experiment, spec.params, master_seed)
            ): spec
            for spec in todo
        }
        pending = set(futures)
        try:
            while pending:
                done, pending = wait(pending, return_when=FIRST_COMPLETED)
                for future in done:
                    ok, result, elapsed = future.result()
                    finish(futures[future], ok, result, elapsed)
        except CampaignError:
            # Don't let the context-manager exit block on the whole
            # remaining campaign: drop every queued point first.
            pool.shutdown(wait=False, cancel_futures=True)
            if on_abort is not None:
                on_abort()
            raise


def run_campaign(
    specs: Iterable[PointSpec],
    *,
    workers: int | None = 1,
    master_seed: int = 0,
    cache_dir: str | os.PathLike | None = None,
    progress: bool | ProgressReporter = False,
    progress_stream: TextIO | None = None,
    on_error: str = "raise",
) -> CampaignResult:
    """Run every point of a campaign and return aligned results.

    Parameters
    ----------
    specs:
        The experiment points. Duplicates are evaluated once.
    workers:
        Process-pool size; ``1`` (default) runs inline in this process with
        identical results, ``None`` means :func:`default_workers`.
    master_seed:
        Campaign-level entropy for :func:`~repro.runner.spec.point_seed`.
    cache_dir:
        Optional on-disk :class:`~repro.runner.cache.ResultCache` root.
    progress:
        ``True`` for a stderr :class:`ProgressReporter`, or a pre-built
        reporter (used by tests to capture snapshots).
    on_error:
        ``"raise"`` aborts on the first failing point;
        ``"store"`` records ``{"error": message}`` as that point's result
        (never cached) and keeps going.
    """
    # A materialized campaign is a streamed one that folds into nothing
    # and keeps every result; the streaming module owns the engine loop.
    from repro.runner.aggregate import Aggregator
    from repro.runner.stream import stream_campaign

    streamed = stream_campaign(
        specs,
        Aggregator([]),
        workers=workers,
        master_seed=master_seed,
        cache_dir=cache_dir,
        collect=True,
        progress=progress,
        progress_stream=progress_stream,
        on_error=on_error,
    )
    return CampaignResult(
        specs=streamed.specs,
        results=streamed.results,
        stats=streamed.stats,  # StreamStats is-a (frozen) CampaignStats
    )


def sweep(
    experiment: str,
    axes: Mapping[str, Any],
    *,
    base_params: Mapping[str, Any] | None = None,
    **campaign_kwargs: Any,
) -> CampaignResult:
    """Grid-expand ``axes`` and run the campaign in one call."""
    return run_campaign(
        grid_specs(experiment, axes, base_params=base_params),
        **campaign_kwargs,
    )


__all__ = [
    "CampaignError",
    "CampaignResult",
    "CampaignStats",
    "default_workers",
    "evaluate_point",
    "execute_points",
    "run_campaign",
    "sweep",
]
