"""Unit tests for trace loading, coverage, and the ascii profile view."""

import json

import pytest

from repro.telemetry import (
    Telemetry,
    TraceProfile,
    TraceSink,
    load_trace,
    render_profile,
)
from repro.telemetry.profile import manifest_summary, profile_paths


def write_trace(path, *, summary=True):
    """A small realistic trace: campaign > execute > fold, plus worker CPU."""
    sink = TraceSink(path, preset="weighted", seed=3)
    t = Telemetry(sink)
    with t.span("campaign"):
        with t.span("execute"):
            with t.span("fold"):
                pass
    # give the phases deterministic durations for share assertions
    t.phases["campaign"] = [1, 10.0]
    t.phases["campaign/execute"] = [1, 9.5]
    t.phases["campaign/execute/fold"] = [2, 1.0]
    t.phases["worker/point"] = [4, 18.0]
    sink.close(t if summary else None)
    return path


class TestLoadTrace:
    def test_prefers_summary_phases(self, tmp_path):
        profile = load_trace(write_trace(tmp_path / "trace.ndjson"))
        assert profile.meta["preset"] == "weighted"
        # the summary carries the doctored totals and the worker phases
        assert profile.wall("campaign") == 10.0
        assert "worker/point" in profile.phases

    def test_directory_argument_resolves_trace_file(self, tmp_path):
        write_trace(tmp_path / "trace.ndjson")
        assert load_trace(tmp_path).wall("campaign") == 10.0

    def test_falls_back_to_span_records(self, tmp_path):
        profile = load_trace(
            write_trace(tmp_path / "trace.ndjson", summary=False)
        )
        # no summary line: totals rebuilt from the individual span records
        assert profile.summary == {}
        assert profile.span_records == 3
        assert set(profile.phases) == {
            "campaign", "campaign/execute", "campaign/execute/fold",
        }

    def test_malformed_lines_are_skipped(self, tmp_path):
        path = tmp_path / "trace.ndjson"
        write_trace(path, summary=False)
        with path.open("a") as handle:
            handle.write("{not json\n\n")
        assert load_trace(path).span_records == 3

    def test_missing_file_raises_oserror(self, tmp_path):
        with pytest.raises(OSError):
            load_trace(tmp_path / "absent.ndjson")


class TestCoverage:
    def test_root_is_shallowest_path(self, tmp_path):
        profile = load_trace(write_trace(tmp_path / "trace.ndjson"))
        assert profile.root_path == "campaign"

    def test_coverage_ratio(self, tmp_path):
        profile = load_trace(write_trace(tmp_path / "trace.ndjson"))
        # execute (9.5s) is campaign's only direct child of 10.0s
        assert profile.coverage() == pytest.approx(0.95)

    def test_coverage_none_without_spans(self):
        assert TraceProfile().coverage() is None

    def test_coverage_none_for_zero_wall_root(self):
        profile = TraceProfile(phases={"root": [1, 0.0]})
        assert profile.coverage() is None

    def test_leaf_root_counts_as_fully_covered(self):
        profile = TraceProfile(phases={"root": [1, 2.0]})
        assert profile.coverage() == 1.0

    def test_coverage_capped_at_one(self):
        profile = TraceProfile(
            phases={"r": [1, 1.0], "r/a": [1, 0.7], "r/b": [1, 0.7]}
        )
        assert profile.coverage() == 1.0


class TestRender:
    def test_render_tree_and_outside_section(self, tmp_path):
        profile = load_trace(write_trace(tmp_path / "trace.ndjson"))
        text = render_profile(profile)
        assert "root span: campaign" in text
        assert "coverage: 95.0%" in text
        assert "fold" in text
        assert "outside the root span:" in text
        assert "worker/point" in text

    def test_render_empty_profile(self):
        assert "(no spans recorded)" in render_profile(TraceProfile())

    def test_top_limits_outside_list(self, tmp_path):
        profile = load_trace(write_trace(tmp_path / "trace.ndjson"))
        for i in range(5):
            profile.phases[f"stray{i}"] = [1, 0.1]
        text = render_profile(profile, top=2)
        outside = text.split("outside the root span:")[1]
        assert len(outside.strip().splitlines()) == 2

    def test_profile_paths_finds_traces(self, tmp_path):
        write_trace(tmp_path / "a" / "trace.ndjson")
        write_trace(tmp_path / "b" / "trace.ndjson")
        assert len(list(profile_paths(tmp_path))) == 2


class TestManifestSummary:
    def test_one_liner(self):
        line = manifest_summary(
            {
                "cache": {"hit_ratio": 0.5},
                "kernels": {"fast_share": 1.0},
                "cpu_seconds": 1.25,
                "wall_seconds": 2.5,
            }
        )
        assert "cache hit 50.0%" in line
        assert "kernel fast 100.0%" in line
        assert "cpu 1.250s" in line and "wall 2.500s" in line

    def test_error_and_missing_fields(self):
        assert manifest_summary({}) == ""
        assert "error: boom" in manifest_summary({"error": "boom"})
