"""Unit tests for the telemetry recorder: spans, counters, absorption."""

import json
import threading

import pytest

from repro import telemetry
from repro.telemetry import NULL_SPAN, Telemetry, TraceSink


@pytest.fixture(autouse=True)
def deactivated():
    """Every test starts and ends with no recorder on this thread."""
    previous = telemetry.activate(None)
    yield
    telemetry.activate(previous)


class TestActivation:
    def test_disabled_by_default(self):
        assert telemetry.active() is None
        assert not telemetry.enabled()

    def test_activate_returns_previous(self):
        first = Telemetry()
        assert telemetry.activate(first) is None
        second = Telemetry()
        assert telemetry.activate(second) is first
        assert telemetry.active() is second

    def test_activated_context_restores(self):
        outer = Telemetry()
        telemetry.activate(outer)
        with telemetry.activated(Telemetry()) as inner:
            assert telemetry.active() is inner
        assert telemetry.active() is outer

    def test_thread_local_isolation(self):
        telemetry.activate(Telemetry())
        seen = {}

        def probe():
            seen["other"] = telemetry.active()

        thread = threading.Thread(target=probe)
        thread.start()
        thread.join()
        assert seen["other"] is None

    def test_disabled_span_is_shared_noop(self):
        assert telemetry.span("anything") is NULL_SPAN
        with telemetry.span("anything") as s:
            assert s is NULL_SPAN

    def test_disabled_count_and_gauge_are_noops(self):
        telemetry.count("x")  # must not raise with no recorder
        telemetry.gauge("y", 1.0)


class TestRecorder:
    def test_counters_accumulate_exactly(self):
        t = Telemetry()
        telemetry.activate(t)
        telemetry.count("a")
        telemetry.count("a", 4)
        telemetry.count("b", 0)
        assert t.counters == {"a": 5, "b": 0}

    def test_gauge_keeps_last_value(self):
        t = Telemetry()
        t.gauge("bins", 7)
        t.gauge("bins", 3)
        assert t.gauges == {"bins": 3.0}

    def test_span_paths_join_nested_stack(self):
        t = Telemetry()
        telemetry.activate(t)
        with telemetry.span("outer"):
            with telemetry.span("inner"):
                pass
            with telemetry.span("inner"):
                pass
        assert set(t.phases) == {"outer", "outer/inner"}
        assert t.phases["outer/inner"][0] == 2
        assert t.phases["outer"][0] == 1
        # children are fully contained in the parent's wall time
        assert t.phases["outer"][1] >= t.phases["outer/inner"][1]

    def test_span_records_duration_on_exception(self):
        t = Telemetry()
        telemetry.activate(t)
        with pytest.raises(RuntimeError):
            with telemetry.span("boom"):
                raise RuntimeError("x")
        assert t.phases["boom"][0] == 1
        assert t._stack == []  # the stack unwinds cleanly

    def test_export_is_json_safe_snapshot(self):
        t = Telemetry()
        t.count("a", 2)
        t.gauge("g", 1.5)
        with t.span("s"):
            pass
        export = t.export()
        json.dumps(export)  # round-trippable
        assert export["counters"] == {"a": 2}
        assert export["phases"]["s"][0] == 1
        assert export["wall_seconds"] >= 0.0
        assert export["cpu_seconds"] >= 0.0
        # the export is a copy: mutating it leaves the recorder alone
        export["counters"]["a"] = 99
        assert t.counters["a"] == 2

    def test_absorb_prefixes_phases_not_counters(self):
        parent = Telemetry()
        worker = Telemetry()
        worker.count("kernels.fast", 3)
        with worker.span("point"):
            pass
        delta = worker.export()
        delta["cpu_seconds"] = 0.25
        parent.absorb(delta)
        assert parent.counters == {"kernels.fast": 3}
        assert "worker/point" in parent.phases
        assert parent.worker_cpu == pytest.approx(0.25)
        assert parent.cpu_seconds >= 0.25

    def test_absorb_twice_accumulates(self):
        parent = Telemetry()
        worker = Telemetry()
        worker.count("n", 1)
        with worker.span("p"):
            pass
        delta = worker.export()
        parent.absorb(delta)
        parent.absorb(delta)
        assert parent.counters["n"] == 2
        assert parent.phases["worker/p"][0] == 2

    def test_phase_wall_of_unknown_path(self):
        assert Telemetry().phase_wall("nope") == 0.0


class TestTraceSink:
    def test_trace_ndjson_layout(self, tmp_path):
        path = tmp_path / "nested" / "trace.ndjson"
        sink = TraceSink(path, preset="weighted", seed=3)
        t = Telemetry(sink)
        telemetry.activate(t)
        with telemetry.span("campaign"):
            with telemetry.span("execute", batch=4):
                pass
        sink.close(t)
        lines = [json.loads(l) for l in path.read_text().splitlines()]
        assert lines[0]["type"] == "meta"
        assert lines[0]["preset"] == "weighted"
        assert lines[0]["schema"] == telemetry.TRACE_SCHEMA
        spans = [l for l in lines if l["type"] == "span"]
        # inner span finishes (and is written) before the outer one
        assert [s["path"] for s in spans] == ["campaign/execute", "campaign"]
        assert spans[0]["attrs"] == {"batch": 4}
        assert lines[-1]["type"] == "summary"
        assert "campaign" in lines[-1]["phases"]

    def test_close_is_idempotent(self, tmp_path):
        sink = TraceSink(tmp_path / "trace.ndjson")
        sink.close()
        sink.close()  # second close must not raise
