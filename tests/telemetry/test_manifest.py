"""Unit tests for run-manifest assembly and writing."""

import hashlib
import json

from repro.telemetry import (
    MANIFEST_SCHEMA,
    Telemetry,
    build_manifest,
    write_manifest,
)


def recorder_with_activity() -> Telemetry:
    t = Telemetry()
    t.count("cache.hit", 3)
    t.count("cache.miss", 1)
    t.count("kernels.fast", 9)
    t.count("kernels.fallback", 1)
    t.gauge("adaptive.open_bins", 0)
    with t.span("campaign"):
        pass
    return t


class TestBuildManifest:
    def test_ratios_and_phase_table(self):
        manifest = build_manifest(recorder_with_activity())
        assert manifest["schema"] == MANIFEST_SCHEMA
        assert manifest["cache"] == {
            "hits": 3, "misses": 1, "hit_ratio": 0.75,
        }
        assert manifest["kernels"]["fast_share"] == 0.9
        assert manifest["phases"]["campaign"]["count"] == 1
        assert manifest["phases"]["campaign"]["wall_seconds"] >= 0.0
        assert manifest["gauges"] == {"adaptive.open_bins": 0.0}

    def test_empty_recorder_ratios_are_none(self):
        manifest = build_manifest(Telemetry())
        assert manifest["cache"]["hit_ratio"] is None
        assert manifest["kernels"]["fast_share"] is None
        assert manifest["phases"] == {}

    def test_optional_fields_only_when_given(self):
        bare = build_manifest(Telemetry())
        assert "stats" not in bare
        assert "aggregate_digest" not in bare
        assert "error" not in bare
        full = build_manifest(
            Telemetry(),
            stats={"total": 4},
            config={"preset": "weighted", "seed": 3},
            aggregate_json='{"a": 1}',
            error="boom",
        )
        assert full["stats"] == {"total": 4}
        assert full["config"]["preset"] == "weighted"
        assert full["error"] == "boom"
        assert full["aggregate_digest"] == hashlib.sha256(
            b'{"a": 1}'
        ).hexdigest()

    def test_manifest_is_json_serializable(self):
        json.dumps(build_manifest(recorder_with_activity()))


class TestWriteManifest:
    def test_write_creates_parents_and_trailing_newline(self, tmp_path):
        target = tmp_path / "runs" / "a" / "run-manifest.json"
        manifest = build_manifest(Telemetry(), config={"seed": 1})
        written = write_manifest(target, manifest)
        assert written == target
        text = target.read_text()
        assert text.endswith("\n")
        assert json.loads(text)["config"] == {"seed": 1}

    def test_write_is_stable_for_equal_manifests(self, tmp_path):
        manifest = {"schema": MANIFEST_SCHEMA, "b": 1, "a": 2}
        write_manifest(tmp_path / "one.json", manifest)
        write_manifest(tmp_path / "two.json", dict(reversed(manifest.items())))
        assert (
            (tmp_path / "one.json").read_bytes()
            == (tmp_path / "two.json").read_bytes()
        )
