"""Unit tests for Stafford's RandFixedSum port."""

import numpy as np
import pytest

from repro.generators import randfixedsum


class TestRandFixedSum:
    def test_sum_exact(self, rng):
        x = randfixedsum(6, 2.4, rng)
        assert x.sum() == pytest.approx(2.4)

    def test_bounds_respected(self, rng):
        for _ in range(50):
            x = randfixedsum(5, 2.0, rng, low=0.0, high=0.6)
            assert np.all(x >= -1e-12)
            assert np.all(x <= 0.6 + 1e-12)

    def test_custom_bounds_sum(self, rng):
        x = randfixedsum(4, 2.0, rng, low=0.2, high=0.8)
        assert x.sum() == pytest.approx(2.0)
        assert np.all(x >= 0.2 - 1e-12)

    def test_single_value(self, rng):
        assert randfixedsum(1, 0.4, rng)[0] == pytest.approx(0.4)

    def test_infeasible_total_rejected(self, rng):
        with pytest.raises(ValueError, match="infeasible"):
            randfixedsum(3, 3.5, rng, high=1.0)
        with pytest.raises(ValueError, match="infeasible"):
            randfixedsum(3, 0.1, rng, low=0.2)

    def test_empty_range_rejected(self, rng):
        with pytest.raises(ValueError):
            randfixedsum(3, 1.0, rng, low=1.0, high=1.0)

    def test_bad_n_rejected(self, rng):
        with pytest.raises(ValueError):
            randfixedsum(0, 1.0, rng)

    def test_deterministic_given_seed(self):
        a = randfixedsum(5, 2.0, np.random.default_rng(9))
        b = randfixedsum(5, 2.0, np.random.default_rng(9))
        assert np.allclose(a, b)

    def test_mean_centered(self):
        # Uniform over the constrained polytope: each coordinate has mean
        # total/n by symmetry (after the random permutation).
        rng = np.random.default_rng(11)
        draws = np.array([randfixedsum(4, 2.0, rng) for _ in range(3000)])
        assert np.allclose(draws.mean(axis=0), 0.5, atol=0.03)

    def test_no_rejection_needed_for_tight_cap(self, rng):
        # The acceptance-region case where uunifast_discard struggles.
        x = randfixedsum(3, 2.97, rng, high=1.0)
        assert x.sum() == pytest.approx(2.97)
        assert np.all(x <= 1.0 + 1e-9)
