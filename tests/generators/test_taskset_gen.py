"""Unit tests for the one-call task-set factories."""

import numpy as np
import pytest

from repro.generators import generate_mixed_taskset, generate_taskset
from repro.model import Mode


class TestGenerateTaskset:
    def test_total_utilization(self, rng):
        ts = generate_taskset(8, 1.6, rng)
        assert ts.utilization == pytest.approx(1.6, rel=1e-9)

    def test_count_and_names(self, rng):
        ts = generate_taskset(5, 1.0, rng, name_prefix="w")
        assert len(ts) == 5
        assert ts.names == ("w1", "w2", "w3", "w4", "w5")

    def test_mode_applied(self, rng):
        ts = generate_taskset(4, 0.8, rng, mode=Mode.FS)
        assert all(t.mode is Mode.FS for t in ts)

    def test_deadline_factor(self, rng):
        ts = generate_taskset(6, 0.6, rng, deadline_factor=0.5)
        for t in ts:
            assert t.deadline <= t.period
            assert t.deadline >= t.wcet

    def test_implicit_deadline_by_default(self, rng):
        ts = generate_taskset(6, 0.6, rng)
        assert ts.all_implicit_deadline

    def test_period_bounds(self, rng):
        ts = generate_taskset(30, 1.0, rng, period_low=20, period_high=40)
        for t in ts:
            assert 19.0 <= t.period <= 41.0  # granularity rounding slack

    def test_randfixedsum_method(self, rng):
        ts = generate_taskset(6, 1.2, rng, utilization_method="randfixedsum")
        assert ts.utilization == pytest.approx(1.2, rel=1e-9)

    def test_unknown_method_rejected(self, rng):
        with pytest.raises(ValueError):
            generate_taskset(4, 1.0, rng, utilization_method="magic")

    def test_bad_deadline_factor_rejected(self, rng):
        with pytest.raises(ValueError):
            generate_taskset(4, 1.0, rng, deadline_factor=1.5)


class TestGenerateMixed:
    def test_modes_are_mixed(self):
        rng = np.random.default_rng(2)
        ts = generate_mixed_taskset(40, 2.0, rng)
        present = {t.mode for t in ts}
        assert len(present) >= 2  # statistically certain with 40 tasks

    def test_explicit_shares(self, rng):
        ts = generate_mixed_taskset(10, 1.0, rng, mode_shares={Mode.FT: 1.0})
        assert all(t.mode is Mode.FT for t in ts)

    def test_utilization_preserved(self, rng):
        ts = generate_mixed_taskset(10, 1.5, rng)
        assert ts.utilization == pytest.approx(1.5, rel=1e-9)
