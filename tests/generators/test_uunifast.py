"""Unit tests for UUniFast generators."""

import numpy as np
import pytest

from repro.generators import uunifast, uunifast_discard


class TestUUniFast:
    def test_sum_is_exact(self, rng):
        u = uunifast(8, 2.5, rng)
        assert u.sum() == pytest.approx(2.5)

    def test_length(self, rng):
        assert len(uunifast(5, 1.0, rng)) == 5

    def test_all_positive(self, rng):
        for _ in range(20):
            assert np.all(uunifast(6, 0.9, rng) >= 0.0)

    def test_single_task(self, rng):
        assert uunifast(1, 0.7, rng)[0] == pytest.approx(0.7)

    def test_rejects_bad_n(self, rng):
        with pytest.raises(ValueError):
            uunifast(0, 1.0, rng)

    def test_rejects_bad_total(self, rng):
        with pytest.raises(ValueError):
            uunifast(3, 0.0, rng)

    def test_deterministic_given_seed(self):
        a = uunifast(5, 1.0, np.random.default_rng(7))
        b = uunifast(5, 1.0, np.random.default_rng(7))
        assert np.allclose(a, b)

    def test_mean_is_uniform_over_simplex(self):
        # Each component has expectation u_total/n on the simplex.
        rng = np.random.default_rng(3)
        draws = np.array([uunifast(4, 2.0, rng) for _ in range(3000)])
        assert np.allclose(draws.mean(axis=0), 0.5, atol=0.03)


class TestUUniFastDiscard:
    def test_respects_u_max(self, rng):
        for _ in range(50):
            u = uunifast_discard(4, 2.0, rng, u_max=0.8)
            assert np.all(u <= 0.8 + 1e-12)

    def test_sum_still_exact(self, rng):
        u = uunifast_discard(4, 2.0, rng, u_max=0.8)
        assert u.sum() == pytest.approx(2.0)

    def test_infeasible_rejected(self, rng):
        with pytest.raises(ValueError, match="infeasible"):
            uunifast_discard(2, 2.1, rng, u_max=1.0)

    def test_tight_but_feasible_eventually_fails_gracefully(self, rng):
        # Acceptance probability ~0 here: must raise RuntimeError, not hang.
        with pytest.raises(RuntimeError):
            uunifast_discard(3, 2.9999, rng, u_max=1.0, max_attempts=5)
