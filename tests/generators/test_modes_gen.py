"""Unit tests for mode assignment."""

import numpy as np
import pytest

from repro.generators import assign_modes_by_share
from repro.generators.modes import paper_like_shares
from repro.model import Mode


class TestAssignModes:
    def test_length(self, rng):
        assert len(assign_modes_by_share(10, {Mode.NF: 1.0}, rng)) == 10

    def test_single_mode_share(self, rng):
        modes = assign_modes_by_share(20, {Mode.FT: 1.0}, rng)
        assert all(m is Mode.FT for m in modes)

    def test_zero_total_share_rejected(self, rng):
        with pytest.raises(ValueError):
            assign_modes_by_share(5, {Mode.NF: 0.0}, rng)

    def test_negative_n_rejected(self, rng):
        with pytest.raises(ValueError):
            assign_modes_by_share(-1, {Mode.NF: 1.0}, rng)

    def test_shares_approximately_respected(self):
        rng = np.random.default_rng(1)
        modes = assign_modes_by_share(6000, {Mode.NF: 3.0, Mode.FS: 1.0}, rng)
        frac_nf = sum(m is Mode.NF for m in modes) / len(modes)
        assert 0.70 < frac_nf < 0.80

    def test_paper_like_shares_keys(self):
        shares = paper_like_shares()
        assert set(shares) == {Mode.NF, Mode.FS, Mode.FT}
