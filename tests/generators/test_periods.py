"""Unit tests for period generators."""

import numpy as np
import pytest

from repro.generators import (
    harmonic_periods,
    hyperperiod_limited_periods,
    loguniform_periods,
    uniform_periods,
)


class TestUniformPeriods:
    def test_range(self, rng):
        p = uniform_periods(200, rng, low=10, high=50)
        assert np.all((p >= 10) & (p <= 50))

    def test_granularity(self, rng):
        p = uniform_periods(100, rng, low=10, high=50, granularity=5.0)
        assert np.allclose(p % 5.0, 0.0)

    def test_granularity_never_produces_zero(self, rng):
        p = uniform_periods(100, rng, low=1.0, high=2.0, granularity=5.0)
        assert np.all(p >= 5.0)

    def test_rejects_empty_range(self, rng):
        with pytest.raises(ValueError):
            uniform_periods(5, rng, low=10, high=10)

    def test_rejects_bad_n(self, rng):
        with pytest.raises(ValueError):
            uniform_periods(0, rng)


class TestLogUniformPeriods:
    def test_range(self, rng):
        p = loguniform_periods(200, rng, low=10, high=1000)
        assert np.all((p >= 10) & (p <= 1000))

    def test_log_spread_covers_decades(self):
        rng = np.random.default_rng(5)
        p = loguniform_periods(4000, rng, low=10, high=1000)
        # Log-uniform: ~half the mass below sqrt(10*1000) = 100.
        frac_below_100 = np.mean(p < 100)
        assert 0.4 < frac_below_100 < 0.6

    def test_granularity(self, rng):
        p = loguniform_periods(50, rng, low=10, high=100, granularity=1.0)
        assert np.allclose(p, np.round(p))


class TestHarmonicPeriods:
    def test_all_powers_of_two_times_base(self, rng):
        p = harmonic_periods(100, rng, base=10, max_doublings=4)
        ratios = p / 10.0
        assert np.allclose(np.log2(ratios), np.round(np.log2(ratios)))

    def test_pairwise_harmonic(self, rng):
        p = sorted(harmonic_periods(20, rng, base=5, max_doublings=3))
        for small, large in zip(p, p[1:]):
            assert (large / small) == pytest.approx(round(large / small))

    def test_rejects_negative_doublings(self, rng):
        with pytest.raises(ValueError):
            harmonic_periods(5, rng, max_doublings=-1)


class TestHyperperiodLimitedPeriods:
    def test_every_period_divides_the_hyperperiod(self, rng):
        p = hyperperiod_limited_periods(200, rng, low=10, high=1000, hyperperiod=3600)
        assert np.all((p >= 10) & (p <= 1000))
        assert np.allclose(3600 % p, 0.0)

    def test_any_subset_lcm_bounded(self, rng):
        # The property the campaign sweeps rely on: per-bin hyperperiods
        # (LCMs of arbitrary subsets) always divide the chosen bound.
        p = hyperperiod_limited_periods(12, rng, hyperperiod=3600)
        lcm = np.lcm.reduce(p.astype(int))
        assert 3600 % lcm == 0

    def test_deterministic_per_rng_seed(self):
        a = hyperperiod_limited_periods(20, np.random.default_rng(5))
        b = hyperperiod_limited_periods(20, np.random.default_rng(5))
        assert np.array_equal(a, b)

    def test_rejects_non_integer_hyperperiod(self, rng):
        with pytest.raises(ValueError):
            hyperperiod_limited_periods(5, rng, hyperperiod=3600.5)

    def test_rejects_range_with_too_few_divisors(self, rng):
        with pytest.raises(ValueError):
            hyperperiod_limited_periods(5, rng, low=11, high=11.5, hyperperiod=3600)
