"""Unit tests for multi-quantum slot schedules and the split design."""

import pytest

from repro.core import (
    DesignError,
    Overheads,
    SplitSchedule,
    design_split_platform,
    min_quantum,
    min_quantum_split,
)
from repro.model import Mode, Task, TaskSet
from repro.model.partitioned import partition_from_names
from repro.sim import MulticoreSim


@pytest.fixture
def tight_fs_partition():
    ts = TaskSet(
        [
            Task("ctrl", 1, 12, mode=Mode.FT),
            Task("fs_fast", 0.5, 3.0, mode=Mode.FS),
            Task("nf", 2, 20, mode=Mode.NF),
        ]
    )
    return partition_from_names(
        ts,
        {Mode.FT: [["ctrl"]], Mode.FS: [["fs_fast"]], Mode.NF: [["nf"]]},
    )


class TestMinQuantumSplit:
    def test_k1_equals_eq11(self, paper_part):
        ft = paper_part.bin(Mode.FT, 0)
        for p in (0.7, 2.0, 3.0):
            assert min_quantum_split(ft, "EDF", p, 1) == pytest.approx(
                min_quantum(ft, "EDF", p)
            )

    def test_k1_equals_eq6(self, paper_part):
        ft = paper_part.bin(Mode.FT, 0)
        assert min_quantum_split(ft, "RM", 2.0, 1) == pytest.approx(
            min_quantum(ft, "RM", 2.0)
        )

    def test_monotone_decreasing_in_pieces(self, paper_part):
        ft = paper_part.bin(Mode.FT, 0)
        qs = [min_quantum_split(ft, "EDF", 3.0, k) for k in (1, 2, 3, 4)]
        assert qs == sorted(qs, reverse=True)

    def test_never_below_bandwidth(self, paper_part):
        ft = paper_part.bin(Mode.FT, 0)
        for k in (1, 2, 8):
            assert min_quantum_split(ft, "EDF", 3.0, k) >= (
                ft.utilization * 3.0 - 1e-9
            )

    def test_empty_taskset(self):
        assert min_quantum_split(TaskSet(), "EDF", 2.0, 3) == 0.0

    def test_validation(self, paper_part):
        ft = paper_part.bin(Mode.FT, 0)
        with pytest.raises(ValueError):
            min_quantum_split(ft, "EDF", 2.0, 0)
        with pytest.raises(ValueError):
            min_quantum_split(ft, "LLF", 2.0, 1)


class TestSplitSchedule:
    def test_template_tiles_cycle(self):
        s = SplitSchedule(
            4.0,
            {Mode.FT: 0.8, Mode.FS: 1.0, Mode.NF: 0.6},
            {Mode.FS: 2},
            Overheads.uniform(0.06),
        )
        template = s.cycle_template()
        assert template[0][0] == 0.0
        assert template[-1][1] == pytest.approx(4.0)
        for (a, b, _k, _m), (c, _d, _k2, _m2) in zip(template, template[1:]):
            assert b == pytest.approx(c)

    def test_split_mode_has_k_windows(self):
        s = SplitSchedule(4.0, {Mode.FS: 1.0}, {Mode.FS: 2})
        windows = s.supply(Mode.FS).windows
        assert len(windows) == 2

    def test_even_gaps_for_split_mode(self):
        s = SplitSchedule(4.0, {Mode.FS: 1.0}, {Mode.FS: 2})
        # Windows at frame starts: delay = P/2 - piece = 2 - 0.5.
        assert s.delta(Mode.FS) == pytest.approx(1.5)

    def test_overhead_paid_per_piece(self):
        s = SplitSchedule(
            4.0, {Mode.FS: 1.0}, {Mode.FS: 2}, Overheads(0.0, 0.1, 0.0)
        )
        assert s.quantum(Mode.FS) == pytest.approx(1.0 + 2 * 0.1)

    def test_overflowing_cycle_rejected(self):
        with pytest.raises(ValueError):
            SplitSchedule(2.0, {Mode.FT: 1.5, Mode.FS: 1.0})

    def test_empty_mode_queries(self):
        s = SplitSchedule(4.0, {Mode.FS: 1.0})
        assert s.usable(Mode.FT) == 0.0
        assert s.quantum(Mode.FT) == 0.0
        assert s.linear_supply(Mode.FT).alpha == 0.0

    def test_idle_reserve_accounting(self):
        s = SplitSchedule(4.0, {Mode.FS: 1.0}, {Mode.FS: 2})
        assert s.idle_reserve == pytest.approx(4.0 - 1.0)


class TestDesignSplitPlatform:
    def test_uniform_split_matches_plain_design(self, paper_part, paper_config_b):
        d = design_split_platform(
            paper_part, "EDF", Overheads.uniform(0.05),
            {Mode.FT: 1, Mode.FS: 1, Mode.NF: 1},
        )
        assert d.period == pytest.approx(paper_config_b.period, abs=2e-3)

    def test_fs_split_extends_period_on_paper_set(self, paper_part):
        base = design_split_platform(
            paper_part, "EDF", Overheads.uniform(0.05), {}
        )
        split = design_split_platform(
            paper_part, "EDF", Overheads.uniform(0.05), {Mode.FS: 2}
        )
        assert split.period > base.period * 1.1

    def test_split_design_simulates_cleanly(self, paper_part):
        d = design_split_platform(
            paper_part, "EDF", Overheads.uniform(0.05), {Mode.FS: 2}
        )
        res = MulticoreSim(paper_part, d.schedule, "EDF").run(
            horizon=d.period * 50
        )
        assert res.miss_count == 0

    def test_tight_deadline_benefits_from_splitting(self, tight_fs_partition):
        p1 = design_split_platform(
            tight_fs_partition, "EDF", Overheads(0.02, 0.02, 0.02), {Mode.FS: 1}
        )
        p2 = design_split_platform(
            tight_fs_partition, "EDF", Overheads(0.02, 0.02, 0.02), {Mode.FS: 2}
        )
        assert p2.period > p1.period
        assert p2.schedule.delta(Mode.FS) <= p1.schedule.delta(Mode.FS) + 1e-9

    def test_split_designs_simulate_cleanly(self, tight_fs_partition):
        for k in (1, 2, 3):
            d = design_split_platform(
                tight_fs_partition, "EDF", Overheads(0.02, 0.02, 0.02),
                {Mode.FS: k},
            )
            res = MulticoreSim(tight_fs_partition, d.schedule, "EDF").run(
                horizon=d.period * 40
            )
            assert res.miss_count == 0, k

    def test_impossible_split_raises(self, tight_fs_partition):
        with pytest.raises(DesignError):
            design_split_platform(
                tight_fs_partition, "EDF", Overheads(0.5, 0.5, 0.5),
                {Mode.FS: 4},
            )

    def test_summary_renders(self, tight_fs_partition):
        d = design_split_platform(
            tight_fs_partition, "EDF", Overheads(0.02, 0.02, 0.02), {Mode.FS: 2}
        )
        s = d.summary()
        assert "2 pieces" in s and "delay" in s
