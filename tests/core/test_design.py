"""Unit tests for the design goals (Table 2 pipeline)."""

import pytest

from repro.core import (
    DesignError,
    FixedPeriodGoal,
    MaxSlackGoal,
    MinOverheadBandwidthGoal,
    Overheads,
    design_platform,
    quanta_feasible,
)
from repro.model import Mode


class TestMinOverheadDesign:
    def test_period_matches_table2b(self, paper_config_b):
        assert paper_config_b.period == pytest.approx(2.966, abs=1.5e-3)

    def test_quanta_match_table2b(self, paper_config_b):
        s = paper_config_b.schedule
        assert s.usable(Mode.FT) == pytest.approx(0.820, abs=1.5e-3)
        assert s.usable(Mode.FS) == pytest.approx(1.281, abs=1.5e-3)
        assert s.usable(Mode.NF) == pytest.approx(0.815, abs=1.5e-3)

    def test_allocated_utilizations_match_table2b(self, paper_config_b):
        assert paper_config_b.allocated_utilization(Mode.FT) == pytest.approx(
            0.276, abs=2e-3
        )
        assert paper_config_b.allocated_utilization(Mode.FS) == pytest.approx(
            0.432, abs=2e-3
        )
        assert paper_config_b.allocated_utilization(Mode.NF) == pytest.approx(
            0.275, abs=2e-3
        )

    def test_zero_slack_on_boundary(self, paper_config_b):
        assert paper_config_b.slack == pytest.approx(0.0, abs=1e-5)

    def test_overhead_bandwidth_row(self, paper_config_b):
        s = paper_config_b.schedule
        assert s.overheads.total / s.period == pytest.approx(0.017, abs=1e-3)

    def test_allocated_bandwidth_covers_required_utilization(
        self, paper_part, paper_config_b
    ):
        # The paper's sanity check: alpha_k >= max_i U(T_k^i).
        for mode in Mode:
            assert (
                paper_config_b.allocated_utilization(mode)
                >= paper_part.max_bin_utilization(mode) - 1e-9
            )


class TestMaxSlackDesign:
    def test_period_matches_table2c(self, paper_config_c):
        assert paper_config_c.period == pytest.approx(0.855, abs=2e-3)

    def test_quanta_match_table2c(self, paper_config_c):
        s = paper_config_c.schedule
        assert s.usable(Mode.FT) == pytest.approx(0.230, abs=2e-3)
        assert s.usable(Mode.FS) == pytest.approx(0.252, abs=2e-3)
        assert s.usable(Mode.NF) == pytest.approx(0.220, abs=2e-3)

    def test_slack_matches_table2c(self, paper_config_c):
        assert paper_config_c.slack == pytest.approx(0.103, abs=2e-3)
        assert paper_config_c.slack_ratio == pytest.approx(0.121, abs=2e-3)

    def test_quanta_at_minimum(self, paper_config_c):
        for mode in Mode:
            assert paper_config_c.schedule.usable(mode) == pytest.approx(
                paper_config_c.min_quanta[mode], abs=1e-9
            )


class TestDesignMechanics:
    def test_goal_by_name(self, paper_part):
        cfg = design_platform(
            paper_part, "EDF", Overheads.uniform(0.05), "max-slack"
        )
        assert cfg.goal == "max-slack"

    def test_unknown_goal_name_rejected(self, paper_part):
        with pytest.raises(ValueError, match="unknown goal"):
            design_platform(paper_part, "EDF", Overheads.zero(), "fastest")

    def test_fixed_period_goal(self, paper_part, paper_region_edf):
        cfg = design_platform(
            paper_part, "EDF", Overheads.uniform(0.05),
            FixedPeriodGoal(2.0), region=paper_region_edf,
        )
        assert cfg.period == 2.0
        assert all(
            quanta_feasible(paper_part, "EDF", cfg.schedule).values()
        )

    def test_fixed_period_infeasible_rejected(self, paper_part, paper_region_edf):
        with pytest.raises(DesignError):
            design_platform(
                paper_part, "EDF", Overheads.uniform(0.05),
                FixedPeriodGoal(3.4), region=paper_region_edf,
            )

    def test_impossible_overhead_rejected(self, paper_part, paper_region_edf):
        with pytest.raises(DesignError):
            design_platform(
                paper_part, "EDF", Overheads.uniform(0.5),
                MinOverheadBandwidthGoal(), region=paper_region_edf,
            )

    def test_proportional_slack_distribution(self, paper_part, paper_region_edf):
        cfg = design_platform(
            paper_part, "EDF", Overheads.uniform(0.05), MaxSlackGoal(),
            region=paper_region_edf, distribute_slack="proportional",
        )
        assert cfg.slack == pytest.approx(0.0)
        assert cfg.schedule.idle_reserve == pytest.approx(0.0, abs=1e-9)
        # still feasible with the enlarged quanta
        assert all(quanta_feasible(paper_part, "EDF", cfg.schedule).values())

    def test_bad_slack_policy_rejected(self, paper_part):
        with pytest.raises(ValueError):
            design_platform(
                paper_part, "EDF", Overheads.zero(),
                distribute_slack="random",
            )

    def test_rm_design_also_valid(self, paper_part, paper_region_rm):
        cfg = design_platform(
            paper_part, "RM", Overheads.uniform(0.05),
            MinOverheadBandwidthGoal(), region=paper_region_rm,
        )
        assert cfg.period < 2.966  # RM region is strictly smaller
        assert all(quanta_feasible(paper_part, "RM", cfg.schedule).values())
