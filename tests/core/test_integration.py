"""Unit tests for the Eqs. 12–15 integration layer."""

import numpy as np
import pytest

from repro.core import Overheads, SlotSchedule, SystemCurve, mode_quantum_bounds, quanta_feasible
from repro.core.minq import min_quantum
from repro.model import Mode


class TestSystemCurve:
    def test_mode_minq_is_max_over_bins(self, paper_part):
        curve = SystemCurve(paper_part, "EDF")
        p = 2.0
        expected = max(
            min_quantum(ts, "EDF", p)
            for ts in paper_part.bins(Mode.NF)
            if len(ts)
        )
        assert curve.mode_minq(Mode.NF, p) == pytest.approx(expected)

    def test_lhs_is_period_minus_sum(self, paper_part):
        curve = SystemCurve(paper_part, "EDF")
        p = 2.0
        total = sum(curve.mode_minq(m, p) for m in Mode)
        assert curve.lhs(p) == pytest.approx(p - total)

    def test_vectorised_matches_scalar(self, paper_part):
        curve = SystemCurve(paper_part, "EDF")
        ps = np.array([0.5, 1.0, 2.0, 3.0])
        arr = curve.lhs(ps)
        for p, v in zip(ps, arr):
            assert curve.lhs(float(p)) == pytest.approx(v)

    def test_min_quanta_keys(self, paper_part):
        q = SystemCurve(paper_part, "EDF").min_quanta(2.0)
        assert set(q) == set(Mode)
        assert all(v >= 0 for v in q.values())

    def test_mode_quantum_bounds_convenience(self, paper_part):
        direct = SystemCurve(paper_part, "EDF").min_quanta(2.0)
        conv = mode_quantum_bounds(paper_part, "EDF", 2.0)
        for m in Mode:
            assert direct[m] == pytest.approx(conv[m])


class TestQuantaFeasible:
    def test_feasible_design_accepted(self, paper_part, paper_config_b):
        verdicts = quanta_feasible(paper_part, "EDF", paper_config_b.schedule)
        assert all(verdicts.values())

    def test_shrunk_quantum_rejected(self, paper_part, paper_config_b):
        s = paper_config_b.schedule
        smaller = SlotSchedule(
            s.period,
            {
                Mode.FT: s.quantum(Mode.FT) * 0.8,
                Mode.FS: s.quantum(Mode.FS),
                Mode.NF: s.quantum(Mode.NF),
            },
            s.overheads,
        )
        verdicts = quanta_feasible(paper_part, "EDF", smaller)
        assert not verdicts[Mode.FT]
        assert verdicts[Mode.FS] and verdicts[Mode.NF]

    def test_empty_mode_trivially_feasible(self, paper_ts):
        from repro.model import PartitionedTaskSet

        nf_only = PartitionedTaskSet(
            {Mode.NF: [paper_ts.by_mode(Mode.NF).subset(["tau1"])]}
        )
        schedule = SlotSchedule(1.0, {Mode.NF: 0.5}, Overheads.zero())
        verdicts = quanta_feasible(nf_only, "EDF", schedule)
        assert verdicts[Mode.FT] and verdicts[Mode.FS]
