"""Unit tests for the feasible-period region (Figure 4 engine)."""

import numpy as np
import pytest

from repro.core import FeasibleRegion


class TestRegionQueries:
    def test_max_period_zero_overhead_matches_paper(self, paper_region_edf):
        assert paper_region_edf.max_feasible_period(0.0) == pytest.approx(
            3.176, abs=1.5e-3
        )

    def test_rm_max_period_matches_paper(self, paper_region_rm):
        assert paper_region_rm.max_feasible_period(0.0) == pytest.approx(
            2.381, abs=1.5e-3
        )

    def test_max_overhead_matches_paper(self, paper_region_edf, paper_region_rm):
        assert paper_region_edf.max_admissible_overhead().lhs == pytest.approx(
            0.201, abs=1.5e-3
        )
        assert paper_region_rm.max_admissible_overhead().lhs == pytest.approx(
            0.129, abs=1.5e-3
        )

    def test_point5_overhead_0_05(self, paper_region_edf):
        assert paper_region_edf.max_feasible_period(0.05) == pytest.approx(
            2.966, abs=1.5e-3
        )

    def test_boundary_period_sits_on_the_level_set(self, paper_region_edf):
        p = paper_region_edf.max_feasible_period(0.05)
        assert float(paper_region_edf.lhs(p)) == pytest.approx(0.05, abs=1e-6)

    def test_max_slack_ratio_matches_table2c(self, paper_region_edf):
        ratio, point = paper_region_edf.max_slack_ratio(0.05)
        assert ratio == pytest.approx(0.121, abs=2e-3)
        assert point.period == pytest.approx(0.855, abs=2e-3)

    def test_infeasible_overhead_raises(self, paper_region_edf):
        with pytest.raises(ValueError, match="max admissible"):
            paper_region_edf.max_feasible_period(0.5)

    def test_infeasible_slack_raises(self, paper_region_edf):
        with pytest.raises(ValueError):
            paper_region_edf.max_slack_ratio(0.5)

    def test_is_feasible(self, paper_region_edf):
        assert paper_region_edf.is_feasible(2.0, 0.05)
        assert not paper_region_edf.is_feasible(3.3, 0.05)


class TestRegionMechanics:
    def test_sweep_shapes(self, paper_region_edf):
        ps, g = paper_region_edf.sweep(n=501)
        assert len(ps) == len(g) == 501
        assert np.all(np.diff(ps) > 0)

    def test_sweep_range_validation(self, paper_region_edf):
        with pytest.raises(ValueError):
            paper_region_edf.sweep(p_min=2.0, p_max=1.0)

    def test_curve_negative_beyond_max_period(self, paper_region_edf):
        p_max = paper_region_edf.max_feasible_period(0.0)
        assert float(paper_region_edf.lhs(p_max + 0.2)) < 0.0

    def test_edf_dominates_rm_everywhere(self, paper_region_edf, paper_region_rm):
        ps = np.linspace(0.1, 3.4, 200)
        g_edf = np.asarray(paper_region_edf.lhs(ps))
        g_rm = np.asarray(paper_region_rm.lhs(ps))
        assert np.all(g_edf >= g_rm - 1e-9)

    def test_auto_pmax_brackets_region(self, paper_part):
        region = FeasibleRegion(paper_part, "EDF")  # no explicit p_max
        assert region.p_max > region.max_feasible_period(0.0)

    def test_min_quanta_at_design_period(self, paper_region_edf):
        q = paper_region_edf.min_quanta(2.9664)
        from repro.model import Mode

        assert q[Mode.FT] == pytest.approx(0.820, abs=1.5e-3)
        assert q[Mode.FS] == pytest.approx(1.281, abs=1.5e-3)
        assert q[Mode.NF] == pytest.approx(0.815, abs=1.5e-3)

    def test_grid_too_small_rejected(self, paper_part):
        with pytest.raises(ValueError):
            FeasibleRegion(paper_part, "EDF", grid=10)
