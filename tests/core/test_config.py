"""Unit tests for Overheads, SlotSchedule and PlatformConfig."""

import pytest

from repro.core import Overheads, PlatformConfig, SlotSchedule
from repro.model import Mode


@pytest.fixture
def schedule():
    return SlotSchedule(
        period=3.0,
        quanta={Mode.FT: 0.9, Mode.FS: 1.2, Mode.NF: 0.6},
        overheads=Overheads(0.1, 0.1, 0.1),
    )


class TestOverheads:
    def test_total(self):
        assert Overheads(0.1, 0.2, 0.3).total == pytest.approx(0.6)

    def test_uniform_split(self):
        o = Overheads.uniform(0.3)
        assert o.ft == o.fs == o.nf == pytest.approx(0.1)

    def test_zero(self):
        assert Overheads.zero().total == 0.0

    def test_of_mode(self):
        o = Overheads(0.1, 0.2, 0.3)
        assert o.of(Mode.FT) == 0.1
        assert o.of(Mode.FS) == 0.2
        assert o.of(Mode.NF) == 0.3

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            Overheads(-0.1, 0, 0)


class TestSlotScheduleAccounting:
    def test_usable_is_q_minus_o(self, schedule):
        assert schedule.usable(Mode.FT) == pytest.approx(0.8)
        assert schedule.usable(Mode.FS) == pytest.approx(1.1)
        assert schedule.usable(Mode.NF) == pytest.approx(0.5)

    def test_alpha_delta_eq2(self, schedule):
        assert schedule.alpha(Mode.FT) == pytest.approx(0.8 / 3.0)
        assert schedule.delta(Mode.FT) == pytest.approx(3.0 - 0.8)

    def test_idle_reserve(self, schedule):
        assert schedule.idle_reserve == pytest.approx(3.0 - 2.7)

    def test_overhead_bandwidth(self, schedule):
        assert schedule.overhead_bandwidth == pytest.approx(0.3 / 3.0)

    def test_figure2_identity_sum(self, schedule):
        # Figure 2: P = sum slots + idle ; each slot = usable + overhead.
        total = sum(
            schedule.usable(m) + schedule.overheads.of(m) for m in Mode
        )
        assert total + schedule.idle_reserve == pytest.approx(schedule.period)

    def test_empty_slot_pays_no_overhead(self):
        s = SlotSchedule(2.0, {Mode.FT: 0.0, Mode.FS: 1.0, Mode.NF: 1.0},
                         Overheads(0.5, 0.1, 0.1))
        assert s.usable(Mode.FT) == 0.0
        assert s.overhead_bandwidth == pytest.approx(0.2 / 2.0)


class TestSlotScheduleWindows:
    def test_slot_order_ft_fs_nf(self, schedule):
        assert schedule.slot_window(Mode.FT) == (0.0, 0.9)
        assert schedule.slot_window(Mode.FS) == (0.9, 2.1)
        assert schedule.slot_window(Mode.NF)[0] == pytest.approx(2.1)

    def test_usable_window_precedes_overhead_window(self, schedule):
        ua, ub = schedule.usable_window(Mode.FS)
        oa, ob = schedule.overhead_window(Mode.FS)
        assert ub == pytest.approx(oa)
        assert ob - oa == pytest.approx(0.1)

    def test_cycles(self, schedule):
        assert list(schedule.cycles(9.5)) == pytest.approx([0.0, 3.0, 6.0, 9.0])

    def test_supply_views(self, schedule):
        exact = schedule.supply(Mode.FT)
        linear = schedule.linear_supply(Mode.FT)
        assert exact.budget == pytest.approx(0.8)
        assert linear.alpha == pytest.approx(schedule.alpha(Mode.FT))


class TestSlotScheduleValidation:
    def test_slots_exceeding_period_rejected(self):
        with pytest.raises(ValueError, match="exceeds"):
            SlotSchedule(2.0, {Mode.FT: 1.0, Mode.FS: 0.8, Mode.NF: 0.5})

    def test_overhead_exceeding_slot_rejected(self):
        with pytest.raises(ValueError, match="overhead"):
            SlotSchedule(2.0, {Mode.FT: 0.05}, Overheads(0.1, 0, 0))

    def test_negative_quantum_rejected(self):
        with pytest.raises(ValueError):
            SlotSchedule(2.0, {Mode.FT: -0.1})

    def test_equality(self, schedule):
        same = SlotSchedule(
            3.0, {Mode.FT: 0.9, Mode.FS: 1.2, Mode.NF: 0.6},
            Overheads(0.1, 0.1, 0.1),
        )
        assert schedule == same

    def test_table_rendering(self, schedule):
        text = schedule.table()
        assert "FT" in text and "P = 3.0000" in text


class TestPlatformConfig:
    def test_slack_ratio(self, schedule):
        cfg = PlatformConfig(schedule, "EDF", slack=0.3)
        assert cfg.slack_ratio == pytest.approx(0.1)

    def test_allocated_utilization(self, schedule):
        cfg = PlatformConfig(schedule, "EDF")
        assert cfg.allocated_utilization(Mode.FS) == pytest.approx(1.1 / 3.0)

    def test_summary_contains_key_rows(self, schedule):
        cfg = PlatformConfig(schedule, "EDF", slack=0.3, goal="max-slack")
        s = cfg.summary()
        assert "max-slack" in s and "slack" in s

    def test_core_count_defaults_to_the_paper_chip(self, schedule):
        assert PlatformConfig(schedule, "EDF").core_count == 4
        assert PlatformConfig(schedule, "EDF", core_count=8).core_count == 8

    def test_core_count_validated(self, schedule):
        with pytest.raises(ValueError):
            PlatformConfig(schedule, "EDF", core_count=0)
        with pytest.raises(ValueError):
            PlatformConfig(schedule, "EDF", core_count=True)
