"""Unit tests for minQ (Eqs. 6 and 11) and the exact-supply variant."""

import numpy as np
import pytest

from repro.analysis import edf_schedulable_supply, fp_schedulable_supply
from repro.core import (
    QuantumCurve,
    min_quantum,
    min_quantum_detailed,
    min_quantum_edf,
    min_quantum_exact,
    min_quantum_fp,
)
from repro.model import Mode, Task, TaskSet
from repro.supply import LinearSupply, PeriodicSlotSupply


@pytest.fixture
def ft_tasks():
    """The FT subset of Table 1."""
    return TaskSet(
        [
            Task("tau10", 1, 12, mode=Mode.FT),
            Task("tau11", 1, 15, mode=Mode.FT),
            Task("tau12", 1, 20, mode=Mode.FT),
            Task("tau13", 2, 30, mode=Mode.FT),
        ]
    )


class TestMinQuantumBasics:
    def test_empty_taskset_needs_nothing(self):
        assert min_quantum(TaskSet(), "EDF", 2.0) == 0.0
        assert min_quantum(TaskSet(), "RM", 2.0) == 0.0

    def test_positive_for_nonempty(self, ft_tasks):
        assert min_quantum(ft_tasks, "EDF", 2.0) > 0.0

    def test_unknown_algorithm_rejected(self, ft_tasks):
        with pytest.raises(ValueError):
            min_quantum(ft_tasks, "LLF", 2.0)

    def test_nonpositive_period_rejected(self, ft_tasks):
        with pytest.raises(ValueError):
            min_quantum(ft_tasks, "EDF", 0.0)

    def test_edf_never_needs_more_than_rm(self, ft_tasks):
        # Every RM-feasible configuration is EDF-feasible (cf. Fig. 4).
        for p in (0.5, 1.0, 2.0, 3.0):
            assert min_quantum_edf(ft_tasks, p) <= min_quantum_fp(
                ft_tasks, p, "RM"
            ) + 1e-9

    def test_paper_design_point_value(self, ft_tasks):
        # Table 2(b): Q̃_FT = 0.820 at P = 2.966 (paper prints 3 decimals).
        assert min_quantum_edf(ft_tasks, 2.9664) == pytest.approx(0.820, abs=1.5e-3)

    def test_monotone_in_period(self, ft_tasks):
        # A longer major cycle starves tasks longer: minQ grows with P.
        ps = np.linspace(0.2, 3.0, 40)
        q = QuantumCurve(ft_tasks, "EDF").evaluate(ps)
        assert np.all(np.diff(q) > -1e-9)

    def test_small_period_limit_is_bandwidth(self, ft_tasks):
        # As P -> 0 the slot converges to a fractional processor: minQ/P -> U'
        # where U' >= U(T) (the EDF demand ratio at the binding deadline).
        p = 1e-4
        ratio = min_quantum_edf(ft_tasks, p) / p
        assert ratio >= ft_tasks.utilization - 1e-6
        assert ratio < 1.0


class TestMinQuantumIsInverseOfFeasibility:
    """minQ must be the exact boundary of the Theorem 1/2 feasibility tests."""

    def test_edf_boundary(self, ft_tasks):
        p = 2.0
        q = min_quantum_edf(ft_tasks, p)
        ok = LinearSupply.from_slot(p, min(q * 1.001, p))
        bad = LinearSupply.from_slot(p, q * 0.999)
        assert edf_schedulable_supply(ft_tasks, ok).schedulable
        assert not edf_schedulable_supply(ft_tasks, bad).schedulable

    def test_fp_boundary(self, ft_tasks):
        p = 2.0
        q = min_quantum_fp(ft_tasks, p, "RM")
        ok = LinearSupply.from_slot(p, min(q * 1.001, p))
        bad = LinearSupply.from_slot(p, q * 0.999)
        assert fp_schedulable_supply(ft_tasks, ok, "RM").schedulable
        assert not fp_schedulable_supply(ft_tasks, bad, "RM").schedulable

    def test_boundary_on_random_sets(self, rng):
        from repro.generators import generate_taskset

        for _ in range(10):
            ts = generate_taskset(
                int(rng.integers(2, 5)), float(rng.uniform(0.2, 0.5)), rng,
                period_low=8, period_high=40, period_granularity=1.0,
            )
            p = float(rng.uniform(0.5, 4.0))
            q = min_quantum_edf(ts, p)
            if q >= p:  # infeasible at this period; nothing to check
                continue
            assert edf_schedulable_supply(
                ts, LinearSupply.from_slot(p, min(q + 1e-6, p))
            ).schedulable
            assert not edf_schedulable_supply(
                ts, LinearSupply.from_slot(p, max(q - 1e-4, 0.0))
            ).schedulable


class TestQuantumCurve:
    def test_scalar_and_array_agree(self, ft_tasks):
        curve = QuantumCurve(ft_tasks, "EDF")
        ps = np.array([0.5, 1.0, 2.0])
        arr = curve.evaluate(ps)
        for p, v in zip(ps, arr):
            assert curve.evaluate(float(p)) == pytest.approx(v)

    def test_explicit_priority_order(self, ft_tasks):
        order = sorted(ft_tasks, key=lambda t: t.period)
        curve = QuantumCurve(ft_tasks, order)
        assert curve.evaluate(2.0) == pytest.approx(
            min_quantum_fp(ft_tasks, 2.0, "RM")
        )

    def test_wrong_order_rejected(self, ft_tasks):
        with pytest.raises(ValueError):
            QuantumCurve(ft_tasks, [Task("zz", 1, 5)])

    def test_detailed_reports_binding_point(self, ft_tasks):
        res = min_quantum_detailed(ft_tasks, "EDF", 2.0)
        assert res.value == pytest.approx(min_quantum_edf(ft_tasks, 2.0))
        assert res.binding_point is not None
        assert res.binding_task is None  # EDF has no per-task attribution

    def test_detailed_fp_names_binding_task(self, ft_tasks):
        res = min_quantum_detailed(ft_tasks, "RM", 2.0)
        assert res.binding_task in ft_tasks.names

    def test_detailed_empty(self):
        res = min_quantum_detailed(TaskSet(), "EDF", 2.0)
        assert res.value == 0.0


class TestExactMinQuantum:
    def test_exact_never_exceeds_linear(self, ft_tasks):
        for p in (0.5, 1.0, 2.0):
            exact = min_quantum_exact(ft_tasks, "EDF", p)
            linear = min_quantum_edf(ft_tasks, p)
            assert exact <= linear + 1e-6

    def test_exact_is_feasibility_boundary(self, ft_tasks):
        p = 1.5
        q = min_quantum_exact(ft_tasks, "EDF", p)
        assert edf_schedulable_supply(
            ft_tasks, PeriodicSlotSupply(p, min(q + 1e-4, p))
        ).schedulable
        assert not edf_schedulable_supply(
            ft_tasks, PeriodicSlotSupply(p, q - 1e-4)
        ).schedulable

    def test_exact_fp_variant(self, ft_tasks):
        p = 1.5
        q = min_quantum_exact(ft_tasks, "RM", p)
        assert fp_schedulable_supply(
            ft_tasks, PeriodicSlotSupply(p, min(q + 1e-4, p)), "RM"
        ).schedulable

    def test_exact_empty(self):
        assert min_quantum_exact(TaskSet(), "EDF", 2.0) == 0.0

    def test_exact_infeasible_returns_inf(self):
        # U > 1: not even a dedicated processor suffices.
        ts = TaskSet([Task("a", 3, 4), Task("b", 3, 8)])
        assert min_quantum_exact(ts, "EDF", 2.0) == float("inf")
