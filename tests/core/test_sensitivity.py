"""Unit tests for design sensitivity analysis."""

import pytest

from repro.core import Overheads, design_platform
from repro.core.sensitivity import (
    critical_scaling_factor,
    design_margins,
    quantum_margin,
    task_wcet_margin,
)
from repro.model import Mode, Task, TaskSet


class TestQuantumMargin:
    def test_boundary_design_has_zero_margin(self, paper_part, paper_config_b):
        margins = quantum_margin(paper_part, paper_config_b)
        for mode in Mode:
            assert margins[mode] == pytest.approx(0.0, abs=1e-6)

    def test_max_slack_design_also_tight(self, paper_part, paper_config_c):
        # Row (c) allocates quanta at their minimum: margins ~ 0 again,
        # the flexibility lives in the *unallocated* reserve instead.
        margins = quantum_margin(paper_part, paper_config_c)
        for mode in Mode:
            assert margins[mode] == pytest.approx(0.0, abs=1e-6)
        assert paper_config_c.slack > 0.1


class TestCriticalScaling:
    def test_half_loaded_bin_scales_about_double(self):
        ts = TaskSet([Task("a", 1, 10)])
        # Dedicated-ish slot: P=1, Q=0.25 vs the task's 0.1 utilization.
        factor = critical_scaling_factor(ts, "EDF", 1.0, 0.25)
        assert factor > 1.5

    def test_boundary_scales_to_one(self, paper_part, paper_config_b):
        ft = paper_part.bin(Mode.FT, 0)
        factor = critical_scaling_factor(
            ft, "EDF", paper_config_b.period,
            paper_config_b.schedule.usable(Mode.FT),
        )
        assert factor == pytest.approx(1.0, abs=5e-3)

    def test_overloaded_bin_scales_below_one(self):
        # A quantum far below the bin's demand: only a tiny fraction of the
        # WCETs fits, so the critical factor is well below 1 (= infeasible
        # as deployed).
        ts = TaskSet([Task("a", 5, 10)])
        factor = critical_scaling_factor(ts, "EDF", 1.0, 0.01)
        assert 0.0 < factor < 0.05

    def test_empty_bin_unbounded(self):
        assert critical_scaling_factor(TaskSet(), "EDF", 1.0, 0.5) == float("inf")

    def test_capped_by_deadline_validity(self):
        ts = TaskSet([Task("a", 4, 10)])
        # generous quantum: the cap D/C = 2.5 binds before feasibility.
        factor = critical_scaling_factor(ts, "EDF", 0.5, 0.5)
        assert factor <= 2.5 + 1e-9


class TestTaskMargin:
    def test_margin_fields(self, paper_part, paper_config_c):
        m = task_wcet_margin(paper_part, paper_config_c, "tau1")
        assert m.task == "tau1"
        assert m.mode is Mode.NF
        assert m.max_wcet >= m.wcet
        assert m.headroom == pytest.approx(m.max_wcet - m.wcet)

    def test_boundary_task_has_no_headroom(self, paper_part, paper_config_b):
        # In design (b) the NF quantum is sized by tau5's bin exactly.
        m = task_wcet_margin(paper_part, paper_config_b, "tau5")
        assert m.headroom_ratio == pytest.approx(0.0, abs=5e-3)

    def test_all_margins_nonnegative(self, paper_part, paper_config_b):
        for name, m in design_margins(paper_part, paper_config_b).items():
            assert m.headroom >= -1e-9, name
