"""Unit tests for run-time admission via slack redistribution."""

import pytest

from repro.core import AdmissionController
from repro.model import Mode, Task


@pytest.fixture
def controller(paper_config_c, paper_part):
    """Controller over the max-slack design (slack ≈ 0.103)."""
    return AdmissionController(paper_config_c, paper_part)


class TestAdmission:
    def test_initial_state_mirrors_config(self, controller, paper_config_c):
        assert controller.slack == pytest.approx(paper_config_c.slack)
        assert controller.period == paper_config_c.period
        for mode in Mode:
            assert controller.usable_quantum(mode) == pytest.approx(
                paper_config_c.schedule.usable(mode)
            )

    def test_admit_small_task_succeeds(self, controller):
        slack_before = controller.slack
        small = Task("new_nf", wcet=0.05, period=10, mode=Mode.NF)
        decision = controller.try_admit(small)
        assert decision.admitted
        assert decision.processor is not None
        assert controller.slack <= slack_before
        assert decision.slack_left == pytest.approx(controller.slack)

    def test_admit_grows_quantum(self, controller):
        before = controller.usable_quantum(Mode.NF)
        heavy = Task("new_nf", wcet=1.0, period=10, mode=Mode.NF)
        decision = controller.try_admit(heavy)
        if decision.admitted:
            assert controller.usable_quantum(Mode.NF) >= before

    def test_admit_huge_task_rejected(self, controller):
        huge = Task("hog", wcet=9.0, period=10, mode=Mode.FT)
        decision = controller.try_admit(huge)
        assert not decision.admitted
        assert "slack" in decision.reason

    def test_rejected_admission_does_not_mutate_state(self, controller):
        slack = controller.slack
        q = {m: controller.usable_quantum(m) for m in Mode}
        controller.try_admit(Task("hog", wcet=9.0, period=10, mode=Mode.FT))
        assert controller.slack == pytest.approx(slack)
        for m in Mode:
            assert controller.usable_quantum(m) == pytest.approx(q[m])

    def test_duplicate_name_rejected(self, controller):
        t = Task("tau1", wcet=0.1, period=10, mode=Mode.NF)
        decision = controller.try_admit(t)
        assert not decision.admitted
        assert "already present" in decision.reason

    def test_explicit_processor_out_of_range(self, controller):
        t = Task("new", wcet=0.1, period=10, mode=Mode.FS)
        decision = controller.try_admit(t, processor=7)
        assert not decision.admitted

    def test_remove_returns_bandwidth(self, controller):
        small = Task("tmp", wcet=0.3, period=5, mode=Mode.FS)
        d = controller.try_admit(small)
        assert d.admitted
        slack_after_admit = controller.slack
        freed = controller.remove("tmp")
        assert freed >= 0.0
        assert controller.slack >= slack_after_admit

    def test_remove_unknown_raises(self, controller):
        with pytest.raises(KeyError):
            controller.remove("ghost")

    def test_admit_then_config_snapshot_is_feasible(self, controller, paper_part):
        from repro.core import quanta_feasible

        t = Task("new_fs", wcet=0.1, period=8, mode=Mode.FS)
        decision = controller.try_admit(t)
        assert decision.admitted
        cfg = controller.config()
        part = controller.partition()
        assert all(quanta_feasible(part, "EDF", cfg.schedule).values())

    def test_admission_cycle_is_reversible(self, controller):
        slack0 = controller.slack
        q0 = controller.usable_quantum(Mode.NF)
        d = controller.try_admit(Task("x", wcet=0.2, period=6, mode=Mode.NF))
        assert d.admitted
        controller.remove("x")
        assert controller.slack == pytest.approx(slack0, abs=1e-9)
        assert controller.usable_quantum(Mode.NF) <= q0 + 1e-9

    def test_partition_snapshot_contains_admitted_task(self, controller):
        controller.try_admit(Task("snap", wcet=0.05, period=9, mode=Mode.NF))
        part = controller.partition()
        assert "snap" in part.mode_taskset(Mode.NF).names
