"""PointSource strategy layer: grid parity, adaptive determinism, sharding.

The adaptive tests run against two purpose-built registry experiments
(registered at import, so they only work with ``workers=1`` — pool
workers re-import the registry without this module):

* ``adaptive-probe`` — a deterministic Bernoulli draw whose hit
  probability is a sharp sigmoid (or step) in ``u``, i.e. a cheap stand-in
  for a schedulability boundary;
* ``adaptive-flaky`` — fails at one specific rep unless an env var is
  set, which drives a *real* mid-round campaign abort and resume.
"""

import json
import math
import os

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dependability.taxonomy import wilson_interval
from repro.runner import (
    AdaptiveRefinementSource,
    Aggregator,
    CampaignError,
    GridSource,
    PointSpec,
    SnapshotError,
    canonical_json,
    curve_metric,
    experiment,
    experiments,
    grid_digest,
    grid_specs,
    load_snapshot,
    mean_metric,
    merge_snapshot_files,
    reps_for_width,
    stream_campaign,
    wilson_width,
)
from repro.runner.shard import MergeError

if "adaptive-probe" not in experiments():

    @experiment("adaptive-probe")
    def _probe(params, seed_seq):
        u = float(params["u"])
        if params.get("step"):
            p = 0.98 if u < 1.5 else 0.02
        else:
            p = 1.0 / (1.0 + math.exp((u - 1.5) * 12.0))
        rng = np.random.default_rng(seed_seq)
        return {"hit": bool(rng.random() < p)}

    @experiment("adaptive-flaky")
    def _flaky(params, seed_seq):
        if params["rep"] == 2 and not os.environ.get("ADAPTIVE_FLAKY_OK"):
            raise RuntimeError("flaky point")
        rng = np.random.default_rng(seed_seq)
        return {"hit": bool(rng.random() < 0.5)}


def probe_aggregator():
    return Aggregator(
        [curve_metric("hit_curve", ["u"], "hit", experiment="adaptive-probe")]
    )


def probe_source(**kwargs):
    kwargs.setdefault("key_axes", {"u": [0.5, 1.5, 2.5]})
    kwargs.setdefault("ci_width", 0.3)
    kwargs.setdefault("initial_reps", 4)
    return AdaptiveRefinementSource(
        "adaptive-probe",
        metric="hit_curve",
        refine_axis="u",
        **kwargs,
    )


def flaky_aggregator():
    return Aggregator(
        [curve_metric("hit_curve", ["u"], "hit", experiment="adaptive-flaky")]
    )


def flaky_source():
    return AdaptiveRefinementSource(
        "adaptive-flaky",
        metric="hit_curve",
        key_axes={"u": [1.0, 2.0]},
        refine_axis="u",
        ci_width=0.3,
        initial_reps=4,
    )


def rounds_of(result):
    """Reconstruct the per-round spec lists from a StreamResult."""
    rounds, offset = [], 0
    for size in result.stats.round_sizes:
        rounds.append(result.specs[offset : offset + size])
        offset += size
    assert offset == len(result.specs)
    return rounds


class TestWilsonHelpers:
    def test_width_matches_taxonomy_interval(self):
        for successes, total in [(0, 7), (3, 7), (7, 7), (50, 120), (1, 1)]:
            lo, hi = wilson_interval(successes, total)
            assert wilson_width(successes / total, total) == pytest.approx(
                hi - lo, abs=1e-12
            )

    def test_width_monotone_in_n(self):
        for p in (0.0, 0.2, 0.5, 1.0):
            widths = [wilson_width(p, n) for n in (1, 4, 16, 64, 256)]
            assert widths == sorted(widths, reverse=True)

    def test_empty_bin_is_maximally_uncertain(self):
        assert wilson_width(0.5, 0) == math.inf

    def test_reps_for_width_is_minimal(self):
        for p in (0.0, 0.1, 0.5, 0.97):
            for width in (0.5, 0.3, 0.1, 0.05):
                n = reps_for_width(p, width)
                assert wilson_width(p, n) <= width
                assert n == 1 or wilson_width(p, n - 1) > width

    def test_reps_for_width_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            reps_for_width(0.5, 0.0)


SPLIT_AXES = {"period": [3.0], "budget": [1.0], "pieces": [1, 2, 3, 4]}


def split_aggregator():
    return Aggregator(
        [mean_metric("delay", "delay", experiment="ablate-slot-split")]
    )


class TestGridSource:
    def test_byte_parity_with_plain_specs(self):
        specs = grid_specs("ablate-slot-split", SPLIT_AXES)
        plain = stream_campaign(specs, split_aggregator(), master_seed=3)
        wrapped = stream_campaign(
            GridSource(specs), split_aggregator(), master_seed=3
        )
        assert plain.aggregate_json() == wrapped.aggregate_json()
        assert plain.specs == wrapped.specs
        assert plain.stats.total == wrapped.stats.total
        assert plain.stats.computed == wrapped.stats.computed
        assert wrapped.stats.rounds == 1
        assert wrapped.stats.round_sizes == (len(specs),)

    def test_config_digest_is_grid_digest(self):
        specs = grid_specs("ablate-slot-split", SPLIT_AXES)
        assert GridSource(specs).config_digest == grid_digest(
            s.digest for s in specs
        )

    def test_single_round_preserves_order_and_dups(self):
        spec = PointSpec("x", {"a": 1})
        other = PointSpec("x", {"a": 2})
        src = GridSource([spec, other, spec])
        assert list(src.rounds()) == [[spec, other, spec]]
        assert src.upfront_specs() == [spec, other, spec]

    def test_empty_grid_emits_no_rounds(self):
        assert list(GridSource([]).rounds()) == []

    def test_state_roundtrip(self):
        src = GridSource([PointSpec("x", {"a": 1})])
        assert src.state_dict() is None
        src.load_state(None)  # a grid snapshot carries no source state
        with pytest.raises(SnapshotError):
            src.load_state({"strategy": "adaptive", "config": "aa"})


class TestAdaptiveDeterminism:
    @settings(max_examples=8, deadline=None)
    @given(seed=st.integers(0, 2**31 - 1))
    def test_same_seed_emits_identical_round_sequences(self, seed):
        runs = []
        for _ in range(2):
            result = stream_campaign(
                probe_source(), probe_aggregator(), master_seed=seed
            )
            runs.append((rounds_of(result), result.aggregate_json()))
        assert runs[0] == runs[1]

    def test_converges_on_every_bin(self):
        result = stream_campaign(probe_source(), probe_aggregator())
        assert result.stats.open_bins == 0
        assert result.stats.rounds >= 1
        assert sum(result.stats.round_sizes) == result.stats.total
        ci = 0.3
        for _key, acc in result.aggregator["hit_curve"].items():
            assert wilson_width(float(acc.mean), acc.count) <= ci

    def test_bisection_inserts_midpoint_bins(self):
        result = stream_campaign(
            probe_source(key_axes={"u": [0.5, 2.5]}, ci_width=0.2),
            probe_aggregator(),
        )
        sampled = {spec.params["u"] for spec in result.specs}
        assert sampled - {0.5, 2.5}, "no midpoint bins were created"
        assert result.stats.open_bins == 0

    def test_mid_gap_floor_respects_max_depth(self):
        src = probe_source(key_axes={"u": [0.5, 2.5]}, max_depth=2)
        result = stream_campaign(src, probe_aggregator())
        gaps = sorted({spec.params["u"] for spec in result.specs})
        smallest = min(b - a for a, b in zip(gaps, gaps[1:]))
        assert smallest >= 2.0 / 4 - 1e-9

    def test_workers_and_batch_do_not_change_bytes(self, tmp_path):
        # Real registry experiment (pool workers re-import the registry,
        # so the probe experiments cannot cross process boundaries).
        from repro.experiments.weighted import (
            weighted_adaptive_source,
            weighted_aggregator,
        )

        axes = {
            "u_total": [0.8, 2.4],
            "n": [6],
            "period_hyperperiod": [720.0],
            "rep": [0, 1, 2],
            "rate": [0.02],
        }
        snaps = []
        for i, (workers, batch) in enumerate([(1, None), (2, 3)]):
            state = tmp_path / f"w{i}.json"
            stream_campaign(
                weighted_adaptive_source(axes, ci_width=0.4),
                weighted_aggregator(),
                workers=workers,
                batch_size=batch,
                master_seed=3,
                state_path=state,
                on_error="store",
            )
            snaps.append(state.read_text())
        assert snaps[0] == snaps[1]


class TestAdaptiveResume:
    @settings(max_examples=5, deadline=None)
    @given(seed=st.integers(0, 2**31 - 1))
    def test_mid_round_abort_then_resume_converges_to_same_bytes(
        self, tmp_path_factory, seed
    ):
        tmp_path = tmp_path_factory.mktemp("resume")
        os.environ.pop("ADAPTIVE_FLAKY_OK", None)
        state = tmp_path / "state.json"
        with pytest.raises(CampaignError):
            stream_campaign(
                flaky_source(),
                flaky_aggregator(),
                master_seed=seed,
                state_path=state,
            )
        assert state.exists(), "abort must flush a resumable snapshot"
        interrupted = json.loads(state.read_text())
        assert interrupted["source"]["strategy"] == "adaptive"
        assert not interrupted["source"]["complete"]
        os.environ["ADAPTIVE_FLAKY_OK"] = "1"
        try:
            stream_campaign(
                flaky_source(),
                flaky_aggregator(),
                master_seed=seed,
                state_path=state,
            )
            reference = tmp_path / "reference.json"
            stream_campaign(
                flaky_source(),
                flaky_aggregator(),
                master_seed=seed,
                state_path=reference,
            )
        finally:
            os.environ.pop("ADAPTIVE_FLAKY_OK", None)
        assert state.read_text() == reference.read_text()

    def test_resuming_complete_snapshot_is_a_noop(self, tmp_path):
        state = tmp_path / "state.json"
        first = stream_campaign(
            probe_source(), probe_aggregator(), master_seed=11, state_path=state
        )
        assert first.stats.rounds >= 1
        before = state.read_text()
        again = stream_campaign(
            probe_source(), probe_aggregator(), master_seed=11, state_path=state
        )
        assert again.stats.rounds == 0
        assert again.stats.total == 0
        assert state.read_text() == before

    def test_grid_cannot_resume_adaptive_snapshot(self, tmp_path):
        state = tmp_path / "state.json"
        result = stream_campaign(
            probe_source(), probe_aggregator(), master_seed=1, state_path=state
        )
        with pytest.raises(SnapshotError, match="point source"):
            stream_campaign(
                GridSource(result.specs),
                probe_aggregator(),
                master_seed=1,
                state_path=state,
            )
        with pytest.raises(SnapshotError, match="point source"):
            load_snapshot(state, probe_aggregator(), 1)

    def test_adaptive_cannot_resume_grid_snapshot(self, tmp_path):
        state = tmp_path / "state.json"
        specs = [
            PointSpec("adaptive-probe", {"u": 0.5, "rep": r}) for r in range(3)
        ]
        stream_campaign(
            specs, probe_aggregator(), master_seed=1, state_path=state
        )
        with pytest.raises(SnapshotError, match="no source state"):
            stream_campaign(
                probe_source(), probe_aggregator(), master_seed=1,
                state_path=state,
            )

    def test_adaptive_config_mismatch_rejected(self, tmp_path):
        state = tmp_path / "state.json"
        stream_campaign(
            probe_source(ci_width=0.3),
            probe_aggregator(),
            master_seed=1,
            state_path=state,
        )
        with pytest.raises(SnapshotError, match="different adaptive"):
            stream_campaign(
                probe_source(ci_width=0.2),
                probe_aggregator(),
                master_seed=1,
                state_path=state,
            )


class TestAdaptiveBudget:
    def test_budget_stops_refinement_and_reports_open_bins(self, tmp_path):
        state = tmp_path / "state.json"
        result = stream_campaign(
            probe_source(max_points=7),
            probe_aggregator(),
            master_seed=5,
            state_path=state,
        )
        assert result.stats.total <= 7
        assert result.stats.open_bins and result.stats.open_bins > 0
        snap = json.loads(state.read_text())
        assert snap["source"]["complete"] is True
        before = state.read_text()
        again = stream_campaign(
            probe_source(max_points=7),
            probe_aggregator(),
            master_seed=5,
            state_path=state,
        )
        assert again.stats.rounds == 0
        assert state.read_text() == before

    def test_efficiency_vs_exhaustive_grid(self):
        # The paper-style boundary curve: every bin sits far from p=0.5, so
        # the adaptive run must beat the uniform worst-case grid — the
        # acceptance criterion's <= 25% — on the *final* bin set (initial
        # bins plus whatever bisection inserted).
        ci = 0.05
        result = stream_campaign(
            probe_source(
                key_axes={"u": [0.5, 2.5]},
                ci_width=ci,
                base_params={"step": True},
            ),
            probe_aggregator(),
            master_seed=2,
        )
        assert result.stats.open_bins == 0
        bins = {spec.params["u"] for spec in result.specs}
        exhaustive = len(bins) * reps_for_width(0.5, ci)
        assert result.stats.total <= 0.25 * exhaustive, (
            f"adaptive used {result.stats.total} of {exhaustive} "
            f"grid-equivalent points"
        )


class TestShardedAdaptive:
    def test_shards_merge_byte_identical_to_unsharded(self, tmp_path):
        full_state = tmp_path / "full.json"
        stream_campaign(
            probe_source(),
            probe_aggregator(),
            master_seed=9,
            state_path=full_state,
        )
        paths = []
        for index in range(2):
            state = tmp_path / f"shard{index}.json"
            result = stream_campaign(
                probe_source(),
                probe_aggregator(),
                master_seed=9,
                state_path=state,
                shard=(index, 2),
                planning_aggregator=probe_aggregator(),
            )
            assert result.stats.planning_points > 0
            paths.append(state)
        merged = merge_snapshot_files(paths)
        assert canonical_json(merged) == full_state.read_text()

    def test_sharded_needs_planning_aggregator(self):
        with pytest.raises(ValueError, match="planning_aggregator"):
            stream_campaign(
                probe_source(), probe_aggregator(), shard=(0, 2)
            )

    def test_merge_refuses_in_flight_adaptive_shard(self, tmp_path):
        paths = []
        for index in range(2):
            state = tmp_path / f"shard{index}.json"
            stream_campaign(
                probe_source(),
                probe_aggregator(),
                master_seed=9,
                state_path=state,
                shard=(index, 2),
                planning_aggregator=probe_aggregator(),
            )
            paths.append(state)
        snap = json.loads(paths[0].read_text())
        snap["source"]["complete"] = False
        paths[0].write_text(canonical_json(snap))
        with pytest.raises(MergeError, match="in-flight adaptive"):
            merge_snapshot_files(paths)

    def test_merge_refuses_mixed_strategies(self, tmp_path):
        paths = []
        for index in range(2):
            state = tmp_path / f"shard{index}.json"
            stream_campaign(
                probe_source(),
                probe_aggregator(),
                master_seed=9,
                state_path=state,
                shard=(index, 2),
                planning_aggregator=probe_aggregator(),
            )
            paths.append(state)
        snap = json.loads(paths[1].read_text())
        del snap["source"]
        paths[1].write_text(canonical_json(snap))
        with pytest.raises(MergeError, match="point-source strategy"):
            merge_snapshot_files(paths)


class TestSourceValidation:
    def test_refine_axis_must_be_a_key_axis(self):
        with pytest.raises(ValueError, match="refine_axis"):
            AdaptiveRefinementSource(
                "adaptive-probe",
                metric="hit_curve",
                key_axes={"u": [1.0]},
                refine_axis="v",
                ci_width=0.1,
            )

    def test_refine_axis_values_must_be_numeric(self):
        with pytest.raises(ValueError, match="numbers"):
            AdaptiveRefinementSource(
                "adaptive-probe",
                metric="hit_curve",
                key_axes={"u": ["lo", "hi"]},
                refine_axis="u",
                ci_width=0.1,
            )

    def test_ci_width_bounds(self):
        for bad in (0.0, 1.0, -0.1):
            with pytest.raises(ValueError, match="ci_width"):
                probe_source(ci_width=bad)

    def test_colliding_parameter_names_rejected(self):
        with pytest.raises(ValueError, match="collide"):
            AdaptiveRefinementSource(
                "adaptive-probe",
                metric="hit_curve",
                key_axes={"u": [1.0]},
                refine_axis="u",
                ci_width=0.1,
                base_params={"u": 2.0},
            )

    def test_config_digest_distinguishes_budgets(self):
        assert (
            probe_source(max_points=10).config_digest
            != probe_source(max_points=20).config_digest
        )
        assert (
            probe_source().config_digest == probe_source().config_digest
        )

    def test_adaptive_rounds_need_a_view(self):
        with pytest.raises(ValueError, match="live aggregate"):
            next(probe_source().rounds())
