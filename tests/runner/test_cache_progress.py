"""Result-cache and progress-reporter unit tests."""

import io
import json

import pytest

from repro.runner import PointSpec, ProgressReporter, ResultCache


class TestResultCache:
    def test_roundtrip(self, tmp_path):
        cache = ResultCache(tmp_path)
        spec = PointSpec("x", {"u": 1.0})
        assert cache.get(spec, 0) is None
        cache.put(spec, 0, {"feasible": True}, elapsed=0.5)
        assert cache.get(spec, 0) == {"feasible": True}

    def test_keyed_by_master_seed(self, tmp_path):
        cache = ResultCache(tmp_path)
        spec = PointSpec("x", {"u": 1.0})
        cache.put(spec, 0, {"v": 1})
        assert cache.get(spec, 1) is None

    def test_keyed_by_params(self, tmp_path):
        cache = ResultCache(tmp_path)
        cache.put(PointSpec("x", {"u": 1.0}), 0, {"v": 1})
        assert cache.get(PointSpec("x", {"u": 2.0}), 0) is None

    def test_corrupt_file_is_a_miss(self, tmp_path):
        cache = ResultCache(tmp_path)
        spec = PointSpec("x", {})
        path = cache.put(spec, 0, {"v": 1})
        path.write_text("{not json")
        assert cache.get(spec, 0) is None

    @pytest.mark.parametrize(
        "corrupt", ["[1, 2]", '"a string"', "42", "null", "true", ""]
    )
    def test_non_dict_or_truncated_json_is_a_miss(self, tmp_path, corrupt):
        # Truncation can leave a file that still parses as JSON, just not
        # as a record dict; that must read as a miss, not an AttributeError.
        cache = ResultCache(tmp_path)
        spec = PointSpec("x", {})
        path = cache.put(spec, 0, {"v": 1})
        path.write_text(corrupt)
        assert cache.get(spec, 0) is None

    def test_corrupt_entry_overwritten_by_put(self, tmp_path):
        cache = ResultCache(tmp_path)
        spec = PointSpec("x", {})
        path = cache.put(spec, 0, {"v": 1})
        path.write_text("[]")
        assert cache.get(spec, 0) is None
        cache.put(spec, 0, {"v": 2})
        assert cache.get(spec, 0) == {"v": 2}

    def test_stale_spec_layout_is_a_miss(self, tmp_path):
        cache = ResultCache(tmp_path)
        spec = PointSpec("x", {})
        path = cache.put(spec, 0, {"v": 1})
        record = json.loads(path.read_text())
        record["canonical"] = "something else"
        path.write_text(json.dumps(record))
        assert cache.get(spec, 0) is None

    def test_experiment_name_sanitized_in_path(self, tmp_path):
        cache = ResultCache(tmp_path)
        path = cache.put(PointSpec("a/b c", {}), 0, 1)
        assert path.parent.name == "a_b_c"

    def test_failed_put_leaves_no_files_behind(self, tmp_path):
        """An unserializable result must not orphan a temp file next to the
        cache entry (it used to live there forever as ``*.tmp.<pid>``)."""
        cache = ResultCache(tmp_path)
        spec = PointSpec("x", {})
        with pytest.raises(TypeError):
            cache.put(spec, 0, {"bad": {1, 2}})  # sets are not JSON
        assert [p for p in tmp_path.rglob("*") if p.is_file()] == []
        assert cache.get(spec, 0) is None

    def test_concurrent_same_process_puts_do_not_collide(self, tmp_path):
        """Two threads share a PID, so a pid-keyed temp name collides; the
        mkstemp-based write must survive heavy same-entry contention."""
        import threading

        cache = ResultCache(tmp_path)
        spec = PointSpec("x", {"u": 1.0})
        errors = []

        def hammer():
            try:
                for _ in range(100):
                    cache.put(spec, 0, {"v": 1})
            except Exception as exc:  # noqa: BLE001 - collected for assert
                errors.append(exc)

        threads = [threading.Thread(target=hammer) for _ in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert errors == []
        assert cache.get(spec, 0) == {"v": 1}
        assert list(tmp_path.rglob("*.tmp")) == []


class TestPutMany:
    def test_batch_roundtrip(self, tmp_path):
        cache = ResultCache(tmp_path)
        specs = [PointSpec("x", {"u": float(i)}) for i in range(5)]
        paths = cache.put_many(
            (spec, 7, {"v": i}, 0.1) for i, spec in enumerate(specs)
        )
        assert len(paths) == 5
        for i, spec in enumerate(specs):
            assert cache.get(spec, 7) == {"v": i}

    def test_entries_match_per_point_put_records(self, tmp_path):
        """put_many is the grouped spelling of put: identical files, so
        batched and unbatched campaigns share one cache."""
        a, b = ResultCache(tmp_path / "a"), ResultCache(tmp_path / "b")
        spec = PointSpec("x", {"u": 1.0})
        path_many = a.put_many([(spec, 0, {"v": 1}, 0.5)])[0]
        path_one = b.put(spec, 0, {"v": 1}, elapsed=0.5)
        assert path_many.read_text() == path_one.read_text()

    def test_empty_batch_is_a_noop(self, tmp_path):
        cache = ResultCache(tmp_path)
        assert cache.put_many([]) == []
        assert [p for p in tmp_path.rglob("*") if p.is_file()] == []


class TestAtomicWriteText:
    def test_temp_file_removed_when_rename_fails(self, tmp_path):
        from repro.runner import atomic_write_text

        target = tmp_path / "out.json"
        target.mkdir()  # os.replace onto a directory fails on POSIX
        with pytest.raises(OSError):
            atomic_write_text(target, "x")
        assert list(tmp_path.iterdir()) == [target]

    def test_writes_and_creates_parents(self, tmp_path):
        from repro.runner import atomic_write_text

        target = tmp_path / "deep" / "out.json"
        atomic_write_text(target, "payload")
        assert target.read_text() == "payload"
        assert list(target.parent.iterdir()) == [target]


class CountingStream(io.StringIO):
    """A text stream that counts write()/flush() syscall-shaped calls."""

    def __init__(self, tty: bool = False):
        super().__init__()
        self.writes = 0
        self.flushes = 0
        self._tty = tty

    def write(self, text):  # noqa: D102 - io.StringIO override
        self.writes += 1
        return super().write(text)

    def flush(self):  # noqa: D102 - io.StringIO override
        self.flushes += 1
        return super().flush()

    def isatty(self):  # noqa: D102 - io.StringIO override
        return self._tty


class TestProgressReporter:
    def test_counts_and_snapshot(self):
        rep = ProgressReporter(3, stream=io.StringIO())
        rep.update()
        rep.update(cached=True)
        rep.update(error=True)
        snap = rep.snapshot()
        assert snap["done"] == 3
        assert snap["computed"] == 1
        assert snap["cached"] == 1
        assert snap["errors"] == 1
        assert snap["eta"] == 0.0

    def test_eta_unknown_before_any_completion(self):
        rep = ProgressReporter(5, stream=io.StringIO())
        assert rep.eta() is None

    def test_eta_unknown_while_only_cache_hits_landed(self):
        """A warm-cache prefix has no computation rate to extrapolate from:
        with thousands of never-computed points remaining, the ETA must be
        unknown (None), not a triumphant 0.0s."""
        rep = ProgressReporter(1000, stream=io.StringIO())
        for _ in range(100):
            rep.update(cached=True)
        assert rep.eta() is None
        assert rep.snapshot()["eta"] is None
        rep.update()  # one real computation: now there is a rate
        eta = rep.eta()
        assert eta is not None and eta > 0.0
        assert "--" not in rep._render()

    def test_eta_zero_once_everything_is_done(self):
        rep = ProgressReporter(2, stream=io.StringIO())
        rep.update(cached=True)
        rep.update(cached=True)
        assert rep.eta() == 0.0

    def test_renders_to_stream(self):
        out = io.StringIO()
        rep = ProgressReporter(2, stream=out, label="t")
        rep.update()
        rep.update()
        text = out.getvalue()
        assert "t: 2/2" in text
        assert "eta" in text

    def test_negative_total_rejected(self):
        with pytest.raises(ValueError):
            ProgressReporter(-1)

    def test_non_tty_flushes_only_after_an_actual_write(self):
        """Throttled updates used to flush() on every finished point — one
        syscall per point on a million-point campaign. Now a flush happens
        iff a line was written."""
        out = CountingStream()
        rep = ProgressReporter(100, stream=out)
        for _ in range(100):
            rep.update()
        assert out.writes == 10  # one line per total//10 points
        assert out.flushes == out.writes

    def test_tty_throttled_updates_do_not_flush(self):
        import time

        out = CountingStream(tty=True)
        rep = ProgressReporter(1000, stream=out, min_interval=3600.0)
        rep._last_render = time.monotonic()  # force the throttle window
        for _ in range(500):
            rep.update()
        assert out.writes == 0  # every update throttled: nothing rendered
        assert out.flushes == 0  # ... and therefore nothing flushed


class TestProgressBatchAndCacheLine:
    """PR 10 additions: batch throughput and cache-hit ratio on the line."""

    def test_note_batch_counts_without_rendering(self):
        out = CountingStream()
        rep = ProgressReporter(10, stream=out)
        for _ in range(4):
            rep.note_batch()
        assert rep.batches == 4
        assert out.writes == 0  # note_batch never renders

    def test_batch_rate_none_before_first_batch(self):
        rep = ProgressReporter(10, stream=io.StringIO())
        assert rep.batch_rate() is None
        rep.note_batch()
        rate = rep.batch_rate()
        assert rate is not None and rate > 0.0

    def test_cache_ratio(self):
        rep = ProgressReporter(4, stream=io.StringIO())
        assert rep.cache_ratio is None
        rep.update(cached=True)
        rep.update(cached=True)
        rep.update()
        rep.update(error=True)
        assert rep.cache_ratio == pytest.approx(0.5)

    def test_snapshot_carries_batches_and_ratio(self):
        rep = ProgressReporter(2, stream=io.StringIO())
        rep.note_batch()
        rep.update(cached=True)
        snap = rep.snapshot()
        assert snap["batches"] == 1
        assert snap["cache_ratio"] == 1.0

    def test_render_shows_ratio_and_batch_rate(self):
        out = io.StringIO()
        rep = ProgressReporter(2, stream=out, label="t")
        rep.note_batch()
        rep.update(cached=True)
        rep.update()
        line = rep._render()
        assert "cache 1 (50%)" in line
        assert "batch/s" in line

    def test_render_omits_batch_rate_without_batches(self):
        rep = ProgressReporter(1, stream=io.StringIO())
        rep.update()
        assert "batch/s" not in rep._render()

    def test_non_tty_throttling_unchanged_with_batches(self):
        """The PR 4 flush contract survives the new line content: throttled
        updates still write and flush nothing, whatever note_batch does."""
        out = CountingStream()
        rep = ProgressReporter(100, stream=out)
        for i in range(100):
            if i % 3 == 0:
                rep.note_batch()
            rep.update()
        assert out.writes == 10
        assert out.flushes == out.writes
