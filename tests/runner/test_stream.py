"""Streaming-campaign tests: determinism, resume, memory and cache repair.

These pin the acceptance contract of the aggregation layer: aggregates are
bit-identical across worker counts and cache states, snapshots resume
without re-folding cached points, collect=False keeps no per-point results,
and a corrupt cache entry is recomputed and overwritten mid-campaign.
"""

import json

import pytest

from repro.runner import (
    Aggregator,
    PointSpec,
    ResultCache,
    SnapshotError,
    curve_metric,
    extrema_metric,
    grid_specs,
    mean_metric,
    run_campaign,
    stream_campaign,
)

SCHED_AXES = {"u_total": [0.8, 1.6], "n": [6], "rep": [0, 1]}
SPLIT_AXES = {"period": [3.0], "budget": [1.0], "pieces": [1, 2, 3, 4]}


def sched_aggregator():
    return Aggregator(
        [
            mean_metric("feasible", "feasible", experiment="schedulability"),
            curve_metric(
                "weighted", "u_total", "feasible",
                weight="utilization", experiment="schedulability",
            ),
            extrema_metric("period", "period", experiment="schedulability"),
        ]
    )


def agg_bytes(result):
    return result.aggregate_json()


class TestDeterminism:
    def test_workers_and_cache_states_are_bit_identical(self, tmp_path):
        """workers=1 vs workers=4, cold vs warm cache: same aggregate bytes."""
        specs = grid_specs("schedulability", SCHED_AXES)
        cold_1 = stream_campaign(specs, sched_aggregator(), workers=1, master_seed=5)
        cache = tmp_path / "cache"
        cold_4 = stream_campaign(
            specs, sched_aggregator(), workers=4, master_seed=5, cache_dir=cache
        )
        warm_1 = stream_campaign(
            specs, sched_aggregator(), workers=1, master_seed=5, cache_dir=cache
        )
        assert cold_4.stats.computed == len(specs)
        assert warm_1.stats.computed == 0
        assert warm_1.stats.cached == len(specs)
        assert agg_bytes(cold_1) == agg_bytes(cold_4) == agg_bytes(warm_1)

    def test_matches_materialized_campaign(self):
        """Streamed folds see exactly what run_campaign materializes."""
        specs = grid_specs("schedulability", SCHED_AXES)
        materialized = run_campaign(specs, workers=1, master_seed=5)
        streamed = stream_campaign(
            specs, sched_aggregator(), workers=1, master_seed=5, collect=True
        )
        assert streamed.results == materialized.results
        assert streamed.to_json() == materialized.to_json()

    def test_duplicates_fold_once(self):
        spec = PointSpec(
            "ablate-slot-split", {"period": 3.0, "budget": 1.0, "pieces": 2}
        )
        agg = Aggregator([mean_metric("delay", "delay")])
        res = stream_campaign([spec, spec, spec], agg)
        assert res.stats.total == 3
        assert res.stats.unique == 1
        assert agg["delay"].count == 1


class TestBatchingBitIdentity:
    """The batched-execution acceptance contract: any (workers, batch_size)
    combination — including batch sizes that don't divide the point count —
    produces byte-identical aggregates, results and snapshots."""

    GRID = [(1, 1), (1, 3), (4, 1), (4, 3), (4, 64), (2, None)]

    def test_workers_batch_grid_is_bit_identical(self):
        specs = grid_specs(
            "schedulability", {**SCHED_AXES, "rep": [0, 1, 2]}
        )
        baseline = stream_campaign(
            specs, sched_aggregator(), workers=1, master_seed=5,
            batch_size=1, collect=True,
        )
        for workers, batch in self.GRID[1:]:
            run = stream_campaign(
                specs, sched_aggregator(), workers=workers, master_seed=5,
                batch_size=batch, collect=True,
            )
            assert run.to_json() == baseline.to_json(), (workers, batch)
            assert agg_bytes(run) == agg_bytes(baseline), (workers, batch)

    def test_snapshot_bytes_identical_across_batch_sizes(self, tmp_path):
        specs = grid_specs("schedulability", SCHED_AXES)
        snaps = []
        for workers, batch in [(1, 1), (4, 3), (2, 64)]:
            state = tmp_path / f"agg-w{workers}-b{batch}.json"
            stream_campaign(
                specs, sched_aggregator(), workers=workers, master_seed=5,
                state_path=state, batch_size=batch,
            )
            snaps.append(state.read_bytes())
        assert snaps[0] == snaps[1] == snaps[2]

    def test_resume_with_a_different_batch_size(self, tmp_path):
        """Cold run at one batch size, warm resume at another: the resumed
        run computes nothing and the snapshot bytes never change."""
        specs = grid_specs("schedulability", SCHED_AXES)
        state = tmp_path / "agg.json"
        cache = tmp_path / "cache"
        cold = stream_campaign(
            specs, sched_aggregator(), workers=2, master_seed=5,
            cache_dir=cache, state_path=state, batch_size=1,
        )
        assert cold.stats.computed == len(specs)
        first_bytes = state.read_bytes()
        warm = stream_campaign(
            specs, sched_aggregator(), workers=2, master_seed=5,
            cache_dir=cache, state_path=state, batch_size=5,
        )
        assert warm.stats.computed == 0
        assert warm.stats.skipped == len(specs)
        assert state.read_bytes() == first_bytes
        assert agg_bytes(warm) == agg_bytes(cold)

    def test_batched_cache_writes_are_readable_per_point(self, tmp_path):
        """put_many writes one record per point: a batch=64 run warms the
        cache for an unbatched re-run."""
        cache = tmp_path / "cache"
        specs = grid_specs("schedulability", SCHED_AXES)
        batched = stream_campaign(
            specs, sched_aggregator(), master_seed=5, cache_dir=cache,
            batch_size=64,
        )
        unbatched = stream_campaign(
            specs, sched_aggregator(), master_seed=5, cache_dir=cache,
            batch_size=1,
        )
        assert unbatched.stats.computed == 0
        assert unbatched.stats.cached == len(specs)
        assert agg_bytes(unbatched) == agg_bytes(batched)

    def test_stats_record_batches_and_effective_size(self):
        specs = grid_specs("schedulability", SCHED_AXES)  # 4 unique points
        run = stream_campaign(
            specs, sched_aggregator(), master_seed=5, batch_size=3
        )
        assert run.stats.batch_size == 3
        assert run.stats.batches == 2  # 3 + 1: non-dividing size

    def test_auto_batching_default_is_per_point_on_tiny_grids(self):
        specs = grid_specs("schedulability", SCHED_AXES)
        run = stream_campaign(specs, sched_aggregator(), master_seed=5)
        assert run.stats.batch_size == 1


class TestMemoryContract:
    def test_collect_false_keeps_no_results(self):
        specs = grid_specs("ablate-slot-split", SPLIT_AXES)
        res = stream_campaign(specs, Aggregator([mean_metric("d", "delay")]))
        assert res.results is None
        with pytest.raises(ValueError, match="kept no results"):
            res.rows()


class TestResume:
    def test_extended_sweep_resumes_without_refolding(self, tmp_path):
        state = tmp_path / "agg.json"
        half = grid_specs("schedulability", {**SCHED_AXES, "rep": [0]})
        full = grid_specs("schedulability", SCHED_AXES)

        first = stream_campaign(
            half, sched_aggregator(), master_seed=5, state_path=state
        )
        assert first.stats.folded == len(half)
        resumed = stream_campaign(
            full, sched_aggregator(), master_seed=5, state_path=state
        )
        # old points are skipped outright: no recomputation, no re-fold
        assert resumed.stats.skipped == len(half)
        assert resumed.stats.computed == len(full) - len(half)
        assert resumed.stats.folded == len(full) - len(half)

        fresh = stream_campaign(full, sched_aggregator(), master_seed=5)
        assert agg_bytes(resumed) == agg_bytes(fresh)

    def test_resume_from_warm_cache_without_snapshot(self, tmp_path):
        """A cache warmed by a plain campaign folds without recomputing."""
        cache = tmp_path / "cache"
        specs = grid_specs("schedulability", SCHED_AXES)
        run_campaign(specs, master_seed=5, cache_dir=cache)
        streamed = stream_campaign(
            specs, sched_aggregator(), master_seed=5, cache_dir=cache
        )
        assert streamed.stats.computed == 0
        assert streamed.stats.cached == len(specs)
        assert streamed.stats.folded == len(specs)

    def test_snapshot_bytes_identical_across_worker_counts(self, tmp_path):
        specs = grid_specs("schedulability", SCHED_AXES)
        snaps = []
        for w in (1, 4):
            state = tmp_path / f"agg-w{w}.json"
            stream_campaign(
                specs, sched_aggregator(), workers=w, master_seed=5,
                state_path=state,
            )
            snaps.append(state.read_bytes())
        assert snaps[0] == snaps[1]

    def test_corrupt_snapshot_starts_fresh(self, tmp_path):
        state = tmp_path / "agg.json"
        state.write_text("{truncated")
        specs = grid_specs("ablate-slot-split", SPLIT_AXES)
        res = stream_campaign(
            specs, Aggregator([mean_metric("d", "delay")]), state_path=state
        )
        assert res.stats.folded == len(specs)
        # and the snapshot was repaired in place
        snap = json.loads(state.read_text())
        assert len(snap["folded"]) == len(specs)

    def test_mismatched_snapshot_is_rejected(self, tmp_path):
        state = tmp_path / "agg.json"
        specs = grid_specs("ablate-slot-split", SPLIT_AXES)
        stream_campaign(
            specs, Aggregator([mean_metric("d", "delay")]),
            master_seed=5, state_path=state,
        )
        with pytest.raises(SnapshotError, match="master seed"):
            stream_campaign(
                specs, Aggregator([mean_metric("d", "delay")]),
                master_seed=6, state_path=state,
            )
        with pytest.raises(SnapshotError, match="config digest"):
            stream_campaign(
                specs, Aggregator([mean_metric("other", "delay")]),
                master_seed=5, state_path=state,
            )


class TestErrors:
    BAD = PointSpec("ablate-slot-split", {"period": 3.0, "budget": 9.0, "pieces": 2})

    def test_failing_points_are_never_folded(self):
        specs = [
            PointSpec("ablate-slot-split", {"period": 3.0, "budget": 1.0, "pieces": 2}),
            self.BAD,  # budget > period: invalid supply
        ]
        agg = Aggregator([mean_metric("d", "delay")])
        res = stream_campaign(specs, agg, on_error="store", collect=True)
        assert res.stats.errors == 1
        assert agg["d"].count == 1
        assert "error" in res.results[1]

    def test_raise_mode_propagates(self):
        from repro.runner import CampaignError

        with pytest.raises(CampaignError):
            stream_campaign(
                [self.BAD], Aggregator([mean_metric("d", "delay")])
            )

    def test_known_failures_are_skipped_on_resume(self, tmp_path):
        """In store mode a failing digest is persisted, so a resumed run
        neither re-evaluates nor re-reports it as computed."""
        state = tmp_path / "agg.json"
        good = PointSpec(
            "ablate-slot-split", {"period": 3.0, "budget": 1.0, "pieces": 2}
        )
        first = stream_campaign(
            [good, self.BAD], Aggregator([mean_metric("d", "delay")]),
            on_error="store", state_path=state,
        )
        assert first.stats.errors == 1
        assert self.BAD.digest in json.loads(state.read_text())["failed"]
        again = stream_campaign(
            [good, self.BAD], Aggregator([mean_metric("d", "delay")]),
            on_error="store", state_path=state,
        )
        assert again.stats.computed == 0
        assert again.stats.errors == 1  # still reported, not re-evaluated
        assert again.stats.skipped == 2
        assert agg_bytes(again) == agg_bytes(first)

    def test_snapshot_flushed_when_a_point_aborts(self, tmp_path):
        """Folds completed before a fatal point survive into the snapshot
        (sequential and pool paths alike), so a resumed run skips them."""
        from repro.runner import CampaignError

        good = PointSpec(
            "ablate-slot-split", {"period": 3.0, "budget": 1.0, "pieces": 2}
        )
        state = tmp_path / "agg.json"
        with pytest.raises(CampaignError):
            stream_campaign(
                [good, self.BAD],
                Aggregator([mean_metric("d", "delay")]),
                workers=1,
                state_path=state,
            )
        snap = json.loads(state.read_text())
        assert good.digest in snap["folded"]

    def test_abort_mid_batch_still_flushes_earlier_folds(self, tmp_path):
        """A fatal point in the middle of a batch flushes the batch mates
        folded before it, exactly like the unbatched abort path."""
        from repro.runner import CampaignError

        good = PointSpec(
            "ablate-slot-split", {"period": 3.0, "budget": 1.0, "pieces": 2}
        )
        state = tmp_path / "agg.json"
        with pytest.raises(CampaignError):
            stream_campaign(
                [good, self.BAD],
                Aggregator([mean_metric("d", "delay")]),
                workers=1,
                state_path=state,
                batch_size=2,  # both points share one batch
            )
        snap = json.loads(state.read_text())
        assert good.digest in snap["folded"]

    def test_store_mode_with_batches_matches_unbatched(self, tmp_path):
        good = PointSpec(
            "ablate-slot-split", {"period": 3.0, "budget": 1.0, "pieces": 2}
        )
        unbatched = stream_campaign(
            [good, self.BAD], Aggregator([mean_metric("d", "delay")]),
            on_error="store", collect=True,
        )
        batched = stream_campaign(
            [good, self.BAD], Aggregator([mean_metric("d", "delay")]),
            on_error="store", collect=True, batch_size=2,
        )
        assert batched.stats.errors == 1
        assert batched.results == unbatched.results
        assert agg_bytes(batched) == agg_bytes(unbatched)


class TestFoldRows:
    def test_post_hoc_fold_matches_streaming(self):
        from repro.runner import fold_rows

        specs = grid_specs("schedulability", SCHED_AXES)
        campaign = run_campaign(specs, workers=1, master_seed=5)
        post_hoc = fold_rows(sched_aggregator(), campaign.rows())
        streamed = stream_campaign(
            specs, sched_aggregator(), workers=1, master_seed=5
        )
        assert post_hoc.state_dict() == streamed.aggregator.state_dict()

    def test_error_rows_are_skipped(self):
        from repro.runner import fold_rows, mean_metric

        agg = Aggregator([mean_metric("d", "delay")])
        spec = PointSpec("ablate-slot-split", {"pieces": 1})
        fold_rows(agg, [(spec, {"delay": 1.0}), (spec, {"error": "boom"})])
        assert agg["d"].count == 1


class TestCacheRepair:
    def test_corrupt_cache_entry_recomputed_and_overwritten(self, tmp_path):
        """A truncated/corrupt cache file must not crash a campaign: the
        point is recomputed and the entry rewritten."""
        cache_dir = tmp_path / "cache"
        spec = PointSpec(
            "ablate-slot-split", {"period": 3.0, "budget": 1.0, "pieces": 2}
        )
        first = stream_campaign(
            [spec], Aggregator([mean_metric("d", "delay")]), cache_dir=cache_dir
        )
        path = ResultCache(cache_dir).path(spec, 0)
        for corrupt in ("{truncated", "[1, 2]", '"just a string"', ""):
            path.write_text(corrupt)
            again = stream_campaign(
                [spec], Aggregator([mean_metric("d", "delay")]),
                cache_dir=cache_dir,
            )
            assert again.stats.computed == 1
            assert again.stats.cached == 0
            assert agg_bytes(again) == agg_bytes(first)
            # the corrupt entry was overwritten with a valid record
            assert ResultCache(cache_dir).get(spec, 0) is not None


class TestOnDelta:
    """The on_delta hook publishes progress while points fold; its cadence
    is outside the determinism contract, but its counters are not."""

    def test_deltas_track_folds_to_completion(self):
        specs = grid_specs("schedulability", SCHED_AXES)
        deltas = []
        streamed = stream_campaign(
            specs, sched_aggregator(), workers=1, on_delta=deltas.append
        )
        assert deltas, "no deltas emitted"
        assert {d["event"] for d in deltas} <= {"scan", "batch"}
        folded = [d["folded"] for d in deltas]
        assert folded == sorted(folded), "folded count went backwards"
        assert folded[-1] == streamed.stats.folded == len(specs)
        assert all(d["failed"] == 0 for d in deltas)

    def test_deltas_do_not_change_the_aggregate(self):
        specs = grid_specs("schedulability", SCHED_AXES)
        silent = stream_campaign(specs, sched_aggregator(), workers=1)
        observed = stream_campaign(
            specs, sched_aggregator(), workers=1, on_delta=lambda d: None
        )
        assert agg_bytes(observed) == agg_bytes(silent)


class TestSnapshotForwardCompat:
    """Older readers tolerate (warn about) newer-minor snapshots and
    unknown top-level keys; wrong majors are still refused."""

    def _snapshot(self, tmp_path):
        from repro.runner import save_snapshot

        specs = grid_specs("schedulability", SCHED_AXES)
        agg = sched_aggregator()
        stream_campaign(specs, agg, workers=1)
        path = tmp_path / "snap.json"
        save_snapshot(path, agg, 0, {s.digest for s in specs})
        return path

    def test_newer_minor_warns_through_shard_reader(self, tmp_path):
        from repro.runner import SnapshotCompatWarning
        from repro.runner.shard import read_shard_snapshot

        path = self._snapshot(tmp_path)
        snap = json.loads(path.read_text())
        snap["schema_minor"] = 3
        snap["provenance"] = {"host": "future"}
        path.write_text(json.dumps(snap))
        with pytest.warns(SnapshotCompatWarning) as caught:
            read_shard_snapshot(path)
        messages = [str(w.message) for w in caught]
        assert any("schema minor 3" in m for m in messages)
        assert any("provenance" in m for m in messages)

    def test_wrong_major_still_refused_by_shard_reader(self, tmp_path):
        from repro.runner import MergeError
        from repro.runner.shard import read_shard_snapshot

        path = self._snapshot(tmp_path)
        snap = json.loads(path.read_text())
        snap["schema"] = 3
        path.write_text(json.dumps(snap))
        with pytest.raises(MergeError, match="has schema 3"):
            read_shard_snapshot(path)

    def test_minor_zero_is_never_written(self, tmp_path):
        # byte-stability: tolerating schema_minor on read must not change
        # the bytes we write
        path = self._snapshot(tmp_path)
        assert "schema_minor" not in json.loads(path.read_text())
