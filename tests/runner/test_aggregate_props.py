"""Property-based tests of the accumulator merge contract.

The streaming aggregation layer is only deterministic if every accumulator
is associative, commutative, identity-preserving and exactly serializable —
these properties are what makes ``workers=4`` bit-identical to
``workers=1`` for *any* fold order. Hypothesis drives randomized fold
sequences, chunkings and permutations against all accumulator kinds.
"""

import json

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.runner import (
    Aggregator,
    CurveAccumulator,
    ExtremaAccumulator,
    HistogramSketch,
    MeanAccumulator,
    PointSpec,
    SlotAccumulator,
    WeightedMeanAccumulator,
    accumulator_from_state,
    canonical_json,
    curve_metric,
    mean_metric,
)

# Finite 64-bit floats plus bools/ints — everything a result field can hold.
values = st.one_of(
    st.booleans(),
    st.integers(min_value=-(10**6), max_value=10**6),
    st.floats(allow_nan=False, allow_infinity=False, width=64),
)
weights = st.one_of(
    st.integers(min_value=0, max_value=100),
    st.floats(min_value=0.0, max_value=1e6, allow_nan=False),
)
keys = st.one_of(
    st.integers(min_value=-5, max_value=5),
    st.sampled_from([0.4, 0.8, 1.2, "EDF", "RM"]),
)

#: One fold input rich enough for every accumulator kind.
folds = st.lists(st.tuples(keys, values, weights), max_size=40)


def build(kind, seq):
    """Fold ``seq`` into a fresh accumulator of ``kind``."""
    if kind == "mean":
        acc = MeanAccumulator()
        for _, v, _ in seq:
            acc.fold(v)
    elif kind == "wmean":
        acc = WeightedMeanAccumulator()
        for _, v, w in seq:
            acc.fold(v, w)
    elif kind == "extrema":
        acc = ExtremaAccumulator()
        for _, v, _ in seq:
            acc.fold(v)
    elif kind == "histogram":
        acc = HistogramSketch(-100.0, 100.0, bins=13)
        for _, v, _ in seq:
            acc.fold(v)
    elif kind == "curve":
        acc = CurveAccumulator(WeightedMeanAccumulator())
        for k, v, w in seq:
            acc.fold(k, v, w)
    else:
        raise ValueError(kind)
    return acc


def empty(kind):
    return build(kind, [])


def state(acc):
    """Canonical bytes of the accumulator state (what snapshots persist)."""
    return canonical_json(acc.state_dict())


KINDS = ["mean", "wmean", "extrema", "histogram", "curve"]
kinds = st.sampled_from(KINDS)


class TestMergeContract:
    @given(kinds, folds, folds, folds)
    @settings(max_examples=120, deadline=None)
    def test_merge_is_associative(self, kind, xs, ys, zs):
        a, b, c = build(kind, xs), build(kind, ys), build(kind, zs)
        left = a.merge(b).merge(c)
        right = a.merge(b.merge(c))
        assert state(left) == state(right)

    @given(kinds, folds, folds)
    @settings(max_examples=120, deadline=None)
    def test_merge_is_commutative(self, kind, xs, ys):
        a, b = build(kind, xs), build(kind, ys)
        assert state(a.merge(b)) == state(b.merge(a))

    @given(kinds, folds)
    @settings(max_examples=80, deadline=None)
    def test_empty_accumulator_is_merge_identity(self, kind, xs):
        a = build(kind, xs)
        assert state(a.merge(empty(kind))) == state(a)
        assert state(empty(kind).merge(a)) == state(a)

    @given(kinds, folds, st.randoms(use_true_random=False))
    @settings(max_examples=80, deadline=None)
    def test_fold_order_is_irrelevant(self, kind, xs, rnd):
        shuffled = list(xs)
        rnd.shuffle(shuffled)
        assert state(build(kind, xs)) == state(build(kind, shuffled))

    @given(kinds, folds, st.integers(min_value=1, max_value=7))
    @settings(max_examples=80, deadline=None)
    def test_worker_sharding_matches_sequential_fold(self, kind, xs, workers):
        # Round-robin the folds over `workers` shards (how a pool would
        # interleave completions), merge the shards: must equal one
        # sequential fold bit-for-bit.
        shards = [build(kind, xs[w::workers]) for w in range(workers)]
        merged = shards[0]
        for shard in shards[1:]:
            merged = merged.merge(shard)
        assert state(merged) == state(build(kind, xs))

    @given(
        kinds,
        folds,
        st.integers(min_value=1, max_value=5),
        st.integers(min_value=1, max_value=9),
    )
    @settings(max_examples=80, deadline=None)
    def test_batched_worker_sharding_matches_sequential_fold(
        self, kind, xs, workers, batch
    ):
        # The batched engine's fold shape: chunk the stream into batches
        # (sizes that don't divide the count leave a short tail), deal the
        # batches round-robin to workers, fold each worker's batches in
        # arrival order, merge the workers. Must equal one sequential fold
        # bit-for-bit — this is what makes `--batch N` output-invisible.
        batches = [xs[i : i + batch] for i in range(0, len(xs), batch)]
        shards = [
            build(kind, [f for b in batches[w::workers] for f in b])
            for w in range(workers)
        ]
        merged = shards[0]
        for shard in shards[1:]:
            merged = merged.merge(shard)
        assert state(merged) == state(build(kind, xs))

    @given(kinds, folds)
    @settings(max_examples=80, deadline=None)
    def test_serialization_round_trip(self, kind, xs):
        a = build(kind, xs)
        restored = accumulator_from_state(json.loads(state(a)))
        assert restored == a
        assert state(restored) == state(a)
        # summaries (the rendered values) survive the round-trip too; plain
        # json.dumps because exact sums may finalize to ±inf (saturation)
        assert json.dumps(restored.summary(), sort_keys=True) == json.dumps(
            a.summary(), sort_keys=True
        )


class TestSlots:
    def test_merge_unions_and_rejects_conflicts(self):
        a, b = SlotAccumulator(), SlotAccumulator()
        a.fold("x", {"v": 1})
        b.fold("y", {"v": 2})
        merged = a.merge(b)
        assert merged["x"] == {"v": 1} and merged["y"] == {"v": 2}
        c = SlotAccumulator()
        c.fold("x", {"v": 3})
        try:
            a.merge(c)
        except ValueError:
            pass
        else:
            raise AssertionError("conflicting slot merge must raise")

    def test_round_trip(self):
        a = SlotAccumulator()
        a.fold("row", {"period": 2.966})
        assert accumulator_from_state(a.state_dict()) == a


class TestAggregator:
    def _aggs(self):
        return Aggregator(
            [
                mean_metric("ratio", "feasible"),
                curve_metric("curve", "u", "feasible", weight="util"),
            ]
        )

    def _point(self, u, feasible, util):
        spec = PointSpec("schedulability", {"u": u, "rep": util})
        return spec, {"feasible": feasible, "util": util}

    @given(
        st.lists(
            st.tuples(
                st.sampled_from([0.5, 1.0, 1.5]),
                st.booleans(),
                st.floats(min_value=0.01, max_value=3.0, allow_nan=False),
            ),
            max_size=30,
        ),
        st.integers(min_value=1, max_value=5),
    )
    @settings(max_examples=60, deadline=None)
    def test_sharded_aggregators_merge_to_sequential(self, points, workers):
        sequential = self._aggs()
        for u, f, util in points:
            sequential.fold(*self._point(u, f, util))
        shards = [self._aggs() for _ in range(workers)]
        for i, (u, f, util) in enumerate(points):
            shards[i % workers].fold(*self._point(u, f, util))
        merged = shards[0]
        for shard in shards[1:]:
            merged = merged.merge(shard)
        assert canonical_json(merged.state_dict()) == canonical_json(
            sequential.state_dict()
        )

    def test_merge_pairs_metrics_by_name_not_position(self):
        # same metrics, different declaration order: config digests match,
        # so a positional merge would silently cross-contaminate
        a = Aggregator([mean_metric("x", "x"), mean_metric("y", "y")])
        b = Aggregator([mean_metric("y", "y"), mean_metric("x", "x")])
        spec = PointSpec("e", {})
        a.fold(spec, {"x": 1.0, "y": 100.0})
        b.fold(spec, {"x": 3.0, "y": 300.0})
        merged = a.merge(b)
        assert merged["x"].mean == pytest.approx(2.0)
        assert merged["y"].mean == pytest.approx(200.0)

    def test_state_round_trip_and_config_guard(self):
        agg = self._aggs()
        agg.fold(*self._point(0.5, True, 0.49))
        fresh = self._aggs()
        fresh.load_state(json.loads(canonical_json(agg.state_dict())))
        assert canonical_json(fresh.state_dict()) == canonical_json(
            agg.state_dict()
        )
        other = Aggregator([mean_metric("other", "feasible")])
        assert other.config_digest != agg.config_digest
