"""Registered experiment points: contracts and spec plumbing."""

import pytest

from repro.experiments import paper_partition, paper_reference, paper_taskset
from repro.runner import (
    PointSpec,
    experiments,
    get_experiment,
    partition_params,
    point_seed,
    run_campaign,
    taskset_params,
)


def evaluate(experiment, params, master_seed=0):
    spec = PointSpec(experiment, params)
    return get_experiment(experiment)(params, point_seed(spec, master_seed))


class TestRegistry:
    def test_core_experiments_registered(self):
        names = experiments()
        for name in (
            "table2-required",
            "table2-row",
            "figure4-point",
            "ablate-minq-gap",
            "ablate-region",
            "ablate-partitioning",
            "ablate-overhead",
            "ablate-slot-split",
            "schedulability",
            "fault-injection",
        ):
            assert name in names

    def test_unknown_name_raises(self):
        with pytest.raises(KeyError):
            get_experiment("nope")


class TestPaperPoints:
    def test_table2_row_b_matches_reference(self):
        ref = paper_reference()
        row = evaluate(
            "table2-row",
            {"algorithm": "EDF", "otot": 0.05, "goal": "min-overhead-bandwidth"},
        )
        assert row["period"] == pytest.approx(ref.b_period, abs=1.5e-3)
        assert row["q_ft"] == pytest.approx(ref.b_q_ft, abs=1.5e-3)

    def test_figure4_point_matches_reference(self):
        ref = paper_reference()
        result = evaluate(
            "figure4-point",
            {
                "query": "max-period",
                "algorithm": "EDF",
                "otot": 0.0,
                "p_max": 3.5,
                "grid": 4001,
            },
        )
        assert result["value"] == pytest.approx(
            ref.max_period_edf_zero_overhead, abs=1.5e-3
        )

    def test_figure4_unknown_query_rejected(self):
        with pytest.raises(ValueError, match="query"):
            evaluate("figure4-point", {"query": "median", "algorithm": "EDF"})

    def test_explicit_partition_params_round_trip(self):
        explicit = partition_params(paper_partition())
        implicit = evaluate("table2-required", {"algorithm": "EDF"})
        assert evaluate("table2-required", {"algorithm": "EDF", **explicit}) == implicit

    def test_taskset_params_partitioned_automatically(self):
        result = evaluate(
            "ablate-partitioning",
            {
                "strategy": "worst-fit",
                "algorithm": "EDF",
                **taskset_params(paper_taskset()),
            },
        )
        assert result["max_period_zero_overhead"] > 0


class TestSyntheticPoints:
    def test_low_utilization_is_feasible(self):
        result = evaluate("schedulability", {"u_total": 0.5, "n": 6, "rep": 0})
        assert result["partitioned"] and result["feasible"]
        assert result["utilization"] == pytest.approx(0.5, abs=1e-9)
        assert result["period"] > 0

    def test_overload_is_infeasible(self):
        result = evaluate("schedulability", {"u_total": 3.9, "n": 6, "rep": 0})
        assert not result["feasible"]

    def test_deterministic_in_seed_only(self):
        params = {"u_total": 1.0, "n": 8, "rep": 0}
        assert evaluate("schedulability", params, 3) == evaluate(
            "schedulability", params, 3
        )

    def test_fault_injection_mode_contracts(self):
        # FT faults never corrupt nor silence; FS faults never corrupt.
        campaign = run_campaign(
            [
                PointSpec("fault-injection", {"rate": 0.1, "cycles": 41, "rep": r})
                for r in range(3)
            ],
            master_seed=3,
        )
        for result in campaign.results:
            assert result["ft_misses"] == 0
            assert result["total_misses"] == 0
        assert sum(r["injected"] for r in campaign.results) > 0

    def test_fault_injection_generated_source(self):
        result = evaluate(
            "fault-injection",
            {
                "source": "generated",
                "u_total": 1.0,
                "n": 10,
                "rate": 0.05,
                "cycles": 30,
            },
        )
        assert result["injected"] >= 0
        assert set(result["outcomes"]) == {
            "masked",
            "silenced",
            "corrupted",
            "harmless",
        }
