"""Spec canonicalization, content-keyed seeding, and grid expansion."""

import numpy as np
import pytest

from repro.runner import (
    PointSpec,
    axis_values,
    canonical_json,
    expand_grid,
    grid_specs,
    parse_axes,
    parse_axis,
    point_seed,
)


class TestPointSpec:
    def test_key_order_does_not_matter(self):
        a = PointSpec("x", {"u": 1.0, "n": 8})
        b = PointSpec("x", {"n": 8, "u": 1.0})
        assert a == b
        assert a.digest == b.digest
        assert hash(a) == hash(b)

    def test_different_params_different_digest(self):
        assert (
            PointSpec("x", {"u": 1.0}).digest != PointSpec("x", {"u": 2.0}).digest
        )
        assert PointSpec("x", {}).digest != PointSpec("y", {}).digest

    def test_nested_params_canonicalized(self):
        a = PointSpec("x", {"shares": {"FT": 0.3, "NF": 0.7}})
        b = PointSpec("x", {"shares": {"NF": 0.7, "FT": 0.3}})
        assert a.digest == b.digest

    def test_non_json_params_rejected_at_construction(self):
        with pytest.raises(TypeError):
            PointSpec("x", {"bad": object()})
        with pytest.raises(ValueError):
            PointSpec("x", {"bad": float("nan")})

    def test_empty_experiment_rejected(self):
        with pytest.raises(ValueError):
            PointSpec("")

    def test_roundtrip_dict(self):
        spec = PointSpec("x", {"u": 1.0})
        assert PointSpec.from_dict(spec.to_dict()) == spec

    def test_canonical_json_is_compact_and_sorted(self):
        assert canonical_json({"b": 1, "a": [1, 2]}) == '{"a":[1,2],"b":1}'


class TestPointSeed:
    def test_same_spec_same_stream(self):
        spec = PointSpec("x", {"u": 1.0})
        r1 = np.random.default_rng(point_seed(spec, 7)).random(4)
        r2 = np.random.default_rng(point_seed(PointSpec("x", {"u": 1.0}), 7)).random(4)
        assert np.array_equal(r1, r2)

    def test_master_seed_changes_stream(self):
        spec = PointSpec("x", {"u": 1.0})
        r1 = np.random.default_rng(point_seed(spec, 0)).random(4)
        r2 = np.random.default_rng(point_seed(spec, 1)).random(4)
        assert not np.array_equal(r1, r2)

    def test_params_change_stream(self):
        r1 = np.random.default_rng(point_seed(PointSpec("x", {"rep": 0}), 0)).random(4)
        r2 = np.random.default_rng(point_seed(PointSpec("x", {"rep": 1}), 0)).random(4)
        assert not np.array_equal(r1, r2)

    def test_spawnable(self):
        children = point_seed(PointSpec("x", {}), 0).spawn(2)
        a = np.random.default_rng(children[0]).random(2)
        b = np.random.default_rng(children[1]).random(2)
        assert not np.array_equal(a, b)


class TestExpandGrid:
    def test_product_last_axis_fastest(self):
        grid = expand_grid({"a": [1, 2], "b": [10, 20]})
        assert grid == [
            {"a": 1, "b": 10},
            {"a": 1, "b": 20},
            {"a": 2, "b": 10},
            {"a": 2, "b": 20},
        ]

    def test_scalar_axis(self):
        assert expand_grid({"a": [1, 2], "n": 8}) == [
            {"a": 1, "n": 8},
            {"a": 2, "n": 8},
        ]

    def test_string_and_mapping_values_are_scalars(self):
        grid = expand_grid({"alg": "EDF", "shares": {"FT": 1.0}})
        assert grid == [{"alg": "EDF", "shares": {"FT": 1.0}}]

    def test_empty_axis_rejected(self):
        with pytest.raises(ValueError):
            expand_grid({"a": []})

    def test_grid_specs_base_params(self):
        specs = grid_specs("x", {"u": [1, 2]}, base_params={"n": 8})
        assert [s.params for s in specs] == [{"n": 8, "u": 1}, {"n": 8, "u": 2}]

    def test_grid_specs_shadowing_rejected(self):
        with pytest.raises(ValueError):
            grid_specs("x", {"n": [1]}, base_params={"n": 8})


class TestAxisValues:
    def test_ordered_sequences_expand(self):
        assert axis_values([1, 2]) == [1, 2]
        assert axis_values((1, 2)) == [1, 2]
        assert axis_values(range(3)) == [0, 1, 2]
        assert axis_values(np.array([0.5, 1.0])) == [0.5, 1.0]

    def test_scalars_become_degenerate_axes(self):
        assert axis_values(8) == [8]
        assert axis_values("EDF") == ["EDF"]
        assert axis_values(b"raw") == [b"raw"]
        assert axis_values({"FT": 1.0}) == [{"FT": 1.0}]
        assert axis_values(np.float64(0.5)) == [0.5]
        assert axis_values(np.array(0.5)) == [0.5]

    def test_empty_sequence_rejected_with_axis_name(self):
        with pytest.raises(ValueError, match="axis 'u_total'"):
            axis_values([], name="u_total")
        with pytest.raises(ValueError, match="must not be empty"):
            axis_values(())
        with pytest.raises(ValueError):
            axis_values(range(0), name="rep")

    def test_sets_rejected_as_nondeterministic(self):
        with pytest.raises(TypeError, match="no deterministic order"):
            axis_values({1, 2}, name="rep")
        with pytest.raises(TypeError, match="no deterministic order"):
            axis_values(frozenset({1}))

    def test_one_shot_iterables_rejected(self):
        with pytest.raises(TypeError, match="one-shot iterable"):
            axis_values(iter([1, 2]), name="rep")
        with pytest.raises(TypeError, match="one-shot iterable"):
            axis_values(v for v in [1, 2])

    def test_expand_grid_uses_the_same_normalization(self):
        assert expand_grid({"a": (1, 2), "n": range(2)}) == [
            {"a": 1, "n": 0},
            {"a": 1, "n": 1},
            {"a": 2, "n": 0},
            {"a": 2, "n": 1},
        ]
        with pytest.raises(TypeError, match="axis 'a'"):
            expand_grid({"a": {1, 2}})


class TestParseAxis:
    def test_numbers_and_strings(self):
        assert parse_axis("u_total=0.5,1.0") == ("u_total", [0.5, 1.0])
        assert parse_axis("heuristic=worst-fit,best-fit") == (
            "heuristic",
            ["worst-fit", "best-fit"],
        )

    def test_malformed_rejected(self):
        for bad in ("nope", "=1", "k="):
            with pytest.raises(ValueError):
                parse_axis(bad)

    def test_raw_opt_out_keeps_strings(self):
        assert parse_axis("mode:=true,false") == ("mode", ["true", "false"])
        assert parse_axis("rate:=0.1,0.2") == ("rate", ["0.1", "0.2"])
        assert parse_axis("tag:=a,,b") == ("tag", ["a", "", "b"])

    def test_raw_opt_out_requires_a_key(self):
        with pytest.raises(ValueError):
            parse_axis(":=1,2")

    def test_colon_inside_key_is_not_raw(self):
        # Only a trailing colon before "=" opts out of JSON decoding.
        assert parse_axis("a:b=1") == ("a:b", [1])

    def test_parse_axes_merges(self):
        assert parse_axes(["a=1", "b=2,3"]) == {"a": [1], "b": [2, 3]}
        assert parse_axes(["a:=1"]) == {"a": ["1"]}
