"""Shard/merge subsystem tests.

These pin the distributed-campaign acceptance contract: digest-keyed
partitioning is deterministic and enumeration-order free, shard snapshots
carry validated manifests, and merging N shard snapshots reproduces the
unsharded snapshot byte-for-byte — while mismatched configs/seeds/grids and
missing, overlapping, or incomplete shards are refused with a diagnosis.
"""

import json

import pytest

from repro.runner import (
    Aggregator,
    MergeError,
    ShardManifest,
    SnapshotError,
    canonical_json,
    curve_metric,
    grid_digest,
    grid_specs,
    mean_metric,
    merge_snapshot_files,
    merge_snapshots,
    parse_shard,
    shard_of,
    shard_specs,
    stream_campaign,
)

AXES = {"u_total": [0.8, 1.6], "n": [6], "rep": [0, 1, 2]}
SPLIT_AXES = {"period": [3.0], "budget": [1.0], "pieces": [1, 2, 3, 4]}


def sched_aggregator():
    return Aggregator(
        [
            mean_metric("feasible", "feasible", experiment="schedulability"),
            curve_metric(
                "weighted", "u_total", "feasible",
                weight="utilization", experiment="schedulability",
            ),
        ]
    )


def run_shards(specs, count, tmp_path, aggregator=sched_aggregator, **kwargs):
    """Run every shard of ``specs`` into its own snapshot; return the paths."""
    paths = []
    for i in range(count):
        manifest = ShardManifest.for_shard(specs, i, count)
        path = tmp_path / f"shard-{i}of{count}.json"
        stream_campaign(
            shard_specs(specs, i, count), aggregator(),
            master_seed=5, state_path=path, shard=manifest, **kwargs,
        )
        paths.append(path)
    return paths


class TestParseShard:
    def test_parses(self):
        assert parse_shard("0/3") == (0, 3)
        assert parse_shard("2/3") == (2, 3)
        assert parse_shard("0/1") == (0, 1)

    @pytest.mark.parametrize(
        "bad", ["3/3", "-1/3", "1/0", "1", "a/b", "1/2/3", "/3", "2/"]
    )
    def test_rejects_malformed(self, bad):
        with pytest.raises(ValueError):
            parse_shard(bad)


class TestPartitioning:
    def test_shards_partition_the_grid(self):
        specs = grid_specs("schedulability", AXES)
        seen: dict[str, int] = {}
        for i in range(3):
            for spec in shard_specs(specs, i, 3):
                assert spec.digest not in seen, "shards overlap"
                seen[spec.digest] = i
        assert len(seen) == len(specs)

    def test_assignment_is_enumeration_order_free(self):
        specs = grid_specs("schedulability", AXES)
        fwd = {s.digest for s in shard_specs(specs, 1, 3)}
        rev = {s.digest for s in shard_specs(list(reversed(specs)), 1, 3)}
        assert fwd == rev

    def test_assignment_is_content_keyed(self):
        specs = grid_specs("schedulability", AXES)
        for spec in specs:
            assert spec in shard_specs(specs, shard_of(spec.digest, 4), 4)

    def test_single_shard_is_identity(self):
        specs = grid_specs("schedulability", AXES)
        assert shard_specs(specs, 0, 1) == specs

    def test_bad_indices_rejected(self):
        specs = grid_specs("schedulability", AXES)
        with pytest.raises(ValueError):
            shard_specs(specs, 3, 3)
        with pytest.raises(ValueError):
            shard_specs(specs, 0, 0)


class TestManifest:
    def test_round_trip(self):
        specs = grid_specs("schedulability", AXES)
        m = ShardManifest.for_shard(specs, 1, 3)
        assert ShardManifest.from_dict(m.to_dict()) == m

    def test_points_match_shard_specs(self):
        specs = grid_specs("schedulability", AXES)
        m = ShardManifest.for_shard(specs, 2, 3)
        assert set(m.points) == {s.digest for s in shard_specs(specs, 2, 3)}

    def test_grid_digest_shared_across_shards(self):
        specs = grid_specs("schedulability", AXES)
        grids = {ShardManifest.for_shard(specs, i, 3).grid for i in range(3)}
        assert grids == {grid_digest(s.digest for s in specs)}

    def test_full_manifest_covers_everything(self):
        specs = grid_specs("schedulability", AXES)
        m = ShardManifest.full(s.digest for s in specs)
        assert (m.index, m.count) == (0, 1)
        assert len(m.points) == len(specs)

    def test_invalid_manifest_rejected(self):
        with pytest.raises(ValueError):
            ShardManifest(index=3, count=3, grid="g", points=())
        with pytest.raises(ValueError):
            ShardManifest(index=0, count=0, grid="g", points=())


class TestMergeBitIdentity:
    @pytest.mark.parametrize("count", [2, 3, 5])
    def test_n_shard_merge_equals_unsharded_snapshot(self, tmp_path, count):
        """The acceptance criterion: merge(N shards) == 1-shard run, bytes."""
        specs = grid_specs("schedulability", AXES)
        full = tmp_path / "full.json"
        stream_campaign(
            specs, sched_aggregator(), master_seed=5, state_path=full
        )
        paths = run_shards(specs, count, tmp_path)
        merged = merge_snapshot_files(paths)
        assert canonical_json(merged) == full.read_text()

    def test_merge_order_does_not_matter(self, tmp_path):
        specs = grid_specs("schedulability", AXES)
        paths = run_shards(specs, 3, tmp_path)
        assert merge_snapshot_files(paths) == merge_snapshot_files(
            list(reversed(paths))
        )

    def test_empty_shard_merges_cleanly(self, tmp_path):
        """A shard that drew no points still produces a valid snapshot."""
        specs = grid_specs("ablate-slot-split", SPLIT_AXES)
        count = len(specs) + 3  # guarantees at least one empty shard
        agg = lambda: Aggregator([mean_metric("d", "delay")])  # noqa: E731
        full = tmp_path / "full.json"
        stream_campaign(specs, agg(), master_seed=5, state_path=full)
        paths = run_shards(specs, count, tmp_path, aggregator=agg)
        assert canonical_json(merge_snapshot_files(paths)) == full.read_text()

    def test_failed_points_survive_the_merge(self, tmp_path):
        """In store mode the failed-digest sets union like the folded sets."""
        from repro.runner import PointSpec

        good = PointSpec(
            "ablate-slot-split", {"period": 3.0, "budget": 1.0, "pieces": 2}
        )
        bad = PointSpec(
            "ablate-slot-split", {"period": 3.0, "budget": 9.0, "pieces": 2}
        )
        specs = [good, bad]
        agg = lambda: Aggregator([mean_metric("d", "delay")])  # noqa: E731
        full = tmp_path / "full.json"
        stream_campaign(
            specs, agg(), master_seed=5, state_path=full, on_error="store"
        )
        paths = run_shards(
            specs, 2, tmp_path, aggregator=agg, on_error="store"
        )
        merged = merge_snapshot_files(paths)
        assert canonical_json(merged) == full.read_text()
        assert bad.digest in merged["failed"]


class TestMergeSafety:
    def shards(self, tmp_path, **kwargs):
        specs = grid_specs("schedulability", AXES)
        return run_shards(specs, 3, tmp_path, **kwargs)

    def test_missing_shard_reported(self, tmp_path):
        paths = self.shards(tmp_path)
        with pytest.raises(MergeError, match=r"missing shards.*\[2\]"):
            merge_snapshot_files(paths[:2])

    def test_overlapping_shard_reported(self, tmp_path):
        paths = self.shards(tmp_path)
        with pytest.raises(MergeError, match="overlapping"):
            merge_snapshot_files([paths[0], *paths])

    def test_mismatched_master_seed_refused(self, tmp_path):
        specs = grid_specs("schedulability", AXES)
        paths = run_shards(specs, 2, tmp_path)
        snap = json.loads(paths[1].read_text())
        snap["master_seed"] = 99
        paths[1].write_text(canonical_json(snap))
        with pytest.raises(MergeError, match="master seed"):
            merge_snapshot_files(paths)

    def test_mismatched_config_refused(self, tmp_path):
        specs = grid_specs("schedulability", AXES)
        paths = run_shards(specs, 2, tmp_path)
        other = Aggregator(
            [mean_metric("other", "feasible", experiment="schedulability")]
        )
        manifest = ShardManifest.for_shard(specs, 1, 2)
        other_path = tmp_path / "other-config.json"
        stream_campaign(
            shard_specs(specs, 1, 2), other,
            master_seed=5, state_path=other_path, shard=manifest,
        )
        with pytest.raises(MergeError, match="config digest"):
            merge_snapshot_files([paths[0], other_path])

    def test_mismatched_grid_refused(self, tmp_path):
        specs = grid_specs("schedulability", AXES)
        grown = grid_specs("schedulability", {**AXES, "rep": [0, 1, 2, 3]})
        a = run_shards(specs, 2, tmp_path)[0]
        manifest = ShardManifest.for_shard(grown, 1, 2)
        b = tmp_path / "other-grid.json"
        stream_campaign(
            shard_specs(grown, 1, 2), sched_aggregator(),
            master_seed=5, state_path=b, shard=manifest,
        )
        with pytest.raises(MergeError, match="grid digest"):
            merge_snapshot_files([a, b])

    def test_incomplete_shard_reported(self, tmp_path):
        paths = self.shards(tmp_path)
        snap = json.loads(paths[0].read_text())
        dropped = snap["folded"].pop()
        # keep the aggregate consistent enough to reach validation
        paths[0].write_text(canonical_json(snap))
        with pytest.raises(MergeError, match="incomplete"):
            merge_snapshot_files(paths)
        assert dropped  # the digest really was removed

    def test_truncated_coverage_does_not_merge_partial(self, tmp_path):
        """A manifest whose points list was truncated (consistently with its
        folded set) still fails: the coverage union must re-derive the
        declared grid digest, or the merge would emit a partial curve."""
        paths = self.shards(tmp_path)
        snap = json.loads(paths[0].read_text())
        dropped = snap["shard"]["points"].pop()
        snap["folded"] = [d for d in snap["folded"] if d != dropped]
        snap["failed"] = [d for d in snap["failed"] if d != dropped]
        paths[0].write_text(canonical_json(snap))
        with pytest.raises(MergeError, match="reassemble the declared grid"):
            merge_snapshot_files(paths)

    def test_stray_fold_reported(self, tmp_path):
        paths = self.shards(tmp_path)
        snap = json.loads(paths[0].read_text())
        snap["folded"].append("f" * 64)
        paths[0].write_text(canonical_json(snap))
        with pytest.raises(MergeError, match="outside its manifest"):
            merge_snapshot_files(paths)

    def test_unreadable_snapshot_is_an_error_not_a_fresh_start(self, tmp_path):
        paths = self.shards(tmp_path)
        with pytest.raises(MergeError, match="cannot read"):
            merge_snapshot_files([*paths[:2], tmp_path / "nope.json"])
        paths[2].write_text("{truncated")
        with pytest.raises(MergeError, match="not valid JSON"):
            merge_snapshot_files(paths)

    def test_old_schema_snapshot_refused(self, tmp_path):
        paths = self.shards(tmp_path)
        snap = json.loads(paths[0].read_text())
        snap["schema"] = 1
        paths[0].write_text(canonical_json(snap))
        with pytest.raises(MergeError, match="schema"):
            merge_snapshot_files(paths)

    def test_no_snapshots_refused(self):
        with pytest.raises(MergeError, match="no snapshots"):
            merge_snapshots([])


class TestPartialMerge:
    """The --allow-partial escape hatch: explicit preview snapshots for
    deliberately incomplete shard sets, while the default path (and every
    non-completeness refusal) stays exactly as strict as before."""

    def shards(self, tmp_path, **kwargs):
        specs = grid_specs("schedulability", AXES)
        return run_shards(specs, 3, tmp_path, **kwargs)

    def test_missing_shard_previews_with_partial_marker(self, tmp_path):
        paths = self.shards(tmp_path)
        preview = merge_snapshot_files(paths[:2], allow_partial=True)
        assert preview["partial"] is True
        assert preview["missing_shards"] == [2]
        snaps = [json.loads(p.read_text()) for p in paths[:2]]
        assert set(preview["folded"]) == set(snaps[0]["folded"]) | set(
            snaps[1]["folded"]
        )
        # the preview claims the *declared* grid but only the done points
        assert preview["shard"]["grid"] == snaps[0]["shard"]["grid"]
        assert set(preview["shard"]["points"]) == set(
            preview["folded"]
        ) | set(preview["failed"])

    def test_preview_aggregate_merges_only_present_shards(self, tmp_path):
        from repro.runner import merge_states

        paths = self.shards(tmp_path)
        preview = merge_snapshot_files(paths[:2], allow_partial=True)
        snaps = [json.loads(p.read_text()) for p in paths[:2]]
        assert preview["aggregate"] == merge_states(
            snaps[0]["aggregate"], snaps[1]["aggregate"]
        )

    def test_complete_set_with_allow_partial_is_canonical(self, tmp_path):
        """--allow-partial on a complete set must not water anything down:
        the result is the canonical snapshot, byte for byte."""
        paths = self.shards(tmp_path)
        strict = merge_snapshot_files(paths)
        permissive = merge_snapshot_files(paths, allow_partial=True)
        assert canonical_json(permissive) == canonical_json(strict)
        assert "partial" not in permissive

    def test_incomplete_shard_previews_with_partial_marker(self, tmp_path):
        paths = self.shards(tmp_path)
        snap = json.loads(paths[0].read_text())
        snap["folded"].pop()
        paths[0].write_text(canonical_json(snap))
        preview = merge_snapshot_files(paths, allow_partial=True)
        assert preview["partial"] is True
        assert preview["missing_shards"] == []  # all shards present...
        assert len(preview["folded"]) == len(
            {d for p in paths for d in json.loads(p.read_text())["folded"]}
        )

    def test_preview_refused_as_merge_input(self, tmp_path):
        paths = self.shards(tmp_path)
        preview = merge_snapshot_files(paths[:2], allow_partial=True)
        preview_path = tmp_path / "preview.json"
        preview_path.write_text(canonical_json(preview))
        for allow in (False, True):
            with pytest.raises(MergeError, match="preview"):
                merge_snapshot_files([preview_path], allow_partial=allow)

    def test_preview_refused_as_resume_state(self, tmp_path):
        paths = self.shards(tmp_path)
        preview = merge_snapshot_files(paths[:2], allow_partial=True)
        preview_path = tmp_path / "preview.json"
        preview_path.write_text(canonical_json(preview))
        specs = grid_specs("schedulability", AXES)
        with pytest.raises(SnapshotError, match="preview"):
            stream_campaign(
                specs, sched_aggregator(),
                master_seed=5, state_path=preview_path,
            )

    def test_allow_partial_keeps_every_other_refusal(self, tmp_path):
        """Only the completeness checks relax: mismatched seeds/configs/
        grids and overlapping shards are refused exactly as before."""
        paths = self.shards(tmp_path)
        with pytest.raises(MergeError, match="overlapping"):
            merge_snapshot_files([paths[0], *paths], allow_partial=True)
        snap = json.loads(paths[1].read_text())
        snap["master_seed"] = 99
        paths[1].write_text(canonical_json(snap))
        with pytest.raises(MergeError, match="master seed"):
            merge_snapshot_files(paths[:2], allow_partial=True)

    def test_stray_fold_refused_even_when_partial(self, tmp_path):
        paths = self.shards(tmp_path)
        snap = json.loads(paths[0].read_text())
        snap["folded"].append("f" * 64)
        paths[0].write_text(canonical_json(snap))
        with pytest.raises(MergeError, match="outside its manifest"):
            merge_snapshot_files(paths[:2], allow_partial=True)


class TestShardedStreaming:
    def test_specs_must_match_the_manifest(self):
        specs = grid_specs("schedulability", AXES)
        manifest = ShardManifest.for_shard(specs, 0, 3)
        with pytest.raises(ValueError, match="do not match the shard"):
            stream_campaign(specs, sched_aggregator(), shard=manifest)

    def test_resume_into_wrong_shard_snapshot_rejected(self, tmp_path):
        specs = grid_specs("schedulability", AXES)
        path = tmp_path / "shard.json"
        m0 = ShardManifest.for_shard(specs, 0, 3)
        stream_campaign(
            shard_specs(specs, 0, 3), sched_aggregator(),
            master_seed=5, state_path=path, shard=m0,
        )
        m1 = ShardManifest.for_shard(specs, 1, 3)
        with pytest.raises(SnapshotError, match="different shard"):
            stream_campaign(
                shard_specs(specs, 1, 3), sched_aggregator(),
                master_seed=5, state_path=path, shard=m1,
            )

    def test_sharded_resume_skips_folded_points(self, tmp_path):
        specs = grid_specs("schedulability", AXES)
        path = tmp_path / "shard.json"
        manifest = ShardManifest.for_shard(specs, 0, 3)
        sub = shard_specs(specs, 0, 3)
        first = stream_campaign(
            sub, sched_aggregator(),
            master_seed=5, state_path=path, shard=manifest,
        )
        assert first.stats.folded == len(sub)
        again = stream_campaign(
            sub, sched_aggregator(),
            master_seed=5, state_path=path, shard=manifest,
        )
        assert again.stats.computed == 0
        assert again.stats.skipped == len(sub)

    def test_snapshot_records_the_manifest(self, tmp_path):
        specs = grid_specs("schedulability", AXES)
        path = tmp_path / "shard.json"
        manifest = ShardManifest.for_shard(specs, 2, 3)
        stream_campaign(
            shard_specs(specs, 2, 3), sched_aggregator(),
            master_seed=5, state_path=path, shard=manifest,
        )
        snap = json.loads(path.read_text())
        assert ShardManifest.from_dict(snap["shard"]) == manifest
